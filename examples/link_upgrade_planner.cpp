// link_upgrade_planner: sensitivity analysis for capacity planning.
//
// A carrier prices link upgrades/downgrades and wants to know, per link,
// how much its cost may drift before the current minimum-cost backbone
// (the MST) stops being optimal — Tarjan's sensitivity problem, solved
// with the paper's relaxed scheme: compact auxiliary labels, O(1) per
// query, and a distributed variant where each router answers for its own
// links from two endpoint states.
//
// Usage: link_upgrade_planner [n] [extra_links]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"
#include "sensitivity/sensitivity.hpp"

using namespace mstv;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const std::size_t extra =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 90;

  Rng rng(4242);
  WeightOptions wo;
  wo.max_weight = 1000;
  wo.distinct = true;
  const Graph g = random_connected_graph(n, extra, wo, rng);
  const auto mst = kruskal_mst(g);
  std::printf("network: %zu routers, %zu links; backbone cost %llu\n\n",
              g.num_vertices(), g.num_edges(),
              static_cast<unsigned long long>(total_weight(g, mst)));

  const SensitivityOracle oracle(g, mst);
  std::printf("auxiliary labels: %zu bits total (%.1f bits/link average "
              "explicit answers would need)\n\n",
              oracle.auxiliary_bits(),
              static_cast<double>(oracle.auxiliary_bits()) /
                  static_cast<double>(g.num_edges()));

  // Rank backbone links by fragility (smallest tolerated increase first).
  struct Row {
    EdgeId e;
    Weight tolerance;
  };
  std::vector<Row> fragile;
  std::vector<EdgeId> frozen;  // bridges: no competing link at any price
  for (const EdgeId e : mst) {
    const auto s = oracle.query(e);
    if (s.tolerance) {
      fragile.push_back({e, *s.tolerance});
    } else {
      frozen.push_back(e);
    }
  }
  std::sort(fragile.begin(), fragile.end(),
            [](const Row& a, const Row& b) {
              return a.tolerance < b.tolerance;
            });

  std::printf("10 most fragile backbone links (cost rise that forces a "
              "re-plan):\n");
  for (std::size_t i = 0; i < fragile.size() && i < 10; ++i) {
    const Edge& ed = g.edge(fragile[i].e);
    std::printf("  %2u <-> %-2u  cost %4llu  breaks at +%llu\n", ed.u, ed.v,
                static_cast<unsigned long long>(ed.w),
                static_cast<unsigned long long>(fragile[i].tolerance));
  }
  std::printf("%zu backbone links are bridges (no alternative at any "
              "price)\n\n", frozen.size());

  // Off-backbone links: how deep must a discount go to win a slot?
  std::vector<Row> bargains;
  for (const EdgeId e : non_tree_edges(g, mst)) {
    const auto s = oracle.query(e);
    bargains.push_back({e, *s.tolerance});
  }
  std::sort(bargains.begin(), bargains.end(),
            [](const Row& a, const Row& b) {
              return a.tolerance < b.tolerance;
            });
  std::printf("10 nearest-miss spare links (discount that flips them into "
              "the backbone):\n");
  for (std::size_t i = 0; i < bargains.size() && i < 10; ++i) {
    const Edge& ed = g.edge(bargains[i].e);
    std::printf("  %2u <-> %-2u  cost %4llu  wins at -%llu\n", ed.u, ed.v,
                static_cast<unsigned long long>(ed.w),
                static_cast<unsigned long long>(bargains[i].tolerance));
  }

  // The same answers, computed distributively from endpoint states only.
  const DistributedSensitivity dist(g, mst);
  std::printf("\ndistributed check (each router stores %zu bits max): ",
              dist.max_state_bits());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    const auto port = g.find_port(ed.u, ed.v);
    const auto a = oracle.query(e);
    const auto b = dist.query(ed.u, *port);
    if (a.tolerance != b.tolerance || a.is_tree_edge != b.is_tree_edge) {
      std::printf("MISMATCH at edge %u\n", e);
      return 1;
    }
  }
  std::printf("all %zu links agree with the centralized oracle\n",
              g.num_edges());
  return 0;
}
