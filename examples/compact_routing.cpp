// compact_routing: self-stabilizing compact routing on a spanning tree.
//
// Classic compact routing stores a next-hop table of Theta(n log deg)
// bits per router.  With the separator-based labels of Section 3, each
// router stores O(log^2 n) bits, any pair of labels yields the next hop,
// and — because the labels are *certified* by the pi-routing proof
// labeling scheme — corrupted tables are detected locally in one round
// instead of silently misrouting.
//
// The demo builds a tree network, installs implicit routing + distance
// labels as node states, certifies them, routes a few packets hop by hop,
// then corrupts one router's table and shows (a) the packet goes astray
// and (b) the verifier pinpoints the corruption.
//
// Usage: compact_routing [n]
#include <cstdio>
#include <cstdlib>

#include "graph/generators.hpp"
#include "labeling/tree_labelings.hpp"
#include "plscheme/runner.hpp"
#include "plscheme/tree_proof_schemes.hpp"

using namespace mstv;

namespace {

ConfigGraph install(const Graph& g, const RoutingLabelingScheme& imp) {
  const RootedTree tree(g, 0);
  const auto labels = imp.encode(tree);
  std::vector<State> states(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    states[v].id = v;
    if (!tree.is_root(v)) states[v].parent_port = tree.parent_port(v);
    states[v].payload = imp.to_bits(labels[v]);
  }
  return ConfigGraph(g, std::move(states));
}

/// Routes hop by hop using only the states stored at the routers.
bool route_packet(const Graph& g, const ConfigGraph& cfg,
                  const RoutingLabelingScheme& imp, VertexId src,
                  VertexId dst, bool verbose) {
  VertexId cur = src;
  std::size_t hops = 0;
  if (verbose) std::printf("  packet %u -> %u:", src, dst);
  while (cur != dst) {
    if (++hops > g.num_vertices()) {
      if (verbose) std::printf(" ... LOST (loop)\n");
      return false;
    }
    PortNumber p;
    try {
      p = imp.decode_route(imp.from_bits(cfg.state(cur).payload),
                           imp.from_bits(cfg.state(dst).payload));
    } catch (const std::exception&) {
      if (verbose) std::printf(" ... DROPPED (corrupt table)\n");
      return false;
    }
    if (p < 1 || p > g.degree(cur)) {
      if (verbose) std::printf(" ... DROPPED (bad port)\n");
      return false;
    }
    cur = g.port(cur, p).neighbor;
    if (verbose) std::printf(" %u", cur);
  }
  if (verbose) std::printf("  (%zu hops)\n", hops);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  Rng rng(13);
  WeightOptions wo;
  wo.max_weight = 100;
  const Graph g = random_tree(n, wo, rng);

  const RoutingLabelingScheme imp;
  ConfigGraph cfg = install(g, imp);

  std::size_t max_bits = 0;
  for (VertexId v = 0; v < cfg.size(); ++v) {
    max_bits = std::max(max_bits, cfg.state(v).payload.size_bits());
  }
  std::printf("%zu routers; routing state <= %zu bits per router "
              "(a full next-hop table would need ~%zu)\n",
              g.num_vertices(), max_bits,
              g.num_vertices() * 8 /* ~log n bits per destination */);

  // Certify the tables.
  const RoutingProofScheme proof;
  const auto proof_labels = proof.mark(cfg);
  std::printf("pi-routing certification: %s\n\n",
              run_verifier(proof, cfg, proof_labels).accepted ? "ACCEPTED"
                                                              : "REJECTED");

  std::printf("routing sample packets:\n");
  for (int i = 0; i < 4; ++i) {
    const auto s = static_cast<VertexId>(rng.index(n));
    const auto d = static_cast<VertexId>(rng.index(n));
    if (s == d) continue;
    route_packet(g, cfg, imp, s, d, true);
  }

  // Corrupt one router's table.
  const auto victim = static_cast<VertexId>(n / 2);
  Label p = cfg.state(victim).payload;
  cfg.state(victim).payload = p.with_bit_flipped(p.size_bits() / 2);
  std::printf("\ncorrupting router %u's table...\n", victim);

  std::size_t delivered = 0, total = 0;
  Rng prng(17);
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<VertexId>(prng.index(n));
    const auto d = static_cast<VertexId>(prng.index(n));
    if (s == d) continue;
    ++total;
    if (route_packet(g, cfg, imp, s, d, false)) ++delivered;
  }
  std::printf("delivery rate with silent corruption: %zu/%zu\n", delivered,
              total);

  const auto result = run_verifier(proof, cfg, proof_labels);
  std::printf("verification round: %s; complaining routers:",
              result.accepted ? "ACCEPTED (?!)" : "REJECTED");
  for (const VertexId v : result.rejecting) std::printf(" %u", v);
  std::printf("\n=> the corruption is localized in one round; re-mark and "
              "routing is trustworthy again.\n");
  return result.accepted ? 1 : 0;
}
