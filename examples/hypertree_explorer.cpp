// hypertree_explorer: reproduce Figure 1 and poke at the lower bound.
//
// Builds an (h, mu)-hypertree per Section 4, prints the structural
// statistics that define the figure (root edges of weight x, the 4-vertex
// Path(a0, a1) gadgets, preorder identities), writes Graphviz DOT of the
// construction, and then plays both sides of the argument: pi_mst accepts
// the legal hypertree and rejects a lightened path, while the quantized
// scheme falls to the cut-and-paste splice.
//
// Usage: hypertree_explorer [h] [mu] [dot_file]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "graph/io.hpp"
#include "lowerbound/attack.hpp"
#include "lowerbound/counting.hpp"
#include "lowerbound/hypertree.hpp"
#include "plscheme/runner.hpp"

using namespace mstv;

int main(int argc, char** argv) {
  const auto h = static_cast<std::uint32_t>(
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3);
  const std::uint64_t mu =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const char* dot_file = argc > 3 ? argv[3] : "hypertree.dot";

  Rng rng(1);
  const Hypertree ht = build_hypertree(h, mu, {}, &rng);
  std::printf("(%u, %llu)-hypertree: %zu vertices, %zu edges\n", h,
              static_cast<unsigned long long>(mu), ht.graph.num_vertices(),
              ht.graph.num_edges());
  std::printf("  closed form (4^h - 1)/3 = %llu\n",
              static_cast<unsigned long long>(hypertree_num_vertices(h)));
  for (std::uint32_t k = 2; k <= h; ++k) {
    std::printf("  level %u: x = %llu drawn from Q_%u(mu) = [%llu, %llu]\n",
                k, static_cast<unsigned long long>(ht.level_x[k]), k - 1,
                static_cast<unsigned long long>(q_range_lo(k - 1, mu)),
                static_cast<unsigned long long>(q_range_hi(k - 1, mu)));
  }
  std::printf("  %zu Path(a0,a1) gadgets; all legal (weight == level x)\n",
              ht.paths.size());
  std::printf("  Claim 4.1 check: %s\n",
              check_claim_4_1(ht) ? "holds" : "VIOLATED");

  // Figure 1 as DOT: the induced spanning tree bold, identities annotated.
  {
    DotOptions opts;
    opts.graph_name = "hypertree";
    opts.tree_edge.assign(ht.graph.num_edges(), false);
    for (const EdgeId e : ht.spanning_tree_edges()) opts.tree_edge[e] = true;
    opts.vertex_note.resize(ht.graph.num_vertices());
    for (VertexId v = 0; v < ht.graph.num_vertices(); ++v) {
      opts.vertex_note[v] = "id=" + std::to_string(*ht.states[v].id);
    }
    std::ofstream out(dot_file);
    write_dot(out, ht.graph, opts);
    std::printf("  Figure-1 DOT written to %s\n\n", dot_file);
  }

  // The verification side.
  const MstScheme scheme;
  const ConfigGraph cfg = ht.config();
  const auto labels = scheme.mark(cfg);
  std::size_t max_bits = 0;
  for (const Label& l : labels) max_bits = std::max(max_bits, l.size_bits());
  const auto floor = lower_bound_row(h, mu);
  std::printf("pi_mst on the legal hypertree: %s; max label %zu bits "
              "(counting floor: %.1f bits)\n",
              run_verifier(scheme, cfg, labels).accepted ? "ACCEPTED"
                                                         : "REJECTED",
              max_bits, floor.min_label_bits);

  const Hypertree lighter =
      with_path_weight(ht, 0, ht.level_x[ht.paths[0].level] - 1);
  std::printf("after lightening Path#0 below x: %s\n",
              run_verifier(scheme, lighter.config(), labels).accepted
                  ? "ACCEPTED (?!)"
                  : "REJECTED — as Claim 4.1 demands");

  // The adversarial side.
  std::printf("\ncut-and-paste splice vs pi_mst:          ");
  const auto honest = cut_and_paste_attack(scheme, h, mu);
  std::printf("%s\n", honest.collision_found
                          ? "collision (?!)"
                          : "no collision — weight classes disjoint");
  std::printf("cut-and-paste splice vs quantized labels: ");
  const auto lossy = cut_and_paste_attack(QuantizedMstScheme(), h, mu);
  if (lossy.collision_found) {
    std::printf("collision x=%llu vs x=%llu; forged non-MST %s\n",
                static_cast<unsigned long long>(lossy.x_heavy),
                static_cast<unsigned long long>(lossy.x_light),
                lossy.forgery_accepted ? "ACCEPTED — soundness broken"
                                       : "still rejected");
  } else {
    std::printf("no collision at this (h, mu); try a larger mu\n");
  }
  return 0;
}
