// Quickstart: the full pi_mst round trip in ~60 lines.
//
//   1. build a weighted network,
//   2. compute an MST and store it distributively (parent ports),
//   3. run the marker once (centralized labeling),
//   4. verify locally at every node — one label exchange,
//   5. corrupt one node's state and watch a neighbor catch it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "graph/graph.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

using namespace mstv;

int main() {
  // 1. A small data-center fabric: 6 switches, links weighted by cost.
  Graph::Builder b(6);
  b.add_edge(0, 1, 4);
  b.add_edge(0, 2, 3);
  b.add_edge(1, 2, 1);
  b.add_edge(1, 3, 2);
  b.add_edge(2, 3, 4);
  b.add_edge(3, 4, 2);
  b.add_edge(4, 5, 6);
  b.add_edge(2, 5, 5);
  const Graph g = b.build();

  // 2. Compute an MST and push it into the nodes' states: every node
  //    remembers only the port that leads to its parent.
  const std::vector<EdgeId> mst = kruskal_mst(g);
  std::printf("MST edges (weight %llu):",
              static_cast<unsigned long long>(total_weight(g, mst)));
  for (const EdgeId e : mst) {
    std::printf(" (%u-%u:%llu)", g.edge(e).u, g.edge(e).v,
                static_cast<unsigned long long>(g.edge(e).w));
  }
  std::printf("\n");
  ConfigGraph cfg = make_tree_config(g, mst, /*root=*/0);

  // 3. Label once with the O(log n log W)-bit scheme of Korman & Kutten.
  const MstScheme scheme;
  const std::vector<Label> labels = scheme.mark(cfg);
  std::size_t max_bits = 0;
  for (const Label& l : labels) max_bits = std::max(max_bits, l.size_bits());
  std::printf("labels installed, max %zu bits per node\n", max_bits);

  // 4. Verify: every node looks only at its own state/label and its
  //    neighbors' labels.
  const VerificationResult ok = run_verifier(scheme, cfg, labels);
  std::printf("verification: %s\n", ok.accepted ? "ACCEPTED" : "REJECTED");

  // 5. A transient fault: switch 4 forgets its parent and elects itself
  //    a root.  The very next verification round pinpoints the problem.
  cfg.state(4).parent_port.reset();
  const VerificationResult bad = run_verifier(scheme, cfg, labels);
  std::printf("after fault at node 4: %s;",
              bad.accepted ? "ACCEPTED (?!)" : "REJECTED");
  std::printf(" rejecting nodes:");
  for (const VertexId v : bad.rejecting) std::printf(" %u", v);
  std::printf("\n");
  return bad.accepted ? 1 : 0;
}
