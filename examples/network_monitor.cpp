// network_monitor: self-stabilizing MST maintenance for a WAN.
//
// An operator keeps a minimum-cost spanning tree over a 200-router
// network.  Transient faults (misconfigured next hops, corrupted label
// memory) hit at random; every monitoring tick runs one local
// verification round — if any router complains, the tree is recomputed
// distributively and relabeled.  The run prints a per-tick event log and
// a final cost accounting showing why cheap verification matters: the
// steady-state cost is a label exchange, not a recomputation.
//
// Usage: network_monitor [ticks] [fault_probability_percent]
#include <cstdio>
#include <cstdlib>

#include "graph/generators.hpp"
#include "runtime/self_stabilization.hpp"

using namespace mstv;

int main(int argc, char** argv) {
  const int ticks = argc > 1 ? std::atoi(argv[1]) : 40;
  const int fault_pct = argc > 2 ? std::atoi(argv[2]) : 20;

  Rng rng(2026);
  WeightOptions wo;
  wo.max_weight = 1u << 16;
  wo.distinct = true;  // unique MST: every structural fault is detectable
  const Graph g = random_connected_graph(200, 300, wo, rng);

  const MstScheme scheme;
  SelfStabilizingMst sys(g, scheme);
  Rng frng(77);
  FaultInjector injector(frng);

  std::printf("monitoring %zu routers / %zu links; fault chance %d%%/tick\n\n",
              g.num_vertices(), g.num_edges(), fault_pct);

  std::size_t quiet_ticks = 0, faults = 0, detections = 0;
  std::size_t verify_bits_total = 0, repair_bits_total = 0;
  for (int tick = 0; tick < ticks; ++tick) {
    // The adversary occasionally corrupts a router.
    bool injected = false;
    if (frng.chance(fault_pct / 100.0)) {
      for (int tries = 0; tries < 20 && !injected; ++tries) {
        injected = injector.inject(sys.network()).has_value();
      }
      if (injected) ++faults;
    }

    const StabilizationStats s = sys.stabilize();
    verify_bits_total += s.verify_bits;
    if (s.fault_detected) {
      ++detections;
      repair_bits_total += s.recompute.message_bits + s.remark_bits;
      std::printf("tick %3d: FAULT detected by %zu router(s); "
                  "repair: %zu Borůvka phases, %zu msgs, silent=%s\n",
                  tick, s.detecting_nodes, s.recompute.phases,
                  s.recompute.messages, s.silent_after ? "yes" : "NO");
    } else {
      ++quiet_ticks;
      if (injected) {
        std::printf("tick %3d: fault injected but configuration still "
                    "verifies (label-only corruption can be benign)\n",
                    tick);
      }
    }
  }

  std::printf("\nsummary over %d ticks\n", ticks);
  std::printf("  quiet ticks          : %zu\n", quiet_ticks);
  std::printf("  faults injected      : %zu\n", faults);
  std::printf("  faults detected      : %zu\n", detections);
  std::printf("  verification traffic : %.2f Mbit total (%.3f Mbit/tick)\n",
              static_cast<double>(verify_bits_total) / 1e6,
              static_cast<double>(verify_bits_total) / 1e6 / ticks);
  std::printf("  repair traffic       : %.2f Mbit total\n",
              static_cast<double>(repair_bits_total) / 1e6);
  std::printf("steady state costs one label exchange per tick; the "
              "expensive global recomputation runs only on detection.\n");
  return 0;
}
