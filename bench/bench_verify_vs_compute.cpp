// E6 — the paper's motivation: verification is one local exchange, while
// (re)computation "involves all the network nodes and messages sent to
// remote nodes".
//
// Per graph size: one verification round of pi_mst (messages, bits, and
// wall time for all verifier executions) against (a) the simulated
// distributed Borůvka (phases, rounds, messages, bits) and (b) sequential
// Kruskal/Prim wall time.  Also reports marker (labeling) time, the
// one-time cost paid per recomputation.
#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "mst/offline_verify.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "runtime/boruvka_sim.hpp"
#include "runtime/network.hpp"

using namespace mstv;
using namespace mstv::bench;

int main() {
  banner("E6", "verification vs computation (Section 1.1 motivation)",
         "one pi_mst verification round vs distributed Borůvka and "
         "sequential MST algorithms");

  const MstScheme scheme;
  Table t({"n", "m", "verify msgs", "verify Mbit", "verify ms",
           "boruvka rounds", "boruvka msgs", "boruvka Mbit", "kruskal ms",
           "seq-verify ms", "mark ms"});
  for (const std::size_t n : {1024u, 4096u, 16384u, 65536u}) {
    Rng rng(n);
    WeightOptions wo;
    wo.max_weight = 1u << 20;
    const Graph g = random_connected_graph(n, 2 * n, wo, rng);

    double kruskal_ms = 0;
    std::vector<EdgeId> mst;
    kruskal_ms = time_ms([&] { mst = kruskal_mst(g); });

    SimNetwork net(make_tree_config(g, mst, 0), scheme);
    const double mark_ms = time_ms([&] { net.install_marker_labels(); });

    RoundStats round{};
    const double verify_ms =
        time_ms([&] { round = net.verification_round(); });
    if (!round.accepted) {
      std::printf("VERIFICATION FAILED at n=%zu\n", n);
      return 1;
    }

    const auto bor = distributed_boruvka(g);

    // Tarjan-style sequential verification (the paper's starting point).
    bool seq_ok = false;
    const double seq_ms =
        time_ms([&] { seq_ok = verify_mst_offline(g, mst).is_mst; });
    if (!seq_ok) {
      std::printf("SEQUENTIAL VERIFICATION FAILED at n=%zu\n", n);
      return 1;
    }

    t.add_row({fmt(n), fmt(g.num_edges()), fmt(round.messages),
               fmt(static_cast<double>(round.bits) / 1e6, 2),
               fmt(verify_ms, 1), fmt(bor.rounds), fmt(bor.messages),
               fmt(static_cast<double>(bor.message_bits) / 1e6, 2),
               fmt(kruskal_ms, 1), fmt(seq_ms, 1), fmt(mark_ms, 1)});
  }
  t.print();
  JsonReporter rep("verify_vs_compute");
  rep.add_table("E6: one verification round vs distributed recomputation", t);
  rep.write();
  std::printf(
      "Expected shape: verification finishes in ONE round with O(m) short\n"
      "messages; Borůvka needs Theta(log n) phases, growing round counts\n"
      "and comparable-to-larger total traffic — and must be paid on every\n"
      "recomputation, whereas the verifier runs repeatedly for the price\n"
      "of a label exchange (the self-stabilization argument).\n");
  return 0;
}
