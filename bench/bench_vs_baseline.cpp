// E2 — improvement over the prior bound ([KKP05]'s
// O(log^2 n + log n log W) vs. this paper's O(log n log W)).
//
// pi-mst (telescoping E_sep) against pi-mst-naive (fixed-width E_sep, the
// prior schemes' numbering style).  The separation shows up at large n and
// small W — exactly where log^2 n dominates log n log W — and narrows as
// W grows, matching the bounds' shapes.
#include <cmath>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/fragment_scheme.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

using namespace mstv;
using namespace mstv::bench;

int main() {
  banner("E2", "pi_mst vs the prior-art size shape",
         "max label bits: telescoping (this paper) vs fixed-width "
         "(KKP05-style) separator coding");

  const MstScheme ours(SepCoding::Telescoping);
  const MstScheme naive(SepCoding::FixedWidth);
  const FragmentScheme frag;  // the genuine Borůvka-history construction

  Table t({"n", "W", "ours (bits)", "naive (bits)", "pi-frag (bits)",
           "frag/ours"});
  for (const std::size_t n : {256u, 4096u, 65536u}) {
    for (const int wexp : {2, 16, 40}) {
      const Weight W = Weight{1} << wexp;
      Rng rng(n + static_cast<std::uint64_t>(wexp));
      WeightOptions wo;
      wo.max_weight = W;
      const Graph g = random_connected_graph(n, n, wo, rng);
      const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
      const auto r_ours = mark_and_verify(ours, cfg);
      const auto r_naive = mark_and_verify(naive, cfg);
      const auto r_frag = mark_and_verify(frag, cfg);
      if (!r_ours.accepted || !r_naive.accepted || !r_frag.accepted) {
        std::printf("VERIFICATION FAILED at n=%zu W=2^%d\n", n, wexp);
        return 1;
      }
      t.add_row({fmt(n), "2^" + std::to_string(wexp),
                 fmt(r_ours.max_label_bits), fmt(r_naive.max_label_bits),
                 fmt(r_frag.max_label_bits),
                 fmt(static_cast<double>(r_frag.max_label_bits) /
                         static_cast<double>(r_ours.max_label_bits),
                     2)});
    }
  }
  t.print();
  JsonReporter rep("vs_baseline");
  rep.add_table("E2: pi_mst vs prior constructions", t);
  rep.write();
  std::printf(
      "Expected shape: ours <= naive <= pi-frag everywhere; the gap is\n"
      "widest at large n / small W (the log^2 n regime of the prior\n"
      "bound) and narrows as log W dominates — the crossover pattern of\n"
      "the two bounds.  pi-frag is the full Borůvka-history construction\n"
      "of the prior scheme; 'naive' isolates just its E_sep coding.\n");
  return 0;
}
