// E3 — Lemma 3.2: gamma_small implicit MAX labels.
//
// (a) label size sweep (bits per vertex) over tree shapes and sizes;
// (b) decode latency: the two-label MAX decoder against the centralized
//     O(log n) binary-lifting oracle and the O(n) brute walk — the
//     "constant time computation" claim of the lemma at bench scale.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "labeling/extrema_labeling.hpp"
#include "tree/path_queries.hpp"

using namespace mstv;

namespace {

struct Setup {
  Graph g;
  std::vector<ExtremaLabel> labels;
  std::vector<VertexId> qu, qv;
};

Setup make_setup(std::size_t n) {
  Rng rng(n);
  WeightOptions wo;
  wo.max_weight = 1u << 24;
  Setup s;
  s.g = random_tree(n, wo, rng);
  const RootedTree t(s.g, 0);
  const ExtremaLabelingScheme scheme(ExtremaKind::Max,
                                     SepCoding::Telescoping);
  s.labels = scheme.encode(t);
  for (int i = 0; i < 1024; ++i) {
    s.qu.push_back(static_cast<VertexId>(rng.index(n)));
    s.qv.push_back(static_cast<VertexId>(rng.index(n)));
  }
  return s;
}

void BM_DecodeMaxFromLabels(benchmark::State& state) {
  const auto s = make_setup(static_cast<std::size_t>(state.range(0)));
  const ExtremaLabelingScheme scheme(ExtremaKind::Max,
                                     SepCoding::Telescoping);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheme.decode(s.labels[s.qu[i & 1023]], s.labels[s.qv[i & 1023]]));
    ++i;
  }
}
BENCHMARK(BM_DecodeMaxFromLabels)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_PathMaxBinaryLifting(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  WeightOptions wo;
  wo.max_weight = 1u << 24;
  const Graph g = random_tree(n, wo, rng);
  const RootedTree t(g, 0);
  const TreePathQueries q(t);
  std::vector<VertexId> qu, qv;
  for (int i = 0; i < 1024; ++i) {
    qu.push_back(static_cast<VertexId>(rng.index(n)));
    qv.push_back(static_cast<VertexId>(rng.index(n)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.path_max(qu[i & 1023], qv[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_PathMaxBinaryLifting)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_PathMaxBruteWalk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  WeightOptions wo;
  wo.max_weight = 1u << 24;
  const Graph g = random_tree(n, wo, rng);
  const RootedTree t(g, 0);
  std::vector<VertexId> qu, qv;
  for (int i = 0; i < 1024; ++i) {
    qu.push_back(static_cast<VertexId>(rng.index(n)));
    qv.push_back(static_cast<VertexId>(rng.index(n)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(brute_path_max(t, qu[i & 1023], qv[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_PathMaxBruteWalk)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void print_size_table() {
  mstv::bench::banner(
      "E3", "Lemma 3.2: gamma_small MAX labels, size + decode speed",
      "bits per label over tree shapes (telescoping coding), then decode "
      "latency vs centralized oracles (google-benchmark below)");
  const ExtremaLabelingScheme scheme(ExtremaKind::Max,
                                     SepCoding::Telescoping);
  mstv::bench::Table t({"shape", "n", "max bits", "avg bits"});
  struct Shape {
    const char* name;
    Graph (*make)(std::size_t, const WeightOptions&, Rng&);
  };
  for (const Shape& shape :
       {Shape{"random", random_tree}, Shape{"path", path_graph},
        Shape{"star", star_graph}, Shape{"caterpillar", caterpillar},
        Shape{"binary", balanced_binary_tree}}) {
    for (const std::size_t n : {1024u, 16384u}) {
      Rng rng(n);
      WeightOptions wo;
      wo.max_weight = 1u << 24;
      const Graph g = shape.make(n, wo, rng);
      const RootedTree tr(g, 0);
      std::size_t mx = 0, total = 0;
      for (const auto& l : scheme.encode(tr)) {
        const std::size_t b = scheme.label_bits(l);
        mx = std::max(mx, b);
        total += b;
      }
      t.add_row({shape.name, mstv::bench::fmt(n), mstv::bench::fmt(mx),
                 mstv::bench::fmt(static_cast<double>(total) /
                                      static_cast<double>(n),
                                  1)});
    }
  }
  t.print();
  mstv::bench::JsonReporter rep("max_labeling");
  rep.add_table("E3: gamma_small MAX label bits over tree shapes", t);
  rep.write();
}

}  // namespace

int main(int argc, char** argv) {
  print_size_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
