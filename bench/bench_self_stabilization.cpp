// E8 — the self-stabilization application (R9).
//
// Fault-injection sweep on the simulated network: per fault kind, the
// detection rate and the cost split between the (cheap, repeated)
// verification rounds and the (expensive, rare) repair — the quantitative
// version of "an efficient verification algorithm saves repeatedly in
// communication".
#include <cstdio>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "runtime/self_stabilization.hpp"

using namespace mstv;
using namespace mstv::bench;

int main() {
  banner("E8", "self-stabilizing MST maintenance",
         "fault detection rate and verify-vs-repair cost per fault kind");

  Rng rng(8);
  WeightOptions wo;
  wo.max_weight = 1u << 16;
  wo.distinct = true;
  const Graph g = random_connected_graph(512, 1024, wo, rng);
  const MstScheme scheme;

  struct KindRow {
    const char* name;
    FaultKind kind;
  };
  Table t({"fault", "applied", "detected", "det. rate", "avg detecting nodes",
           "verify Mbit/round", "repair Mbit (msg+mark)"});
  for (const KindRow k :
       {KindRow{"redirect-parent", FaultKind::RedirectParent},
        KindRow{"drop-parent", FaultKind::DropParent},
        KindRow{"make-parent(root)", FaultKind::MakeParent},
        KindRow{"flip-label-bit", FaultKind::FlipLabelBit}}) {
    Rng frng(80 + static_cast<std::uint64_t>(k.kind));
    FaultInjector inj(frng);

    std::size_t applied = 0, detected = 0, detecting_nodes = 0;
    double verify_mbit = 0, repair_mbit = 0;
    std::size_t repairs = 0;
    for (int trial = 0; trial < 30; ++trial) {
      SelfStabilizingMst sys(g, scheme);
      std::optional<FaultRecord> rec;
      for (int tries = 0; tries < 200 && !rec; ++tries) {
        const auto victim =
            static_cast<VertexId>(frng.index(g.num_vertices()));
        rec = inj.inject(sys.network(), k.kind, victim);
      }
      if (!rec) continue;
      ++applied;
      const auto stats = sys.stabilize();
      verify_mbit += static_cast<double>(stats.verify_bits) / 1e6;
      if (stats.fault_detected) {
        ++detected;
        detecting_nodes += stats.detecting_nodes;
        repair_mbit += static_cast<double>(stats.recompute.message_bits +
                                           stats.remark_bits) /
                       1e6;
        ++repairs;
        if (!stats.silent_after) {
          std::printf("REPAIR FAILED TO SILENCE (%s)\n", k.name);
          return 1;
        }
      }
    }
    t.add_row(
        {k.name, fmt(applied), fmt(detected),
         fmt(applied ? 100.0 * static_cast<double>(detected) /
                           static_cast<double>(applied)
                     : 0.0,
             1) + "%",
         fmt(detected ? static_cast<double>(detecting_nodes) /
                            static_cast<double>(detected)
                      : 0.0,
             2),
         fmt(applied ? verify_mbit / static_cast<double>(applied) : 0.0, 3),
         fmt(repairs ? repair_mbit / static_cast<double>(repairs) : 0.0,
             3)});
  }
  t.print();
  JsonReporter rep("self_stabilization");
  rep.add_table("E9: fault detection and repair costs", t);
  rep.write();
  std::printf(
      "Expected shape: state faults detected 100%% in ONE round; label\n"
      "flips detected except when the flip is another valid proof of the\n"
      "(still true) predicate; repair costs dwarf a verification round.\n");
  return 0;
}
