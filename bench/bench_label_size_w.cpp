// E1b — Theorem 3.4 (upper bound), W-sweep.
//
// Fixed n, weight range W doubling in the exponent: max pi_mst label bits
// should grow linearly in log W (the E_omega fields widen, everything
// else stays put).
#include <cmath>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

using namespace mstv;
using namespace mstv::bench;

int main() {
  banner("E1b", "Theorem 3.4: pi_mst size O(log n log W) — W sweep",
         "max/avg label bits of pi_mst on random connected graphs, "
         "n = 4096 fixed, W = 2^4 .. 2^48");

  const std::size_t n = 4096;
  const MstScheme scheme;
  Table t({"W", "log2 W", "max bits", "avg bits", "max/(log2n*log2W)"});
  for (int wexp = 4; wexp <= 48; wexp += 8) {
    const Weight W = Weight{1} << wexp;
    Rng rng(static_cast<std::uint64_t>(wexp));
    WeightOptions wo;
    wo.max_weight = W;
    const Graph g = random_connected_graph(n, n, wo, rng);
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
    const auto r = mark_and_verify(scheme, cfg);
    if (!r.accepted) {
      std::printf("VERIFICATION FAILED at W=2^%d\n", wexp);
      return 1;
    }
    const double denom =
        std::log2(static_cast<double>(n)) * static_cast<double>(wexp);
    t.add_row({"2^" + std::to_string(wexp), fmt(std::size_t(wexp)),
               fmt(r.max_label_bits), fmt(r.avg_label_bits(), 1),
               fmt(static_cast<double>(r.max_label_bits) / denom, 3)});
  }
  t.print();
  JsonReporter rep("label_size_w");
  rep.add_table("E1b: pi_mst label bits, W sweep", t);
  rep.write();
  std::printf("Expected shape: max bits grows ~linearly with log2 W; the\n"
              "normalized column stays bounded.\n");
  return 0;
}
