// E5 + F1 — Section 4: the Omega(log n log W) lower bound and Figure 1.
//
// For (h, mu)-hypertrees this bench reports, side by side:
//   * the structure counts of the Figure-1 construction,
//   * acceptance of legal hypertrees / rejection of lightened ones by
//     pi_mst (Claim 4.1 operationalized),
//   * the numeric counting floor log2 g(h, mu) next to the measured
//     pi_mst label size — the measured scheme must sit above the floor,
//     and both should scale with h * log2(mu) ~ log n log W,
//   * the executable adversary: no collision for pi_mst (Lemma 4.3's
//     disjointness), collision + accepted forgery for the quantized
//     scheme (why the log W factor is not compressible).
#include <cstdio>

#include "bench/common.hpp"
#include "lowerbound/attack.hpp"
#include "lowerbound/counting.hpp"
#include "lowerbound/hypertree.hpp"
#include "plscheme/runner.hpp"

using namespace mstv;
using namespace mstv::bench;

int main() {
  banner("E5/F1", "Section 4 lower bound; Figure 1 hypertrees",
         "legal-accept / lightened-reject, measured bits vs counting floor");

  const MstScheme scheme;

  Table t({"h", "mu", "n", "W", "legal ok", "lighter rejected",
           "measured max bits", "floor log2 g"});
  for (std::uint32_t h = 2; h <= 6; ++h) {
    const std::uint64_t mu = 16;
    Rng rng(h);
    const Hypertree ht = build_hypertree(h, mu, {}, &rng);
    const ConfigGraph cfg = ht.config();
    const auto labels = scheme.mark(cfg);
    const bool legal_ok = run_verifier(scheme, cfg, labels).accepted;

    // Lighten every 5th path and check rejection each time.
    bool all_rejected = true;
    for (std::size_t i = 0; i < ht.paths.size(); i += 5) {
      const Weight x = ht.level_x[ht.paths[i].level];
      const Hypertree lighter = with_path_weight(ht, i, x - 1);
      if (run_verifier(scheme, lighter.config(), labels).accepted) {
        all_rejected = false;
      }
    }

    std::size_t max_bits = 0;
    for (const Label& l : labels) max_bits = std::max(max_bits, l.size_bits());

    const auto row = lower_bound_row(h, mu);
    t.add_row({fmt(std::size_t(h)), fmt(std::size_t(mu)),
               fmt(std::size_t(ht.graph.num_vertices())),
               fmt(std::size_t(ht.graph.max_weight())),
               legal_ok ? "yes" : "NO", all_rejected ? "yes" : "NO",
               fmt(max_bits), fmt(row.log2_g, 1)});
  }
  t.print();

  std::printf("Counting floor sweep (recurrence g(h,mu)^2 >= mu*g(h-1,mu^2)):\n\n");
  Table t2({"h", "mu", "n", "log2 W", "floor bits", "floor/(log2n*log2W)"});
  for (const std::uint32_t h : {4u, 8u, 12u}) {
    for (const std::uint64_t mu : {16u, 1u << 10, 1u << 20}) {
      const auto row = lower_bound_row(h, mu);
      const double logn = std::log2(static_cast<double>(row.n));
      t2.add_row({fmt(std::size_t(h)), fmt(std::size_t(mu)), fmt(row.n),
                  fmt(row.log2_w, 1), fmt(row.min_label_bits, 1),
                  fmt(row.min_label_bits / (logn * row.log2_w), 3)});
    }
  }
  t2.print();

  std::printf("Cut-and-paste adversary (Lemma 4.3 executable):\n\n");
  Table t3({"scheme", "h", "mu", "collision", "forgery accepted",
            "label bits"});
  {
    const auto rep = cut_and_paste_attack(scheme, 3, 8);
    t3.add_row({"pi-mst", "3", "8", rep.collision_found ? "YES" : "no",
                rep.forgery_accepted ? "YES" : "no", fmt(rep.label_bits)});
  }
  {
    const QuantizedMstScheme lossy;
    const auto rep = cut_and_paste_attack(lossy, 3, 8);
    t3.add_row({"pi-mst-quantized", "3", "8",
                rep.collision_found ? "YES" : "no",
                rep.forgery_accepted ? "YES" : "no", fmt(rep.label_bits)});
  }
  t3.print();
  JsonReporter jrep("lower_bound");
  jrep.add_table("E8a: hypertree sanity + adversary floor", t);
  jrep.add_table("E8b: counting floor sweep", t2);
  jrep.add_table("E8c: cut-and-paste adversary", t3);
  jrep.write();
  std::printf(
      "Expected shape: pi-mst has no collisions (disjoint weight classes);\n"
      "the quantized scheme collides and the spliced non-MST is accepted —\n"
      "the mechanism behind the Omega(log n log W) bound.\n");
  return 0;
}
