// P2 — multi-process round exchange: per-round cost of the mp backend
// (forked workers, batched alltoallv label exchange over sockets) against
// the in-process SimNetwork, at n in {1e4, 1e5} and worker counts
// {1, 2, 4, 8}.
//
// This is a parity gate first and a benchmark second: for every measured
// point the mp round's messages, bits, verdict, rejector set and the
// verify.round ledger cell (the per-round label-size distribution) must
// EXACTLY equal the SimNetwork reference — the batched transport may
// change the framing, never the accounted protocol traffic.  Any mismatch
// fails the run.  Timing columns (round ms, speedup) stay advisory in the
// regression diff; the deterministic columns (messages, bits, wire
// payload bytes) are exact.
//
// Env knobs: MSTV_BENCH_MAX_N caps the largest graph (default 1e5);
// MSTV_BENCH_REPS is the per-point best-of repetition count (default 3).
// Emits BENCH_mp_rounds.json.
#include <algorithm>
#include <cstdlib>
#include <functional>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "obs/ledger.hpp"
#include "plscheme/mst_scheme.hpp"
#include "runtime/mp/mp_network.hpp"
#include "runtime/network.hpp"

using namespace mstv;
using namespace mstv::bench;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

double best_of(std::size_t reps, const std::function<void()>& f) {
  double best = 0.0;
  for (std::size_t i = 0; i < reps; ++i) {
    const double ms = time_ms(f);
    best = i == 0 ? ms : std::min(best, ms);
  }
  return best;
}

/// The round-0 verify.round cell of the current (freshly reset) ledger.
obs::LedgerCell round0_cell() {
  obs::LedgerCell out;
  for (const obs::LedgerEntry& e : obs::CommLedger::global().snapshot()) {
    if (e.key.phase == "verify.round" && e.key.round == 0) {
      out.merge(e.cell);
    }
  }
  return out;
}

}  // namespace

int main() {
  banner("P2", "multi-process round exchange (batched alltoallv)",
         "mp backend round cost and exact traffic parity vs SimNetwork");

  const std::size_t max_n = env_or("MSTV_BENCH_MAX_N", 100000);
  const std::size_t reps = env_or("MSTV_BENCH_REPS", 3);
  const MstScheme scheme;

  Table t({"n", "m", "backend", "workers", "reps", "round ms",
           "speedup vs sim", "round messages", "round bits",
           "wire payload bytes"});
  bool parity_ok = true;

  for (const std::size_t n : {std::size_t{10000}, std::size_t{100000}}) {
    if (n > max_n) continue;
    Rng rng(n);
    WeightOptions wo;
    wo.max_weight = 1u << 20;
    const Graph g = random_connected_graph(n, 2 * n, wo, rng);
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);

    obs::CommLedger::global().reset();
    SimNetwork sim(cfg, scheme);
    sim.install_marker_labels();
    const RoundStats sim_stats = sim.verification_round();
    const obs::LedgerCell sim_cell = round0_cell();
    const double sim_ms =
        best_of(reps, [&] { (void)sim.verification_round(); });
    t.add_row({fmt(n), fmt(g.num_edges()), "sim", "-", fmt(reps),
               fmt(sim_ms, 2), fmt(1.0, 2), fmt(sim_stats.messages),
               fmt(sim_stats.bits), fmt(std::size_t{0})});

    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      obs::CommLedger::global().reset();
      MpNetwork mp(cfg, scheme, workers);
      mp.install_marker_labels();
      const RoundStats mp_stats = mp.verification_round();
      const obs::LedgerCell mp_cell = round0_cell();

      // The hard gate: identical protocol traffic and verdict, and the
      // identical per-round ledger cell the bound auditor reads.
      if (mp_stats.messages != sim_stats.messages ||
          mp_stats.bits != sim_stats.bits ||
          mp_stats.accepted != sim_stats.accepted ||
          mp_stats.rejectors != sim_stats.rejectors) {
        std::printf("MP PARITY GATE FAILED: RoundStats mismatch at n=%zu "
                    "workers=%zu\n",
                    n, workers);
        parity_ok = false;
      }
#ifndef MSTV_OBS_DISABLED
      if (!(mp_cell == sim_cell)) {
        std::printf("MP PARITY GATE FAILED: ledger cell mismatch at n=%zu "
                    "workers=%zu\n",
                    n, workers);
        parity_ok = false;
      }
#else
      (void)mp_cell;
#endif

      const double mp_ms =
          best_of(reps, [&] { (void)mp.verification_round(); });
      t.add_row({fmt(n), fmt(g.num_edges()), "mp", fmt(workers), fmt(reps),
                 fmt(mp_ms, 2), fmt(mp_ms > 0 ? sim_ms / mp_ms : 0.0, 2),
                 fmt(mp_stats.messages), fmt(mp_stats.bits),
                 fmt(mp_stats.wire_payload_bytes)});
    }
  }
  t.print();

  JsonReporter rep("mp_rounds");
  rep.add_table("P2: mp round cost and traffic parity vs SimNetwork", t);
  rep.write();
  std::printf(
      "Expected shape: identical messages/bits on every row (the parity\n"
      "gate); wire payload bytes grow with the worker count as more edges\n"
      "cross shard boundaries.  Rounds pay real serialization + syscalls,\n"
      "so sim is faster at these sizes — the point of the mp backend is\n"
      "transport realism (real bytes, real process faults), priced here.\n");

  if (!parity_ok) return 1;
  std::printf("MP PARITY GATE PASSED\n");
  return 0;
}
