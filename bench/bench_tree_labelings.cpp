// E11 — the closing remark of Section 3: compact implicit + proof
// labeling schemes for distance and routing from the same machinery.
//
// Reports label sizes of the implicit distance/routing schemes and of
// their pi_Gamma-style verified versions (pi-distance / pi-routing), plus
// decode latencies — the cost of making tree routing tables
// self-stabilizing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "labeling/tree_labelings.hpp"
#include "plscheme/runner.hpp"
#include "plscheme/tree_proof_schemes.hpp"

using namespace mstv;

namespace {

ConfigGraph labeled_config(const Graph& g, const DistanceLabelingScheme& imp,
                           std::vector<State>& out_states) {
  const RootedTree tree(g, 0);
  const auto imps = imp.encode(tree);
  out_states.assign(g.num_vertices(), State{});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out_states[v].id = v;
    if (!tree.is_root(v)) out_states[v].parent_port = tree.parent_port(v);
    out_states[v].payload = imp.to_bits(imps[v]);
  }
  return ConfigGraph(g, out_states);
}

ConfigGraph labeled_config(const Graph& g, const RoutingLabelingScheme& imp,
                           std::vector<State>& out_states) {
  const RootedTree tree(g, 0);
  const auto imps = imp.encode(tree);
  out_states.assign(g.num_vertices(), State{});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out_states[v].id = v;
    if (!tree.is_root(v)) out_states[v].parent_port = tree.parent_port(v);
    out_states[v].payload = imp.to_bits(imps[v]);
  }
  return ConfigGraph(g, out_states);
}

void print_tables() {
  mstv::bench::banner(
      "E11", "distance & routing labelings (Section 3 closing remark)",
      "implicit label bits and verified-scheme proof bits per node on "
      "random trees, W = 2^16");

  mstv::bench::Table t({"n", "dist label (max bits)", "pi-distance proof",
                        "route label (max bits)", "pi-routing proof"});
  const DistanceLabelingScheme dist;
  const RoutingLabelingScheme route;
  const DistanceProofScheme pdist;
  const RoutingProofScheme proute;
  for (const std::size_t n : {256u, 4096u, 65536u}) {
    Rng rng(n);
    WeightOptions wo;
    wo.max_weight = 1u << 16;
    const Graph g = random_tree(n, wo, rng);
    const RootedTree tree(g, 0);

    std::size_t dbits = 0, rbits = 0;
    for (const auto& l : dist.encode(tree)) {
      dbits = std::max(dbits, dist.label_bits(l));
    }
    for (const auto& l : route.encode(tree)) {
      rbits = std::max(rbits, route.label_bits(l));
    }

    std::vector<State> sd, sr;
    const ConfigGraph dc = labeled_config(g, dist, sd);
    const ConfigGraph rc = labeled_config(g, route, sr);
    const auto rd = mark_and_verify(pdist, dc);
    const auto rr = mark_and_verify(proute, rc);
    if (!rd.accepted || !rr.accepted) {
      std::printf("VERIFICATION FAILED at n=%zu\n", n);
      std::exit(1);
    }
    t.add_row({mstv::bench::fmt(n), mstv::bench::fmt(dbits),
               mstv::bench::fmt(rd.max_label_bits), mstv::bench::fmt(rbits),
               mstv::bench::fmt(rr.max_label_bits)});
  }
  t.print();
  mstv::bench::JsonReporter rep("tree_labelings");
  rep.add_table("E11: distance/routing labels and proofs", t);
  rep.write();
  std::printf("Expected shape: proofs cost ~2-3x the implicit labels (the\n"
              "orientation flags + spanning-tree sublabel + state copy) and\n"
              "scale O(log n log(nW)) / O(log n log n) respectively.\n\n");
}

void BM_DecodeDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  WeightOptions wo;
  wo.max_weight = 1u << 16;
  const Graph g = random_tree(n, wo, rng);
  const RootedTree tree(g, 0);
  const DistanceLabelingScheme dist;
  const auto labels = dist.encode(tree);
  std::size_t i = 0;
  std::vector<VertexId> qu, qv;
  for (int k = 0; k < 1024; ++k) {
    qu.push_back(static_cast<VertexId>(rng.index(n)));
    qv.push_back(static_cast<VertexId>(rng.index(n)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist.decode(labels[qu[i & 1023]], labels[qv[i & 1023]]));
    ++i;
  }
}
BENCHMARK(BM_DecodeDistance)->Arg(1 << 10)->Arg(1 << 16);

void BM_DecodeRoute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  WeightOptions wo;
  const Graph g = random_tree(n, wo, rng);
  const RootedTree tree(g, 0);
  const RoutingLabelingScheme route;
  const auto labels = route.encode(tree);
  std::size_t i = 0;
  std::vector<VertexId> qu, qv;
  for (int k = 0; k < 1024; ++k) {
    const auto u = static_cast<VertexId>(rng.index(n));
    auto v = static_cast<VertexId>(rng.index(n));
    if (v == u) v = (v + 1) % static_cast<VertexId>(n);
    qu.push_back(u);
    qv.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        route.decode_route(labels[qu[i & 1023]], labels[qv[i & 1023]]));
    ++i;
  }
}
BENCHMARK(BM_DecodeRoute)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
