// E1a — Theorem 3.4 (upper bound), n-sweep.
//
// Regenerates the paper's headline size bound as a measured series: the
// maximum pi_mst label size over random connected graphs, as n doubles at
// fixed W.  The theorem predicts growth proportional to log n (W fixed),
// so the "bits / (log2 n * log2 W)" column should stay flat-to-falling.
#include <cmath>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

using namespace mstv;
using namespace mstv::bench;

int main() {
  banner("E1a", "Theorem 3.4: pi_mst size O(log n log W) — n sweep",
         "max/avg label bits of pi_mst on random connected graphs, "
         "avg degree ~4, W = 2^16");

  const Weight W = 1u << 16;
  const MstScheme scheme;
  Table t({"n", "m", "max bits", "avg bits", "log2n*log2W",
           "max/(log2n*log2W)"});
  for (std::size_t n = 64; n <= 65536; n *= 4) {
    Rng rng(n);
    WeightOptions wo;
    wo.max_weight = W;
    const Graph g = random_connected_graph(n, n, wo, rng);
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
    const auto r = mark_and_verify(scheme, cfg);
    if (!r.accepted) {
      std::printf("VERIFICATION FAILED at n=%zu\n", n);
      return 1;
    }
    const double denom = std::log2(static_cast<double>(n)) *
                         std::log2(static_cast<double>(W));
    t.add_row({fmt(n), fmt(g.num_edges()), fmt(r.max_label_bits),
               fmt(r.avg_label_bits(), 1), fmt(denom, 1),
               fmt(static_cast<double>(r.max_label_bits) / denom, 3)});
  }
  t.print();
  JsonReporter rep("label_size_n");
  rep.add_table("E1a: pi_mst label bits, n sweep", t);
  rep.write();
  std::printf("Expected shape: the last column stays bounded (no growth)\n"
              "as n rises 1024x — the O(log n log W) claim.\n");
  return 0;
}
