// S1 — compact label snapshot store vs the wire format (src/store/).
//
// Labels are write-once/read-millions, so the storage question is the
// read side: how many bytes does a stored label cost, and how fast does
// a cold process get from "file on disk" to "verifying"?  For each n
// this bench marks a random connected graph with pi-mst, then:
//
//   * serializes the labels through the wire format (labeling/wire.hpp,
//     u64-framed) and through a snapshot (store/snapshot.hpp,
//     bit-packed arena + Elias-gamma length directory), comparing
//     bytes/label — the snapshot must be STRICTLY smaller on every row
//     (the run exits nonzero otherwise, so the smoke ctest entry is a
//     regression gate for the succinct encoding);
//   * cold-opens the snapshot (mmap; header + checksum validation, no
//     per-label parsing) and times open and full block-decode
//     separately;
//   * cross-checks that verifying from the snapshot reproduces the
//     in-memory verifier's verdict and rejector set exactly (the
//     `match` column: 1 per row, enforced).
//
// Emits BENCH_label_store.json.  Env knobs: MSTV_BENCH_MAX_N caps the
// largest graph (the `ctest -L bench` smoke entry sets 20000; the
// acceptance-criteria row is n = 1e5).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <vector>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "labeling/wire.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "store/snapshot.hpp"

using namespace mstv;
using namespace mstv::bench;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

std::size_t wire_bytes(const std::vector<Label>& labels) {
  std::ostringstream os;
  write_labels(os, labels);
  return os.str().size();
}

}  // namespace

int main() {
  banner("S1", "label snapshot store (src/store/)",
         "bytes/label and cold-load time: snapshot vs wire format");

  const std::size_t max_n = env_or("MSTV_BENCH_MAX_N", 100000);
  const std::vector<std::size_t> sweep = {1000, 10000, 100000};
  const char* snap_path = "label_store_bench.snap";

  Table t({"n", "wire_bytes", "snap_bytes", "wire_bpl", "snap_bpl", "ratio",
           "load_us", "decode_ms", "verify_ms", "match"});
  const MstScheme scheme;
  bool fail = false;

  for (const std::size_t n : sweep) {
    if (n > max_n) continue;
    Rng rng(42);
    WeightOptions wo;
    wo.max_weight = 1u << 20;
    const Graph g = random_connected_graph(n, 2 * n, wo, rng);
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
    const auto labels = scheme.mark(cfg);

    const std::size_t wbytes = wire_bytes(labels);
    store::SnapshotMeta meta;
    meta.scheme = scheme.name();
    meta.graph_vertices = g.num_vertices();
    meta.graph_edges = g.num_edges();
    const std::uint64_t sbytes =
        store::write_snapshot_file(snap_path, labels, meta);

    // Cold load: open (validation only) timed apart from block decode.
    std::vector<Label> decoded;
    double load_us = 0.0;
    double decode_ms = 0.0;
    double verify_ms = 0.0;
    bool match = false;
    {
      std::optional<store::LabelStore> snap;
      load_us = 1000.0 *
                time_ms([&] { snap.emplace(store::LabelStore::open(snap_path)); });
      decode_ms = time_ms([&] { decoded = snap->decode_all(); });
      VerificationResult from_store;
      verify_ms =
          time_ms([&] { from_store = run_verifier(scheme, cfg, *snap); });
      const VerificationResult in_memory = run_verifier(scheme, cfg, labels);
      match = decoded.size() == labels.size() &&
              std::equal(decoded.begin(), decoded.end(), labels.begin()) &&
              from_store.accepted == in_memory.accepted &&
              from_store.rejecting == in_memory.rejecting;
    }

    const double wire_bpl =
        static_cast<double>(wbytes) / static_cast<double>(n);
    const double snap_bpl =
        static_cast<double>(sbytes) / static_cast<double>(n);
    if (!(snap_bpl < wire_bpl)) {
      std::printf("FAIL: snapshot bytes/label %.2f not below wire %.2f at "
                  "n=%zu\n",
                  snap_bpl, wire_bpl, n);
      fail = true;
    }
    if (!match) {
      std::printf("FAIL: snapshot-decoded labels or verdicts diverge from "
                  "in-memory at n=%zu\n",
                  n);
      fail = true;
    }
    t.add_row({fmt(n), fmt(wbytes), fmt(static_cast<std::size_t>(sbytes)),
               fmt(wire_bpl, 2), fmt(snap_bpl, 2),
               fmt(snap_bpl / wire_bpl, 3), fmt(load_us, 1),
               fmt(decode_ms, 2), fmt(verify_ms, 2),
               fmt(static_cast<std::size_t>(match ? 1 : 0))});
  }
  std::remove(snap_path);

  t.print();
  JsonReporter report("label_store");
  report.add_table("snapshot vs wire", t);
  if (!report.write()) {
    std::printf("FAIL: cannot write BENCH_label_store.json\n");
    fail = true;
  }
  if (fail) {
    std::printf("LABEL STORE GATE FAILED\n");
    return 1;
  }
  std::printf("snapshot bytes/label strictly below the wire encoding on "
              "every row; store verdicts match in-memory\n");
  return 0;
}
