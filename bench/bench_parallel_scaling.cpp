// P1 — parallel verification engine scaling: speedup of the sharded
// marker and verifier over the serial engine as a function of thread
// count, at n in {1e4, 1e5, 1e6} on random connected graphs.
//
// The determinism contract (docs/parallelism.md) says --threads may only
// change wall time, never results, so every run here also cross-checks
// the verdict against the single-thread reference.  Emits
// BENCH_parallel_scaling.json.
//
// Env knobs: MSTV_BENCH_MAX_N caps the largest graph (e.g. 100000 for a
// quick run on a laptop); MSTV_BENCH_REPS overrides the per-point best-of
// repetition count (default 3).
#include <algorithm>
#include <cstdlib>
#include <functional>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

using namespace mstv;
using namespace mstv::bench;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

double best_of(std::size_t reps, const std::function<void()>& f) {
  double best = 0.0;
  for (std::size_t i = 0; i < reps; ++i) {
    const double ms = time_ms(f);
    best = i == 0 ? ms : std::min(best, ms);
  }
  return best;
}

}  // namespace

int main() {
  banner("P1", "parallel verifier scaling (thread-pool sharded engine)",
         "speedup of marker + verifier vs --threads, n in {1e4, 1e5, 1e6}");

  const std::size_t max_n = env_or("MSTV_BENCH_MAX_N", 1000000);
  const std::size_t reps = env_or("MSTV_BENCH_REPS", 3);
  const MstScheme scheme;

  Table t({"n", "m", "threads", "mark ms", "verify ms", "mark speedup",
           "verify speedup"});
  for (const std::size_t n : {std::size_t{10000}, std::size_t{100000},
                              std::size_t{1000000}}) {
    if (n > max_n) continue;
    Rng rng(n);
    WeightOptions wo;
    wo.max_weight = 1u << 20;
    const Graph g = random_connected_graph(n, 2 * n, wo, rng);
    const auto mst = kruskal_mst(g);
    const ConfigGraph cfg = make_tree_config(g, mst, 0);

    double mark_serial_ms = 0.0, verify_serial_ms = 0.0;
    std::vector<VertexId> reference_rejecting;
    bool have_reference = false;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      parallel::set_thread_count(threads);

      std::vector<Label> labels;
      const double mark_ms =
          best_of(reps, [&] { labels = scheme.mark(cfg); });

      VerificationResult result;
      const double verify_ms =
          best_of(reps, [&] { result = run_verifier(scheme, cfg, labels); });
      if (!result.accepted) {
        std::printf("VERIFICATION FAILED at n=%zu threads=%zu\n", n, threads);
        return 1;
      }
      // Determinism cross-check against the single-thread reference.
      if (!have_reference) {
        reference_rejecting = result.rejecting;
        have_reference = true;
      } else if (result.rejecting != reference_rejecting) {
        std::printf("DETERMINISM VIOLATION at n=%zu threads=%zu\n", n,
                    threads);
        return 1;
      }

      if (threads == 1) {
        mark_serial_ms = mark_ms;
        verify_serial_ms = verify_ms;
      }
      t.add_row({fmt(n), fmt(g.num_edges()), fmt(threads), fmt(mark_ms, 1),
                 fmt(verify_ms, 1),
                 fmt(mark_ms > 0 ? mark_serial_ms / mark_ms : 0.0, 2),
                 fmt(verify_ms > 0 ? verify_serial_ms / verify_ms : 0.0, 2)});
    }
  }
  parallel::set_thread_count(0);
  t.print();

  JsonReporter rep("parallel_scaling");
  rep.add_table("P1: marker/verifier speedup vs thread count", t);
  rep.write();
  std::printf(
      "Expected shape: near-linear verifier speedup up to the physical core\n"
      "count (the verifier is embarrassingly parallel); marker speedup is\n"
      "bounded by its serial tree-decomposition prefix (Amdahl).  Identical\n"
      "verdicts at every thread count — the engine trades time, not\n"
      "answers.\n");
  return 0;
}
