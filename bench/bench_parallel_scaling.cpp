// P1 — parallel verification engine scaling: speedup of the sharded
// marker and verifier over the serial engine as a function of thread
// count, at n in {1e4, 1e5, 1e6, 1e7} on random connected graphs.
//
// The determinism contract (docs/parallelism.md) says --threads may only
// change wall time, never results, so every run here also cross-checks
// the verdict against the single-thread reference.  Emits
// BENCH_parallel_scaling.json.
//
// Each row also reports the process peak RSS (getrusage ru_maxrss) after
// that measurement, so memory growth across the size ladder is visible in
// the JSON next to the timings.
//
// Env knobs: MSTV_BENCH_MAX_N caps the largest graph (default 1e7; set
// e.g. 100000 for a quick laptop run); MSTV_BENCH_REPS overrides the
// per-point best-of repetition count
// (default 3); MSTV_BENCH_MIN_MARK_SPEEDUP turns the report into a gate —
// the run fails unless the n=1e5 mark speedup at 8 threads reaches the
// given value.  The gate self-skips (loudly, exit 0) on machines with
// fewer than 8 hardware threads, where the target is unmeasurable.
#include <sys/resource.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <thread>
#include <utility>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

using namespace mstv;
using namespace mstv::bench;

namespace {

constexpr std::size_t kGateN = 100000;       // the acceptance-point size
constexpr std::size_t kGateThreads = 8;      // ... and thread count

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

double best_of(std::size_t reps, const std::function<void()>& f) {
  double best = 0.0;
  for (std::size_t i = 0; i < reps; ++i) {
    const double ms = time_ms(f);
    best = i == 0 ? ms : std::min(best, ms);
  }
  return best;
}

/// Peak resident set of this process so far, in MB (ru_maxrss is KB on
/// Linux).  Monotone within a run, so per-row values show which point
/// drove the high-water mark.
double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

}  // namespace

int main() {
  banner("P1", "parallel verifier scaling (thread-pool sharded engine)",
         "speedup of marker + verifier vs --threads, n up to 1e7");

  const std::size_t max_n = env_or("MSTV_BENCH_MAX_N", 10000000);
  const std::size_t reps = env_or("MSTV_BENCH_REPS", 3);
  const char* min_speedup_env = std::getenv("MSTV_BENCH_MIN_MARK_SPEEDUP");
  const MstScheme scheme;

  // The serial reference for each measured point, keyed by (n, reps): a
  // speedup cell must always divide by a baseline taken at the same size
  // AND the same repetition discipline, so a reps override can never skew
  // the gate via warm-up variance.
  std::map<std::pair<std::size_t, std::size_t>, std::pair<double, double>>
      serial_ms;
  double gate_speedup = -1.0;  // n=1e5, 8 threads; -1 = not measured

  Table t({"n", "m", "threads", "reps", "mark ms", "verify ms",
           "mark speedup", "verify speedup", "peak rss mb"});
  for (const std::size_t n :
       {std::size_t{10000}, std::size_t{100000}, std::size_t{1000000},
        std::size_t{10000000}}) {
    if (n > max_n) continue;
    Rng rng(n);
    WeightOptions wo;
    wo.max_weight = 1u << 20;
    const Graph g = random_connected_graph(n, 2 * n, wo, rng);
    const auto mst = kruskal_mst(g);
    const ConfigGraph cfg = make_tree_config(g, mst, 0);

    std::vector<VertexId> reference_rejecting;
    bool have_reference = false;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      parallel::set_thread_count(threads);

      std::vector<Label> labels;
      const double mark_ms =
          best_of(reps, [&] { labels = scheme.mark(cfg); });

      VerificationResult result;
      const double verify_ms =
          best_of(reps, [&] { result = run_verifier(scheme, cfg, labels); });
      if (!result.accepted) {
        std::printf("VERIFICATION FAILED at n=%zu threads=%zu\n", n, threads);
        return 1;
      }
      // Determinism cross-check against the single-thread reference.
      if (!have_reference) {
        reference_rejecting = result.rejecting;
        have_reference = true;
      } else if (result.rejecting != reference_rejecting) {
        std::printf("DETERMINISM VIOLATION at n=%zu threads=%zu\n", n,
                    threads);
        return 1;
      }

      if (threads == 1) {
        serial_ms[{n, reps}] = {mark_ms, verify_ms};
      }
      const auto [mark_base, verify_base] = serial_ms.at({n, reps});
      const double mark_speedup = mark_ms > 0 ? mark_base / mark_ms : 0.0;
      if (n == kGateN && threads == kGateThreads) {
        gate_speedup = mark_speedup;
      }
      t.add_row({fmt(n), fmt(g.num_edges()), fmt(threads), fmt(reps),
                 fmt(mark_ms, 1), fmt(verify_ms, 1), fmt(mark_speedup, 2),
                 fmt(verify_ms > 0 ? verify_base / verify_ms : 0.0, 2),
                 fmt(peak_rss_mb(), 1)});
    }
  }
  parallel::set_thread_count(0);
  t.print();

  JsonReporter rep("parallel_scaling");
  rep.add_table("P1: marker/verifier speedup vs thread count", t);
  rep.write();
  std::printf(
      "Expected shape: near-linear verifier speedup up to the physical core\n"
      "count (the verifier is embarrassingly parallel); marker speedup now\n"
      "tracks it — the decomposition itself shards level-by-level, leaving\n"
      "only the O(log n) level barriers serial.  Identical verdicts at\n"
      "every thread count — the engine trades time, not answers.\n");

  if (min_speedup_env != nullptr) {
    const double min_speedup = std::strtod(min_speedup_env, nullptr);
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores < kGateThreads) {
      std::printf(
          "MARK SPEEDUP GATE SKIPPED: %u hardware threads < %zu — the\n"
          "%.2fx target is unmeasurable on this machine.\n",
          cores, kGateThreads, min_speedup);
      return 0;
    }
    if (gate_speedup < 0) {
      std::printf(
          "MARK SPEEDUP GATE FAILED: the n=%zu point was not measured\n"
          "(MSTV_BENCH_MAX_N too small?)\n",
          kGateN);
      return 1;
    }
    if (gate_speedup < min_speedup) {
      std::printf(
          "MARK SPEEDUP GATE FAILED: %.2fx at n=%zu threads=%zu, need "
          "%.2fx\n",
          gate_speedup, kGateN, kGateThreads, min_speedup);
      return 1;
    }
    std::printf("MARK SPEEDUP GATE PASSED: %.2fx >= %.2fx\n", gate_speedup,
                min_speedup);
  }
  return 0;
}
