// Shared helpers for the benchmark harness: a small fixed-width table
// printer (so every bench emits the same report style recorded in
// EXPERIMENTS.md), wall-clock timing, and a JsonReporter that writes each
// bench's tables plus the telemetry snapshot to BENCH_<name>.json — the
// machine-readable trail that lets perf trajectories be diffed across
// commits instead of eyeballed from text tables.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/export.hpp"

namespace mstv::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < width.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt(std::size_t v) { return std::to_string(v); }

template <typename F>
double time_ms(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

inline void banner(const char* exp_id, const char* paper_artifact,
                   const char* description) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", exp_id, paper_artifact);
  std::printf("%s\n", description);
  std::printf("==================================================================\n\n");
}

/// Collects a bench's tables (by reference to their already-measured rows —
/// no re-measuring) and writes BENCH_<name>.json:
///
///   { "bench": "<name>",
///     "tables": [ { "title": ..., "headers": [...], "rows": [[...]] } ],
///     "metrics": <obs snapshot JSON> }
///
/// Cells that parse as plain numbers are emitted as JSON numbers so the
/// file is directly loadable into analysis tooling.  Every string — the
/// bench name, table titles, headers and non-numeric cells — goes through
/// obs::json_escape (the one escaping helper shared with the telemetry
/// exporter), so names containing quotes/backslashes/control characters
/// still produce a valid document (tests/test_bench_json.cpp holds the
/// regression net).  The name is also used verbatim in the output file
/// name; keep it filesystem-friendly.
class JsonReporter {
 public:
  explicit JsonReporter(std::string name) : name_(std::move(name)) {}

  void add_table(std::string title, const Table& t) {
    tables_.push_back(Entry{std::move(title), t.headers(), t.rows()});
  }

  /// Writes BENCH_<name>.json in the working directory (or `path` if
  /// given).  Returns false if the file cannot be opened.
  bool write(const std::string& path = {}) const {
    const std::string file = path.empty() ? "BENCH_" + name_ + ".json" : path;
    std::ofstream out(file);
    if (!out) {
      std::fprintf(stderr, "JsonReporter: cannot open %s\n", file.c_str());
      return false;
    }
    out << "{\n  \"bench\": \"" << mstv::obs::json_escape(name_)
        << "\",\n  \"tables\": [";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      const Entry& e = tables_[i];
      out << (i ? "," : "") << "\n    {\"title\": \""
          << mstv::obs::json_escape(e.title) << "\", \"headers\": [";
      for (std::size_t c = 0; c < e.headers.size(); ++c) {
        out << (c ? ", " : "") << "\"" << mstv::obs::json_escape(e.headers[c])
            << "\"";
      }
      out << "], \"rows\": [";
      for (std::size_t r = 0; r < e.rows.size(); ++r) {
        out << (r ? ", " : "") << "[";
        for (std::size_t c = 0; c < e.rows[r].size(); ++c) {
          out << (c ? ", " : "") << cell_json(e.rows[r][c]);
        }
        out << "]";
      }
      out << "]}";
    }
    out << (tables_.empty() ? "" : "\n  ") << "],\n  \"metrics\": ";
    // Indent the snapshot so the composite document stays readable.
    const std::string metrics = mstv::obs::to_json(mstv::obs::capture());
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      out << metrics[i];
      if (metrics[i] == '\n' && i + 1 < metrics.size()) out << "  ";
    }
    out << "}\n";
    return true;
  }

 private:
  struct Entry {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  static std::string cell_json(const std::string& cell) {
    // Emit as a bare JSON number only for plain decimal literals (strtod
    // alone would also accept hex, inf and nan — all invalid JSON).
    const bool decimal_chars =
        !cell.empty() &&
        cell.find_first_not_of("0123456789+-.eE") == std::string::npos;
    if (decimal_chars) {
      char* end = nullptr;
      (void)std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() + cell.size()) return cell;
    }
    // Built with += rather than `"\"" + escape(...) + "\""`: the
    // operator+(const char*, string&&) form trips GCC 12's -Wrestrict
    // false positive (PR105651) at -O3.
    std::string quoted = "\"";
    quoted += mstv::obs::json_escape(cell);
    quoted += '"';
    return quoted;
  }

  std::string name_;
  std::vector<Entry> tables_;
};

}  // namespace mstv::bench
