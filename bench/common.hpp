// Shared helpers for the benchmark harness: a small fixed-width table
// printer (so every bench emits the same report style recorded in
// EXPERIMENTS.md) and wall-clock timing.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace mstv::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < width.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt(std::size_t v) { return std::to_string(v); }

template <typename F>
double time_ms(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

inline void banner(const char* exp_id, const char* paper_artifact,
                   const char* description) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", exp_id, paper_artifact);
  std::printf("%s\n", description);
  std::printf("==================================================================\n\n");
}

}  // namespace mstv::bench
