// E7 — relaxed sensitivity testing (Section 1.1 "Our results").
//
// Build cost of the auxiliary labels, per-query latency of the O(1)
// labeled oracle and of the distributed variant, against full brute-force
// recomputation per edge; plus the auxiliary-storage-vs-explicit-output
// accounting that motivates the relaxation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "sensitivity/sensitivity.hpp"
#include "util/bitstream.hpp"

using namespace mstv;

namespace {

Graph bench_graph(std::size_t n) {
  Rng rng(n);
  WeightOptions wo;
  wo.max_weight = 1u << 24;
  wo.distinct = true;
  return random_connected_graph(n, 2 * n, wo, rng);
}

void BM_OracleQuery(benchmark::State& state) {
  const Graph g = bench_graph(static_cast<std::size_t>(state.range(0)));
  const SensitivityOracle oracle(g, kruskal_mst(g));
  EdgeId e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.query(e));
    e = (e + 1) % static_cast<EdgeId>(g.num_edges());
  }
}
BENCHMARK(BM_OracleQuery)->Arg(1 << 10)->Arg(1 << 14);

void BM_DistributedQuery(benchmark::State& state) {
  const Graph g = bench_graph(static_cast<std::size_t>(state.range(0)));
  const DistributedSensitivity dist(g, kruskal_mst(g));
  EdgeId e = 0;
  for (auto _ : state) {
    const Edge& ed = g.edge(e);
    const auto port = g.find_port(ed.u, ed.v);
    benchmark::DoNotOptimize(dist.query(ed.u, *port));
    e = (e + 1) % static_cast<EdgeId>(g.num_edges());
  }
}
BENCHMARK(BM_DistributedQuery)->Arg(1 << 10)->Arg(1 << 14);

void BM_BruteForcePerEdge(benchmark::State& state) {
  const Graph g = bench_graph(static_cast<std::size_t>(state.range(0)));
  const auto mst = kruskal_mst(g);
  EdgeId e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(brute_force_sensitivity(g, mst, e));
    e = (e + 1) % static_cast<EdgeId>(g.num_edges());
  }
}
BENCHMARK(BM_BruteForcePerEdge)->Arg(1 << 10);

void print_storage_table() {
  mstv::bench::banner(
      "E7", "relaxed sensitivity testing",
      "auxiliary label storage vs the Omega(|E| log W) explicit output; "
      "build time; query latencies below (google-benchmark)");
  mstv::bench::Table t({"n", "m", "aux bits", "explicit-output bits",
                        "aux/explicit", "build ms"});
  for (const std::size_t n : {1024u, 4096u, 16384u}) {
    const Graph g = bench_graph(n);
    const auto mst = kruskal_mst(g);
    double build_ms = 0;
    std::size_t aux = 0;
    {
      const double ms = mstv::bench::time_ms([&] {
        const SensitivityOracle oracle(g, mst);
        aux = oracle.auxiliary_bits();
      });
      build_ms = ms;
    }
    // Explicit output: one log W-sized tolerance per edge.
    std::size_t explicit_bits = 0;
    {
      const SensitivityOracle oracle(g, mst);
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const auto s = oracle.query(e);
        explicit_bits += 1 + (s.tolerance ? gamma0_cost_bits(*s.tolerance) : 0);
      }
    }
    t.add_row({mstv::bench::fmt(n), mstv::bench::fmt(g.num_edges()),
               mstv::bench::fmt(aux), mstv::bench::fmt(explicit_bits),
               mstv::bench::fmt(static_cast<double>(aux) /
                                    static_cast<double>(explicit_bits),
                                2),
               mstv::bench::fmt(build_ms, 1)});
  }
  t.print();
  mstv::bench::JsonReporter rep("sensitivity");
  rep.add_table("E7: sensitivity aux storage vs explicit output", t);
  rep.write();
}

}  // namespace

int main(int argc, char** argv) {
  print_storage_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
