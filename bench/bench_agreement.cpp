// E9 — Lemma 2.2: the Agreement problem has proof size Theta(m).
//
// Upper bound measured directly (the scheme copies the m-bit state); the
// matching lower-bound mechanism is demonstrated by counting how many
// label pairs a 2-node instance can distinguish.
#include <cstdio>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "plscheme/agreement_scheme.hpp"
#include "plscheme/runner.hpp"

using namespace mstv;
using namespace mstv::bench;

int main() {
  banner("E9", "Lemma 2.2: Agreement proof size Theta(m)",
         "measured label size of the copy scheme as the state width m "
         "grows; ring of 64 nodes");

  Rng rng(9);
  WeightOptions wo;
  const Graph g = ring_graph(64, wo, rng);
  const AgreementScheme scheme;

  Table t({"m (state bits)", "max label bits", "label/m"});
  for (int m = 4; m <= 1 << 20; m *= 8) {
    std::vector<State> states(g.num_vertices());
    BitWriter w;
    Rng content(static_cast<std::uint64_t>(m));
    for (int i = 0; i < m; ++i) w.write_bit(content.chance(0.5));
    const Label payload(w);
    for (auto& s : states) s.payload = payload;
    const ConfigGraph cfg(g, std::move(states));
    const auto r = mark_and_verify(scheme, cfg);
    if (!r.accepted) {
      std::printf("VERIFICATION FAILED at m=%d\n", m);
      return 1;
    }
    t.add_row({fmt(std::size_t(m)), fmt(r.max_label_bits),
               fmt(static_cast<double>(r.max_label_bits) / m, 3)});
  }
  t.print();
  JsonReporter rep("agreement");
  rep.add_table("E10: agreement scheme Theta(m)", t);
  rep.write();
  std::printf("Expected shape: label size tracks m exactly (ratio 1.0) —\n"
              "the Theta(m) bound of the lemma.\n");
  return 0;
}
