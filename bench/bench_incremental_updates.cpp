// D1 — incremental label repair vs full re-mark (src/dynamic/).
//
// Measures how much of the marker's work an IncrementalMarker avoids when
// a verified (configuration, labels) pair absorbs an edge update, across
// update types and n up to 1e6 on random connected graphs.  Two tables:
//
//   1. Single tree-edge weight decrease vs n — the headline locality
//      claim: avg labels repaired must be >= 10x smaller than a full
//      re-mark at n = 1e5 (the run exits nonzero otherwise, so the smoke
//      ctest entry doubles as a regression gate).
//   2. Update-type sweep at one fixed n — weight decrease / increase,
//      non-tree re-weight, insert, delete — showing which kinds are
//      label-free, which are localized, and which go structural.
//
// Every repaired label set is cross-checked for bit-identity against a
// from-scratch mark() (the contract in src/dynamic/incremental.hpp), so
// the numbers can't come from an under-repairing marker.  Emits
// BENCH_incremental_updates.json.
//
// Env knobs: MSTV_BENCH_MAX_N caps the largest graph (the `ctest -L
// bench` smoke entry sets 1e5); MSTV_BENCH_UPDATES overrides the
// per-point update count (default 32).
#include <cstdlib>
#include <unordered_set>

#include "bench/common.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

using namespace mstv;
using namespace mstv::bench;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

// A marker plus the pieces the update generators need.
struct World {
  Graph g;
  std::vector<EdgeId> mst;
  std::unique_ptr<IncrementalMarker> marker;
};

World make_world(std::size_t n, Rng& rng, const MstScheme& scheme) {
  WeightOptions wo;
  wo.max_weight = 1u << 20;
  World w{random_connected_graph(n, 2 * n, wo, rng), {}, nullptr};
  w.mst = kruskal_mst(w.g);
  w.marker = std::make_unique<IncrementalMarker>(scheme, w.g, w.mst, 0);
  return w;
}

// Random tree edge of the marker's CURRENT tree, as endpoint pair + weight.
struct TreeEdge {
  VertexId u, v;
  Weight w;
};

TreeEdge random_tree_edge(const IncrementalMarker& m, Rng& rng) {
  const RootedTree& t = m.tree();
  VertexId v;
  do {
    v = static_cast<VertexId>(rng.index(m.graph().num_vertices()));
  } while (v == m.root());
  return {v, t.parent(v), t.parent_weight(v)};
}

EdgeId random_non_tree_edge(const IncrementalMarker& m, Rng& rng) {
  std::unordered_set<EdgeId> in_tree;
  for (VertexId v = 0; v < m.graph().num_vertices(); ++v) {
    if (v != m.root()) in_tree.insert(m.tree().parent_edge(v));
  }
  EdgeId e;
  do {
    e = static_cast<EdgeId>(rng.index(m.graph().num_edges()));
  } while (in_tree.count(e) != 0);
  return e;
}

// Asserts the post-update labels are bit-identical to a fresh mark().
bool check_equivalence(const MstScheme& scheme, const IncrementalMarker& m) {
  const auto fresh = scheme.mark(m.config());
  if (fresh.size() != m.labels().size()) return false;
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    if (!(fresh[v] == m.labels()[v])) return false;
  }
  return true;
}

struct Accum {
  std::size_t updates = 0;
  std::size_t labels = 0;
  std::size_t structural = 0;
  std::size_t full_remarks = 0;
  double ms = 0.0;

  void take(const RepairStats& s, double elapsed_ms) {
    ++updates;
    labels += s.labels_repaired;
    structural += s.structural_change ? 1 : 0;
    full_remarks += s.full_remark ? 1 : 0;
    ms += elapsed_ms;
  }
  [[nodiscard]] double avg_labels() const {
    return updates
               ? static_cast<double>(labels) / static_cast<double>(updates)
               : 0.0;
  }
  [[nodiscard]] double avg_ms() const {
    return updates ? ms / static_cast<double>(updates) : 0.0;
  }
};

// Applies `count` updates drawn by `draw`, timing each apply().  Every
// 8th update (and the last) is cross-checked against a fresh mark.
template <typename Draw>
Accum run_updates(const MstScheme& scheme, IncrementalMarker& m,
                  std::size_t count, Rng& rng, Draw&& draw) {
  Accum acc;
  while (acc.updates < count) {
    const EdgeUpdate up = draw(m, rng);
    RepairStats stats;
    const double ms = time_ms([&] { stats = m.apply(up); });
    acc.take(stats, ms);
    if (acc.updates % 8 == 0 || acc.updates == count) {
      if (!check_equivalence(scheme, m)) {
        std::printf("EQUIVALENCE VIOLATION (labels differ from fresh mark)\n");
        std::exit(1);
      }
    }
  }
  return acc;
}

EdgeUpdate draw_tree_decrease(const IncrementalMarker& m, Rng& rng) {
  TreeEdge e = random_tree_edge(m, rng);
  while (e.w <= 1) e = random_tree_edge(m, rng);
  const auto neww = static_cast<Weight>(e.w - 1 - rng.index(e.w - 1));
  return EdgeUpdate::weight_change(e.u, e.v, neww);
}

EdgeUpdate draw_tree_increase(const IncrementalMarker& m, Rng& rng) {
  const TreeEdge e = random_tree_edge(m, rng);
  const auto neww = static_cast<Weight>(e.w + 1 + rng.index(1u << 10));
  return EdgeUpdate::weight_change(e.u, e.v, neww);
}

EdgeUpdate draw_non_tree_reweight(const IncrementalMarker& m, Rng& rng) {
  const EdgeId e = random_non_tree_edge(m, rng);
  const Edge& edge = m.graph().edge(e);
  // Re-weight upward: stays a non-tree edge, never triggers a swap.
  const auto neww = static_cast<Weight>(edge.w + 1 + rng.index(1u << 10));
  return EdgeUpdate::weight_change(edge.u, edge.v, neww);
}

}  // namespace

int main() {
  banner("D1", "incremental label repair (dynamic edge updates, Sec. 3 marker)",
         "labels repaired by IncrementalMarker vs full re-mark, per update "
         "type and n");

  const std::size_t max_n = env_or("MSTV_BENCH_MAX_N", 1000000);
  const std::size_t updates = env_or("MSTV_BENCH_UPDATES", 32);
  const MstScheme scheme;
  bool gate_checked = false;
  bool gate_ok = true;

  // Table 1: the locality claim — single tree-edge weight decrease vs n.
  Table t1({"n", "updates", "avg labels repaired", "labels full re-mark",
            "repair factor", "avg repair ms", "full re-mark ms"});
  for (const std::size_t n : {std::size_t{10000}, std::size_t{100000},
                              std::size_t{1000000}}) {
    if (n > max_n) continue;
    Rng rng(n + 17);
    World w = make_world(n, rng, scheme);

    std::vector<Label> fresh;
    const double full_ms =
        time_ms([&] { fresh = scheme.mark(w.marker->config()); });

    const Accum acc =
        run_updates(scheme, *w.marker, updates, rng, draw_tree_decrease);
    const double factor =
        acc.avg_labels() > 0 ? static_cast<double>(n) / acc.avg_labels() : 0.0;
    t1.add_row({fmt(n), fmt(acc.updates), fmt(acc.avg_labels(), 1), fmt(n),
                fmt(factor, 1), fmt(acc.avg_ms(), 2), fmt(full_ms, 1)});

    // Regression gate: at n = 1e5 a single-edge weight update must repair
    // at least 10x fewer labels than a full re-mark.
    if (n == 100000) {
      gate_checked = true;
      gate_ok = factor >= 10.0;
    }
  }
  std::printf("Table 1: tree-edge weight decrease — repair vs full re-mark\n");
  t1.print();

  // Table 2: update-type sweep at one fixed n.
  const std::size_t sweep_n = std::min<std::size_t>(max_n, 100000);
  Table t2({"update type", "updates", "avg labels repaired", "structural",
            "full remarks", "avg repair ms"});
  {
    Rng rng(sweep_n + 41);
    World w = make_world(sweep_n, rng, scheme);
    const auto row = [&](const char* name, const Accum& a) {
      t2.add_row({name, fmt(a.updates), fmt(a.avg_labels(), 1),
                  fmt(a.structural), fmt(a.full_remarks), fmt(a.avg_ms(), 2)});
    };
    row("tree weight decrease",
        run_updates(scheme, *w.marker, updates, rng, draw_tree_decrease));
    row("tree weight increase (may swap)",
        run_updates(scheme, *w.marker, updates, rng, draw_tree_increase));
    row("non-tree re-weight",
        run_updates(scheme, *w.marker, updates, rng, draw_non_tree_reweight));
    // Insert a fresh heavy edge, then delete it again: both directions of
    // non-tree structural churn.  Labels are port-free, so both repair 0.
    Accum ins, del;
    for (std::size_t i = 0; i < updates; ++i) {
      VertexId a, b;
      do {
        a = static_cast<VertexId>(rng.index(sweep_n));
        b = static_cast<VertexId>(rng.index(sweep_n));
      } while (a == b || w.marker->graph().find_edge(a, b).has_value());
      const auto heavy =
          static_cast<Weight>(w.marker->graph().max_weight() + 1);
      RepairStats s;
      double ms = time_ms(
          [&] { s = w.marker->apply(EdgeUpdate::insert(a, b, heavy)); });
      ins.take(s, ms);
      ms = time_ms([&] { s = w.marker->apply(EdgeUpdate::erase(a, b)); });
      del.take(s, ms);
    }
    if (!check_equivalence(scheme, *w.marker)) {
      std::printf("EQUIVALENCE VIOLATION after insert/delete churn\n");
      return 1;
    }
    row("insert non-tree edge", ins);
    row("delete non-tree edge", del);
  }
  std::printf("Table 2: update-type sweep at n=%zu\n", sweep_n);
  t2.print();

  JsonReporter rep("incremental_updates");
  rep.add_table("D1a: tree-edge weight decrease, repair vs full re-mark", t1);
  rep.add_table("D1b: update-type sweep", t2);
  rep.write();

  std::printf(
      "Expected shape: repaired labels per weight update grow with the\n"
      "dirty separator components (polylog-ish for random graphs), not\n"
      "with n; non-tree churn repairs zero labels because labels are\n"
      "port-free; tree swaps go structural and repair the diff.\n");

  if (gate_checked && !gate_ok) {
    std::printf(
        "GATE FAILED: repair factor at n=1e5 fell below 10x full re-mark\n");
    return 1;
  }
  if (!gate_checked) {
    std::printf("note: n=1e5 gate skipped (MSTV_BENCH_MAX_N below 1e5)\n");
  }
  return 0;
}
