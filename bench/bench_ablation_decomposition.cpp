// E10 (ablation) — why gamma_small needs BOTH ingredients of Lemma 3.2.
//
// The scheme's size rests on (a) a *perfect* separator decomposition
// (depth <= log2 n + 1) and (b) size-ranked, gamma-coded subtree numbers
// (the telescoping E_sep).  This ablation knocks each ingredient out:
//
//   * random member of Gamma  — random separators (depth can be Theta(n))
//     with the telescoping coding kept,
//   * fixed-width coding      — perfect decomposition, naive E_sep,
//   * both knocked out        — random separators, fixed-width coding.
//
// The family-wide decoder stays correct in all four cells (Claim 3.1 —
// verified on the fly); only the sizes differ, isolating where the
// O(log n log W) comes from.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "labeling/extrema_labeling.hpp"
#include "tree/path_queries.hpp"

using namespace mstv;
using namespace mstv::bench;

namespace {

std::size_t max_bits(const ExtremaLabelingScheme& scheme,
                     const RootedTree& tree,
                     const SeparatorDecomposition& sd) {
  std::size_t mx = 0;
  for (const auto& l : scheme.encode(tree, sd)) {
    mx = std::max(mx, scheme.label_bits(l));
  }
  return mx;
}

}  // namespace

int main() {
  banner("E10", "ablation: perfect decomposition x telescoping coding",
         "max MAX-label bits on random trees, W = 2^16; decoder checked "
         "correct in every cell");

  const ExtremaLabelingScheme tele(ExtremaKind::Max, SepCoding::Telescoping);
  const ExtremaLabelingScheme fixed(ExtremaKind::Max, SepCoding::FixedWidth);

  Table t({"n", "perfect+tele (gamma_small)", "perfect+fixed",
           "random+tele", "random+fixed", "worst/best"});
  for (const std::size_t n : {256u, 1024u, 4096u}) {
    Rng rng(n);
    WeightOptions wo;
    wo.max_weight = 1u << 16;
    const Graph g = random_tree(n, wo, rng);
    const RootedTree tree(g, 0);
    const auto perfect = perfect_separator_decomposition(tree);
    const auto random = random_separator_decomposition(tree, rng);

    // Claim 3.1 spot check on the random member.
    {
      const TreePathQueries q(tree);
      const auto labels = tele.encode(tree, random);
      for (int i = 0; i < 64; ++i) {
        const auto u = static_cast<VertexId>(rng.index(n));
        const auto v = static_cast<VertexId>(rng.index(n));
        if (tele.decode(labels[u], labels[v]) != q.path_max(u, v)) {
          std::printf("DECODER BROKEN on the random member\n");
          return 1;
        }
      }
    }

    const std::size_t pt = max_bits(tele, tree, perfect);
    const std::size_t pf = max_bits(fixed, tree, perfect);
    const std::size_t rt = max_bits(tele, tree, random);
    const std::size_t rf = max_bits(fixed, tree, random);
    t.add_row({fmt(n), fmt(pt), fmt(pf), fmt(rt), fmt(rf),
               fmt(static_cast<double>(std::max({pf, rt, rf})) /
                       static_cast<double>(pt),
                   1)});
  }
  t.print();
  JsonReporter rep("ablation_decomposition");
  rep.add_table("E5: decomposition/coding ablation", t);
  rep.write();
  std::printf(
      "Expected shape: gamma_small (perfect+telescoping) is the smallest\n"
      "cell; random separators blow the level count up to Theta(sqrt n)-ish\n"
      "on random trees (Theta(n) worst case), dominating everything else —\n"
      "the perfect decomposition is the load-bearing ingredient, the\n"
      "telescoping coding shaves the remaining log factor.\n");
  return 0;
}
