// E4 — the FLOW byproduct (remark after Lemma 3.2): an implicit FLOW
// labeling scheme of size O(log n log W), improving the previously known
// O(log^2 n + log n log W) of [KKKP04].
//
// Same measurement as E2, but for the standalone implicit scheme: the
// Min-instantiated gamma_small against the fixed-width baseline, plus a
// correctness spot-check against the path oracle.
#include <cmath>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "labeling/extrema_labeling.hpp"
#include "tree/path_queries.hpp"

using namespace mstv;
using namespace mstv::bench;

int main() {
  banner("E4", "FLOW labeling: gamma_small(Min) vs prior size shape",
         "max bits per label on random trees; 'ours' telescoping vs "
         "'naive' fixed-width, plus decode correctness spot checks");

  const ExtremaLabelingScheme ours(ExtremaKind::Min, SepCoding::Telescoping);
  const ExtremaLabelingScheme naive(ExtremaKind::Min, SepCoding::FixedWidth);

  Table t({"n", "W", "ours (bits)", "naive (bits)", "naive/ours"});
  for (const std::size_t n : {256u, 4096u, 65536u}) {
    for (const int wexp : {2, 16, 40}) {
      Rng rng(n + static_cast<std::uint64_t>(wexp));
      WeightOptions wo;
      wo.max_weight = Weight{1} << wexp;
      const Graph g = random_tree(n, wo, rng);
      const RootedTree tree(g, 0);
      const auto sd = perfect_separator_decomposition(tree);
      const auto lo = ours.encode(tree, sd);
      const auto ln = naive.encode(tree, sd);

      std::size_t mo = 0, mn = 0;
      for (VertexId v = 0; v < tree.size(); ++v) {
        mo = std::max(mo, ours.label_bits(lo[v]));
        mn = std::max(mn, naive.label_bits(ln[v]));
      }
      // Correctness spot-check on 64 random pairs.
      const TreePathQueries q(tree);
      for (int i = 0; i < 64; ++i) {
        const auto u = static_cast<VertexId>(rng.index(n));
        const auto v = static_cast<VertexId>(rng.index(n));
        if (ours.decode(lo[u], lo[v]) != q.path_min(u, v)) {
          std::printf("FLOW DECODE MISMATCH at n=%zu\n", n);
          return 1;
        }
      }
      t.add_row({fmt(n), "2^" + std::to_string(wexp), fmt(mo), fmt(mn),
                 fmt(static_cast<double>(mn) / static_cast<double>(mo), 2)});
    }
  }
  t.print();
  JsonReporter rep("flow_labeling");
  rep.add_table("E4: FLOW labeling vs naive", t);
  rep.write();
  std::printf("Expected shape: same separation pattern as E2 — the log^2 n\n"
              "term of the prior FLOW schemes disappears.\n");
  return 0;
}
