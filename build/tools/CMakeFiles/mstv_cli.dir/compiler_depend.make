# Empty compiler generated dependencies file for mstv_cli.
# This may be replaced when dependencies are built.
