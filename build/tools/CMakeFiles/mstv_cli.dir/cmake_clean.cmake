file(REMOVE_RECURSE
  "CMakeFiles/mstv_cli.dir/mstv_cli.cpp.o"
  "CMakeFiles/mstv_cli.dir/mstv_cli.cpp.o.d"
  "mstv"
  "mstv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mstv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
