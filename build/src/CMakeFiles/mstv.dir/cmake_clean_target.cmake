file(REMOVE_RECURSE
  "libmstv.a"
)
