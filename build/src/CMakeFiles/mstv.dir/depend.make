# Empty dependencies file for mstv.
# This may be replaced when dependencies are built.
