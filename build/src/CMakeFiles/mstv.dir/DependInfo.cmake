
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/mstv.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/mstv.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/mstv.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/graph/io.cpp.o.d"
  "/root/repo/src/labeling/extrema_labeling.cpp" "src/CMakeFiles/mstv.dir/labeling/extrema_labeling.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/labeling/extrema_labeling.cpp.o.d"
  "/root/repo/src/labeling/label.cpp" "src/CMakeFiles/mstv.dir/labeling/label.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/labeling/label.cpp.o.d"
  "/root/repo/src/labeling/tree_labelings.cpp" "src/CMakeFiles/mstv.dir/labeling/tree_labelings.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/labeling/tree_labelings.cpp.o.d"
  "/root/repo/src/labeling/wire.cpp" "src/CMakeFiles/mstv.dir/labeling/wire.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/labeling/wire.cpp.o.d"
  "/root/repo/src/lowerbound/attack.cpp" "src/CMakeFiles/mstv.dir/lowerbound/attack.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/lowerbound/attack.cpp.o.d"
  "/root/repo/src/lowerbound/counting.cpp" "src/CMakeFiles/mstv.dir/lowerbound/counting.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/lowerbound/counting.cpp.o.d"
  "/root/repo/src/lowerbound/hypertree.cpp" "src/CMakeFiles/mstv.dir/lowerbound/hypertree.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/lowerbound/hypertree.cpp.o.d"
  "/root/repo/src/mst/algorithms.cpp" "src/CMakeFiles/mstv.dir/mst/algorithms.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/mst/algorithms.cpp.o.d"
  "/root/repo/src/mst/offline_verify.cpp" "src/CMakeFiles/mstv.dir/mst/offline_verify.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/mst/offline_verify.cpp.o.d"
  "/root/repo/src/mst/predicates.cpp" "src/CMakeFiles/mstv.dir/mst/predicates.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/mst/predicates.cpp.o.d"
  "/root/repo/src/mst/union_find.cpp" "src/CMakeFiles/mstv.dir/mst/union_find.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/mst/union_find.cpp.o.d"
  "/root/repo/src/plscheme/agreement_scheme.cpp" "src/CMakeFiles/mstv.dir/plscheme/agreement_scheme.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/plscheme/agreement_scheme.cpp.o.d"
  "/root/repo/src/plscheme/config_graph.cpp" "src/CMakeFiles/mstv.dir/plscheme/config_graph.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/plscheme/config_graph.cpp.o.d"
  "/root/repo/src/plscheme/fragment_scheme.cpp" "src/CMakeFiles/mstv.dir/plscheme/fragment_scheme.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/plscheme/fragment_scheme.cpp.o.d"
  "/root/repo/src/plscheme/gamma_scheme.cpp" "src/CMakeFiles/mstv.dir/plscheme/gamma_scheme.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/plscheme/gamma_scheme.cpp.o.d"
  "/root/repo/src/plscheme/mst_scheme.cpp" "src/CMakeFiles/mstv.dir/plscheme/mst_scheme.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/plscheme/mst_scheme.cpp.o.d"
  "/root/repo/src/plscheme/runner.cpp" "src/CMakeFiles/mstv.dir/plscheme/runner.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/plscheme/runner.cpp.o.d"
  "/root/repo/src/plscheme/spanning_tree_scheme.cpp" "src/CMakeFiles/mstv.dir/plscheme/spanning_tree_scheme.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/plscheme/spanning_tree_scheme.cpp.o.d"
  "/root/repo/src/plscheme/tree_proof_schemes.cpp" "src/CMakeFiles/mstv.dir/plscheme/tree_proof_schemes.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/plscheme/tree_proof_schemes.cpp.o.d"
  "/root/repo/src/runtime/async_network.cpp" "src/CMakeFiles/mstv.dir/runtime/async_network.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/runtime/async_network.cpp.o.d"
  "/root/repo/src/runtime/boruvka_sim.cpp" "src/CMakeFiles/mstv.dir/runtime/boruvka_sim.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/runtime/boruvka_sim.cpp.o.d"
  "/root/repo/src/runtime/network.cpp" "src/CMakeFiles/mstv.dir/runtime/network.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/runtime/network.cpp.o.d"
  "/root/repo/src/runtime/self_stabilization.cpp" "src/CMakeFiles/mstv.dir/runtime/self_stabilization.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/runtime/self_stabilization.cpp.o.d"
  "/root/repo/src/sensitivity/sensitivity.cpp" "src/CMakeFiles/mstv.dir/sensitivity/sensitivity.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/sensitivity/sensitivity.cpp.o.d"
  "/root/repo/src/tree/centroid.cpp" "src/CMakeFiles/mstv.dir/tree/centroid.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/tree/centroid.cpp.o.d"
  "/root/repo/src/tree/path_queries.cpp" "src/CMakeFiles/mstv.dir/tree/path_queries.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/tree/path_queries.cpp.o.d"
  "/root/repo/src/tree/rooted_tree.cpp" "src/CMakeFiles/mstv.dir/tree/rooted_tree.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/tree/rooted_tree.cpp.o.d"
  "/root/repo/src/util/bitstream.cpp" "src/CMakeFiles/mstv.dir/util/bitstream.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/util/bitstream.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/mstv.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/mstv.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
