
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agreement_scheme.cpp" "tests/CMakeFiles/mstv_tests.dir/test_agreement_scheme.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_agreement_scheme.cpp.o.d"
  "/root/repo/tests/test_async_network.cpp" "tests/CMakeFiles/mstv_tests.dir/test_async_network.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_async_network.cpp.o.d"
  "/root/repo/tests/test_attack.cpp" "tests/CMakeFiles/mstv_tests.dir/test_attack.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_attack.cpp.o.d"
  "/root/repo/tests/test_bitstream.cpp" "tests/CMakeFiles/mstv_tests.dir/test_bitstream.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_bitstream.cpp.o.d"
  "/root/repo/tests/test_boruvka_sim.cpp" "tests/CMakeFiles/mstv_tests.dir/test_boruvka_sim.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_boruvka_sim.cpp.o.d"
  "/root/repo/tests/test_centroid.cpp" "tests/CMakeFiles/mstv_tests.dir/test_centroid.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_centroid.cpp.o.d"
  "/root/repo/tests/test_config_graph.cpp" "tests/CMakeFiles/mstv_tests.dir/test_config_graph.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_config_graph.cpp.o.d"
  "/root/repo/tests/test_counting.cpp" "tests/CMakeFiles/mstv_tests.dir/test_counting.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_counting.cpp.o.d"
  "/root/repo/tests/test_exhaustive.cpp" "tests/CMakeFiles/mstv_tests.dir/test_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_exhaustive.cpp.o.d"
  "/root/repo/tests/test_extrema_labeling.cpp" "tests/CMakeFiles/mstv_tests.dir/test_extrema_labeling.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_extrema_labeling.cpp.o.d"
  "/root/repo/tests/test_fragment_scheme.cpp" "tests/CMakeFiles/mstv_tests.dir/test_fragment_scheme.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_fragment_scheme.cpp.o.d"
  "/root/repo/tests/test_gamma_scheme.cpp" "tests/CMakeFiles/mstv_tests.dir/test_gamma_scheme.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_gamma_scheme.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/mstv_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/mstv_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_hypertree.cpp" "tests/CMakeFiles/mstv_tests.dir/test_hypertree.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_hypertree.cpp.o.d"
  "/root/repo/tests/test_label.cpp" "tests/CMakeFiles/mstv_tests.dir/test_label.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_label.cpp.o.d"
  "/root/repo/tests/test_mst_algorithms.cpp" "tests/CMakeFiles/mstv_tests.dir/test_mst_algorithms.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_mst_algorithms.cpp.o.d"
  "/root/repo/tests/test_mst_scheme.cpp" "tests/CMakeFiles/mstv_tests.dir/test_mst_scheme.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_mst_scheme.cpp.o.d"
  "/root/repo/tests/test_mst_scheme_soundness.cpp" "tests/CMakeFiles/mstv_tests.dir/test_mst_scheme_soundness.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_mst_scheme_soundness.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/mstv_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_offline_verify.cpp" "tests/CMakeFiles/mstv_tests.dir/test_offline_verify.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_offline_verify.cpp.o.d"
  "/root/repo/tests/test_path_queries.cpp" "tests/CMakeFiles/mstv_tests.dir/test_path_queries.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_path_queries.cpp.o.d"
  "/root/repo/tests/test_predicates.cpp" "tests/CMakeFiles/mstv_tests.dir/test_predicates.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_predicates.cpp.o.d"
  "/root/repo/tests/test_rooted_tree.cpp" "tests/CMakeFiles/mstv_tests.dir/test_rooted_tree.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_rooted_tree.cpp.o.d"
  "/root/repo/tests/test_scheme_matrix.cpp" "tests/CMakeFiles/mstv_tests.dir/test_scheme_matrix.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_scheme_matrix.cpp.o.d"
  "/root/repo/tests/test_self_stabilization.cpp" "tests/CMakeFiles/mstv_tests.dir/test_self_stabilization.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_self_stabilization.cpp.o.d"
  "/root/repo/tests/test_sensitivity.cpp" "tests/CMakeFiles/mstv_tests.dir/test_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_sensitivity.cpp.o.d"
  "/root/repo/tests/test_spanning_tree_scheme.cpp" "tests/CMakeFiles/mstv_tests.dir/test_spanning_tree_scheme.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_spanning_tree_scheme.cpp.o.d"
  "/root/repo/tests/test_tree_labelings.cpp" "tests/CMakeFiles/mstv_tests.dir/test_tree_labelings.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_tree_labelings.cpp.o.d"
  "/root/repo/tests/test_tree_proof_schemes.cpp" "tests/CMakeFiles/mstv_tests.dir/test_tree_proof_schemes.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_tree_proof_schemes.cpp.o.d"
  "/root/repo/tests/test_union_find.cpp" "tests/CMakeFiles/mstv_tests.dir/test_union_find.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_union_find.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/mstv_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/mstv_tests.dir/test_wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mstv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
