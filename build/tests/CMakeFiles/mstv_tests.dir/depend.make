# Empty dependencies file for mstv_tests.
# This may be replaced when dependencies are built.
