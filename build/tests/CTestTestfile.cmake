# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mstv_tests[1]_include.cmake")
add_test(cli_gen_verify "sh" "-c" "/root/repo/build/tools/mstv gen 30 40 1000 5 | /root/repo/build/tools/mstv verify --scheme mst")
set_tests_properties(cli_gen_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_gen_verify_frag "sh" "-c" "/root/repo/build/tools/mstv gen 25 30 500 6 | /root/repo/build/tools/mstv verify --scheme frag --root 3")
set_tests_properties(cli_gen_verify_frag PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;43;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_sensitivity "sh" "-c" "/root/repo/build/tools/mstv gen 20 25 300 7 | /root/repo/build/tools/mstv sensitivity > /dev/null")
set_tests_properties(cli_sensitivity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;45;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_hypertree_dot "sh" "-c" "/root/repo/build/tools/mstv hypertree 3 4 | /root/repo/build/tools/mstv dot > /dev/null")
set_tests_properties(cli_hypertree_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;47;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_selfstab "sh" "-c" "/root/repo/build/tools/mstv gen 40 60 1000 8 | /root/repo/build/tools/mstv selfstab 5 50")
set_tests_properties(cli_selfstab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;49;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/mstv")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;51;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_mark_check "sh" "-c" "/root/repo/build/tools/mstv gen 25 30 500 9 > /tmp/g.txt && /root/repo/build/tools/mstv mark /tmp/labels.bin --scheme mst < /tmp/g.txt && /root/repo/build/tools/mstv check /tmp/labels.bin --scheme mst < /tmp/g.txt")
set_tests_properties(cli_mark_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;54;add_test;/root/repo/tests/CMakeLists.txt;0;")
