file(REMOVE_RECURSE
  "CMakeFiles/bench_label_size_w.dir/bench_label_size_w.cpp.o"
  "CMakeFiles/bench_label_size_w.dir/bench_label_size_w.cpp.o.d"
  "bench_label_size_w"
  "bench_label_size_w.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_label_size_w.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
