# Empty dependencies file for bench_label_size_w.
# This may be replaced when dependencies are built.
