# Empty compiler generated dependencies file for bench_label_size_n.
# This may be replaced when dependencies are built.
