file(REMOVE_RECURSE
  "CMakeFiles/bench_label_size_n.dir/bench_label_size_n.cpp.o"
  "CMakeFiles/bench_label_size_n.dir/bench_label_size_n.cpp.o.d"
  "bench_label_size_n"
  "bench_label_size_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_label_size_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
