file(REMOVE_RECURSE
  "CMakeFiles/bench_flow_labeling.dir/bench_flow_labeling.cpp.o"
  "CMakeFiles/bench_flow_labeling.dir/bench_flow_labeling.cpp.o.d"
  "bench_flow_labeling"
  "bench_flow_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flow_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
