file(REMOVE_RECURSE
  "CMakeFiles/bench_verify_vs_compute.dir/bench_verify_vs_compute.cpp.o"
  "CMakeFiles/bench_verify_vs_compute.dir/bench_verify_vs_compute.cpp.o.d"
  "bench_verify_vs_compute"
  "bench_verify_vs_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verify_vs_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
