# Empty compiler generated dependencies file for bench_verify_vs_compute.
# This may be replaced when dependencies are built.
