# Empty compiler generated dependencies file for bench_tree_labelings.
# This may be replaced when dependencies are built.
