file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_labelings.dir/bench_tree_labelings.cpp.o"
  "CMakeFiles/bench_tree_labelings.dir/bench_tree_labelings.cpp.o.d"
  "bench_tree_labelings"
  "bench_tree_labelings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_labelings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
