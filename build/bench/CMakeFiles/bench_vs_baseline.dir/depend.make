# Empty dependencies file for bench_vs_baseline.
# This may be replaced when dependencies are built.
