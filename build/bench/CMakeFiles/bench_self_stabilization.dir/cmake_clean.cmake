file(REMOVE_RECURSE
  "CMakeFiles/bench_self_stabilization.dir/bench_self_stabilization.cpp.o"
  "CMakeFiles/bench_self_stabilization.dir/bench_self_stabilization.cpp.o.d"
  "bench_self_stabilization"
  "bench_self_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_self_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
