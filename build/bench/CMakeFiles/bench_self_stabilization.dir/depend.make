# Empty dependencies file for bench_self_stabilization.
# This may be replaced when dependencies are built.
