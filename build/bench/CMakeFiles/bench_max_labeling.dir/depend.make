# Empty dependencies file for bench_max_labeling.
# This may be replaced when dependencies are built.
