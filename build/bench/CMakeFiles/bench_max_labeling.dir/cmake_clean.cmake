file(REMOVE_RECURSE
  "CMakeFiles/bench_max_labeling.dir/bench_max_labeling.cpp.o"
  "CMakeFiles/bench_max_labeling.dir/bench_max_labeling.cpp.o.d"
  "bench_max_labeling"
  "bench_max_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_max_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
