file(REMOVE_RECURSE
  "CMakeFiles/hypertree_explorer.dir/hypertree_explorer.cpp.o"
  "CMakeFiles/hypertree_explorer.dir/hypertree_explorer.cpp.o.d"
  "hypertree_explorer"
  "hypertree_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypertree_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
