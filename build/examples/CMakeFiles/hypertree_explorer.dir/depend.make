# Empty dependencies file for hypertree_explorer.
# This may be replaced when dependencies are built.
