file(REMOVE_RECURSE
  "CMakeFiles/compact_routing.dir/compact_routing.cpp.o"
  "CMakeFiles/compact_routing.dir/compact_routing.cpp.o.d"
  "compact_routing"
  "compact_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
