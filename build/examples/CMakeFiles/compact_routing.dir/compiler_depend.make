# Empty compiler generated dependencies file for compact_routing.
# This may be replaced when dependencies are built.
