file(REMOVE_RECURSE
  "CMakeFiles/link_upgrade_planner.dir/link_upgrade_planner.cpp.o"
  "CMakeFiles/link_upgrade_planner.dir/link_upgrade_planner.cpp.o.d"
  "link_upgrade_planner"
  "link_upgrade_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_upgrade_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
