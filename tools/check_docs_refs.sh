#!/bin/sh
# Lints repo-path references in the documentation: every `src/...`,
# `docs/...`, `tools/...`, `tests/...`, `bench/...` or `examples/...`
# path mentioned in README.md, DESIGN.md, EXPERIMENTS.md or docs/*.md
# must exist in the tree, so the documentation pass cannot rot silently
# when files move.  Glob references (`src/plscheme/mst_scheme.*`,
# `src/lowerbound/*`) pass iff they match at least one entry.
#
# Before the real scan the script runs a self-test: a synthetic document
# with a deliberately broken reference must FAIL the check (exit 2 with
# "self-test failed" otherwise), so a regression in the extraction regex
# cannot turn the lint into a silent yes-machine.
#
# Usage: tools/check_docs_refs.sh [repo-root]
set -u

root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 2

path_re='(build/)?(src|docs|tools|tests|bench|examples)/[A-Za-z0-9_./*-]+'

# check_file <doc> — prints each dangling reference, returns 1 if any.
check_file() {
  doc="$1"
  bad=0
  for ref in $(grep -ohE "$path_re" "$doc" | sort -u); do
    # References into the build tree (binaries like build/tools/mstv)
    # are usage examples, not source paths — out of scope.
    case "$ref" in build/*) continue ;; esac
    # Trim punctuation that the regex can drag in from prose:
    # a trailing "." (sentence end) or "/" (directory spelling).
    case "$ref" in *.) ref="${ref%.}" ;; esac
    case "$ref" in */) ref="${ref%/}" ;; esac
    [ -n "$ref" ] || continue
    found=0
    # Unquoted expansion on purpose: glob references resolve here; a
    # non-matching glob stays literal and fails the -e test below.
    for f in $ref; do
      [ -e "$f" ] && found=1
    done
    # Bench/example binaries are referenced by target name; accept when
    # the same-named source file exists (bench/bench_foo -> .cpp).
    [ -e "$ref.cpp" ] && found=1
    if [ "$found" -eq 0 ]; then
      echo "dangling reference in $doc: $ref" >&2
      bad=1
    fi
  done
  return "$bad"
}

# --- self-test: a broken reference must be caught -----------------------
selftest=$(mktemp) || exit 2
trap 'rm -f "$selftest"' EXIT
cat > "$selftest" <<'EOF'
A healthy reference: `tools/check_docs_refs.sh`.
A broken one: see `src/definitely/not_here.hpp` for details.
EOF
if check_file "$selftest" 2>/dev/null; then
  echo "self-test failed: broken reference was not detected" >&2
  exit 2
fi

# --- the real scan ------------------------------------------------------
status=0
for doc in README.md DESIGN.md EXPERIMENTS.md docs/*.md; do
  [ -f "$doc" ] || continue
  check_file "$doc" || status=1
done

if [ "$status" -eq 0 ]; then
  echo "doc path references ok"
fi
exit "$status"
