#!/bin/sh
# Lints repo-path references in the documentation: every `src/...`,
# `docs/...`, `tools/...`, `tests/...`, `bench/...` or `examples/...`
# path mentioned in README.md, DESIGN.md, EXPERIMENTS.md or docs/*.md
# must exist in the tree (globs must match at least one entry), so the
# documentation pass cannot rot silently when files move.
#
# Historical entry point, kept for compatibility: the grep body (and its
# inline self-test) is retired in favor of the engine rule DOCS-PATH-REFS
# in tools/lint/, which reports real line numbers and is itself covered
# by tests/test_lint_rules.cpp and the tests/lint_fixtures/ corpus.  This
# wrapper just locates the mstv-lint binary and delegates.
#
# Usage: tools/check_docs_refs.sh [repo-root] [mstv-lint-binary]
set -u

root="${1:-$(dirname "$0")/..}"
lint="${2:-${MSTV_LINT_BIN:-$root/build/tools/lint/mstv-lint}}"

if [ ! -x "$lint" ]; then
  echo "mstv-lint not found at '$lint'." >&2
  echo "Build it first (cmake --build build --target mstv_lint)" >&2
  echo "or pass the binary as the second argument / \$MSTV_LINT_BIN." >&2
  exit 2
fi

exec "$lint" --root="$root" --rules=DOCS-PATH-REFS
