#!/bin/sh
# Runs clang-tidy (config: .clang-tidy at the repo root, warnings as
# errors) over every first-party translation unit in
# <build-dir>/compile_commands.json.  The project configures
# CMAKE_EXPORT_COMPILE_COMMANDS=ON, so any configured build dir works.
#
# Exits 0 when clean, 1 on findings, 2 on usage errors.  When no
# clang-tidy binary is installed it prints "clang-tidy not found" and
# exits 0 — ctest marks the lint_clang_tidy test SKIPPED on that string
# (SKIP_REGULAR_EXPRESSION), so minimal toolchains stay green while CI,
# which installs clang-tidy, gets the real check.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [extra clang-tidy args...]
set -u

root=$(cd "$(dirname "$0")/.." && pwd) || exit 2
build="${1:-$root/build}"
[ $# -ge 1 ] && shift

tidy="${CLANG_TIDY:-}"
if [ -z "$tidy" ]; then
  for candidate in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 \
                   clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 \
                   clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy="$candidate"
      break
    fi
  done
fi
if [ -z "$tidy" ]; then
  echo "clang-tidy not found — skipping (install clang-tidy, or set \$CLANG_TIDY)"
  exit 0
fi

db="$build/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "no compile database at $db — configure the build first" >&2
  echo "(cmake -B \"$build\" -S \"$root\")" >&2
  exit 2
fi

# First-party TUs only: everything the repo compiles from src/, tools/,
# bench/, tests/ and examples/, except generated header-check TUs (their
# headers are vetted through the TUs that include them) and the
# deliberately-broken lint fixtures.
files=$(grep -o '"file": *"[^"]*"' "$db" \
        | sed 's/.*"file": *"//; s/"$//' \
        | grep -E "^$root/(src|tools|bench|tests|examples)/" \
        | grep -v '/lint_fixtures/' \
        | sort -u)
if [ -z "$files" ]; then
  echo "compile database lists no first-party files?" >&2
  exit 2
fi

echo "running $tidy over $(printf '%s\n' "$files" | wc -l) translation units"
status=0
# xargs -P parallelizes across cores; clang-tidy exits non-zero on any
# finding because .clang-tidy sets WarningsAsErrors: '*'.
printf '%s\n' "$files" \
  | xargs -P "$(nproc 2>/dev/null || echo 4)" -n 4 \
      "$tidy" -p "$build" --quiet "$@" || status=1

if [ "$status" -eq 0 ]; then
  echo "clang-tidy clean"
else
  echo "clang-tidy found issues (config: .clang-tidy, warnings-as-errors)" >&2
fi
exit "$status"
