// mstv — command-line front end for the library.
//
// Subcommands:
//   gen <n> <extra> <maxw> [seed]        emit a random connected graph
//                                        (edge-list on stdout)
//   mst < graph                          compute an MST; print edges+weight
//   verify [--scheme S] [--root R] < graph
//                                        compute MST, mark with scheme S
//                                        (mst | mst-naive | frag), verify,
//                                        print label statistics
//   sensitivity < graph                  per-edge sensitivities of the MST
//   selfstab <ticks> <fault%> < graph    run the self-stabilizing monitor
//   mark [labels.bin] [--scheme S] [--snapshot-out=FILE] < graph
//                                        compute MST, write labels to the
//                                        wire file and/or an mmap-served
//                                        snapshot (docs/store.md)
//   check (<labels.bin> | --snapshot=FILE) [--scheme S] < graph
//                                        verify graph against stored labels
//                                        (wire file or label snapshot)
//   dot < graph                          Graphviz with the MST highlighted
//   hypertree <h> <mu>                   emit an (h,mu)-hypertree edge list
//
// Graphs are read as "n m" followed by "u v w" lines (graph/io.hpp).
//
// Global flags (any position):
//   --stats[=FILE]        dump the telemetry snapshot (src/obs) as JSON to
//                         stderr or FILE after the command runs
//   --threads=N           worker threads for the parallel engine
//   --trace-out=FILE      record a trace session around the command and
//                         write Chrome Trace Event JSON to FILE
//                         (chrome://tracing / Perfetto loadable)
//   --trace-ring=N        resize the always-on span ring (tail snapshot)
//   --audit-bounds[=FILE] after a graph command, audit measured label
//                         sizes and ledger traffic against the paper's
//                         bounds; JSON report to stderr or FILE; a failed
//                         audit makes the exit code non-zero
// See docs/observability.md for the formats.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/generators.hpp"
#include "labeling/wire.hpp"
#include "graph/io.hpp"
#include "lowerbound/hypertree.hpp"
#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"
#include "obs/audit.hpp"
#include "obs/export.hpp"
#include "obs/trace_session.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/fragment_scheme.hpp"
#include "plscheme/gamma_scheme.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "plscheme/spanning_tree_scheme.hpp"
#include "store/snapshot.hpp"
#include "tree/centroid.hpp"
#include "tree/rooted_tree.hpp"
#include "runtime/mp/mp_network.hpp"
#include "runtime/network.hpp"
#include "runtime/self_stabilization.hpp"
#include "sensitivity/sensitivity.hpp"

namespace {

using namespace mstv;

// Graph parameters of the last command that ran a scheme, for the bound
// auditor: telemetry knows labels and traffic, only the command knows
// (n, m, W, scheme).  Empty scheme = no auditable command ran.
struct AuditParams {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t max_weight = 1;
  std::string scheme;
} g_audit_params;

void set_audit_params(const Graph& g, const std::string& scheme) {
  g_audit_params.n = g.num_vertices();
  g_audit_params.m = g.num_edges();
  g_audit_params.max_weight = g.max_weight();
  g_audit_params.scheme = scheme;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: mstv [--stats[=FILE]] <command> [args]\n"
      "  gen <n> <extra> <maxw> [seed]   random connected graph to stdout\n"
      "  mst                             MST of stdin graph\n"
      "  verify [--scheme mst|mst-naive|frag|gamma|st] [--root R]\n"
      "         [--backend sim|mp] [--workers N]\n"
      "                                  mp forks N worker processes and\n"
      "                                  exchanges labels over sockets\n"
      "                                  (docs/distributed.md)\n"
      "  mark [file] [--scheme S] [--snapshot-out=FILE]\n"
      "                                  compute MST, store labels (wire\n"
      "                                  file and/or mmap-served snapshot)\n"
      "  check (<file> | --snapshot=FILE) [--scheme S]\n"
      "                                  verify against stored labels\n"
      "  sensitivity                     per-edge tolerances of the MST\n"
      "  selfstab <ticks> <fault%%>       self-stabilizing monitor\n"
      "  dot                             Graphviz, MST bold\n"
      "  hypertree <h> <mu>              (h,mu)-hypertree edge list\n"
      "global flags:\n"
      "  --stats[=FILE]                  after the command, dump the telemetry\n"
      "                                  snapshot as JSON to stderr (or FILE)\n"
      "  --threads=N                     worker threads for the parallel engine\n"
      "                                  (default: hardware concurrency; 1 runs\n"
      "                                  fully serial)\n"
      "  --trace-out=FILE                record a trace session and write Chrome\n"
      "                                  Trace Event JSON (Perfetto loadable)\n"
      "  --trace-ring=N                  span ring capacity for --stats snapshots\n"
      "  --audit-bounds[=FILE]           audit label sizes and ledger traffic\n"
      "                                  against the paper's bounds (JSON report;\n"
      "                                  failing audit fails the exit code)\n");
  return 2;
}

/// Reads a counter off the global telemetry registry (0 if never touched).
std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::size_t n = std::strtoul(argv[0], nullptr, 10);
  const std::size_t extra = std::strtoul(argv[1], nullptr, 10);
  WeightOptions wo;
  wo.max_weight = std::strtoull(argv[2], nullptr, 10);
  Rng rng(argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1);
  const Graph g = random_connected_graph(n, extra, wo, rng);
  write_edge_list(std::cout, g);
  return 0;
}

int cmd_mst() {
  const Graph g = read_edge_list(std::cin);
  const auto mst = kruskal_mst(g);
  std::printf("# MST: %zu edges, total weight %llu\n", mst.size(),
              static_cast<unsigned long long>(total_weight(g, mst)));
  for (const EdgeId e : mst) {
    std::printf("%u %u %llu\n", g.edge(e).u, g.edge(e).v,
                static_cast<unsigned long long>(g.edge(e).w));
  }
  return 0;
}

std::unique_ptr<ProofLabelingScheme> make_scheme(const std::string& name) {
  if (name == "mst") return std::make_unique<MstScheme>();
  if (name == "mst-naive") {
    return std::make_unique<MstScheme>(SepCoding::FixedWidth);
  }
  if (name == "frag") return std::make_unique<FragmentScheme>();
  if (name == "gamma") return std::make_unique<GammaScheme>();
  if (name == "st" || name == "spanning-tree") {
    return std::make_unique<SpanningTreeScheme>();
  }
  return nullptr;
}

// The configuration a scheme runs over, plus whatever must outlive it.
// pi-Gamma is a problem about *tree* configurations (the states must be
// the labels of some member of the family Gamma), so for `gamma` the
// config lives on the MST-as-a-graph, which the world owns; every other
// scheme's config points at the input graph itself.  Construction is
// fully deterministic (Kruskal edge order, no port shuffle), so mark and
// check rebuild bit-identical configurations from the same input.
struct SchemeWorld {
  std::unique_ptr<Graph> tree_graph;  // gamma only
  std::unique_ptr<ConfigGraph> cfg;
  const Graph* cfg_graph = nullptr;  // the graph `cfg` is built over
};

SchemeWorld make_scheme_world(const ProofLabelingScheme& scheme,
                              const std::string& scheme_name, const Graph& g,
                              VertexId root) {
  SchemeWorld w;
  const auto mst = kruskal_mst(g);
  if (scheme_name == "gamma") {
    Graph::Builder b(g.num_vertices());
    for (const EdgeId e : mst) {
      b.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).w);
    }
    w.tree_graph = std::make_unique<Graph>(b.build());
    const auto& gs = static_cast<const GammaScheme&>(scheme);
    const RootedTree tree(*w.tree_graph, root);
    const SeparatorDecomposition sd = perfect_separator_decomposition(tree);
    const auto imps = gs.implicit_scheme().encode(tree, sd);
    std::vector<State> states(w.tree_graph->num_vertices());
    for (VertexId v = 0; v < w.tree_graph->num_vertices(); ++v) {
      states[v].id = v;
      if (!tree.is_root(v)) states[v].parent_port = tree.parent_port(v);
      states[v].payload = gs.implicit_scheme().to_bits(imps[v]);
    }
    w.cfg = std::make_unique<ConfigGraph>(*w.tree_graph, std::move(states));
    w.cfg_graph = w.tree_graph.get();
  } else {
    w.cfg = std::make_unique<ConfigGraph>(make_tree_config(g, mst, root));
    w.cfg_graph = &g;
  }
  return w;
}

int cmd_verify(int argc, char** argv) {
  std::string scheme_name = "mst";
  std::string backend = "sim";
  std::size_t workers = 4;
  VertexId root = 0;
  // Flags accept both `--flag value` and `--flag=value`.
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    std::string_view key = a;
    std::string_view val;
    bool has_val = false;
    if (const auto eq = a.find('='); eq != std::string_view::npos) {
      key = a.substr(0, eq);
      val = a.substr(eq + 1);
      has_val = true;
    } else if (i + 1 < argc) {
      val = argv[i + 1];
    }
    const bool inline_val = has_val;
    if (!has_val && i + 1 >= argc) return usage();
    if (key == "--scheme") {
      scheme_name = val;
    } else if (key == "--root") {
      root = static_cast<VertexId>(
          std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "--backend") {
      backend = val;
    } else if (key == "--workers") {
      workers = std::strtoul(std::string(val).c_str(), nullptr, 10);
      if (workers == 0) return usage();
    } else {
      return usage();
    }
    if (!inline_val) ++i;
  }
  if (backend != "sim" && backend != "mp") return usage();
  const auto scheme = make_scheme(scheme_name);
  if (!scheme) return usage();

  const Graph g = read_edge_list(std::cin);
  const SchemeWorld world = make_scheme_world(*scheme, scheme_name, g, root);

  // Run through a network backend (not mark_and_verify directly) so the
  // round is a real message exchange: the communication ledger gets its
  // per-round row, which --audit-bounds checks against the paper.  The mp
  // backend additionally moves the labels between forked worker
  // processes (docs/distributed.md).
  std::unique_ptr<NetworkBackend> net;
  if (backend == "mp") {
    net = std::make_unique<MpNetwork>(std::move(*world.cfg), *scheme,
                                      workers);
  } else {
    net = std::make_unique<SimNetwork>(std::move(*world.cfg), *scheme);
  }
  net->install_marker_labels();
  const RoundStats round = net->verification_round();

  std::size_t max_bits = 0;
  std::size_t total_bits = 0;
  for (const Label& l : net->labels()) {
    max_bits = std::max(max_bits, l.size_bits());
    total_bits += l.size_bits();
  }
  const double avg_bits =
      net->labels().empty()
          ? 0.0
          : static_cast<double>(total_bits) /
                static_cast<double>(net->labels().size());

  set_audit_params(g, scheme->name());
  // Parity tests diff sim vs mp output modulo this line: keep every other
  // line backend-independent.
  if (backend == "mp") {
    std::printf("backend       : mp (workers=%zu)\n",
                static_cast<const MpNetwork&>(*net).workers());
  } else {
    std::printf("backend       : sim\n");
  }
  std::printf("scheme        : %s\n", scheme->name().c_str());
  std::printf("graph         : n=%zu m=%zu W=%llu\n", g.num_vertices(),
              g.num_edges(),
              static_cast<unsigned long long>(g.max_weight()));
  std::printf("verdict       : %s\n",
              round.accepted ? "ACCEPTED" : "REJECTED");
  std::printf("max label bits: %zu\n", max_bits);
  std::printf("avg label bits: %.1f\n", avg_bits);
  std::printf("round messages: %zu\n", round.messages);
  std::printf("round bits    : %zu\n", round.bits);
  return round.accepted ? 0 : 1;
}

int cmd_mark(int argc, char** argv) {
  std::string scheme_name = "mst";
  std::string wire_file;
  std::string snapshot_file;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--scheme" && i + 1 < argc) {
      scheme_name = argv[++i];
    } else if (a.rfind("--snapshot-out=", 0) == 0) {
      snapshot_file = a.substr(std::string_view("--snapshot-out=").size());
      if (snapshot_file.empty()) return usage();
    } else if (!a.empty() && a[0] != '-' && wire_file.empty()) {
      wire_file = a;
    } else {
      return usage();
    }
  }
  if (wire_file.empty() && snapshot_file.empty()) return usage();
  const auto scheme = make_scheme(scheme_name);
  if (!scheme) return usage();
  const Graph g = read_edge_list(std::cin);
  const SchemeWorld world = make_scheme_world(*scheme, scheme_name, g, 0);
  const auto labels = scheme->mark(*world.cfg);
  std::size_t total = 0;
  for (const Label& l : labels) total += l.size_bits();
  if (!wire_file.empty()) {
    std::ofstream out(wire_file, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", wire_file.c_str());
      return 1;
    }
    write_labels(out, labels);
    std::printf("wrote %zu labels (%zu bits total) to %s\n", labels.size(),
                total, wire_file.c_str());
  }
  if (!snapshot_file.empty()) {
    store::SnapshotMeta meta;
    meta.scheme = scheme->name();
    meta.root = 0;
    meta.graph_vertices = world.cfg_graph->num_vertices();
    meta.graph_edges = world.cfg_graph->num_edges();
    const std::uint64_t bytes =
        store::write_snapshot_file(snapshot_file, labels, meta);
    std::printf("wrote snapshot of %zu labels (%zu bits total, %llu bytes) "
                "to %s\n",
                labels.size(), total, static_cast<unsigned long long>(bytes),
                snapshot_file.c_str());
  }
  return 0;
}

int cmd_check(int argc, char** argv) {
  std::string scheme_name = "mst";
  std::string wire_file;
  std::string snapshot_file;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--scheme" && i + 1 < argc) {
      scheme_name = argv[++i];
    } else if (a.rfind("--snapshot=", 0) == 0) {
      snapshot_file = a.substr(std::string_view("--snapshot=").size());
      if (snapshot_file.empty()) return usage();
    } else if (!a.empty() && a[0] != '-' && wire_file.empty()) {
      wire_file = a;
    } else {
      return usage();
    }
  }
  if (wire_file.empty() == snapshot_file.empty()) return usage();
  const auto scheme = make_scheme(scheme_name);
  if (!scheme) return usage();
  const Graph g = read_edge_list(std::cin);
  const SchemeWorld world = make_scheme_world(*scheme, scheme_name, g, 0);
  VerificationResult result;
  if (!snapshot_file.empty()) {
    const store::LabelStore snap = store::LabelStore::open(snapshot_file);
    if (snap.meta().scheme != scheme->name()) {
      std::fprintf(stderr, "snapshot scheme mismatch (file has %s, "
                   "requested %s)\n",
                   snap.meta().scheme.c_str(), scheme->name().c_str());
      return 1;
    }
    if (snap.size() != world.cfg->size()) {
      std::fprintf(stderr, "label count mismatch\n");
      return 1;
    }
    result = run_verifier(*scheme, *world.cfg, snap);
  } else {
    std::ifstream in(wire_file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", wire_file.c_str());
      return 1;
    }
    const auto labels = read_labels(in);
    if (labels.size() != world.cfg->size()) {
      std::fprintf(stderr, "label count mismatch\n");
      return 1;
    }
    result = run_verifier(*scheme, *world.cfg, labels);
  }
  std::printf("verdict: %s", result.accepted ? "ACCEPTED" : "REJECTED");
  if (!result.accepted) {
    std::printf(" (rejecting:");
    for (const VertexId v : result.rejecting) std::printf(" %u", v);
    std::printf(")");
  }
  std::printf("\n");
  return result.accepted ? 0 : 1;
}

int cmd_sensitivity() {
  const Graph g = read_edge_list(std::cin);
  const auto mst = kruskal_mst(g);
  const SensitivityOracle oracle(g, mst);
  std::printf("# u v w kind tolerance (inf = bridge)\n");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    const auto s = oracle.query(e);
    std::printf("%u %u %llu %s ", ed.u, ed.v,
                static_cast<unsigned long long>(ed.w),
                s.is_tree_edge ? "tree" : "chord");
    if (s.tolerance) {
      std::printf("%s%llu\n", s.is_tree_edge ? "+" : "-",
                  static_cast<unsigned long long>(*s.tolerance));
    } else {
      std::printf("inf\n");
    }
  }
  return 0;
}

int cmd_selfstab(int argc, char** argv) {
  if (argc < 2) return usage();
  const int ticks = std::atoi(argv[0]);
  const double fault_p = std::atof(argv[1]) / 100.0;
  const Graph g = read_edge_list(std::cin);
  const MstScheme scheme;
  set_audit_params(g, scheme.name());
  SelfStabilizingMst sys(g, scheme);
  Rng frng(99);
  FaultInjector inj(frng);
  std::size_t detections = 0;
  std::printf("# tick faults_injected detected detecting_nodes repair_msgs "
              "repair_bits silent\n");
  for (int t = 0; t < ticks; ++t) {
    // Per-tick deltas of the global telemetry counters.
    const std::uint64_t inj0 = counter_value("faults.injected");
    const std::uint64_t msgs0 = counter_value("selfstab.repair_messages");
    const std::uint64_t bits0 = counter_value("selfstab.repair_bits");
    if (frng.chance(fault_p)) (void)inj.inject(sys.network());
    const auto s = sys.stabilize();
    if (s.fault_detected) ++detections;
    std::uint64_t injected = counter_value("faults.injected") - inj0;
    std::uint64_t repair_msgs =
        counter_value("selfstab.repair_messages") - msgs0;
    std::uint64_t repair_bits = counter_value("selfstab.repair_bits") - bits0;
#ifdef MSTV_OBS_DISABLED
    // Telemetry compiled out: report from the returned stats instead.
    injected = 0;
    repair_msgs = s.recompute.messages;
    repair_bits = s.recompute.message_bits;
#endif
    std::printf("%6d %15llu %8s %15zu %11llu %11llu %6s\n", t,
                static_cast<unsigned long long>(injected),
                s.fault_detected ? "yes" : "no", s.detecting_nodes,
                static_cast<unsigned long long>(repair_msgs),
                static_cast<unsigned long long>(repair_bits),
                s.fault_detected ? (s.silent_after ? "yes" : "NO") : "-");
  }
  std::printf("%zu detections over %d ticks\n", detections, ticks);
  return 0;
}

int cmd_dot() {
  const Graph g = read_edge_list(std::cin);
  DotOptions opts;
  opts.tree_edge.assign(g.num_edges(), false);
  for (const EdgeId e : kruskal_mst(g)) opts.tree_edge[e] = true;
  write_dot(std::cout, g, opts);
  return 0;
}

int cmd_hypertree(int argc, char** argv) {
  if (argc < 2) return usage();
  const auto h = static_cast<std::uint32_t>(std::strtoul(argv[0], nullptr, 10));
  const std::uint64_t mu = std::strtoull(argv[1], nullptr, 10);
  Rng rng(1);
  const Hypertree ht = build_hypertree(h, mu, {}, &rng);
  write_edge_list(std::cout, ht.graph);
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc - 2, argv + 2);
    if (cmd == "mst") return cmd_mst();
    if (cmd == "verify") return cmd_verify(argc - 2, argv + 2);
    if (cmd == "mark") return cmd_mark(argc - 2, argv + 2);
    if (cmd == "check") return cmd_check(argc - 2, argv + 2);
    if (cmd == "sensitivity") return cmd_sensitivity();
    if (cmd == "selfstab") return cmd_selfstab(argc - 2, argv + 2);
    if (cmd == "dot") return cmd_dot();
    if (cmd == "hypertree") return cmd_hypertree(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global flags (valid in any position) before subcommand
  // dispatch.
  bool want_stats = false;
  std::string stats_file;
  bool want_trace = false;
  std::string trace_file;
  bool want_audit = false;
  std::string audit_file;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (i > 0 && a == "--stats") {
      want_stats = true;
    } else if (i > 0 && a.rfind("--stats=", 0) == 0) {
      want_stats = true;
      stats_file = a.substr(std::string_view("--stats=").size());
    } else if (i > 0 && a.rfind("--trace-out=", 0) == 0) {
      want_trace = true;
      trace_file = a.substr(std::string_view("--trace-out=").size());
      if (trace_file.empty()) {
        std::fprintf(stderr, "--trace-out expects a file name\n");
        return 2;
      }
    } else if (i > 0 && a.rfind("--trace-ring=", 0) == 0) {
      const std::string n(a.substr(std::string_view("--trace-ring=").size()));
      char* end = nullptr;
      const unsigned long cap = std::strtoul(n.c_str(), &end, 10);
      if (n.empty() || *end != '\0' || cap == 0) {
        std::fprintf(stderr, "--trace-ring expects a positive integer\n");
        return 2;
      }
      obs::Tracer::global().set_ring_capacity(cap);
    } else if (i > 0 && a == "--audit-bounds") {
      want_audit = true;
    } else if (i > 0 && a.rfind("--audit-bounds=", 0) == 0) {
      want_audit = true;
      audit_file = a.substr(std::string_view("--audit-bounds=").size());
    } else if (i > 0 && a.rfind("--threads=", 0) == 0) {
      const std::string n(a.substr(std::string_view("--threads=").size()));
      char* end = nullptr;
      const unsigned long threads = std::strtoul(n.c_str(), &end, 10);
      if (n.empty() || *end != '\0' || threads == 0) {
        std::fprintf(stderr, "--threads expects a positive integer\n");
        return 2;
      }
      mstv::parallel::set_thread_count(threads);
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);

  if (want_trace) obs::TraceSession::global().start();

  int rc = dispatch(static_cast<int>(args.size()) - 1, args.data());

  if (want_trace) {
    // The command has returned (pool workers quiesced on its last wait),
    // so the snapshot sees every buffer.
    obs::TraceSession::global().stop();
    const std::string trace =
        obs::to_chrome_trace(obs::TraceSession::global().snapshot());
    std::ofstream out(trace_file);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", trace_file.c_str());
      if (rc == 0) rc = 1;
    } else {
      out << trace;
    }
  }

  if (want_audit) {
    if (g_audit_params.scheme.empty()) {
      std::fprintf(stderr,
                   "--audit-bounds: the command did not run a scheme over a "
                   "network (use verify or selfstab)\n");
      if (rc == 0) rc = 2;
    } else {
      const obs::AuditReport report =
          obs::audit_bounds(obs::audit_input_from_telemetry(
              g_audit_params.n, g_audit_params.m, g_audit_params.max_weight,
              g_audit_params.scheme));
      const std::string json = obs::audit_to_json(report);
      if (audit_file.empty()) {
        std::fputs(json.c_str(), stderr);
      } else {
        std::ofstream out(audit_file);
        if (!out) {
          std::fprintf(stderr, "cannot open %s\n", audit_file.c_str());
          if (rc == 0) rc = 1;
        } else {
          out << json;
        }
      }
      if (!report.pass && rc == 0) rc = 1;
    }
  }

  if (want_stats) {
    const std::string json = obs::to_json(obs::capture());
    if (stats_file.empty()) {
      std::fputs(json.c_str(), stderr);
    } else {
      std::ofstream out(stats_file);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", stats_file.c_str());
        return rc ? rc : 1;
      }
      out << json;
    }
  }
  return rc;
}
