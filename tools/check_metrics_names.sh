#!/bin/sh
# Lints telemetry instrument names against the naming convention of
# docs/observability.md: `component.noun[_unit]` — two or more lowercase
# snake_case segments joined by dots, e.g. `verify.messages`,
# `verify.node_time_us`, `faults.injected.redirect_parent`.
#
# Scans every literal name passed to the MSTV_* instrumentation macros,
# the obs:: free-function sinks, and direct Registry instrument lookups
# (.counter("…") / .gauge("…") / .histogram("…")) under src/, tools/,
# bench/, tests/ and examples/.  Exits 1 listing each offending site.
#
# Usage: tools/check_metrics_names.sh [repo-root]
set -u

root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 2

pattern='MSTV_(COUNTER_ADD|COUNTER_INC|GAUGE_SET|HIST_OBSERVE|SPAN|SCOPED_TIMER_US)\(\s*"[^"]*"|obs::(counter_add|gauge_set|hist_observe)\(\s*"[^"]*"|\.(counter|gauge|histogram)\(\s*"[^"]*"'
name_re='^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$'

status=0
found=0

# Each match arrives as file:call("name — validate the quoted name.
for hit in $(grep -rhoE "$pattern" src tools bench tests examples \
                 --include='*.cpp' --include='*.hpp' | tr -d ' ' \
             | sort -u); do
  found=1
  name=$(printf '%s' "$hit" | sed 's/.*("//; s/"$//')
  if ! printf '%s' "$name" | grep -qE "$name_re"; then
    echo "bad metric/span name: \"$name\" (from $hit)" >&2
    status=1
  fi
done

if [ "$found" -eq 0 ]; then
  echo "no instrumentation sites found — pattern out of date?" >&2
  exit 2
fi

if [ "$status" -eq 0 ]; then
  echo "metric names ok"
fi
exit "$status"
