#!/bin/sh
# Lints telemetry instrument names against the naming convention of
# docs/observability.md: `component.noun[_unit]` — two or more lowercase
# snake_case segments joined by dots, e.g. `verify.messages`,
# `verify.node_time_us`.
#
# Historical entry point, kept for compatibility: the grep body this
# script used to carry is retired in favor of the token-accurate engine
# rule OBS-METRIC-NAME in tools/lint/ (no false hits inside comments or
# unrelated strings, per-site justified suppressions).  This wrapper just
# locates the mstv-lint binary and delegates.
#
# Usage: tools/check_metrics_names.sh [repo-root] [mstv-lint-binary]
set -u

root="${1:-$(dirname "$0")/..}"
lint="${2:-${MSTV_LINT_BIN:-$root/build/tools/lint/mstv-lint}}"

if [ ! -x "$lint" ]; then
  echo "mstv-lint not found at '$lint'." >&2
  echo "Build it first (cmake --build build --target mstv_lint)" >&2
  echo "or pass the binary as the second argument / \$MSTV_LINT_BIN." >&2
  exit 2
fi

exec "$lint" --root="$root" --rules=OBS-METRIC-NAME
