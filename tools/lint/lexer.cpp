#include "lint/token.hpp"

#include <cctype>
#include <cstddef>

namespace mstv::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Cursor over the raw text with line/column bookkeeping.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  [[nodiscard]] bool done() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
      line_has_code_ = false;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }
  [[nodiscard]] bool line_has_code() const { return line_has_code_; }
  void mark_code() { line_has_code_ = true; }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool line_has_code_ = false;
};

// Multi-char punctuators the rules care about. Everything else is emitted
// one character at a time — rules only ever match `::`, `(`, `)`, `{`,
// `}`, `[`, `]`, `:`, `.`, `->`, `<`, `>`, `;`, `,`, `=`.
bool two_char_punct(char a, char b) {
  return (a == ':' && b == ':') || (a == '-' && b == '>');
}

}  // namespace

TokenStream lex(const std::string& text) {
  TokenStream out;
  Cursor cur(text);

  auto push = [&](TokKind kind, std::string tok_text, int line, int col) {
    out.tokens.push_back(Token{kind, std::move(tok_text), line, col});
  };

  while (!cur.done()) {
    const char c = cur.peek();

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      cur.advance();
      continue;
    }

    const int line = cur.line();
    const int col = cur.col();

    // Line comment.  A backslash-newline splice continues the comment
    // onto the next physical line ([lex.phases] p2 runs before comment
    // stripping) — without this, code on the spliced line would be
    // treated as live and directives on it would leak into the stream.
    if (c == '/' && cur.peek(1) == '/') {
      const bool own_line = !cur.line_has_code();
      cur.advance();
      cur.advance();
      std::string body;
      while (!cur.done() && cur.peek() != '\n') {
        if (cur.peek() == '\\' &&
            (cur.peek(1) == '\n' ||
             (cur.peek(1) == '\r' && cur.peek(2) == '\n'))) {
          while (cur.peek() != '\n') cur.advance();
          cur.advance();  // the spliced newline
          body.push_back(' ');
          continue;
        }
        body.push_back(cur.advance());
      }
      out.comments.push_back(Comment{std::move(body), line, cur.line(), col,
                                     own_line});
      continue;
    }

    // Block comment.
    if (c == '/' && cur.peek(1) == '*') {
      const bool own_line = !cur.line_has_code();
      cur.advance();
      cur.advance();
      std::string body;
      while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) {
        body.push_back(cur.advance());
      }
      const int end_line = cur.line();
      if (!cur.done()) {
        cur.advance();
        cur.advance();
      }
      out.comments.push_back(Comment{std::move(body), line, end_line, col,
                                     own_line});
      continue;
    }

    cur.mark_code();

    // Raw string literal: R"tag( ... )tag", with or without an encoding
    // prefix (u8R, uR, UR, LR).  Recognized before the plain identifier
    // path so the prefix does not lex as an identifier and leave the
    // body — which may contain `//` or unbalanced quotes — to be
    // misread as code.
    std::size_t raw_prefix = 0;
    if (c == 'R' && cur.peek(1) == '"') {
      raw_prefix = 1;
    } else if ((c == 'u' || c == 'U' || c == 'L') && cur.peek(1) == 'R' &&
               cur.peek(2) == '"') {
      raw_prefix = 2;
    } else if (c == 'u' && cur.peek(1) == '8' && cur.peek(2) == 'R' &&
               cur.peek(3) == '"') {
      raw_prefix = 3;
    }
    if (raw_prefix != 0) {
      for (std::size_t i = 0; i < raw_prefix; ++i) cur.advance();
      cur.advance();  // "
      std::string tag;
      while (!cur.done() && cur.peek() != '(') tag.push_back(cur.advance());
      if (!cur.done()) cur.advance();  // (
      const std::string close = ")" + tag + "\"";
      std::string body;
      while (!cur.done()) {
        if (cur.peek() == ')') {
          bool match = true;
          for (std::size_t i = 0; i < close.size(); ++i) {
            if (cur.peek(i) != close[i]) {
              match = false;
              break;
            }
          }
          if (match) {
            for (std::size_t i = 0; i < close.size(); ++i) cur.advance();
            break;
          }
        }
        body.push_back(cur.advance());
      }
      push(TokKind::String, std::move(body), line, col);
      continue;
    }

    // Identifier / keyword.
    if (ident_start(c)) {
      std::string name;
      while (!cur.done() && ident_cont(cur.peek())) name.push_back(cur.advance());
      // String-literal prefixes (u8"...", L"...", u"...", U"...") lex the
      // trailing quote as a plain string below; the prefix identifier is
      // harmless to the rules.
      push(TokKind::Identifier, std::move(name), line, col);
      continue;
    }

    // Number (also eats pp-numbers like 1'000'000 and 0x1.8p3).
    if (digit(c) || (c == '.' && digit(cur.peek(1)))) {
      std::string num;
      while (!cur.done() &&
             (ident_cont(cur.peek()) || cur.peek() == '.' ||
              cur.peek() == '\'' ||
              ((cur.peek() == '+' || cur.peek() == '-') && !num.empty() &&
               (num.back() == 'e' || num.back() == 'E' || num.back() == 'p' ||
                num.back() == 'P')))) {
        num.push_back(cur.advance());
      }
      push(TokKind::Number, std::move(num), line, col);
      continue;
    }

    // String literal.  Backslash-newline splices continue the literal
    // onto the next physical line; other escapes are kept verbatim.
    if (c == '"') {
      cur.advance();
      std::string body;
      while (!cur.done() && cur.peek() != '"') {
        if (cur.peek() == '\\' &&
            (cur.peek(1) == '\n' ||
             (cur.peek(1) == '\r' && cur.peek(2) == '\n'))) {
          cur.advance();  // backslash
          while (!cur.done() && cur.peek() != '\n') cur.advance();  // \r
          if (!cur.done()) cur.advance();  // spliced newline
          continue;
        }
        if (cur.peek() == '\\' && cur.peek(1) != '\0') {
          body.push_back(cur.advance());
        }
        if (cur.peek() == '\n') break;  // unterminated: stop at line end
        body.push_back(cur.advance());
      }
      if (!cur.done() && cur.peek() == '"') cur.advance();
      push(TokKind::String, std::move(body), line, col);
      continue;
    }

    // Character literal.
    if (c == '\'') {
      cur.advance();
      std::string body;
      while (!cur.done() && cur.peek() != '\'') {
        if (cur.peek() == '\\' && cur.peek(1) != '\0') body.push_back(cur.advance());
        if (cur.peek() == '\n') break;
        body.push_back(cur.advance());
      }
      if (!cur.done() && cur.peek() == '\'') cur.advance();
      push(TokKind::CharLit, std::move(body), line, col);
      continue;
    }

    // Punctuation.
    if (two_char_punct(c, cur.peek(1))) {
      std::string p;
      p.push_back(cur.advance());
      p.push_back(cur.advance());
      push(TokKind::Punct, std::move(p), line, col);
      continue;
    }
    push(TokKind::Punct, std::string(1, cur.advance()), line, col);
  }

  return out;
}

}  // namespace mstv::lint
