// A file under lint: raw text, token/comment streams (for C++ sources),
// and the parsed `mstv-lint:` directives.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/token.hpp"

namespace mstv::lint {

enum class FileClass {
  Cxx,       // *.cpp / *.hpp — lexed into tokens
  Markdown,  // *.md — raw text only, scanned line-wise
};

/// One parsed allow() suppression directive.  `allow(A, B)` names
/// several rules on one certificate; `rules` holds them all.
struct Allow {
  std::vector<std::string> rules;  // empty on a malformed allow()
  std::string spelling;       // raw text inside the parens, for messages
  std::string justification;  // empty => LINT-BARE-ALLOW
  int line = 0;               // line the comment starts on
  int end_line = 0;           // line the comment ends on
  int col = 0;
  bool own_line = false;      // comment stands alone => also covers next line
};

class SourceFile {
 public:
  /// `relpath` uses forward slashes relative to the repo root; it drives
  /// rule path filters, so tests can pretend a fixture lives anywhere.
  SourceFile(std::string relpath, std::string text, FileClass file_class);

  [[nodiscard]] const std::string& relpath() const { return relpath_; }
  [[nodiscard]] const std::string& text() const { return text_; }
  [[nodiscard]] FileClass file_class() const { return class_; }
  [[nodiscard]] const std::vector<Token>& tokens() const {
    return stream_.tokens;
  }
  [[nodiscard]] const std::vector<Comment>& comments() const {
    return stream_.comments;
  }
  [[nodiscard]] const std::vector<Allow>& allows() const { return allows_; }
  [[nodiscard]] bool hot_path_file() const { return hot_path_file_; }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Index into allows() of the certificate covering `rule` at `line`
  /// (same line, or a whole-line comment immediately above), or npos.
  [[nodiscard]] std::size_t suppressing_allow(std::string_view rule,
                                              int line) const;

  /// True when an allow(rule) certificate covers `line`.
  [[nodiscard]] bool suppressed(std::string_view rule, int line) const {
    return suppressing_allow(rule, line) != npos;
  }

  /// The raw text of a 1-based line (no trailing newline), for messages.
  [[nodiscard]] std::string_view line_text(int line) const;

 private:
  void parse_directives();

  std::string relpath_;
  std::string text_;
  FileClass class_;
  TokenStream stream_;
  std::vector<Allow> allows_;
  bool hot_path_file_ = false;
  std::vector<std::size_t> line_offsets_;  // byte offset of each line start
};

}  // namespace mstv::lint
