#include "lint/callgraph.hpp"

#include <deque>
#include <set>

namespace mstv::lint {

CallGraph::CallGraph(const std::vector<FileSymbols>& files) {
  for (const FileSymbols& fs : files) {
    for (const FunctionDef& def : fs.defs) defs_.push_back(&def);
  }
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    by_name_[defs_[i]->name].push_back(i);
  }
}

const std::vector<std::size_t>& CallGraph::defs_named(
    std::string_view name) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kEmpty : it->second;
}

std::vector<CallGraph::Reached> CallGraph::reachable(
    std::string_view root_callee, std::size_t max_depth) const {
  std::vector<Reached> out;
  std::set<std::size_t> visited;
  struct Item {
    std::size_t def_index;
    std::vector<std::string> chain;
  };
  std::deque<Item> queue;
  for (const std::size_t d : defs_named(root_callee)) {
    if (visited.insert(d).second) {
      queue.push_back(Item{d, {std::string(root_callee)}});
    }
  }
  while (!queue.empty()) {
    Item item = std::move(queue.front());
    queue.pop_front();
    const FunctionDef* def = defs_[item.def_index];
    out.push_back(Reached{def, item.chain});
    if (item.chain.size() >= max_depth) continue;
    for (const CallSite& call : def->calls) {
      if (call.member) continue;  // dynamic dispatch: not resolvable
      for (const std::size_t d : defs_named(call.callee)) {
        if (!visited.insert(d).second) continue;
        Item next;
        next.def_index = d;
        next.chain = item.chain;
        next.chain.push_back(call.callee);
        queue.push_back(std::move(next));
      }
    }
  }
  return out;
}

}  // namespace mstv::lint
