// Rule interface and registry for mstv-lint.
//
// Philosophy (mirrors the proof-labeling model the repo reproduces): the
// system's global invariants — bit-identical results at any --threads,
// lock-free hot paths, stable metric names, live doc references — are
// enforced by *locally checkable evidence* in each source file.  A rule
// is a local verifier; a suppression comment is a certificate that a
// human audited the site, and it is only valid when it carries a
// justification.
//
// Suppression syntax (parsed from comments by SourceFile; the directive
// prefix is the tool name followed by a colon, then):
//
//   allow(RULE-ID) — why this site is exempt
//
// The separator may be an em dash, `--`, or `:`; the justification text
// is REQUIRED — a bare `allow()` is itself a violation (LINT-BARE-ALLOW),
// and an allow() naming a rule the registry does not know is flagged too
// (LINT-UNKNOWN-RULE).  A suppression covers the line it sits on and, when
// the comment stands alone on its line, the next line of code.  The HOT
// family also honors a file-wide `hot-path-file` marker.  Full syntax and
// copy-pasteable examples: docs/static_analysis.md.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source_file.hpp"

namespace mstv::lint {

struct Diagnostic {
  std::string rule;
  std::string file;  // repo-relative path
  int line = 0;
  int col = 0;
  std::string message;
};

/// Everything a rule may consult besides the file under scan.
struct LintContext {
  std::string root;  // absolute repo root (for existence checks, DOCS)
  std::vector<std::string> known_rules;  // ids, for LINT-UNKNOWN-RULE
};

class Rule {
 public:
  virtual ~Rule() = default;

  [[nodiscard]] virtual std::string_view id() const = 0;
  [[nodiscard]] virtual std::string_view summary() const = 0;
  /// Which class of file the rule consumes (C++ sources vs markdown).
  [[nodiscard]] virtual FileClass file_class() const { return FileClass::Cxx; }
  /// Path filter over repo-relative paths (forward slashes).
  [[nodiscard]] virtual bool applies_to(std::string_view relpath) const = 0;

  virtual void check(const LintContext& ctx, const SourceFile& file,
                     std::vector<Diagnostic>& out) const = 0;

 protected:
  /// Emits `d` unless an allow(RULE-ID) certificate covers the line.
  void report(const SourceFile& file, int line, int col, std::string message,
              std::vector<Diagnostic>& out) const;
};

class RuleRegistry {
 public:
  void add(std::unique_ptr<Rule> rule);
  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const {
    return rules_;
  }
  [[nodiscard]] std::vector<std::string> ids() const;

  /// Every built-in rule family (DET, HOT, OBS, DOCS, LINT meta rules),
  /// in stable catalog order.
  [[nodiscard]] static RuleRegistry builtin();

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

// Rule families, one factory set per translation unit.
std::vector<std::unique_ptr<Rule>> make_det_rules();
std::vector<std::unique_ptr<Rule>> make_hot_rules();
std::vector<std::unique_ptr<Rule>> make_obs_rules();
std::vector<std::unique_ptr<Rule>> make_docs_rules();
std::vector<std::unique_ptr<Rule>> make_meta_rules();

}  // namespace mstv::lint
