// Rule interface and registry for mstv-lint.
//
// Philosophy (mirrors the proof-labeling model the repo reproduces): the
// system's global invariants — bit-identical results at any --threads,
// lock-free hot paths, stable metric names, live doc references — are
// enforced by *locally checkable evidence* in each source file.  A rule
// is a local verifier; a suppression comment is a certificate that a
// human audited the site, and it is only valid when it carries a
// justification.  Whole-program rules (ARCH, REACH, MP families) extend
// the same model: the global contract (a layer DAG, a reachability
// property) is decomposed into per-edge / per-call-site obligations that
// are reported — and certifiable — at one concrete file:line.
//
// Suppression syntax (parsed from comments by SourceFile; the directive
// prefix is the tool name followed by a colon, then):
//
//   allow(RULE-ID) — why this site is exempt
//   allow(RULE-A, RULE-B) — one certificate may cover several rules
//
// The separator may be an em dash, `--`, or `:`; the justification text
// is REQUIRED — a bare `allow()` is itself a violation (LINT-BARE-ALLOW),
// and an allow() naming a rule the registry does not know is flagged too
// (LINT-UNKNOWN-RULE).  A suppression covers the line it sits on and, when
// the comment stands alone on its line, the next line of code.  A
// certificate that suppresses nothing in a full-registry run is stale
// (LINT-STALE-ALLOW).  The HOT family also honors a file-wide
// `hot-path-file` marker.  Full syntax and copy-pasteable examples:
// docs/static_analysis.md.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/source_file.hpp"

namespace mstv::lint {

struct Program;

struct Diagnostic {
  std::string rule;
  std::string file;  // repo-relative path
  int line = 0;
  int col = 0;
  std::string message;
};

/// Allow() certificates that suppressed at least one finding this run,
/// keyed by (file, index into SourceFile::allows()).
using AllowUsage = std::set<std::pair<const SourceFile*, std::size_t>>;

/// Everything a rule may consult besides the file under scan.
struct LintContext {
  std::string root;  // absolute repo root (for existence checks, DOCS)
  std::vector<std::string> known_rules;  // ids, for LINT-UNKNOWN-RULE
  /// Engine-owned usage record feeding the stale-allow audit; may be
  /// null (single-rule test harness runs), in which case usage is not
  /// tracked and the audit never runs.
  AllowUsage* used_allows = nullptr;
};

/// True when an allow(`rule`) certificate covers `line` in `file`.
/// Records the certificate as used in `ctx` — every suppression check,
/// including the REACH rules' primitive-site checks, must go through
/// here or the stale-allow audit will miscount.
bool certificate_covers(const LintContext& ctx, const SourceFile& file,
                        std::string_view rule, int line);

class Rule {
 public:
  virtual ~Rule() = default;

  [[nodiscard]] virtual std::string_view id() const = 0;
  [[nodiscard]] virtual std::string_view summary() const = 0;
  /// Which class of file the rule consumes (C++ sources vs markdown).
  [[nodiscard]] virtual FileClass file_class() const { return FileClass::Cxx; }
  /// Path filter over repo-relative paths (forward slashes).
  [[nodiscard]] virtual bool applies_to(std::string_view) const { return true; }

  /// Program rules run once per engine invocation over the whole scanned
  /// set (check_program) instead of once per file (check).
  [[nodiscard]] virtual bool whole_program() const { return false; }

  virtual void check(const LintContext&, const SourceFile&,
                     std::vector<Diagnostic>&) const {}
  virtual void check_program(const LintContext&, const Program&,
                             std::vector<Diagnostic>&) const {}

 protected:
  /// Emits a diagnostic for this rule unless an allow(RULE-ID)
  /// certificate covers the line (recorded via certificate_covers).
  void report(const LintContext& ctx, const SourceFile& file, int line,
              int col, std::string message,
              std::vector<Diagnostic>& out) const;
};

class RuleRegistry {
 public:
  void add(std::unique_ptr<Rule> rule);
  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const {
    return rules_;
  }
  [[nodiscard]] std::vector<std::string> ids() const;

  /// Every built-in rule family (DET, HOT, OBS, DOCS, ARCH, REACH/MP,
  /// LINT meta rules), in stable catalog order.
  [[nodiscard]] static RuleRegistry builtin();

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

// Rule families, one factory set per translation unit.
std::vector<std::unique_ptr<Rule>> make_det_rules();
std::vector<std::unique_ptr<Rule>> make_hot_rules();
std::vector<std::unique_ptr<Rule>> make_obs_rules();
std::vector<std::unique_ptr<Rule>> make_docs_rules();
std::vector<std::unique_ptr<Rule>> make_arch_rules();
std::vector<std::unique_ptr<Rule>> make_reach_rules();
std::vector<std::unique_ptr<Rule>> make_meta_rules();

/// LINT-STALE-ALLOW: flags every allow() certificate that suppressed no
/// finding this run.  Only meaningful after a full-registry pass over
/// the whole scanned set — the engine skips it under --rules filtering,
/// where most certificates are trivially unused.  Two passes: ordinary
/// certificates are audited first, so allow(LINT-STALE-ALLOW)
/// certificates can themselves earn their keep before being audited.
void audit_stale_allows(const LintContext& ctx,
                        const std::vector<const SourceFile*>& files,
                        std::vector<Diagnostic>& out);

}  // namespace mstv::lint
