// The mstv-lint driver: file discovery, rule dispatch, output encoding.
//
// A run has three stages: per-file rules over each scanned file, then
// whole-program rules (ARCH/REACH families) over the include graph and
// call graph built from the complete scanned set, then — on
// full-registry runs only — the stale-allow audit, which needs the
// finished record of which certificates suppressed anything.
#pragma once

#include <string>
#include <vector>

#include "lint/rule.hpp"

namespace mstv::lint {

struct LintOptions {
  std::string root = ".";                // repo root
  std::vector<std::string> only_rules;   // empty = every registered rule
  std::vector<std::string> files;        // explicit repo-relative paths;
                                         // empty = the default tree scan
  bool report_suppressions = false;      // emit the certificate inventory
};

/// One allow() certificate and whether it suppressed anything this run
/// (the --report-suppressions inventory CI archives).
struct SuppressionRecord {
  std::string file;
  int line = 0;
  std::string rules;          // spelling inside the parens, verbatim
  std::string justification;
  bool used = false;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;   // sorted (file, line, col, rule)
  std::size_t files_scanned = 0;
  double engine_ms = 0.0;                // wall time of the full run
  std::vector<SuppressionRecord> suppressions;  // only when requested
  bool report_suppressions = false;
};

/// A file handed to the engine without touching disk — the unit the
/// fixture tests drive (`relpath` lets a fixture pretend to live at any
/// repo-relative path, which is what the rules' path filters see).
struct MemoryFile {
  std::string relpath;
  std::string content;
};

/// The full three-stage pipeline over an in-memory file set.
/// `options.files` is ignored; `options.root` still anchors rules that
/// consult the real tree (DOCS path checks, layers.txt).
[[nodiscard]] LintResult lint_files(const RuleRegistry& registry,
                                    const LintOptions& options,
                                    const std::vector<MemoryFile>& files);

/// Lints one in-memory file through the same pipeline (program rules see
/// a one-file program).  Diagnostics are appended to `out`.
void lint_content(const RuleRegistry& registry, const LintContext& ctx,
                  const std::string& relpath, const std::string& content,
                  const std::vector<std::string>& only_rules,
                  std::vector<Diagnostic>& out);

/// Full run over the tree (or `options.files`).  The default scan covers
/// `*.cpp`/`*.hpp` under src/, tools/, bench/, tests/ and examples/
/// (minus tests/lint_fixtures/, which is deliberately bad code) plus
/// README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md for the DOCS rules.
[[nodiscard]] LintResult run_lint(const RuleRegistry& registry,
                                  const LintOptions& options);

[[nodiscard]] std::string to_text(const LintResult& result);
[[nodiscard]] std::string to_json(const LintResult& result);

}  // namespace mstv::lint
