// The mstv-lint driver: file discovery, rule dispatch, output encoding.
#pragma once

#include <string>
#include <vector>

#include "lint/rule.hpp"

namespace mstv::lint {

struct LintOptions {
  std::string root = ".";                // repo root
  std::vector<std::string> only_rules;   // empty = every registered rule
  std::vector<std::string> files;        // explicit repo-relative paths;
                                         // empty = the default tree scan
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;   // sorted (file, line, col, rule)
  std::size_t files_scanned = 0;
};

/// Lints one in-memory file (the unit the tests drive: fixtures pretend
/// to live at any repo-relative path via `relpath`).
void lint_content(const RuleRegistry& registry, const LintContext& ctx,
                  const std::string& relpath, const std::string& content,
                  const std::vector<std::string>& only_rules,
                  std::vector<Diagnostic>& out);

/// Full run over the tree (or `options.files`).  The default scan covers
/// `*.cpp`/`*.hpp` under src/, tools/, bench/, tests/ and examples/
/// (minus tests/lint_fixtures/, which is deliberately bad code) plus
/// README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md for the DOCS rules.
[[nodiscard]] LintResult run_lint(const RuleRegistry& registry,
                                  const LintOptions& options);

[[nodiscard]] std::string to_text(const LintResult& result);
[[nodiscard]] std::string to_json(const LintResult& result);

}  // namespace mstv::lint
