// Symbol index: function definitions and call sites recovered from the
// token stream — the second whole-program layer of mstv-lint.
//
// This is deliberately not a parser.  A *definition* is an identifier
// followed by a balanced parameter list and then (possibly after a
// cv/ref/noexcept/trailing-return/member-init tail) a `{` body; a *call
// site* is an identifier followed by `(` inside some definition's body.
// Resolution is by name only: overloads collapse, templates collapse,
// and member calls through distinct objects collapse onto every
// definition sharing the name.  The result over-approximates the real
// call graph (docs/static_analysis.md spells out the contract); rules
// built on it must expect false edges, never missing names.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source_file.hpp"

namespace mstv::lint {

struct CallSite {
  std::string callee;  // identifier as written (unqualified)
  int line = 0;
  int col = 0;
  bool member = false;  // preceded by `.` or `->` (dynamic dispatch)
};

struct FunctionDef {
  std::string name;              // unqualified (last identifier before `(`)
  const SourceFile* file = nullptr;
  int line = 0;                  // line of the name token
  std::size_t body_begin = 0;    // token index of the opening `{`
  std::size_t body_end = 0;      // token index of the matching `}`
  std::vector<CallSite> calls;   // call sites inside [body_begin, body_end]
};

struct FileSymbols {
  const SourceFile* file = nullptr;
  std::vector<FunctionDef> defs;
};

/// Extracts every function definition (and its call sites) from one
/// lexed C++ file.
[[nodiscard]] FileSymbols index_symbols(const SourceFile& file);

/// True when tokens[i] + `(` looks like a call rather than a keyword
/// construct (`if (...)`, `while (...)`, casts, `sizeof`, ...).
[[nodiscard]] bool call_like(const std::vector<Token>& toks, std::size_t i);

}  // namespace mstv::lint
