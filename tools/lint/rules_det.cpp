// DET rule family: the statically checkable slice of the determinism
// contract (docs/parallelism.md).  A verifier run must be bit-identical
// at any --threads value and reproducible from its seed, so the
// result-producing code may not consult ambient entropy (rand, hardware
// RNGs), wall clocks, or hash-order-dependent iteration.
//
//   DET-RAND   — seedless / ambient randomness (`rand`, `srand`,
//                `std::random_device`, `drand48`, …) anywhere except
//                src/obs/ and bench/.  Deterministic code draws from
//                util/rng.hpp (`mstv::Rng`), seeded explicitly.
//   DET-CLOCK  — wall/steady clock reads (`time(`, `clock(`,
//                `*_clock::now()`) outside src/obs/ and bench/.
//                Telemetry timing belongs in obs (Span/ScopedTimerUs);
//                a clock read in a result-producing layer is a latent
//                nondeterminism bug.
//   DET-UMAP   — iteration over `std::unordered_map`/`unordered_set` in
//                the result-producing layers (src/plscheme/, src/dynamic/,
//                src/parallel/).  Hash iteration order is
//                implementation-defined; folding it into labels,
//                verdicts or serialized output silently breaks the
//                cross-thread determinism contract PR 2 established.
#include <array>
#include <memory>
#include <set>
#include <string>

#include "lint/rule.hpp"

namespace mstv::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Paths where ambient entropy / clocks are legitimate: telemetry keeps
// wall time by design, benches measure it.
bool det_exempt_path(std::string_view relpath) {
  return starts_with(relpath, "src/obs/") || starts_with(relpath, "bench/");
}

// Keywords after which an unqualified call expression can directly
// follow.  Any *other* identifier directly before the name means a
// declaration (`int rand() const`), not a call.
bool expression_keyword(std::string_view s) {
  return s == "return" || s == "co_return" || s == "co_yield" ||
         s == "co_await" || s == "throw" || s == "else" || s == "do" ||
         s == "case";
}

// True when tokens[i] names a free function call (not a member access
// like `view.time(...)` or a declaration of an unrelated function that
// shares the C library name).
bool free_call(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::Identifier) return expression_keyword(prev.text);
  if (prev.kind != TokKind::Punct) return true;
  if (prev.text == "." || prev.text == "->") return false;
  if (prev.text == "::") {
    // Qualified: `std::time` and globally qualified `::time` count (the
    // token before a global `::` is punctuation or an expression
    // keyword); `foo::time` does not.
    if (i < 2) return true;
    const Token& qual = toks[i - 2];
    if (qual.kind != TokKind::Identifier) return true;
    return qual.text == "std" || expression_keyword(qual.text);
  }
  return true;
}

bool next_is(const std::vector<Token>& toks, std::size_t i,
             std::string_view punct) {
  return i + 1 < toks.size() && toks[i + 1].kind == TokKind::Punct &&
         toks[i + 1].text == punct;
}

class DetRandRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "DET-RAND"; }
  [[nodiscard]] std::string_view summary() const override {
    return "ambient randomness outside src/obs/ and bench/ "
           "(use the seeded mstv::Rng)";
  }
  [[nodiscard]] bool applies_to(std::string_view relpath) const override {
    return !det_exempt_path(relpath);
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    static const std::set<std::string, std::less<>> kCalls = {
        "rand", "srand", "rand_r", "srandom", "random", "drand48", "lrand48",
        "mrand48", "srand48"};
    const auto& toks = file.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier) continue;
      if (t.text == "random_device") {
        report(ctx, file, t.line, t.col,
               "std::random_device is ambient entropy; results must be "
               "reproducible from an explicit seed (util/rng.hpp)",
               out);
        continue;
      }
      if (kCalls.count(t.text) != 0 && next_is(toks, i, "(") &&
          free_call(toks, i)) {
        report(ctx, file, t.line, t.col,
               "'" + t.text +
                   "()' draws from ambient global state; use the seeded "
                   "mstv::Rng instead",
               out);
      }
    }
  }
};

class DetClockRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "DET-CLOCK"; }
  [[nodiscard]] std::string_view summary() const override {
    return "clock reads outside src/obs/ and bench/ "
           "(route timing through obs spans/timers)";
  }
  [[nodiscard]] bool applies_to(std::string_view relpath) const override {
    return !det_exempt_path(relpath);
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    static const std::set<std::string, std::less<>> kClockTypes = {
        "steady_clock", "system_clock", "high_resolution_clock",
        "utc_clock", "file_clock"};
    static const std::set<std::string, std::less<>> kCCalls = {
        "time", "clock", "gettimeofday", "clock_gettime", "localtime",
        "gmtime", "ftime"};
    const auto& toks = file.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier) continue;
      // `steady_clock::now` — flag the now() read, not the type mention
      // (time_point parameters are fine, reading the clock is not).
      if (kClockTypes.count(t.text) != 0 && next_is(toks, i, "::") &&
          i + 2 < toks.size() && toks[i + 2].kind == TokKind::Identifier &&
          toks[i + 2].text == "now") {
        report(ctx, file, t.line, t.col,
               t.text + "::now() reads wall time in a result-producing "
                        "layer; use obs spans/timers or pass times in",
               out);
        continue;
      }
      if (kCCalls.count(t.text) != 0 && next_is(toks, i, "(") &&
          free_call(toks, i)) {
        report(ctx, file, t.line, t.col,
               "'" + t.text + "()' reads the system clock; timing belongs "
                              "to the obs layer",
               out);
      }
    }
  }
};

class DetUnorderedIterRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "DET-UMAP"; }
  [[nodiscard]] std::string_view summary() const override {
    return "iteration over unordered containers in result-producing "
           "layers (hash order is not deterministic)";
  }
  [[nodiscard]] bool applies_to(std::string_view relpath) const override {
    return starts_with(relpath, "src/plscheme/") ||
           starts_with(relpath, "src/dynamic/") ||
           starts_with(relpath, "src/parallel/");
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    static const std::set<std::string, std::less<>> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    const auto& toks = file.tokens();

    // Pass 1: names declared with an unordered type.  After the type
    // identifier, skip one balanced `<...>` argument list; the next
    // identifier is the declared name (`std::unordered_map<K, V> seen;`).
    std::set<std::string, std::less<>> unordered_vars;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Identifier ||
          kUnordered.count(toks[i].text) == 0) {
        continue;
      }
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].kind == TokKind::Punct &&
          toks[j].text == "<") {
        int depth = 0;
        for (; j < toks.size(); ++j) {
          if (toks[j].kind != TokKind::Punct) continue;
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">") {
            if (--depth == 0) {
              ++j;
              break;
            }
          }
        }
      }
      // Skip refs/cv in `const std::unordered_set<T>& live`.
      while (j < toks.size() && toks[j].kind == TokKind::Punct &&
             (toks[j].text == "&" || toks[j].text == "*")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokKind::Identifier &&
          toks[j].text != "const") {
        unordered_vars.insert(toks[j].text);
      }
    }
    if (unordered_vars.empty()) return;

    // Pass 2a: range-for whose range expression mentions an unordered
    // variable — `for (auto& kv : seen)`.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Identifier || toks[i].text != "for") {
        continue;
      }
      if (!next_is(toks, i, "(")) continue;
      int depth = 0;
      bool past_colon = false;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].kind == TokKind::Punct) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")" && --depth == 0) break;
          if (toks[j].text == ":" && depth == 1) past_colon = true;
          continue;
        }
        if (past_colon && toks[j].kind == TokKind::Identifier &&
            unordered_vars.count(toks[j].text) != 0) {
          report(ctx, file, toks[i].line, toks[i].col,
                 "range-for over unordered container '" + toks[j].text +
                     "': hash iteration order leaks into results; use a "
                     "sorted container or sort before folding",
                 out);
          break;
        }
      }
    }

    // Pass 2b: explicit iterator walks — `seen.begin()` / `seen.cbegin()`.
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Identifier ||
          unordered_vars.count(toks[i].text) == 0) {
        continue;
      }
      if (toks[i + 1].kind != TokKind::Punct ||
          (toks[i + 1].text != "." && toks[i + 1].text != "->")) {
        continue;
      }
      const Token& member = toks[i + 2];
      if (member.kind == TokKind::Identifier &&
          (member.text == "begin" || member.text == "cbegin")) {
        report(ctx, file, toks[i].line, toks[i].col,
               "iterator walk over unordered container '" + toks[i].text +
                   "': hash iteration order leaks into results",
               out);
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_det_rules() {
  std::vector<std::unique_ptr<Rule>> out;
  out.push_back(std::make_unique<DetRandRule>());
  out.push_back(std::make_unique<DetClockRule>());
  out.push_back(std::make_unique<DetUnorderedIterRule>());
  return out;
}

}  // namespace mstv::lint
