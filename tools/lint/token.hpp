// Token model for the mstv-lint C++ lexer.
//
// The lexer is deliberately not a compiler front end: rules match on the
// token stream (identifiers, punctuation, string literals) plus the
// comment stream (for `mstv-lint:` directives), which is exactly the
// level of fidelity the project's contracts need — "no `rand(` call
// outside bench/", "no `lock_guard` inside a shard lambda" — without a
// libclang dependency.
#pragma once

#include <string>
#include <vector>

namespace mstv::lint {

enum class TokKind {
  Identifier,  // [A-Za-z_][A-Za-z0-9_]*
  Number,      // integer / float literals (incl. digit separators)
  String,      // "..." or R"tag(...)tag"; text holds the *contents*
  CharLit,     // 'x'
  Punct,       // one operator/punctuator; `::` is a single token
};

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;  // identifier spelling, string contents, or punct chars
  int line = 0;      // 1-based
  int col = 0;       // 1-based, byte column
};

// Comments are lexed out-of-band: rules never see them as tokens, the
// suppression parser sees nothing else.
struct Comment {
  std::string text;  // contents without the // or /* */ fences
  int line = 0;      // line the comment starts on
  int end_line = 0;  // line the comment ends on (== line for //)
  int col = 0;
  bool own_line = false;  // nothing but whitespace precedes it on its line
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lexes C++ source text. Never fails: malformed input degrades to
/// punctuation tokens, which at worst makes a rule miss — a lint tool
/// must not die on the code it scans.
[[nodiscard]] TokenStream lex(const std::string& text);

}  // namespace mstv::lint
