// LINT meta rules: the suppression mechanism polices itself.  An allow()
// certificate is only evidence if a human wrote down *why* — an
// unjustified, dangling, or dead suppression is exactly the silent
// contract erosion the engine exists to prevent.
//
//   LINT-BARE-ALLOW   — an allow(RULE) directive without a justification
//                       (or with empty parens / missing close paren).
//   LINT-UNKNOWN-RULE — allow() naming a rule id the registry does not
//                       know (typo'd suppressions would otherwise both
//                       fail to suppress and rot silently).
//   LINT-STALE-ALLOW  — an allow() that suppressed nothing in a
//                       full-registry run over the whole tree.  The code
//                       it certified is gone or fixed; a certificate
//                       with no claim is debt.  Driven by the engine
//                       through audit_stale_allows() after all other
//                       passes (it needs the complete usage record), not
//                       by per-file check().
#include <algorithm>
#include <memory>
#include <string>

#include "lint/rule.hpp"

namespace mstv::lint {

namespace {

constexpr std::string_view kStaleId = "LINT-STALE-ALLOW";

std::string spelled(const Allow& a) {
  return a.spelling.empty() ? std::string("?") : a.spelling;
}

class BareAllowRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "LINT-BARE-ALLOW";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "allow() suppressions must carry a justification";
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    for (const Allow& a : file.allows()) {
      if (a.rules.empty()) {
        report(ctx, file, a.line, a.col,
               "malformed allow(): expected `mstv-lint: allow(RULE-ID) — "
               "justification`",
               out);
      } else if (a.justification.empty()) {
        report(ctx, file, a.line, a.col,
               "allow(" + spelled(a) +
                   ") without a justification; a suppression is a "
                   "certificate — say why the site is exempt",
               out);
      }
    }
  }
};

class UnknownRuleAllowRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "LINT-UNKNOWN-RULE";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "allow() must name a rule id the engine knows";
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    for (const Allow& a : file.allows()) {
      for (const std::string& rule : a.rules) {
        const bool known =
            std::find(ctx.known_rules.begin(), ctx.known_rules.end(), rule) !=
            ctx.known_rules.end();
        if (!known) {
          report(ctx, file, a.line, a.col,
                 "allow(" + rule + ") names no known rule (typo?); run "
                                   "mstv-lint --list-rules for the catalog",
                 out);
        }
      }
    }
  }
};

// Catalog/id carrier for the stale audit: the real work happens in
// audit_stale_allows(), which the engine invokes after every other pass
// so the allow-usage record is complete.  check() is deliberately empty.
class StaleAllowRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return kStaleId; }
  [[nodiscard]] std::string_view summary() const override {
    return "allow() certificates must suppress at least one finding "
           "(audited after a full-registry run)";
  }
};

bool names_stale_id(const Allow& a) {
  return std::find(a.rules.begin(), a.rules.end(), kStaleId) != a.rules.end();
}

bool any_rule_unknown(const LintContext& ctx, const Allow& a) {
  return std::any_of(a.rules.begin(), a.rules.end(), [&](const std::string& r) {
    return std::find(ctx.known_rules.begin(), ctx.known_rules.end(), r) ==
           ctx.known_rules.end();
  });
}

}  // namespace

void audit_stale_allows(const LintContext& ctx,
                        const std::vector<const SourceFile*>& files,
                        std::vector<Diagnostic>& out) {
  if (ctx.used_allows == nullptr) return;

  auto audit_one = [&](const SourceFile& file, std::size_t i) {
    const Allow& a = file.allows()[i];
    // Malformed and typo'd certificates are LINT-BARE-ALLOW's and
    // LINT-UNKNOWN-RULE's findings; double-reporting them as stale
    // would just be noise.
    if (a.rules.empty() || a.justification.empty()) return;
    if (any_rule_unknown(ctx, a)) return;
    if (ctx.used_allows->count({&file, i}) != 0) return;
    // A *different* allow(LINT-STALE-ALLOW) certificate may cover this
    // one ("intentionally kept though currently unused").  The allow
    // under audit never certifies itself.
    for (std::size_t j = 0; j < file.allows().size(); ++j) {
      if (j == i) continue;
      const Allow& c = file.allows()[j];
      if (c.justification.empty() || !names_stale_id(c)) continue;
      if ((a.line >= c.line && a.line <= c.end_line) ||
          (c.own_line && a.line == c.end_line + 1)) {
        ctx.used_allows->emplace(&file, j);
        return;
      }
    }
    out.push_back(Diagnostic{
        std::string(kStaleId), file.relpath(), a.line, a.col,
        "allow(" + spelled(a) +
            ") suppressed nothing in this run; the site it certified is "
            "gone — delete the certificate (or certify the keep with "
            "allow(LINT-STALE-ALLOW))"});
  };

  // Two passes: ordinary certificates first, so allow(LINT-STALE-ALLOW)
  // certificates earn their keep before being audited themselves.
  for (const bool self_pass : {false, true}) {
    for (const SourceFile* file : files) {
      for (std::size_t i = 0; i < file->allows().size(); ++i) {
        if (names_stale_id(file->allows()[i]) == self_pass) {
          audit_one(*file, i);
        }
      }
    }
  }
}

std::vector<std::unique_ptr<Rule>> make_meta_rules() {
  std::vector<std::unique_ptr<Rule>> out;
  out.push_back(std::make_unique<BareAllowRule>());
  out.push_back(std::make_unique<UnknownRuleAllowRule>());
  out.push_back(std::make_unique<StaleAllowRule>());
  return out;
}

}  // namespace mstv::lint
