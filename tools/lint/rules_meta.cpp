// LINT meta rules: the suppression mechanism polices itself.  An allow()
// certificate is only evidence if a human wrote down *why* — an
// unjustified or dangling suppression is exactly the silent contract
// erosion the engine exists to prevent.
//
//   LINT-BARE-ALLOW   — an allow(RULE) directive without a justification
//                       (or with empty parens / missing close paren).
//   LINT-UNKNOWN-RULE — allow() naming a rule id the registry does not
//                       know (typo'd suppressions would otherwise both
//                       fail to suppress and rot silently).
#include <algorithm>
#include <memory>
#include <string>

#include "lint/rule.hpp"

namespace mstv::lint {

namespace {

class BareAllowRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "LINT-BARE-ALLOW";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "allow() suppressions must carry a justification";
  }
  [[nodiscard]] bool applies_to(std::string_view) const override {
    return true;
  }

  void check(const LintContext&, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    for (const Allow& a : file.allows()) {
      if (a.rule.empty()) {
        report(file, a.line, a.col,
               "malformed allow(): expected `mstv-lint: allow(RULE-ID) — "
               "justification`",
               out);
      } else if (a.justification.empty()) {
        report(file, a.line, a.col,
               "allow(" + a.rule +
                   ") without a justification; a suppression is a "
                   "certificate — say why the site is exempt",
               out);
      }
    }
  }
};

class UnknownRuleAllowRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "LINT-UNKNOWN-RULE";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "allow() must name a rule id the engine knows";
  }
  [[nodiscard]] bool applies_to(std::string_view) const override {
    return true;
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    for (const Allow& a : file.allows()) {
      if (a.rule.empty()) continue;  // LINT-BARE-ALLOW's case
      const bool known =
          std::find(ctx.known_rules.begin(), ctx.known_rules.end(), a.rule) !=
          ctx.known_rules.end();
      if (!known) {
        report(file, a.line, a.col,
               "allow(" + a.rule + ") names no known rule (typo?); run "
                                   "mstv-lint --list-rules for the catalog",
               out);
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_meta_rules() {
  std::vector<std::unique_ptr<Rule>> out;
  out.push_back(std::make_unique<BareAllowRule>());
  out.push_back(std::make_unique<UnknownRuleAllowRule>());
  return out;
}

}  // namespace mstv::lint
