// Include graph over the scanned translation units and headers — the
// first whole-program layer of mstv-lint (rule family ARCH).
//
// Edges come from `#include "..."` directives (first-party style); angle
// includes are recorded but never resolved — system headers are outside
// the architecture contract.  Resolution is purely lexical against the
// scanned file set: a quoted path is tried relative to src/, tools/ and
// the including file's own directory, exactly mirroring the include
// directories the build hands the compiler.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source_file.hpp"

namespace mstv::lint {

struct IncludeEdge {
  std::string from;      // repo-relative path of the including file
  std::string spelling;  // the path as written between the quotes
  std::string target;    // resolved repo-relative path; empty if unresolved
  int line = 0;          // line of the #include directive
  bool quoted = false;   // "..." (first-party) vs <...> (system)
};

class IncludeGraph {
 public:
  /// Builds the graph for a set of lexed C++ files.  `files` must outlive
  /// the graph only for this call — the graph copies what it keeps.
  static IncludeGraph build(const std::vector<const SourceFile*>& files);

  [[nodiscard]] const std::vector<IncludeEdge>& edges() const {
    return edges_;
  }
  /// Edges leaving one file (empty vector if none).
  [[nodiscard]] const std::vector<const IncludeEdge*>& edges_from(
      std::string_view relpath) const;

  /// Include cycles among resolved edges, each reported once as the list
  /// of files around the loop (first entry repeated at the end), rotated
  /// so the lexicographically smallest path leads.  Deterministic.
  [[nodiscard]] std::vector<std::vector<std::string>> cycles() const;

 private:
  std::vector<IncludeEdge> edges_;
  std::map<std::string, std::vector<const IncludeEdge*>, std::less<>>
      by_file_;
};

/// Parses the `#include` directives of one file (exposed for unit tests).
[[nodiscard]] std::vector<IncludeEdge> parse_includes(const SourceFile& file);

}  // namespace mstv::lint
