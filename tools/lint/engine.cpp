#include "lint/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

namespace mstv::lint {

namespace fs = std::filesystem;

namespace {

FileClass classify(std::string_view relpath) {
  if (relpath.size() > 3 && relpath.substr(relpath.size() - 3) == ".md") {
    return FileClass::Markdown;
  }
  return FileClass::Cxx;
}

bool cxx_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// The default scan set, sorted for deterministic output.
std::vector<std::string> default_scan(const std::string& root) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const char* top : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec) || !cxx_source(it->path())) continue;
      std::string rel =
          fs::relative(it->path(), fs::path(root), ec).generic_string();
      // The fixture corpus is known-bad code with `expect:` markers —
      // scanned only by tests/test_lint_rules.cpp, never by the tree run.
      if (rel.rfind("tests/lint_fixtures/", 0) == 0) continue;
      out.push_back(std::move(rel));
    }
  }
  for (const char* doc : {"README.md", "DESIGN.md", "EXPERIMENTS.md"}) {
    if (fs::exists(fs::path(root) / doc, ec)) out.emplace_back(doc);
  }
  const fs::path docs = fs::path(root) / "docs";
  if (fs::exists(docs, ec)) {
    for (const auto& entry : fs::directory_iterator(docs, ec)) {
      if (entry.path().extension() == ".md") {
        out.push_back(
            fs::relative(entry.path(), fs::path(root), ec).generic_string());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool rule_selected(const Rule& rule,
                   const std::vector<std::string>& only_rules) {
  if (only_rules.empty()) return true;
  return std::find(only_rules.begin(), only_rules.end(), rule.id()) !=
         only_rules.end();
}

}  // namespace

void lint_content(const RuleRegistry& registry, const LintContext& ctx,
                  const std::string& relpath, const std::string& content,
                  const std::vector<std::string>& only_rules,
                  std::vector<Diagnostic>& out) {
  const SourceFile file(relpath, content, classify(relpath));
  for (const auto& rule : registry.rules()) {
    if (!rule_selected(*rule, only_rules)) continue;
    if (rule->file_class() != file.file_class()) continue;
    if (!rule->applies_to(relpath)) continue;
    rule->check(ctx, file, out);
  }
}

LintResult run_lint(const RuleRegistry& registry, const LintOptions& options) {
  LintContext ctx;
  ctx.root = options.root;
  ctx.known_rules = registry.ids();

  std::vector<std::string> files =
      options.files.empty() ? default_scan(options.root) : options.files;

  LintResult result;
  for (const std::string& rel : files) {
    const std::string content = slurp(fs::path(options.root) / rel);
    lint_content(registry, ctx, rel, content, options.only_rules,
                 result.diagnostics);
    ++result.files_scanned;
  }
  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.col, a.rule) <
                     std::tie(b.file, b.line, b.col, b.rule);
            });
  return result;
}

std::string to_text(const LintResult& result) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    out << d.file << ':' << d.line << ':' << d.col << ": [" << d.rule << "] "
        << d.message << '\n';
  }
  out << (result.diagnostics.empty() ? "mstv-lint: clean ("
                                     : "mstv-lint: FAILED (")
      << result.diagnostics.size() << " violation"
      << (result.diagnostics.size() == 1 ? "" : "s") << ", "
      << result.files_scanned << " files scanned)\n";
  return out.str();
}

std::string to_json(const LintResult& result) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << result.files_scanned
      << ",\n  \"violations\": [";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    out << (i == 0 ? "" : ",") << "\n    {\"rule\": \"" << json_escape(d.rule)
        << "\", \"file\": \"" << json_escape(d.file)
        << "\", \"line\": " << d.line << ", \"col\": " << d.col
        << ", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  out << (result.diagnostics.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

}  // namespace mstv::lint
