#include "lint/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <tuple>

#include "lint/program.hpp"

namespace mstv::lint {

namespace fs = std::filesystem;

namespace {

FileClass classify(std::string_view relpath) {
  if (relpath.size() > 3 && relpath.substr(relpath.size() - 3) == ".md") {
    return FileClass::Markdown;
  }
  return FileClass::Cxx;
}

bool cxx_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// The default scan set, sorted for deterministic output.
std::vector<std::string> default_scan(const std::string& root) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const char* top : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec) || !cxx_source(it->path())) continue;
      std::string rel =
          fs::relative(it->path(), fs::path(root), ec).generic_string();
      // The fixture corpus is known-bad code with `expect:` markers —
      // scanned only by tests/test_lint_rules.cpp, never by the tree run.
      if (rel.rfind("tests/lint_fixtures/", 0) == 0) continue;
      out.push_back(std::move(rel));
    }
  }
  for (const char* doc : {"README.md", "DESIGN.md", "EXPERIMENTS.md"}) {
    if (fs::exists(fs::path(root) / doc, ec)) out.emplace_back(doc);
  }
  const fs::path docs = fs::path(root) / "docs";
  if (fs::exists(docs, ec)) {
    for (const auto& entry : fs::directory_iterator(docs, ec)) {
      if (entry.path().extension() == ".md") {
        out.push_back(
            fs::relative(entry.path(), fs::path(root), ec).generic_string());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool rule_selected(const Rule& rule,
                   const std::vector<std::string>& only_rules) {
  if (only_rules.empty()) return true;
  return std::find(only_rules.begin(), only_rules.end(), rule.id()) !=
         only_rules.end();
}

/// The shared three-stage pipeline over already-constructed files.
void lint_pipeline(const RuleRegistry& registry, LintContext& ctx,
                   const std::vector<std::unique_ptr<SourceFile>>& files,
                   const std::vector<std::string>& only_rules,
                   std::vector<Diagnostic>& out) {
  // Stage 1: per-file rules.
  for (const auto& file : files) {
    for (const auto& rule : registry.rules()) {
      if (rule->whole_program()) continue;
      if (!rule_selected(*rule, only_rules)) continue;
      if (rule->file_class() != file->file_class()) continue;
      if (!rule->applies_to(file->relpath())) continue;
      rule->check(ctx, *file, out);
    }
  }

  // Stage 2: whole-program rules over the complete scanned set.
  const bool any_program =
      std::any_of(registry.rules().begin(), registry.rules().end(),
                  [&](const std::unique_ptr<Rule>& r) {
                    return r->whole_program() && rule_selected(*r, only_rules);
                  });
  if (any_program) {
    std::vector<const SourceFile*> ptrs;
    ptrs.reserve(files.size());
    for (const auto& f : files) ptrs.push_back(f.get());
    const Program program = build_program(ptrs);
    for (const auto& rule : registry.rules()) {
      if (!rule->whole_program()) continue;
      if (!rule_selected(*rule, only_rules)) continue;
      rule->check_program(ctx, program, out);
    }
  }

  // Stage 3: stale-certificate audit — only on full-registry runs;
  // under --rules filtering most certificates are trivially unused.
  if (only_rules.empty()) {
    std::vector<const SourceFile*> ptrs;
    ptrs.reserve(files.size());
    for (const auto& f : files) ptrs.push_back(f.get());
    audit_stale_allows(ctx, ptrs, out);
  }
}

}  // namespace

LintResult lint_files(const RuleRegistry& registry, const LintOptions& options,
                      const std::vector<MemoryFile>& inputs) {
  // mstv-lint: allow(DET-CLOCK) — the engine reports its own wall time
  // (CI budgets the scan); timing the tool is not part of any verifier
  // result, and obs is a library layer this standalone binary stays off.
  const auto t0 = std::chrono::steady_clock::now();

  AllowUsage usage;
  LintContext ctx;
  ctx.root = options.root;
  ctx.known_rules = registry.ids();
  ctx.used_allows = &usage;

  std::vector<std::unique_ptr<SourceFile>> files;
  files.reserve(inputs.size());
  for (const MemoryFile& in : inputs) {
    files.push_back(std::make_unique<SourceFile>(in.relpath, in.content,
                                                 classify(in.relpath)));
  }

  LintResult result;
  result.files_scanned = files.size();
  result.report_suppressions = options.report_suppressions;
  lint_pipeline(registry, ctx, files, options.only_rules, result.diagnostics);

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.col, a.rule) <
                     std::tie(b.file, b.line, b.col, b.rule);
            });

  if (options.report_suppressions) {
    for (const auto& file : files) {
      const auto& allows = file->allows();
      for (std::size_t i = 0; i < allows.size(); ++i) {
        SuppressionRecord rec;
        rec.file = file->relpath();
        rec.line = allows[i].line;
        rec.rules = allows[i].spelling;
        rec.justification = allows[i].justification;
        rec.used = usage.count({file.get(), i}) != 0;
        result.suppressions.push_back(std::move(rec));
      }
    }
    std::sort(result.suppressions.begin(), result.suppressions.end(),
              [](const SuppressionRecord& a, const SuppressionRecord& b) {
                return std::tie(a.file, a.line) < std::tie(b.file, b.line);
              });
  }

  // mstv-lint: allow(DET-CLOCK) — closes the engine_ms measurement
  // opened above; same certificate, same reasoning.
  const auto t1 = std::chrono::steady_clock::now();
  result.engine_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return result;
}

void lint_content(const RuleRegistry& registry, const LintContext& ctx,
                  const std::string& relpath, const std::string& content,
                  const std::vector<std::string>& only_rules,
                  std::vector<Diagnostic>& out) {
  LintOptions options;
  options.root = ctx.root;
  options.only_rules = only_rules;
  LintResult result =
      lint_files(registry, options, {MemoryFile{relpath, content}});
  for (Diagnostic& d : result.diagnostics) out.push_back(std::move(d));
}

LintResult run_lint(const RuleRegistry& registry, const LintOptions& options) {
  const std::vector<std::string> names =
      options.files.empty() ? default_scan(options.root) : options.files;
  std::vector<MemoryFile> inputs;
  inputs.reserve(names.size());
  for (const std::string& rel : names) {
    inputs.push_back(MemoryFile{rel, slurp(fs::path(options.root) / rel)});
  }
  return lint_files(registry, options, inputs);
}

std::string to_text(const LintResult& result) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    out << d.file << ':' << d.line << ':' << d.col << ": [" << d.rule << "] "
        << d.message << '\n';
  }
  out << (result.diagnostics.empty() ? "mstv-lint: clean ("
                                     : "mstv-lint: FAILED (")
      << result.diagnostics.size() << " violation"
      << (result.diagnostics.size() == 1 ? "" : "s") << ", "
      << result.files_scanned << " files scanned, engine "
      << static_cast<long>(result.engine_ms) << " ms)\n";
  if (result.report_suppressions) {
    for (const SuppressionRecord& s : result.suppressions) {
      out << s.file << ':' << s.line << ": allow(" << s.rules << ") ["
          << (s.used ? "used" : "stale") << "] " << s.justification << '\n';
    }
    out << result.suppressions.size() << " suppression"
        << (result.suppressions.size() == 1 ? "" : "s") << " on record\n";
  }
  return out.str();
}

std::string to_json(const LintResult& result) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << result.files_scanned
      << ",\n  \"engine_ms\": " << static_cast<long>(result.engine_ms * 1000) / 1000.0
      << ",\n  \"violations\": [";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    out << (i == 0 ? "" : ",") << "\n    {\"rule\": \"" << json_escape(d.rule)
        << "\", \"file\": \"" << json_escape(d.file)
        << "\", \"line\": " << d.line << ", \"col\": " << d.col
        << ", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  out << (result.diagnostics.empty() ? "]" : "\n  ]");
  if (result.report_suppressions) {
    out << ",\n  \"suppressions\": [";
    for (std::size_t i = 0; i < result.suppressions.size(); ++i) {
      const SuppressionRecord& s = result.suppressions[i];
      out << (i == 0 ? "" : ",") << "\n    {\"file\": \""
          << json_escape(s.file) << "\", \"line\": " << s.line
          << ", \"rules\": \"" << json_escape(s.rules)
          << "\", \"used\": " << (s.used ? "true" : "false")
          << ", \"justification\": \"" << json_escape(s.justification)
          << "\"}";
    }
    out << (result.suppressions.empty() ? "]" : "\n  ]");
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace mstv::lint
