#include "lint/source_file.hpp"

#include <algorithm>
#include <cctype>

namespace mstv::lint {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

// Strips the leading justification separator: an em dash (UTF-8
// \xe2\x80\x94), one or more '-', or a ':'.  Returns the remainder.
std::string_view strip_separator(std::string_view s) {
  s = trim(s);
  if (s.size() >= 3 && s.substr(0, 3) == "\xe2\x80\x94") {
    return trim(s.substr(3));
  }
  if (!s.empty() && s.front() == ':') return trim(s.substr(1));
  if (!s.empty() && s.front() == '-') {
    while (!s.empty() && s.front() == '-') s.remove_prefix(1);
    return trim(s);
  }
  return s;  // no separator — any text still counts as justification
}

}  // namespace

SourceFile::SourceFile(std::string relpath, std::string text,
                       FileClass file_class)
    : relpath_(std::move(relpath)), text_(std::move(text)), class_(file_class) {
  line_offsets_.push_back(0);
  for (std::size_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n') line_offsets_.push_back(i + 1);
  }
  if (class_ == FileClass::Cxx) stream_ = lex(text_);
  parse_directives();
}

void SourceFile::parse_directives() {
  constexpr std::string_view kPrefix = "mstv-lint:";

  auto handle = [&](std::string_view body, int line, int end_line, int col,
                    bool own_line) {
    const std::size_t at = body.find(kPrefix);
    if (at == std::string_view::npos) return;
    std::string_view rest = trim(body.substr(at + kPrefix.size()));

    if (rest.rfind("hot-path-file", 0) == 0) {
      hot_path_file_ = true;
      return;
    }
    if (rest.rfind("allow", 0) != 0) return;
    rest = trim(rest.substr(5));

    Allow allow;
    allow.line = line;
    allow.end_line = end_line;
    allow.col = col;
    allow.own_line = own_line;
    if (!rest.empty() && rest.front() == '(') {
      const std::size_t close = rest.find(')');
      if (close != std::string_view::npos) {
        allow.spelling = std::string(trim(rest.substr(1, close - 1)));
        std::string_view inner(allow.spelling);
        while (!inner.empty()) {
          std::size_t comma = inner.find(',');
          if (comma == std::string_view::npos) comma = inner.size();
          const std::string_view one = trim(inner.substr(0, comma));
          if (!one.empty()) allow.rules.emplace_back(one);
          inner = comma < inner.size() ? inner.substr(comma + 1)
                                       : std::string_view{};
        }
        allow.justification =
            std::string(strip_separator(rest.substr(close + 1)));
      }
    }
    allows_.push_back(std::move(allow));
  };

  if (class_ == FileClass::Cxx) {
    // Directives live in comments only: a string literal that merely
    // mentions the syntax (this tool's own parser, say) is not a
    // certificate.
    for (const Comment& c : stream_.comments) {
      handle(c.text, c.line, c.end_line, c.col, c.own_line);
    }
    // A directive anywhere in a block of consecutive whole-line comments
    // covers the code right below the block: extend each own-line allow
    // through the adjacent own-line comments that follow it.
    for (Allow& a : allows_) {
      if (!a.own_line) continue;
      bool grew = true;
      while (grew) {
        grew = false;
        for (const Comment& c : stream_.comments) {
          if (c.own_line && c.line == a.end_line + 1) {
            a.end_line = c.end_line;
            grew = true;
          }
        }
      }
    }
  } else {
    // Markdown: scan raw lines (directives ride in `<!-- ... -->`).
    // Fenced code blocks are skipped: a directive displayed inside
    // ```…``` is the manual *mentioning* the syntax, not a live
    // certificate — parsing it would flag every doc example as stale.
    int line = 1;
    std::size_t start = 0;
    bool in_fence = false;
    while (start <= text_.size()) {
      std::size_t end = text_.find('\n', start);
      if (end == std::string::npos) end = text_.size();
      const std::string_view row(text_.data() + start, end - start);
      const std::string_view lead = trim(row);
      if (lead.rfind("```", 0) == 0 || lead.rfind("~~~", 0) == 0) {
        in_fence = !in_fence;
      } else if (!in_fence) {
        handle(row, line, line, 1, /*own_line=*/lead.rfind("<!--", 0) == 0);
      }
      if (end == text_.size()) break;
      start = end + 1;
      ++line;
    }
  }
}

std::size_t SourceFile::suppressing_allow(std::string_view rule,
                                          int line) const {
  for (std::size_t i = 0; i < allows_.size(); ++i) {
    const Allow& a = allows_[i];
    if (a.justification.empty()) continue;
    if (std::find(a.rules.begin(), a.rules.end(), rule) == a.rules.end()) {
      continue;
    }
    if ((line >= a.line && line <= a.end_line) ||
        (a.own_line && line == a.end_line + 1)) {
      return i;
    }
  }
  return npos;
}

std::string_view SourceFile::line_text(int line) const {
  if (line < 1 || static_cast<std::size_t>(line) > line_offsets_.size()) {
    return {};
  }
  const std::size_t begin = line_offsets_[static_cast<std::size_t>(line) - 1];
  std::size_t end = text_.find('\n', begin);
  if (end == std::string::npos) end = text_.size();
  return std::string_view(text_.data() + begin, end - begin);
}

}  // namespace mstv::lint
