#include "lint/rule.hpp"

#include <utility>

namespace mstv::lint {

bool certificate_covers(const LintContext& ctx, const SourceFile& file,
                        std::string_view rule, int line) {
  const std::size_t at = file.suppressing_allow(rule, line);
  if (at == SourceFile::npos) return false;
  if (ctx.used_allows != nullptr) ctx.used_allows->emplace(&file, at);
  return true;
}

void Rule::report(const LintContext& ctx, const SourceFile& file, int line,
                  int col, std::string message,
                  std::vector<Diagnostic>& out) const {
  if (certificate_covers(ctx, file, id(), line)) return;
  out.push_back(Diagnostic{std::string(id()), file.relpath(), line, col,
                           std::move(message)});
}

void RuleRegistry::add(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

std::vector<std::string> RuleRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const auto& r : rules_) out.emplace_back(r->id());
  return out;
}

RuleRegistry RuleRegistry::builtin() {
  RuleRegistry reg;
  for (auto* family :
       {&make_det_rules, &make_hot_rules, &make_obs_rules, &make_docs_rules,
        &make_arch_rules, &make_reach_rules, &make_meta_rules}) {
    for (auto& rule : (*family)()) reg.add(std::move(rule));
  }
  return reg;
}

}  // namespace mstv::lint
