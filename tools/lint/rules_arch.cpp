// ARCH rule family: the module layering contract, enforced over the
// whole-program include graph.
//
//   ARCH-LAYER — three obligations, all derived from the normative DAG
//                in tools/lint/layers.txt (mirrored with rationale in
//                docs/architecture.md):
//                  * an `#include` from one src/ module into another is
//                    legal only when the target sits in the including
//                    module's allowed dependency cone (the
//                    reflexive-transitive closure of its declared
//                    direct deps);
//                  * every directory under src/ must be declared in the
//                    DAG — an undeclared module has no place in the
//                    architecture, which is how layering erodes;
//                  * the header include graph must be acyclic (a cycle
//                    is unbuildable layering no DAG can bless).
//
// Findings attach to a concrete include line (or the module's first
// file), so the usual allow() certificate machinery applies.
#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "lint/program.hpp"
#include "lint/rule.hpp"

namespace mstv::lint {

namespace {

constexpr std::string_view kLayersPath = "tools/lint/layers.txt";

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

struct LayerSpec {
  // module -> direct declared deps, in declaration order.
  std::vector<std::pair<std::string, std::vector<std::string>>> modules;
  bool loaded = false;

  [[nodiscard]] bool declared(std::string_view module) const {
    return std::any_of(modules.begin(), modules.end(),
                       [&](const auto& m) { return m.first == module; });
  }
};

LayerSpec load_layers(const std::string& root) {
  LayerSpec spec;
  std::ifstream in(root + "/" + std::string(kLayersPath));
  if (!in) return spec;
  spec.loaded = true;
  std::string row;
  while (std::getline(in, row)) {
    const std::size_t hash = row.find('#');
    if (hash != std::string::npos) row.resize(hash);
    const std::size_t colon = row.find(':');
    if (colon == std::string::npos) continue;
    std::string module = row.substr(0, colon);
    module.erase(0, module.find_first_not_of(" \t"));
    module.erase(module.find_last_not_of(" \t") + 1);
    if (module.empty()) continue;
    std::vector<std::string> deps;
    std::istringstream rest(row.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.push_back(dep);
    spec.modules.emplace_back(std::move(module), std::move(deps));
  }
  return spec;
}

// Reflexive-transitive closure of the declared DAG, by fixpoint (which
// terminates even if the declaration accidentally contains a cycle).
std::map<std::string, std::set<std::string>> closure_of(
    const LayerSpec& spec) {
  std::map<std::string, std::set<std::string>> cone;
  for (const auto& [module, deps] : spec.modules) {
    cone[module].insert(module);
    cone[module].insert(deps.begin(), deps.end());
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (auto& [module, reach] : cone) {
      const std::set<std::string> snapshot = reach;
      for (const std::string& dep : snapshot) {
        const auto it = cone.find(dep);
        if (it == cone.end()) continue;
        for (const std::string& transitive : it->second) {
          grew = reach.insert(transitive).second || grew;
        }
      }
    }
  }
  return cone;
}

// Longest declared module prefix matching a src-relative directory
// (`runtime/mp` beats `runtime` for src/runtime/mp/worker.cpp), or ""
// when the file's module is not declared at all.
std::string module_of(const LayerSpec& spec, std::string_view relpath) {
  if (!starts_with(relpath, "src/")) return {};
  const std::string_view tail = relpath.substr(4);
  const std::size_t slash = tail.rfind('/');
  if (slash == std::string_view::npos) return {};  // file directly in src/
  const std::string_view dir = tail.substr(0, slash);
  std::string best;
  for (const auto& [module, deps] : spec.modules) {
    if (module.size() <= best.size()) continue;
    if (dir == module ||
        (dir.size() > module.size() && starts_with(dir, module) &&
         dir[module.size()] == '/')) {
      best = module;
    }
  }
  return best;
}

class ArchLayerRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "ARCH-LAYER"; }
  [[nodiscard]] std::string_view summary() const override {
    return "src/ includes must follow the layer DAG in tools/lint/layers.txt "
           "(declared modules, legal edges, no cycles)";
  }
  [[nodiscard]] bool whole_program() const override { return true; }

  void check_program(const LintContext& ctx, const Program& program,
                     std::vector<Diagnostic>& out) const override {
    const LayerSpec spec = load_layers(ctx.root);
    if (!spec.loaded) {
      out.push_back(Diagnostic{
          std::string(id()), std::string(kLayersPath), 1, 1,
          "cannot read the layer DAG; the ARCH-LAYER contract is "
          "unenforceable without it"});
      return;
    }
    const auto cone = closure_of(spec);

    // Obligation 1: every src/ module is declared.  Report once per
    // module, anchored to its first scanned file.
    std::set<std::string> reported_undeclared;
    for (const SourceFile* file : program.files) {
      if (file->file_class() != FileClass::Cxx) continue;
      if (!starts_with(file->relpath(), "src/")) continue;
      if (!module_of(spec, file->relpath()).empty()) continue;
      const std::string_view tail =
          std::string_view(file->relpath()).substr(4);
      const std::size_t slash = tail.find('/');
      if (slash == std::string_view::npos) continue;
      const std::string top(tail.substr(0, slash));
      if (!reported_undeclared.insert(top).second) continue;
      report(ctx, *file, 1, 1,
             "module '" + top + "' (src/" + top + "/) is not declared in " +
                 std::string(kLayersPath) +
                 "; every src module must have a place in the layer DAG",
             out);
    }

    // Obligation 2: every resolved src -> src include edge is inside
    // the including module's dependency cone.
    for (const IncludeEdge& edge : program.includes.edges()) {
      if (edge.target.empty()) continue;
      if (!starts_with(edge.from, "src/") ||
          !starts_with(edge.target, "src/")) {
        continue;
      }
      const std::string from_mod = module_of(spec, edge.from);
      const std::string to_mod = module_of(spec, edge.target);
      if (from_mod.empty() || to_mod.empty()) continue;  // obligation 1
      const auto it = cone.find(from_mod);
      if (it != cone.end() && it->second.count(to_mod) != 0) continue;
      const SourceFile* file = program.find(edge.from);
      if (file == nullptr) continue;
      report(ctx, *file, edge.line, 1,
             "include of '" + edge.target + "' puts module '" + from_mod +
                 "' outside its allowed dependency cone (module '" + to_mod +
                 "' is not reachable from '" + from_mod + "' in " +
                 std::string(kLayersPath) + ")",
             out);
    }

    // Obligation 3: the include graph is acyclic.
    for (const std::vector<std::string>& cycle : program.includes.cycles()) {
      const SourceFile* file = program.find(cycle.front());
      if (file == nullptr) continue;
      int line = 1;
      for (const IncludeEdge* e :
           program.includes.edges_from(cycle.front())) {
        if (cycle.size() > 1 && e->target == cycle[1]) {
          line = e->line;
          break;
        }
      }
      std::string path;
      for (const std::string& hop : cycle) {
        if (!path.empty()) path += " -> ";
        path += hop;
      }
      report(ctx, *file, line, 1,
             "include cycle: " + path + "; the include graph must be acyclic",
             out);
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_arch_rules() {
  std::vector<std::unique_ptr<Rule>> out;
  out.push_back(std::make_unique<ArchLayerRule>());
  return out;
}

}  // namespace mstv::lint
