// DOCS rule family: documentation must not rot against the tree.
//
//   DOCS-PATH-REFS — every `src/...`, `docs/...`, `tools/...`,
//                    `tests/...`, `bench/...` or `examples/...` path
//                    mentioned in the scanned markdown must exist in the
//                    repository.  Glob references
//                    (`src/plscheme/mst_scheme.*`, `src/lowerbound/*`)
//                    pass iff they match at least one entry; a reference
//                    to a bench/example *target* passes when the
//                    same-named `.cpp` exists.  References into `build/`
//                    are usage examples, not source paths — out of scope.
//
// This is the engine port of the original tools/check_docs_refs.sh grep,
// with real line numbers in diagnostics.
#include <cctype>
#include <filesystem>
#include <memory>
#include <string>

#include "lint/rule.hpp"

namespace mstv::lint {

namespace fs = std::filesystem;

namespace {

bool ref_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == '/' || c == '*' || c == '-';
}

// Shell-style per-component match: `*` matches any run of non-separator
// characters; no other metacharacters are supported (none appear in the
// docs).
bool component_matches(std::string_view pattern, std::string_view name) {
  std::size_t p = 0;
  std::size_t n = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() && (pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool glob_exists(const fs::path& dir, std::string_view pattern) {
  const std::size_t slash = pattern.find('/');
  const std::string_view head = pattern.substr(0, slash);
  std::error_code ec;
  if (head.find('*') == std::string_view::npos) {
    const fs::path next = dir / std::string(head);
    if (slash == std::string_view::npos) return fs::exists(next, ec);
    return glob_exists(next, pattern.substr(slash + 1));
  }
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!component_matches(head, name)) continue;
    if (slash == std::string_view::npos) return true;
    if (glob_exists(entry.path(), pattern.substr(slash + 1))) return true;
  }
  return false;
}

bool reference_resolves(const std::string& root, std::string_view ref) {
  if (ref.find('*') != std::string_view::npos) {
    return glob_exists(fs::path(root), ref);
  }
  std::error_code ec;
  if (fs::exists(fs::path(root) / std::string(ref), ec)) return true;
  // Bench/example binaries are referenced by target name; accept when the
  // same-named source exists (bench/bench_foo -> bench/bench_foo.cpp).
  return fs::exists(fs::path(root) / (std::string(ref) + ".cpp"), ec);
}

class DocsPathRefsRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "DOCS-PATH-REFS";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "repo paths referenced from markdown must exist "
           "(globs must match at least one entry)";
  }
  [[nodiscard]] FileClass file_class() const override {
    return FileClass::Markdown;
  }
  [[nodiscard]] bool applies_to(std::string_view relpath) const override {
    return relpath.size() > 3 &&
           relpath.substr(relpath.size() - 3) == ".md";
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    static constexpr std::string_view kTopDirs[] = {
        "src/", "docs/", "tools/", "tests/", "bench/", "examples/"};

    const std::string& text = file.text();
    int line = 1;
    std::size_t start = 0;
    while (start <= text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      scan_line(ctx, file, std::string_view(text.data() + start, end - start),
                line, kTopDirs, out);
      if (end == text.size()) break;
      start = end + 1;
      ++line;
    }
  }

 private:
  void scan_line(const LintContext& ctx, const SourceFile& file,
                 std::string_view row, int line,
                 const std::string_view (&top_dirs)[6],
                 std::vector<Diagnostic>& out) const {
    // Lint-internal plumbing: a fixture's pretend-path marker is not a
    // documentation reference.
    if (row.find("mstv-lint-fixture:") != std::string_view::npos) return;
    for (std::size_t i = 0; i < row.size(); ++i) {
      // A reference starts at a word boundary; `/` counts as a ref char,
      // so paths under build/ (usage examples) never match a top dir.
      if (i > 0 && ref_char(row[i - 1])) continue;
      std::string_view match;
      for (std::string_view dir : top_dirs) {
        if (row.substr(i).rfind(dir, 0) == 0) {
          match = dir;
          break;
        }
      }
      if (match.empty()) continue;
      std::size_t len = 0;
      while (i + len < row.size() && ref_char(row[i + len])) ++len;
      std::string_view ref = row.substr(i, len);
      const int col = static_cast<int>(i) + 1;
      i += len - 1;  // resume after the reference (loop ++ steps past)
      // Trim punctuation the scan drags in from prose: a sentence-ending
      // "." or a directory spelled with a trailing "/".
      while (!ref.empty() && (ref.back() == '.' || ref.back() == '/')) {
        ref.remove_suffix(1);
      }
      if (ref.size() <= match.size()) continue;  // bare "src/" mention
      if (reference_resolves(ctx.root, ref)) continue;
      report(ctx, file, line, col,
             "dangling reference: `" + std::string(ref) +
                 "` does not exist in the tree",
             out);
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_docs_rules() {
  std::vector<std::unique_ptr<Rule>> out;
  out.push_back(std::make_unique<DocsPathRefsRule>());
  return out;
}

}  // namespace mstv::lint
