#include "lint/include_graph.hpp"

#include <algorithm>
#include <set>

namespace mstv::lint {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string dirname_of(std::string_view relpath) {
  const std::size_t slash = relpath.rfind('/');
  if (slash == std::string_view::npos) return {};
  return std::string(relpath.substr(0, slash));
}

// Joins and lexically normalizes `dir / tail` ("a/b" + "../c" -> "a/c").
std::string join_normalized(std::string_view dir, std::string_view tail) {
  std::vector<std::string_view> parts;
  auto push_all = [&](std::string_view p) {
    std::size_t start = 0;
    while (start <= p.size()) {
      std::size_t end = p.find('/', start);
      if (end == std::string_view::npos) end = p.size();
      const std::string_view seg = p.substr(start, end - start);
      if (seg == "..") {
        if (!parts.empty()) parts.pop_back();
      } else if (!seg.empty() && seg != ".") {
        parts.push_back(seg);
      }
      if (end == p.size()) break;
      start = end + 1;
    }
  };
  push_all(dir);
  push_all(tail);
  std::string out;
  for (const std::string_view seg : parts) {
    if (!out.empty()) out.push_back('/');
    out.append(seg);
  }
  return out;
}

}  // namespace

std::vector<IncludeEdge> parse_includes(const SourceFile& file) {
  std::vector<IncludeEdge> out;
  const std::string& text = file.text();
  int line = 1;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string_view row =
        trim(std::string_view(text.data() + start, end - start));
    if (!row.empty() && row.front() == '#') {
      row = trim(row.substr(1));
      if (row.rfind("include", 0) == 0) {
        row = trim(row.substr(7));
        if (!row.empty() && (row.front() == '"' || row.front() == '<')) {
          const char close = row.front() == '"' ? '"' : '>';
          const std::size_t at = row.find(close, 1);
          if (at != std::string_view::npos) {
            IncludeEdge edge;
            edge.from = file.relpath();
            edge.spelling = std::string(row.substr(1, at - 1));
            edge.line = line;
            edge.quoted = row.front() == '"';
            out.push_back(std::move(edge));
          }
        }
      }
    }
    if (end == text.size()) break;
    start = end + 1;
    ++line;
  }
  return out;
}

IncludeGraph IncludeGraph::build(const std::vector<const SourceFile*>& files) {
  IncludeGraph graph;
  std::set<std::string, std::less<>> known;
  for (const SourceFile* f : files) known.insert(f->relpath());

  for (const SourceFile* f : files) {
    for (IncludeEdge edge : parse_includes(*f)) {
      if (edge.quoted) {
        // The build's include roots, in the compiler's quoted-include
        // order: the including file's directory first, then -I roots.
        for (const std::string& cand :
             {join_normalized(dirname_of(edge.from), edge.spelling),
              join_normalized("src", edge.spelling),
              join_normalized("tools", edge.spelling)}) {
          if (known.count(cand) != 0) {
            edge.target = cand;
            break;
          }
        }
      }
      graph.edges_.push_back(std::move(edge));
    }
  }
  // by_file_ holds pointers into edges_; fill only once edges_ is final.
  for (const IncludeEdge& e : graph.edges_) {
    graph.by_file_[e.from].push_back(&e);
  }
  return graph;
}

const std::vector<const IncludeEdge*>& IncludeGraph::edges_from(
    std::string_view relpath) const {
  static const std::vector<const IncludeEdge*> kEmpty;
  const auto it = by_file_.find(relpath);
  return it == by_file_.end() ? kEmpty : it->second;
}

std::vector<std::vector<std::string>> IncludeGraph::cycles() const {
  // Iterative DFS over resolved edges; every back edge closes one cycle.
  // Files are visited in sorted order and each cycle is canonicalized
  // (rotated to its smallest member) and deduplicated, so the output is
  // stable across runs.
  std::vector<std::string> files;
  for (const auto& [file, edges] : by_file_) files.push_back(file);

  std::set<std::vector<std::string>> seen;
  std::vector<std::vector<std::string>> out;
  std::map<std::string, int, std::less<>> state;  // 0 new, 1 open, 2 done

  std::vector<std::string> path;
  // Recursive lambda flattened into an explicit stack of (file, edge idx).
  for (const std::string& root : files) {
    if (state[root] != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(root, 0);
    state[root] = 1;
    path.push_back(root);
    while (!stack.empty()) {
      auto& [file, next] = stack.back();
      const auto& edges = edges_from(file);
      if (next >= edges.size()) {
        state[file] = 2;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const IncludeEdge* e = edges[next++];
      if (e->target.empty()) continue;
      const int s = state[e->target];
      if (s == 1) {
        // Back edge: the cycle is the path suffix from target onward.
        const auto at = std::find(path.begin(), path.end(), e->target);
        std::vector<std::string> cycle(at, path.end());
        const auto low = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), low, cycle.end());
        cycle.push_back(cycle.front());
        if (seen.insert(cycle).second) out.push_back(cycle);
      } else if (s == 0) {
        state[e->target] = 1;
        path.push_back(e->target);
        stack.emplace_back(e->target, 0);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mstv::lint
