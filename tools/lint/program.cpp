#include "lint/program.hpp"

namespace mstv::lint {

Program build_program(const std::vector<const SourceFile*>& files) {
  Program prog;
  prog.files = files;
  prog.includes = IncludeGraph::build(files);
  for (const SourceFile* f : files) {
    if (f->file_class() != FileClass::Markdown) {
      prog.symbols.push_back(index_symbols(*f));
    }
  }
  prog.calls = CallGraph(prog.symbols);
  return prog;
}

}  // namespace mstv::lint
