#include "lint/symbols.hpp"

#include <set>

namespace mstv::lint {

namespace {

// Keywords that take a parenthesised clause but never name a function.
const std::set<std::string, std::less<>>& control_keywords() {
  static const std::set<std::string, std::less<>> kWords = {
      "if",       "for",          "while",    "switch",    "catch",
      "return",   "sizeof",       "alignof",  "alignas",   "decltype",
      "noexcept", "static_assert","typeid",   "throw",     "new",
      "delete",   "co_await",     "co_yield", "co_return", "constexpr",
      "requires"};
  return kWords;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::Punct && t.text == text;
}

// Skips a balanced (...) starting at `open` (which must index a `(`).
// Returns the index one past the matching `)`, or toks.size() if it
// never closes.
std::size_t skip_parens(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (is_punct(toks[j], "(")) ++depth;
    if (is_punct(toks[j], ")") && --depth == 0) return j + 1;
  }
  return toks.size();
}

// After the parameter `)`, decides whether a definition body follows.
// Accepts the declaration tails the tree actually uses: cv/ref
// qualifiers, noexcept(...), override/final, trailing return types, and
// paren-style member-initializer lists.  Returns the token index of the
// body `{`, or npos when this is a call / declaration / something else.
std::size_t find_body_brace(const std::vector<Token>& toks,
                            std::size_t after_params) {
  for (std::size_t j = after_params; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "{")) return j;
    if (is_punct(t, ";") || is_punct(t, "=")) return std::string::npos;
    if (t.kind == TokKind::Identifier || t.kind == TokKind::Number ||
        t.kind == TokKind::String) {
      continue;  // noexcept, const, override, trailing type names, ...
    }
    if (is_punct(t, "(")) {  // noexcept(...), member-init `ctx(c)`
      j = skip_parens(toks, j) - 1;
      continue;
    }
    if (is_punct(t, "::") || is_punct(t, "->") || is_punct(t, ":") ||
        is_punct(t, ",") || is_punct(t, "&") || is_punct(t, "*") ||
        is_punct(t, "<") || is_punct(t, ">") || is_punct(t, "[") ||
        is_punct(t, "]")) {
      continue;
    }
    return std::string::npos;  // an operator: this was an expression
  }
  return std::string::npos;
}

std::size_t matching_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (is_punct(toks[j], "{")) ++depth;
    if (is_punct(toks[j], "}") && --depth == 0) return j;
  }
  return toks.size() - 1;
}

}  // namespace

bool call_like(const std::vector<Token>& toks, std::size_t i) {
  const Token& t = toks[i];
  if (t.kind != TokKind::Identifier) return false;
  if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) return false;
  return control_keywords().count(t.text) == 0;
}

FileSymbols index_symbols(const SourceFile& file) {
  FileSymbols out;
  out.file = &file;
  const auto& toks = file.tokens();

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!call_like(toks, i)) continue;
    // `operator()` definitions and friends: skip — the reach rules only
    // traverse named calls, which never spell `operator`.
    if (toks[i].text == "operator") continue;
    const std::size_t after = skip_parens(toks, i + 1);
    if (after >= toks.size()) continue;
    const std::size_t body = find_body_brace(toks, after);
    if (body == std::string::npos) continue;

    FunctionDef def;
    def.name = toks[i].text;
    def.file = &file;
    def.line = toks[i].line;
    def.body_begin = body;
    def.body_end = matching_brace(toks, body);
    for (std::size_t j = body + 1; j < def.body_end; ++j) {
      if (!call_like(toks, j)) continue;
      CallSite call;
      call.callee = toks[j].text;
      call.line = toks[j].line;
      call.col = toks[j].col;
      call.member = j > 0 && (is_punct(toks[j - 1], ".") ||
                              is_punct(toks[j - 1], "->"));
      def.calls.push_back(std::move(call));
    }
    out.defs.push_back(std::move(def));
  }
  return out;
}

}  // namespace mstv::lint
