// REACH rule family: the determinism and hot-path contracts extended
// through the call graph, plus the fork-safety contract for the
// multi-process worker.  The per-file DET/HOT rules catch a primitive
// used *at* a guarded site; these rules catch the same primitives made
// reachable *from* one through helper calls.
//
//   DET-REACH    — a call inside a result-producing entry point (mark,
//                  run_verifier, update_and_repair) transitively reaches
//                  ambient entropy or a clock read.  Reported at the
//                  call site in the entry point, with the offending
//                  chain and primitive in the message.
//   HOT-REACH    — a call inside a for_each_shard / sharded_reduce
//                  lambda transitively reaches a lock acquisition or a
//                  blocking syscall (poll/read/write/file-stream I/O).
//                  Reported at the call site inside the lambda.
//   MP-FORK-SAFE — src/runtime/mp/ runs between fork() and exec-less
//                  _exit(); code there may not spawn threads, call
//                  exit() (atexit handlers + double-flushed stdio
//                  inherited from the parent), or use stdio streams.
//
// Resolution is name-based and over-approximate (see callgraph.hpp):
// a REACH finding means "some definition with this call chain's names
// contains the primitive".  Certificates are honored at either end —
// an allow(DET-REACH/HOT-REACH) at the call site, or an allow() for
// the per-file rule (DET-RAND, DET-CLOCK, HOT-MUTEX, HOT-REACH) at the
// primitive site, certifies every path through it.
#include <map>
#include <memory>
#include <set>
#include <string>

#include "lint/program.hpp"
#include "lint/rule.hpp"

namespace mstv::lint {

namespace {

constexpr std::size_t kMaxDepth = 16;

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool det_exempt_path(std::string_view relpath) {
  return starts_with(relpath, "src/obs/") || starts_with(relpath, "bench/");
}

bool preprocessor_line(const SourceFile& file, int line) {
  const std::string_view row = file.line_text(line);
  const std::size_t first = row.find_first_not_of(" \t");
  return first != std::string_view::npos && row[first] == '#';
}

// Keywords after which an unqualified call expression can directly
// follow (mirrors rules_det.cpp).
bool expression_keyword(std::string_view s) {
  return s == "return" || s == "co_return" || s == "co_yield" ||
         s == "co_await" || s == "throw" || s == "else" || s == "do" ||
         s == "case";
}

// Free-call test mirroring rules_det.cpp: not a member access, and any
// `::` qualifier is std:: or global (`return ::poll(...)`).
bool free_callee(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::Identifier) return expression_keyword(prev.text);
  if (prev.kind != TokKind::Punct) return true;
  if (prev.text == "." || prev.text == "->") return false;
  if (prev.text == "::") {
    if (i < 2) return true;
    const Token& qual = toks[i - 2];
    if (qual.kind != TokKind::Identifier) return true;
    return qual.text == "std" || expression_keyword(qual.text);
  }
  return true;
}

bool next_is(const std::vector<Token>& toks, std::size_t i,
             std::string_view punct) {
  return i + 1 < toks.size() && toks[i + 1].kind == TokKind::Punct &&
         toks[i + 1].text == punct;
}

/// One contract-violating primitive found in a definition body.
struct Primitive {
  std::string what;  // human-readable, e.g. "rand()"
  std::string rule;  // the per-file rule whose certificate covers it
  int line = 0;
};

const std::set<std::string, std::less<>>& det_rand_calls() {
  static const std::set<std::string, std::less<>> kCalls = {
      "rand", "srand", "rand_r", "srandom", "random", "drand48", "lrand48",
      "mrand48", "srand48"};
  return kCalls;
}

const std::set<std::string, std::less<>>& det_clock_types() {
  static const std::set<std::string, std::less<>> kTypes = {
      "steady_clock", "system_clock", "high_resolution_clock", "utc_clock",
      "file_clock"};
  return kTypes;
}

const std::set<std::string, std::less<>>& det_clock_calls() {
  static const std::set<std::string, std::less<>> kCalls = {
      "time", "clock", "gettimeofday", "clock_gettime", "localtime", "gmtime",
      "ftime"};
  return kCalls;
}

std::vector<Primitive> det_primitives(const FunctionDef& def) {
  std::vector<Primitive> out;
  const auto& toks = def.file->tokens();
  for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "random_device") {
      out.push_back(Primitive{"std::random_device", "DET-RAND", t.line});
    } else if (det_rand_calls().count(t.text) != 0 && next_is(toks, i, "(") &&
               free_callee(toks, i)) {
      out.push_back(Primitive{t.text + "()", "DET-RAND", t.line});
    } else if (det_clock_types().count(t.text) != 0 &&
               next_is(toks, i, "::") && i + 2 < toks.size() &&
               toks[i + 2].text == "now") {
      out.push_back(Primitive{t.text + "::now()", "DET-CLOCK", t.line});
    } else if (det_clock_calls().count(t.text) != 0 && next_is(toks, i, "(") &&
               free_callee(toks, i)) {
      out.push_back(Primitive{t.text + "()", "DET-CLOCK", t.line});
    }
  }
  return out;
}

const std::set<std::string, std::less<>>& lock_idents() {
  static const std::set<std::string, std::less<>> kIdents = {
      "mutex", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "shared_mutex", "recursive_mutex", "timed_mutex", "condition_variable",
      "condition_variable_any"};
  return kIdents;
}

const std::set<std::string, std::less<>>& blocking_calls() {
  static const std::set<std::string, std::less<>> kCalls = {
      "poll",    "ppoll",  "select", "epoll_wait", "read",    "write",
      "pread",   "pwrite", "recv",   "send",       "recvmsg", "sendmsg",
      "fsync",   "fdatasync", "fopen", "fread",    "fwrite",  "fgets",
      "sleep",   "usleep", "nanosleep", "sleep_for", "sleep_until"};
  return kCalls;
}

const std::set<std::string, std::less<>>& file_stream_types() {
  static const std::set<std::string, std::less<>> kTypes = {
      "ifstream", "ofstream", "fstream"};
  return kTypes;
}

std::vector<Primitive> hot_primitives(const FunctionDef& def) {
  std::vector<Primitive> out;
  const auto& toks = def.file->tokens();
  for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (preprocessor_line(*def.file, t.line)) continue;
    if (lock_idents().count(t.text) != 0) {
      out.push_back(Primitive{t.text, "HOT-MUTEX", t.line});
    } else if (t.text == "lock" && i > 0 &&
               toks[i - 1].kind == TokKind::Punct &&
               (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
               next_is(toks, i, "(")) {
      out.push_back(Primitive{".lock()", "HOT-MUTEX", t.line});
    } else if (file_stream_types().count(t.text) != 0) {
      out.push_back(Primitive{"std::" + t.text + " I/O", "HOT-REACH", t.line});
    } else if (blocking_calls().count(t.text) != 0 && next_is(toks, i, "(") &&
               free_callee(toks, i)) {
      out.push_back(Primitive{t.text + "()", "HOT-REACH", t.line});
    }
  }
  return out;
}

std::string chain_text(const std::vector<std::string>& chain) {
  std::string out;
  for (const std::string& hop : chain) {
    if (!out.empty()) out += " -> ";
    out += hop;
  }
  return out;
}

/// Memoized reachability per callee name (many call sites share callees).
class ReachCache {
 public:
  explicit ReachCache(const CallGraph& graph) : graph_(graph) {}
  const std::vector<CallGraph::Reached>& from(const std::string& callee) {
    const auto it = memo_.find(callee);
    if (it != memo_.end()) return it->second;
    return memo_.emplace(callee, graph_.reachable(callee, kMaxDepth))
        .first->second;
  }

 private:
  const CallGraph& graph_;
  std::map<std::string, std::vector<CallGraph::Reached>> memo_;
};

class DetReachRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "DET-REACH"; }
  [[nodiscard]] std::string_view summary() const override {
    return "entry points (mark, run_verifier, update_and_repair) must not "
           "transitively reach ambient entropy or clock reads";
  }
  [[nodiscard]] bool whole_program() const override { return true; }

  void check_program(const LintContext& ctx, const Program& program,
                     std::vector<Diagnostic>& out) const override {
    static const std::set<std::string, std::less<>> kEntries = {
        "mark", "run_verifier", "update_and_repair"};
    ReachCache cache(program.calls);
    for (const FunctionDef* def : program.calls.defs()) {
      if (kEntries.count(def->name) == 0) continue;
      if (!starts_with(def->file->relpath(), "src/")) continue;
      for (const CallSite& call : def->calls) {
        if (call.member) continue;
        if (certificate_covers(ctx, *def->file, id(), call.line)) continue;
        bool reported = false;
        for (const CallGraph::Reached& r : cache.from(call.callee)) {
          if (reported) break;
          const std::string& where = r.def->file->relpath();
          if (!starts_with(where, "src/") || det_exempt_path(where)) continue;
          for (const Primitive& p : det_primitives(*r.def)) {
            // A certificate at the primitive site (for the per-file rule
            // or for this one) certifies every path through it.
            if (certificate_covers(ctx, *r.def->file, p.rule, p.line) ||
                certificate_covers(ctx, *r.def->file, id(), p.line)) {
              continue;
            }
            report(ctx, *def->file, call.line, call.col,
                   "'" + def->name + "' reaches " + p.what + " at " + where +
                       ":" + std::to_string(p.line) + " via " +
                       chain_text(r.chain) +
                       "; entry points must be reproducible from their seed",
                   out);
            reported = true;  // one finding per call site
            break;
          }
        }
      }
    }
  }
};

class HotReachRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "HOT-REACH"; }
  [[nodiscard]] std::string_view summary() const override {
    return "shard lambdas must not transitively reach locks or blocking "
           "syscalls through helper calls";
  }
  [[nodiscard]] bool whole_program() const override { return true; }

  void check_program(const LintContext& ctx, const Program& program,
                     std::vector<Diagnostic>& out) const override {
    ReachCache cache(program.calls);
    for (const SourceFile* file : program.files) {
      if (file->file_class() != FileClass::Cxx) continue;
      if (!starts_with(file->relpath(), "src/")) continue;
      scan_file(ctx, *file, cache, out);
    }
  }

 private:
  void scan_file(const LintContext& ctx, const SourceFile& file,
                 ReachCache& cache, std::vector<Diagnostic>& out) const {
    const auto& toks = file.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Identifier) continue;
      if (toks[i].text != "for_each_shard" &&
          toks[i].text != "sharded_reduce") {
        continue;
      }
      if (!next_is(toks, i, "(")) continue;
      const std::string region = "lambda passed to " + toks[i].text;
      int paren = 0;
      int brace = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].kind == TokKind::Punct) {
          if (toks[j].text == "(") ++paren;
          if (toks[j].text == ")" && --paren == 0) break;
          if (toks[j].text == "{") ++brace;
          if (toks[j].text == "}") --brace;
          continue;
        }
        if (brace <= 0 || !call_like(toks, j)) continue;
        if (j > 0 && toks[j - 1].kind == TokKind::Punct &&
            (toks[j - 1].text == "." || toks[j - 1].text == "->")) {
          continue;  // member call: dynamic dispatch, not resolvable
        }
        check_call(ctx, file, toks[j], region, cache, out);
      }
    }
  }

  void check_call(const LintContext& ctx, const SourceFile& file,
                  const Token& call, const std::string& region,
                  ReachCache& cache, std::vector<Diagnostic>& out) const {
    if (certificate_covers(ctx, file, id(), call.line)) return;
    for (const CallGraph::Reached& r : cache.from(call.text)) {
      const std::string& where = r.def->file->relpath();
      if (!starts_with(where, "src/")) continue;
      for (const Primitive& p : hot_primitives(*r.def)) {
        if (certificate_covers(ctx, *r.def->file, p.rule, p.line) ||
            (p.rule != id() &&
             certificate_covers(ctx, *r.def->file, id(), p.line))) {
          continue;
        }
        report(ctx, file, call.line, call.col,
               "call to '" + call.text + "' in a " + region + " reaches " +
                   p.what + " at " + where + ":" + std::to_string(p.line) +
                   " via " + chain_text(r.chain) +
                   "; hot paths are lock-free and non-blocking by contract",
               out);
        return;  // one finding per call site
      }
    }
  }
};

class MpForkSafeRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "MP-FORK-SAFE";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "src/runtime/mp/ runs in a forked child: no thread spawns, no "
           "exit() (use _exit), no stdio streams";
  }
  [[nodiscard]] bool applies_to(std::string_view relpath) const override {
    return starts_with(relpath, "src/runtime/mp/");
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    static const std::set<std::string, std::less<>> kStdioCalls = {
        "printf", "fprintf", "vfprintf", "puts", "fputs", "putchar",
        "getchar", "scanf", "fscanf"};
    static const std::set<std::string, std::less<>> kStdioStreams = {
        "cout", "cerr", "clog", "cin"};
    const auto& toks = file.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier) continue;
      if (preprocessor_line(file, t.line)) continue;
      if ((t.text == "thread" || t.text == "jthread") && i >= 2 &&
          toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == "::" &&
          toks[i - 2].text == "std") {
        report(ctx, file, t.line, t.col,
               "std::" + t.text + " in the forked worker: the child owns "
                                  "exactly one thread; threads do not "
                                  "survive fork and must not be spawned "
                                  "after it",
               out);
      } else if (t.text == "pthread_create" && next_is(toks, i, "(")) {
        report(ctx, file, t.line, t.col,
               "pthread_create() in the forked worker: the child must stay "
               "single-threaded",
               out);
      } else if (t.text == "exit" && next_is(toks, i, "(") &&
                 free_callee(toks, i)) {
        report(ctx, file, t.line, t.col,
               "exit() in the forked worker runs atexit handlers and "
               "flushes stdio buffers inherited from the parent "
               "(double-output); use _exit()",
               out);
      } else if (kStdioCalls.count(t.text) != 0 && next_is(toks, i, "(") &&
                 free_callee(toks, i)) {
        report(ctx, file, t.line, t.col,
               "'" + t.text + "()' uses stdio in the forked worker; buffers "
                              "are shared with the parent at fork — write "
                              "through the wire protocol or raw fds",
               out);
      } else if (kStdioStreams.count(t.text) != 0 && i >= 2 &&
                 toks[i - 1].kind == TokKind::Punct &&
                 toks[i - 1].text == "::" && toks[i - 2].text == "std") {
        report(ctx, file, t.line, t.col,
               "std::" + t.text + " in the forked worker; stream buffers "
                                  "are shared with the parent at fork — "
                                  "write through the wire protocol or raw "
                                  "fds",
               out);
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_reach_rules() {
  std::vector<std::unique_ptr<Rule>> out;
  out.push_back(std::make_unique<DetReachRule>());
  out.push_back(std::make_unique<HotReachRule>());
  out.push_back(std::make_unique<MpForkSafeRule>());
  return out;
}

}  // namespace mstv::lint
