// mstv-lint — the project's native static analysis engine.
//
// Usage:
//   mstv-lint [--root=DIR] [--rules=ID[,ID...]] [--json]
//             [--report-suppressions] [files...]
//   mstv-lint --list-rules
//
// With no files, scans the default tree (src/, tools/, bench/, tests/,
// examples/ plus the documentation set).  Exit status: 0 clean,
// 1 violations found, 2 usage or I/O error.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint/engine.hpp"

namespace {

void split_csv(const std::string& csv, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (end == csv.size()) break;
    start = end + 1;
  }
}

int usage() {
  std::cerr
      << "usage: mstv-lint [--root=DIR] [--rules=ID[,ID...]] [--json] "
         "[--report-suppressions] [files...]\n"
         "       mstv-lint --list-rules\n"
         "Scans the tree (or the given repo-relative files) with the "
         "project's\nstatic-analysis rules; see docs/static_analysis.md.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mstv::lint;

  LintOptions options;
  bool json = false;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      return arg.substr(std::strlen(flag));
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--report-suppressions") {
      options.report_suppressions = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--root=", 0) == 0) {
      options.root = value("--root=");
    } else if (arg.rfind("--rules=", 0) == 0) {
      split_csv(value("--rules="), options.only_rules);
    } else if (arg == "--root" || arg == "--rules") {
      if (i + 1 >= argc) return usage();
      const std::string v = argv[++i];
      if (arg == "--root") {
        options.root = v;
      } else {
        split_csv(v, options.only_rules);
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "mstv-lint: unknown option '" << arg << "'\n";
      return usage();
    } else {
      options.files.push_back(arg);
    }
  }

  const RuleRegistry registry = RuleRegistry::builtin();

  if (list_rules) {
    for (const auto& rule : registry.rules()) {
      std::cout << rule->id() << "  —  " << rule->summary() << '\n';
    }
    return 0;
  }

  // Unknown --rules ids would silently lint nothing; fail loudly instead.
  const std::vector<std::string> known = registry.ids();
  for (const std::string& want : options.only_rules) {
    if (std::find(known.begin(), known.end(), want) == known.end()) {
      std::cerr << "mstv-lint: unknown rule '" << want
                << "' (see --list-rules)\n";
      return 2;
    }
  }

  const LintResult result = run_lint(registry, options);
  if (result.files_scanned == 0) {
    std::cerr << "mstv-lint: nothing to scan under root '" << options.root
              << "'\n";
    return 2;
  }
  std::cout << (json ? to_json(result) : to_text(result));
  return result.diagnostics.empty() ? 0 : 1;
}
