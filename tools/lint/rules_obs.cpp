// OBS rule family: telemetry contracts from docs/observability.md.
//
//   OBS-METRIC-NAME — every literal instrument name handed to the MSTV_*
//                     macros, the obs:: free-function sinks, or a direct
//                     Registry lookup (.counter("…") / .gauge("…") /
//                     .histogram("…")) must follow the convention
//                     `component.noun[_unit]`: two or more lowercase
//                     snake_case segments joined by dots.  Dashboards and
//                     the exported JSON key on these names; a typo'd name
//                     silently forks a metric series.
//
//   OBS-TRACE-CATEGORY — trace-session sites (MSTV_TRACE_SCOPE /
//                     MSTV_TRACE_INSTANT) take a literal category then a
//                     literal event name.  The category must be one
//                     lowercase snake_case segment (Perfetto's filter
//                     chips key on it); the event name follows the same
//                     `component.noun` convention as metrics, and its
//                     component prefix must equal the category — the
//                     invariant the automatic Span→session forwarding
//                     derives categories by.
//
//   OBS-LEDGER-KEY  — communication-ledger commits (MSTV_LEDGER_COMMIT /
//                     ledger_commit) take a literal phase key that the
//                     bound auditor and the exported `ledger` section key
//                     on; it must be `component.noun`.
//
//   OBS-LEDGER-PHASE-REGISTRY — a well-formed literal phase key must also
//                     be one of the phases docs/observability.md
//                     registers.  The bound auditor sums `verify.*` rows
//                     and dashboards group by phase; an unregistered
//                     phase silently falls outside both.  New phases are
//                     added here and to the docs table in the same PR.
//
// This is the engine port of the original tools/check_metrics_names.sh
// grep — token-accurate (no false hits inside comments or unrelated
// strings), and suppressible per site with a justified allow().
#include <cctype>
#include <memory>
#include <set>
#include <string>

#include "lint/rule.hpp"

namespace mstv::lint {

namespace {

// `component.noun[_unit]`: ^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$
bool valid_metric_name(std::string_view name) {
  std::size_t segments = 0;
  std::size_t i = 0;
  while (i < name.size()) {
    if (std::islower(static_cast<unsigned char>(name[i])) == 0) return false;
    ++i;
    while (i < name.size() &&
           (std::islower(static_cast<unsigned char>(name[i])) != 0 ||
            std::isdigit(static_cast<unsigned char>(name[i])) != 0 ||
            name[i] == '_')) {
      ++i;
    }
    ++segments;
    if (i == name.size()) break;
    if (name[i] != '.') return false;
    ++i;
    if (i == name.size()) return false;  // trailing dot
  }
  return segments >= 2;
}

class ObsMetricNameRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "OBS-METRIC-NAME";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "instrument names must be `component.noun[_unit]` "
           "(lowercase snake_case segments joined by dots)";
  }
  [[nodiscard]] bool applies_to(std::string_view) const override {
    return true;
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    static const std::set<std::string, std::less<>> kMacros = {
        "MSTV_COUNTER_ADD", "MSTV_COUNTER_INC", "MSTV_GAUGE_SET",
        "MSTV_HIST_OBSERVE", "MSTV_SPAN", "MSTV_SCOPED_TIMER_US"};
    static const std::set<std::string, std::less<>> kSinks = {
        "counter_add", "gauge_set", "hist_observe"};
    static const std::set<std::string, std::less<>> kLookups = {
        "counter", "gauge", "histogram"};

    const auto& toks = file.tokens();
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier) continue;

      bool site = false;
      if (kMacros.count(t.text) != 0 || kSinks.count(t.text) != 0) {
        site = true;
      } else if (kLookups.count(t.text) != 0 && i > 0 &&
                 toks[i - 1].kind == TokKind::Punct &&
                 (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        site = true;  // registry.counter("…")
      }
      if (!site) continue;

      // A site only binds a literal first argument: `(` "name"
      if (toks[i + 1].kind != TokKind::Punct || toks[i + 1].text != "(") {
        continue;
      }
      const Token& arg = toks[i + 2];
      if (arg.kind != TokKind::String) continue;  // runtime-built name — ok
      if (valid_metric_name(arg.text)) continue;
      report(ctx, file, arg.line, arg.col,
             "metric/span name \"" + arg.text + "\" (at " + t.text +
                 ") violates the `component.noun[_unit]` convention of "
                 "docs/observability.md",
             out);
    }
  }
};

// One lowercase snake_case segment, no dots: ^[a-z][a-z0-9_]*$
bool valid_category(std::string_view cat) {
  if (cat.empty() ||
      std::islower(static_cast<unsigned char>(cat.front())) == 0) {
    return false;
  }
  for (const char c : cat) {
    if (std::islower(static_cast<unsigned char>(c)) == 0 &&
        std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

class ObsTraceCategoryRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "OBS-TRACE-CATEGORY";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "trace-session sites need a single-segment lowercase category "
           "and a `component.noun` event name whose prefix matches it";
  }
  [[nodiscard]] bool applies_to(std::string_view) const override {
    return true;
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    static const std::set<std::string, std::less<>> kSites = {
        "MSTV_TRACE_SCOPE", "MSTV_TRACE_INSTANT"};

    const auto& toks = file.tokens();
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier || kSites.count(t.text) == 0) {
        continue;
      }
      if (toks[i + 1].kind != TokKind::Punct || toks[i + 1].text != "(") {
        continue;
      }
      const Token& cat = toks[i + 2];
      if (cat.kind != TokKind::String) continue;  // runtime-built — ok
      if (!valid_category(cat.text)) {
        report(ctx, file, cat.line, cat.col,
               "trace category \"" + cat.text + "\" (at " + t.text +
                   ") must be one lowercase snake_case segment",
               out);
        continue;
      }
      // Literal event name follows: `(` "cat" , "name"
      if (i + 4 >= toks.size() || toks[i + 3].kind != TokKind::Punct ||
          toks[i + 3].text != ",") {
        continue;
      }
      const Token& name = toks[i + 4];
      if (name.kind != TokKind::String) continue;
      if (!valid_metric_name(name.text)) {
        report(ctx, file, name.line, name.col,
               "trace event name \"" + name.text + "\" (at " + t.text +
                   ") violates the `component.noun` convention",
               out);
        continue;
      }
      const std::string prefix = name.text.substr(0, name.text.find('.'));
      if (prefix != cat.text) {
        report(ctx, file, name.line, name.col,
               "trace event \"" + name.text + "\" does not live in its "
                   "category \"" + cat.text +
                   "\" (name prefix must equal the category)",
               out);
      }
    }
  }
};

class ObsLedgerKeyRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "OBS-LEDGER-KEY";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "communication-ledger phase keys must be `component.noun` "
           "(lowercase snake_case segments joined by dots)";
  }
  [[nodiscard]] bool applies_to(std::string_view) const override {
    return true;
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    static const std::set<std::string, std::less<>> kSites = {
        "MSTV_LEDGER_COMMIT", "ledger_commit"};

    const auto& toks = file.tokens();
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier || kSites.count(t.text) == 0) {
        continue;
      }
      if (toks[i + 1].kind != TokKind::Punct || toks[i + 1].text != "(") {
        continue;
      }
      const Token& phase = toks[i + 2];
      if (phase.kind != TokKind::String) continue;  // runtime-built — ok
      if (valid_metric_name(phase.text)) continue;
      report(ctx, file, phase.line, phase.col,
             "ledger phase \"" + phase.text + "\" (at " + t.text +
                 ") violates the `component.noun` convention of "
                 "docs/observability.md",
             out);
    }
  }
};

// The registered ledger phases of docs/observability.md.  A commit under
// any other (well-formed) literal phase is a new series nothing reads —
// register it in the docs table and here in the same change.
class ObsLedgerPhaseRegistryRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "OBS-LEDGER-PHASE-REGISTRY";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "ledger phase keys must be registered in the phase table of "
           "docs/observability.md";
  }
  [[nodiscard]] bool applies_to(std::string_view) const override {
    return true;
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    static const std::set<std::string, std::less<>> kSites = {
        "MSTV_LEDGER_COMMIT", "ledger_commit"};
    static const std::set<std::string, std::less<>> kKnownPhases = {
        "verify.round",   "verify.channel_faults", "async.round",
        "dynamic.repair", "selfstab.repair",       "selfstab.remark",
        "mp.wire"};

    const auto& toks = file.tokens();
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier || kSites.count(t.text) == 0) {
        continue;
      }
      if (toks[i + 1].kind != TokKind::Punct || toks[i + 1].text != "(") {
        continue;
      }
      const Token& phase = toks[i + 2];
      if (phase.kind != TokKind::String) continue;  // runtime-built — ok
      // Ill-formed names are OBS-LEDGER-KEY's diagnostic; one defect, one
      // rule.
      if (!valid_metric_name(phase.text)) continue;
      if (kKnownPhases.count(phase.text) != 0) continue;
      report(ctx, file, phase.line, phase.col,
             "ledger phase \"" + phase.text + "\" (at " + t.text +
                 ") is not registered in the phase table of "
                 "docs/observability.md",
             out);
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_obs_rules() {
  std::vector<std::unique_ptr<Rule>> out;
  out.push_back(std::make_unique<ObsMetricNameRule>());
  out.push_back(std::make_unique<ObsTraceCategoryRule>());
  out.push_back(std::make_unique<ObsLedgerKeyRule>());
  out.push_back(std::make_unique<ObsLedgerPhaseRegistryRule>());
  return out;
}

}  // namespace mstv::lint
