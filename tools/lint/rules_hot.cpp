// HOT rule family: the lock-free hot-path contract (docs/parallelism.md,
// docs/observability.md).  PR 2 made the sharded verifier's inner loops
// mutex-free — per-node telemetry goes through lock-free atomics, shard
// results live in per-shard slots — because one lock inside a shard body
// serializes every worker and erases the engine's scaling.
//
//   HOT-MUTEX — mutex/lock acquisition (std::mutex, lock_guard,
//               unique_lock, scoped_lock, shared_lock, condition_variable,
//               or a .lock() call) inside a lambda passed to
//               `for_each_shard` / `sharded_reduce`, or anywhere in a
//               file carrying the `// mstv-lint: hot-path-file` marker.
#include <memory>
#include <set>
#include <string>

#include "lint/rule.hpp"

namespace mstv::lint {

namespace {

const std::set<std::string, std::less<>>& lock_idents() {
  static const std::set<std::string, std::less<>> kIdents = {
      "mutex", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "shared_mutex", "recursive_mutex", "timed_mutex", "condition_variable",
      "condition_variable_any"};
  return kIdents;
}

class HotMutexRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "HOT-MUTEX"; }
  [[nodiscard]] std::string_view summary() const override {
    return "lock acquisition inside a shard lambda or hot-path-file "
           "(hot paths must stay lock-free)";
  }
  [[nodiscard]] bool applies_to(std::string_view) const override {
    return true;
  }

  void check(const LintContext& ctx, const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    const auto& toks = file.tokens();
    std::set<int> reported_lines;

    if (file.hot_path_file()) {
      for (std::size_t i = 0; i < toks.size(); ++i) {
        flag_if_lock(ctx, file, toks, i, "hot-path file", reported_lines, out);
      }
      return;
    }

    // Hot regions: lambda bodies inside the argument list of a
    // for_each_shard / sharded_reduce call.  The declaration/definition
    // of those functions has no braces inside its parameter parens, so
    // only real call sites with inline lambdas match.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Identifier) continue;
      if (toks[i].text != "for_each_shard" && toks[i].text != "sharded_reduce") {
        continue;
      }
      if (toks[i + 1].kind != TokKind::Punct || toks[i + 1].text != "(") {
        continue;
      }
      const std::string region = "lambda passed to " + toks[i].text;
      int paren = 0;
      int brace = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].kind == TokKind::Punct) {
          if (toks[j].text == "(") ++paren;
          if (toks[j].text == ")" && --paren == 0) break;
          if (toks[j].text == "{") ++brace;
          if (toks[j].text == "}") --brace;
          continue;
        }
        if (brace > 0) flag_if_lock(ctx, file, toks, j, region, reported_lines, out);
      }
    }
  }

 private:
  void flag_if_lock(const LintContext& ctx, const SourceFile& file,
                    const std::vector<Token>& toks,
                    std::size_t i, const std::string& region,
                    std::set<int>& reported_lines,
                    std::vector<Diagnostic>& out) const {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) return;
    if (reported_lines.count(t.line) != 0) return;  // one finding per line
    // Preprocessor lines (`#include <mutex>`) mention lock names without
    // acquiring anything.
    const std::string_view row = file.line_text(t.line);
    const std::size_t first = row.find_first_not_of(" \t");
    if (first != std::string_view::npos && row[first] == '#') return;
    const bool lock_type = lock_idents().count(t.text) != 0;
    const bool lock_call =
        t.text == "lock" && i > 0 && toks[i - 1].kind == TokKind::Punct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        i + 1 < toks.size() && toks[i + 1].kind == TokKind::Punct &&
        toks[i + 1].text == "(";
    if (!lock_type && !lock_call) return;
    reported_lines.insert(t.line);
    report(ctx, file, t.line, t.col,
           "'" + t.text + "' acquires a lock in a " + region +
               "; hot paths are lock-free by contract — pre-resolve "
               "instruments, use per-shard slots or atomics",
           out);
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_hot_rules() {
  std::vector<std::unique_ptr<Rule>> out;
  out.push_back(std::make_unique<HotMutexRule>());
  return out;
}

}  // namespace mstv::lint
