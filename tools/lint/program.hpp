// Whole-program view handed to program rules: every scanned file plus
// the include graph and name-based call graph built over them.  Built
// once per engine run, after all per-file passes; program rules read it
// through Rule::check_program().
#pragma once

#include <vector>

#include "lint/callgraph.hpp"
#include "lint/include_graph.hpp"
#include "lint/source_file.hpp"
#include "lint/symbols.hpp"

namespace mstv::lint {

struct Program {
  /// All scanned files in deterministic (sorted relpath) order, C++ and
  /// markdown alike.  Rules filter by SourceFile::file_class themselves.
  std::vector<const SourceFile*> files;
  IncludeGraph includes;
  std::vector<FileSymbols> symbols;  // one entry per C++ file, same order
  CallGraph calls;

  [[nodiscard]] const SourceFile* find(std::string_view relpath) const {
    for (const SourceFile* f : files) {
      if (f->relpath() == relpath) return f;
    }
    return nullptr;
  }
};

/// Builds the include graph, symbol index, and call graph over `files`.
[[nodiscard]] Program build_program(const std::vector<const SourceFile*>& files);

}  // namespace mstv::lint
