// Name-based call graph over the symbol index, with the reachability
// walk the REACH rule family runs.
//
// Resolution contract (see docs/static_analysis.md): an edge follows a
// call site to EVERY definition sharing the callee's unqualified name,
// anywhere in the scanned set — over-approximate by construction.
// Member calls (`x.f()` / `p->f()`) are dynamic dispatch the token
// stream cannot resolve; the walk does not follow them (unqualified
// calls from inside a member function still look free, so intra-class
// reachability is kept).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/symbols.hpp"

namespace mstv::lint {

class CallGraph {
 public:
  CallGraph() = default;
  explicit CallGraph(const std::vector<FileSymbols>& files);

  [[nodiscard]] const std::vector<const FunctionDef*>& defs() const {
    return defs_;
  }
  /// Indices into defs() of every definition named `name`.
  [[nodiscard]] const std::vector<std::size_t>& defs_named(
      std::string_view name) const;

  /// One definition reached from a root call, with the chain of callee
  /// names that got there (root's callee first).
  struct Reached {
    const FunctionDef* def = nullptr;
    std::vector<std::string> chain;
  };

  /// Breadth-first reachability from a callee name through non-member
  /// call edges.  Each definition is visited once, with its shortest
  /// chain; traversal is depth-limited (`max_depth` call edges) as a
  /// cheap cycle/blowup guard.  Deterministic: defs are stored and
  /// expanded in file/position order.
  [[nodiscard]] std::vector<Reached> reachable(std::string_view root_callee,
                                               std::size_t max_depth) const;

 private:
  std::vector<const FunctionDef*> defs_;
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_name_;
};

}  // namespace mstv::lint
