// bench_compare — diffs a fresh BENCH_<name>.json against a committed
// baseline and fails on regression.
//
//   bench_compare [--tolerance=PCT] [--timing-tolerance=PCT]
//                 <baseline.json> <fresh.json>
//
// The bench reports (bench/common.hpp JsonReporter) carry two kinds of
// quantities and the comparison treats them differently:
//
//   * COUNTS — message/bit/label totals, rejection counts, ledger rows,
//     table columns like `messages` or `bits`.  The benches are seeded
//     and the engine is deterministic, so these must match the baseline
//     exactly (or within --tolerance=PCT if the caller loosens it).  A
//     drifted count means behavior changed, not the machine.
//   * TIMINGS — anything wall-clock shaped (`*_us`/`*_ms`/`*_ns`, `time`,
//     `speedup`, `delay`, `latency` in the name/header).  These vary by
//     machine; they are reported as advisory diffs and only enforced when
//     --timing-tolerance=PCT is given (for a pinned-hardware CI lane).
//
// Machine-shaped telemetry (`parallel.*`: pool sizing, shard counts,
// shard timings) is skipped entirely — it tracks the host's core count,
// not the code.
//
// A metric present in the baseline but missing from the fresh report is
// a failure (silent metric loss is how regressions hide); a metric only
// in the fresh report is advisory (new telemetry is fine).
//
// Exit codes: 0 = within tolerance, 1 = regression, 2 = bad
// invocation/unreadable/unparseable input.  tests/CMakeLists.txt
// self-tests both directions against checked-in fixtures.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace {

using mstv::json::Value;

struct Options {
  double tolerance_pct = 0.0;         // counts: exact by default
  double timing_tolerance_pct = -1.0; // < 0: timings advisory-only
  std::string baseline_path;
  std::string fresh_path;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--tolerance=PCT] "
               "[--timing-tolerance=PCT] <baseline.json> <fresh.json>\n");
  return 2;
}

bool timing_shaped(std::string_view name) {
  // "rss" is memory, not time, but shares the shape: machine- and
  // allocator-dependent, so advisory unless a tolerance is enforced.
  for (const char* marker :
       {"_us", "_ms", "_ns", "time", "speedup", "delay", "latency", "(ms",
        "(us", "(ns", " ms", " us", "rss"}) {
    if (name.find(marker) != std::string_view::npos) return true;
  }
  return false;
}

bool machine_shaped(std::string_view name) {
  // Pool sizing and shard structure track the host's core count.
  return name.rfind("parallel.", 0) == 0;
}

class Comparator {
 public:
  explicit Comparator(const Options& opts) : opts_(opts) {}

  void compare_numbers(const std::string& what, double base, double fresh,
                       bool timing) {
    const double tol_pct =
        timing ? opts_.timing_tolerance_pct : opts_.tolerance_pct;
    const bool enforced = !timing || opts_.timing_tolerance_pct >= 0.0;
    const double denom = std::abs(base) > 0 ? std::abs(base) : 1.0;
    const double diff_pct = std::abs(fresh - base) / denom * 100.0;
    const bool within = diff_pct <= (enforced ? tol_pct : 0.0) + 1e-12;
    if (within) {
      ++checks_;
      return;
    }
    if (!enforced) {
      ++advisory_;
      std::printf("  advisory %-46s %g -> %g (%+.1f%%)\n", what.c_str(), base,
                  fresh, fresh >= base ? diff_pct : -diff_pct);
      return;
    }
    fail(what + ": " + to_string(base) + " -> " + to_string(fresh) +
         " (" + to_string(diff_pct) + "% > " + to_string(tol_pct) +
         "% tolerance)");
  }

  void fail(const std::string& msg) {
    ++failures_;
    std::printf("  FAIL %s\n", msg.c_str());
  }

  void note_extra(const std::string& what) {
    ++advisory_;
    std::printf("  advisory new metric %s (not in baseline)\n", what.c_str());
  }

  [[nodiscard]] std::size_t failures() const { return failures_; }
  [[nodiscard]] std::size_t checks() const { return checks_; }
  [[nodiscard]] std::size_t advisory() const { return advisory_; }

 private:
  static std::string to_string(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
  }

  Options opts_;
  std::size_t checks_ = 0;
  std::size_t failures_ = 0;
  std::size_t advisory_ = 0;
};

/// Flattens a {"name": number, ...} object into a map.
std::map<std::string, double> scalar_map(const Value* obj) {
  std::map<std::string, double> out;
  if (obj == nullptr || !obj->is_object()) return out;
  for (const auto& m : obj->as_object()) {
    if (m.value->is_number()) out[m.key] = m.value->as_number();
  }
  return out;
}

void compare_scalar_section(Comparator& cmp, const char* section,
                            const Value& base, const Value& fresh) {
  const std::string path = std::string("metrics.") + section;
  const auto b = scalar_map(base.find_path(path));
  const auto f = scalar_map(fresh.find_path(path));
  for (const auto& [name, bval] : b) {
    if (machine_shaped(name)) continue;
    const auto it = f.find(name);
    if (it == f.end()) {
      cmp.fail(path + "." + name + " missing from fresh report");
      continue;
    }
    cmp.compare_numbers(path + "." + name, bval, it->second,
                        timing_shaped(name));
  }
  for (const auto& [name, fval] : f) {
    (void)fval;
    if (!machine_shaped(name) && b.find(name) == b.end()) {
      cmp.note_extra(path + "." + name);
    }
  }
}

void compare_histograms(Comparator& cmp, const Value& base,
                        const Value& fresh) {
  const Value* bh = base.find_path("metrics.histograms");
  const Value* fh = fresh.find_path("metrics.histograms");
  if (bh == nullptr || !bh->is_object()) return;
  for (const auto& m : bh->as_object()) {
    if (machine_shaped(m.key)) continue;
    const Value* fv =
        (fh != nullptr && fh->is_object()) ? fh->find(m.key) : nullptr;
    if (fv == nullptr) {
      cmp.fail("metrics.histograms." + m.key + " missing from fresh report");
      continue;
    }
    // Only the observation count is deterministic; sum/min/max of a
    // timing histogram are wall-clock shaped.
    const Value* bc = m.value->find("count");
    const Value* fc = fv->find("count");
    if (bc != nullptr && bc->is_number() && fc != nullptr && fc->is_number()) {
      cmp.compare_numbers("metrics.histograms." + m.key + ".count",
                          bc->as_number(), fc->as_number(), /*timing=*/false);
    }
  }
}

void compare_ledger(Comparator& cmp, const Value& base, const Value& fresh) {
  const Value* bl = base.find_path("metrics.ledger");
  const Value* fl = fresh.find_path("metrics.ledger");
  if (bl == nullptr || !bl->is_array()) return;
  auto key_of = [](const Value& row) {
    std::ostringstream os;
    const Value* r = row.find("round");
    const Value* p = row.find("phase");
    const Value* s = row.find("scheme");
    os << "r" << (r != nullptr && r->is_number() ? r->as_number() : -1) << "."
       << (p != nullptr && p->is_string() ? p->as_string() : "?") << "."
       << (s != nullptr && s->is_string() ? s->as_string() : "?");
    return os.str();
  };
  std::map<std::string, const Value*> fresh_rows;
  if (fl != nullptr && fl->is_array()) {
    for (const auto& row : fl->as_array()) {
      fresh_rows[key_of(*row)] = row.get();
    }
  }
  for (const auto& row : bl->as_array()) {
    const std::string key = key_of(*row);
    const auto it = fresh_rows.find(key);
    if (it == fresh_rows.end()) {
      cmp.fail("metrics.ledger row " + key + " missing from fresh report");
      continue;
    }
    for (const char* field : {"messages", "bits", "labels"}) {
      const Value* bv = row->find(field);
      const Value* fv = it->second->find(field);
      if (bv != nullptr && bv->is_number() && fv != nullptr &&
          fv->is_number()) {
        cmp.compare_numbers("metrics.ledger." + key + "." + field,
                            bv->as_number(), fv->as_number(),
                            /*timing=*/false);
      }
    }
  }
}

void compare_tables(Comparator& cmp, const Value& base, const Value& fresh) {
  const Value* bt = base.find("tables");
  const Value* ft = fresh.find("tables");
  if (bt == nullptr || !bt->is_array()) return;
  if (ft == nullptr || !ft->is_array() ||
      ft->as_array().size() != bt->as_array().size()) {
    cmp.fail("table count differs from baseline");
    return;
  }
  for (std::size_t t = 0; t < bt->as_array().size(); ++t) {
    const Value& btab = *bt->as_array()[t];
    const Value& ftab = *ft->as_array()[t];
    const Value* title = btab.find("title");
    const std::string tname =
        (title != nullptr && title->is_string()) ? title->as_string()
                                                 : "table " + std::to_string(t);
    const Value* bh = btab.find("headers");
    const Value* brows = btab.find("rows");
    const Value* frows = ftab.find("rows");
    if (brows == nullptr || !brows->is_array() || frows == nullptr ||
        !frows->is_array()) {
      continue;
    }
    if (brows->as_array().size() != frows->as_array().size()) {
      cmp.fail("\"" + tname + "\": row count " +
               std::to_string(brows->as_array().size()) + " -> " +
               std::to_string(frows->as_array().size()));
      continue;
    }
    std::vector<std::string> headers;
    if (bh != nullptr && bh->is_array()) {
      for (const auto& h : bh->as_array()) {
        headers.push_back(h->is_string() ? h->as_string() : "");
      }
    }
    for (std::size_t r = 0; r < brows->as_array().size(); ++r) {
      const auto& brow = brows->as_array()[r]->as_array();
      const auto& frow = frows->as_array()[r]->as_array();
      for (std::size_t c = 0; c < brow.size() && c < frow.size(); ++c) {
        const std::string header = c < headers.size() ? headers[c] : "";
        const std::string where =
            "\"" + tname + "\" row " + std::to_string(r) + " col \"" +
            (header.empty() ? std::to_string(c) : header) + "\"";
        if (brow[c]->is_number() && frow[c]->is_number()) {
          cmp.compare_numbers(where, brow[c]->as_number(),
                              frow[c]->as_number(), timing_shaped(header));
        } else if (brow[c]->is_string() && frow[c]->is_string() &&
                   brow[c]->as_string() != frow[c]->as_string()) {
          cmp.fail(where + ": \"" + brow[c]->as_string() + "\" -> \"" +
                   frow[c]->as_string() + "\"");
        }
      }
    }
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--tolerance=", 0) == 0) {
      opts.tolerance_pct =
          std::atof(std::string(a.substr(std::strlen("--tolerance="))).c_str());
    } else if (a.rfind("--timing-tolerance=", 0) == 0) {
      opts.timing_tolerance_pct = std::atof(
          std::string(a.substr(std::strlen("--timing-tolerance="))).c_str());
    } else if (a.rfind("--", 0) == 0) {
      return usage();
    } else {
      positional.emplace_back(a);
    }
  }
  if (positional.size() != 2) return usage();
  opts.baseline_path = positional[0];
  opts.fresh_path = positional[1];

  std::string base_text;
  std::string fresh_text;
  if (!read_file(opts.baseline_path, base_text)) {
    std::fprintf(stderr, "cannot read %s\n", opts.baseline_path.c_str());
    return 2;
  }
  if (!read_file(opts.fresh_path, fresh_text)) {
    std::fprintf(stderr, "cannot read %s\n", opts.fresh_path.c_str());
    return 2;
  }

  Value base;
  Value fresh;
  try {
    base = mstv::json::parse(base_text);
  } catch (const mstv::json::ParseError& e) {
    std::fprintf(stderr, "%s: %s\n", opts.baseline_path.c_str(), e.what());
    return 2;
  }
  try {
    fresh = mstv::json::parse(fresh_text);
  } catch (const mstv::json::ParseError& e) {
    std::fprintf(stderr, "%s: %s\n", opts.fresh_path.c_str(), e.what());
    return 2;
  }

  const Value* bname = base.find("bench");
  const Value* fname = fresh.find("bench");
  std::printf("bench_compare: %s vs %s\n", opts.baseline_path.c_str(),
              opts.fresh_path.c_str());
  Comparator cmp(opts);
  if (bname != nullptr && fname != nullptr && bname->is_string() &&
      fname->is_string() && bname->as_string() != fname->as_string()) {
    cmp.fail("bench name \"" + bname->as_string() + "\" -> \"" +
             fname->as_string() + "\"");
  }

  compare_tables(cmp, base, fresh);
  compare_scalar_section(cmp, "counters", base, fresh);
  compare_scalar_section(cmp, "gauges", base, fresh);
  compare_histograms(cmp, base, fresh);
  compare_ledger(cmp, base, fresh);

  std::printf("bench_compare: %s — %zu checks, %zu failures, %zu advisory\n",
              cmp.failures() == 0 ? "PASS" : "FAIL", cmp.checks(),
              cmp.failures(), cmp.advisory());
  return cmp.failures() == 0 ? 0 : 1;
}
