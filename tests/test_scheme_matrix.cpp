// Scheme x workload matrix: every correct MST proof labeling scheme in
// the repository (pi_mst, its fixed-width twin, pi_frag) against every
// workload family, for completeness (marker accepted) and a shared
// soundness battery (the four canonical mutations).  This is the broad
// regression net on top of the per-scheme deep tests.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "graph/generators.hpp"
#include "lowerbound/hypertree.hpp"
#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"
#include "plscheme/fragment_scheme.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "tree/path_queries.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {
namespace {

std::unique_ptr<ProofLabelingScheme> make_scheme(int which) {
  switch (which) {
    case 0: return std::make_unique<MstScheme>(SepCoding::Telescoping);
    case 1: return std::make_unique<MstScheme>(SepCoding::FixedWidth);
    default: return std::make_unique<FragmentScheme>();
  }
}

Graph make_workload(int which, Rng& rng) {
  WeightOptions wo;
  wo.max_weight = 1u << 14;
  switch (which) {
    case 0: return random_connected_graph(60, 90, wo, rng);
    case 1: return random_connected_graph(25, 250, wo, rng);  // dense
    case 2: return grid_graph(6, 8, wo, rng);
    case 3: return ring_graph(40, wo, rng);
    case 4: return complete_graph(14, wo, rng);
    case 5: return random_tree(70, wo, rng);
    case 6: {
      wo.max_weight = 2;  // extreme ties
      return random_connected_graph(40, 80, wo, rng);
    }
    case 7: {
      wo.max_weight = Weight{1} << 52;  // very wide weights
      wo.distinct = true;
      return random_connected_graph(30, 60, wo, rng);
    }
    default: {
      Rng hr(7);
      return build_hypertree(4, 3, {}, &hr).graph;  // Figure-1 family
    }
  }
}

struct MatrixCase {
  int scheme;
  int workload;
};

class SchemeWorkloadMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(SchemeWorkloadMatrix, CompletenessAndMutationBattery) {
  const auto& c = GetParam();
  const auto scheme = make_scheme(c.scheme);
  Rng rng(static_cast<std::uint64_t>(c.scheme * 100 + c.workload));
  const auto g = std::make_unique<Graph>(make_workload(c.workload, rng));
  const auto mst = kruskal_mst(*g);

  // Completeness from two roots.
  const ConfigGraph cfg = make_tree_config(*g, mst, 0);
  const auto labels = scheme->mark(cfg);
  ASSERT_TRUE(run_verifier(*scheme, cfg, labels).accepted)
      << scheme->name() << " workload " << c.workload;
  {
    const auto root2 =
        static_cast<VertexId>(g->num_vertices() / 2);
    const ConfigGraph cfg2 = make_tree_config(*g, mst, root2);
    ASSERT_TRUE(mark_and_verify(*scheme, cfg2).accepted);
  }

  const RootedTree tree(*g, mst, 0);
  const TreePathQueries q(tree);

  // Mutation 1: drop a parent pointer (second root) — stale labels.
  {
    ConfigGraph broken = cfg;
    for (VertexId v = 0; v < broken.size(); ++v) {
      if (broken.state(v).parent_port) {
        broken.state(v).parent_port.reset();
        break;
      }
    }
    EXPECT_FALSE(run_verifier(*scheme, broken, labels).accepted)
        << scheme->name() << ": dropped parent accepted";
  }

  // Mutation 2: redirect a parent pointer off the MST (when it breaks
  // minimality or tree-ness).
  {
    ConfigGraph broken = cfg;
    bool broke = false;
    for (VertexId v = 0; v < broken.size() && !broke; ++v) {
      if (!broken.state(v).parent_port || g->degree(v) < 2) continue;
      for (PortNumber p = 1; p <= g->degree(v) && !broke; ++p) {
        if (p == *broken.state(v).parent_port) continue;
        const State saved = broken.state(v);
        broken.state(v).parent_port = p;
        if (!mst_predicate(broken)) {
          broke = true;
        } else {
          broken.state(v) = saved;
        }
      }
    }
    if (broke) {
      EXPECT_FALSE(run_verifier(*scheme, broken, labels).accepted)
          << scheme->name() << ": redirected parent accepted";
    }
  }

  // Mutation 3: lower a chord below the tree-path MAX (re-weighted graph,
  // same states and stale labels).
  {
    const auto chords = non_tree_edges(*g, mst);
    if (!chords.empty()) {
      const EdgeId chord = chords[chords.size() / 2];
      const Edge& ce = g->edge(chord);
      const Weight mx = q.path_max(ce.u, ce.v);
      if (mx >= 1) {
        Graph::Builder b(g->num_vertices());
        for (EdgeId e = 0; e < g->num_edges(); ++e) {
          const Edge& ed = g->edge(e);
          b.add_edge(ed.u, ed.v, e == chord ? mx - 1 : ed.w);
        }
        const Graph lowered = b.build();
        ASSERT_FALSE(is_mst(lowered, mst));
        std::vector<State> st;
        for (VertexId v = 0; v < cfg.size(); ++v) st.push_back(cfg.state(v));
        const ConfigGraph broken(lowered, std::move(st));
        EXPECT_FALSE(run_verifier(*scheme, broken, labels).accepted)
            << scheme->name() << ": lowered chord accepted";
      }
    }
  }

  // Mutation 4: raise a non-bridge tree edge above its cover (re-weighted
  // graph, same tree).
  {
    const auto chords = non_tree_edges(*g, mst);
    if (!chords.empty()) {
      // Find a tree edge covered by some chord: the path-max edge of the
      // first chord works.
      const Edge& ce = g->edge(chords[0]);
      VertexId x = ce.u, y = ce.v;
      EdgeId victim = kInvalidEdge;
      Weight wmax = 0;
      while (x != y) {
        if (tree.depth(x) < tree.depth(y)) std::swap(x, y);
        if (tree.parent_weight(x) >= wmax) {
          wmax = tree.parent_weight(x);
          victim = tree.parent_edge(x);
        }
        x = tree.parent(x);
      }
      ASSERT_NE(victim, kInvalidEdge);
      Graph::Builder b(g->num_vertices());
      for (EdgeId e = 0; e < g->num_edges(); ++e) {
        const Edge& ed = g->edge(e);
        b.add_edge(ed.u, ed.v, e == victim ? ce.w + 1 : ed.w);
      }
      const Graph raised = b.build();
      ASSERT_FALSE(is_mst(raised, mst));
      std::vector<State> st;
      for (VertexId v = 0; v < cfg.size(); ++v) st.push_back(cfg.state(v));
      const ConfigGraph broken(raised, std::move(st));
      EXPECT_FALSE(run_verifier(*scheme, broken, labels).accepted)
          << scheme->name() << ": raised tree edge accepted";
    }
  }
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (int s = 0; s < 3; ++s) {
    for (int w = 0; w < 9; ++w) cases.push_back({s, w});
  }
  return cases;
}

std::string matrix_case_name(
    const ::testing::TestParamInfo<MatrixCase>& param_info) {
  static const char* schemes[] = {"pimst", "pimstnaive", "pifrag"};
  static const char* loads[] = {"sparse",   "dense", "grid",
                                "ring",     "complete", "tree",
                                "ties",     "wide",  "hypertree"};
  return std::string(schemes[param_info.param.scheme]) + "_" +
         loads[param_info.param.workload];
}

INSTANTIATE_TEST_SUITE_P(All, SchemeWorkloadMatrix,
                         ::testing::ValuesIn(all_cases()),
                         matrix_case_name);

TEST(SchemeMatrix, PortShuffleInvarianceForAllSchemes) {
  // Rebuild the same weighted graph with random port numbering: every
  // scheme must still verify (nothing may depend on insertion order).
  Rng rng(777);
  WeightOptions wo;
  wo.max_weight = 1u << 12;
  wo.distinct = true;
  const Graph base = random_connected_graph(40, 70, wo, rng);
  Graph::Builder b(base.num_vertices());
  for (const Edge& e : base.edges()) b.add_edge(e.u, e.v, e.w);
  Rng shuffle_rng(778);
  const Graph shuffled = b.build(&shuffle_rng);
  const auto mst = kruskal_mst(shuffled);
  const ConfigGraph cfg = make_tree_config(shuffled, mst, 0);
  for (int s = 0; s < 3; ++s) {
    const auto scheme = make_scheme(s);
    EXPECT_TRUE(mark_and_verify(*scheme, cfg).accepted) << scheme->name();
  }
}

TEST(SchemeMatrix, LabelsAreNotInterchangeableAcrossRoots) {
  // The same MST rooted differently yields different states; labels for
  // one rooting must be rejected under the other.
  Rng rng(779);
  WeightOptions wo;
  const Graph g = random_connected_graph(20, 30, wo, rng);
  const auto mst = kruskal_mst(g);
  const ConfigGraph a = make_tree_config(g, mst, 0);
  const ConfigGraph b = make_tree_config(g, mst, 7);
  for (int s = 0; s < 3; ++s) {
    const auto scheme = make_scheme(s);
    const auto la = scheme->mark(a);
    EXPECT_FALSE(run_verifier(*scheme, b, la).accepted) << scheme->name();
  }
}

}  // namespace
}  // namespace mstv
