#include "tree/rooted_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"

namespace mstv {
namespace {

/// 0-1, 1-2, 1-3, 0-4 rooted at 0.
Graph small_tree() {
  Graph::Builder b(5);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 20);
  b.add_edge(1, 3, 30);
  b.add_edge(0, 4, 40);
  return b.build();
}

TEST(RootedTree, ParentsAndDepths) {
  const Graph g = small_tree();
  const RootedTree t(g, 0);
  EXPECT_TRUE(t.is_root(0));
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 1u);
  EXPECT_EQ(t.parent(3), 1u);
  EXPECT_EQ(t.parent(4), 0u);
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_EQ(t.depth(2), 2u);
  EXPECT_EQ(t.parent_weight(2), 20u);
  EXPECT_EQ(t.parent_weight(4), 40u);
}

TEST(RootedTree, ParentPortsPointAtParents) {
  const Graph g = small_tree();
  for (VertexId root = 0; root < g.num_vertices(); ++root) {
    const RootedTree t(g, root);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (t.is_root(v)) {
        EXPECT_EQ(t.parent_port(v), 0u);
      } else {
        EXPECT_EQ(g.port(v, t.parent_port(v)).neighbor, t.parent(v));
        EXPECT_EQ(g.port(v, t.parent_port(v)).edge, t.parent_edge(v));
      }
    }
  }
}

TEST(RootedTree, ChildrenMatchParents) {
  const Graph g = small_tree();
  const RootedTree t(g, 0);
  std::size_t total_children = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId c : t.children(v)) {
      EXPECT_EQ(t.parent(c), v);
      ++total_children;
    }
  }
  EXPECT_EQ(total_children, g.num_vertices() - 1);
}

TEST(RootedTree, PreorderStartsAtRootAndCoversAll) {
  const Graph g = small_tree();
  const RootedTree t(g, 1);
  ASSERT_EQ(t.preorder().size(), 5u);
  EXPECT_EQ(t.preorder()[0], 1u);
  EXPECT_EQ(t.preorder_rank(1), 0u);
  std::vector<bool> seen(5, false);
  for (const VertexId v : t.preorder()) seen[v] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
  // Parents precede children in preorder.
  for (VertexId v = 0; v < 5; ++v) {
    if (!t.is_root(v)) {
      EXPECT_LT(t.preorder_rank(t.parent(v)), t.preorder_rank(v));
    }
  }
}

TEST(RootedTree, SubtreeSizesAndAncestorQueries) {
  const Graph g = small_tree();
  const RootedTree t(g, 0);
  EXPECT_EQ(t.subtree_size(0), 5u);
  EXPECT_EQ(t.subtree_size(1), 3u);
  EXPECT_EQ(t.subtree_size(2), 1u);
  EXPECT_TRUE(t.is_ancestor(0, 3));
  EXPECT_TRUE(t.is_ancestor(1, 2));
  EXPECT_TRUE(t.is_ancestor(2, 2));  // inclusive
  EXPECT_FALSE(t.is_ancestor(2, 1));
  EXPECT_FALSE(t.is_ancestor(4, 3));
}

TEST(RootedTree, FromSpanningTreeOfGeneralGraph) {
  Rng rng(31);
  WeightOptions wo;
  const Graph g = random_connected_graph(80, 120, wo, rng);
  const auto tree_edges = kruskal_mst(g);
  const RootedTree t(g, tree_edges, 7);
  EXPECT_EQ(t.root(), 7u);
  std::size_t in_tree = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (t.contains_edge(e)) ++in_tree;
  }
  EXPECT_EQ(in_tree, g.num_vertices() - 1);
  // Walking parents from any vertex reaches the root in depth steps.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    VertexId cur = v;
    std::uint32_t steps = 0;
    while (!t.is_root(cur)) {
      cur = t.parent(cur);
      ++steps;
    }
    EXPECT_EQ(steps, t.depth(v));
  }
}

TEST(RootedTree, RejectsNonSpanningEdgeSets) {
  const Graph g = small_tree();
  EXPECT_THROW(RootedTree(g, {0, 1}, 0), PreconditionError);
  EXPECT_THROW(RootedTree(g, {0, 1, 2, 2}, 0), PreconditionError);
}

TEST(RootedTree, RejectsNonTreeGraphConvenienceCtor) {
  Graph::Builder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 0, 1);
  const Graph g = b.build();
  EXPECT_THROW(RootedTree(g, 0), PreconditionError);
}

TEST(RootedTree, SingleVertex) {
  Graph::Builder b(1);
  const Graph g = b.build();
  const RootedTree t(g, 0);
  EXPECT_TRUE(t.is_root(0));
  EXPECT_EQ(t.subtree_size(0), 1u);
  EXPECT_TRUE(t.children(0).empty());
}

TEST(RootedTree, SubtreeContiguityInPreorder) {
  Rng rng(32);
  WeightOptions wo;
  const Graph g = random_tree(200, wo, rng);
  const RootedTree t(g, 0);
  // Ground truth by explicit parent walking, independent of the
  // rank/subtree-size representation that is_ancestor uses internally.
  auto is_anc_walk = [&](VertexId anc, VertexId v) {
    while (true) {
      if (v == anc) return true;
      if (t.is_root(v)) return false;
      v = t.parent(v);
    }
  };
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      EXPECT_EQ(t.is_ancestor(v, u), is_anc_walk(v, u))
          << "anc=" << v << " v=" << u;
    }
  }
}

}  // namespace
}  // namespace mstv
