#include "lowerbound/hypertree.hpp"

#include <gtest/gtest.h>

#include "mst/predicates.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "tree/path_queries.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {
namespace {

TEST(Hypertree, VertexCountsMatchClosedForm) {
  EXPECT_EQ(hypertree_num_vertices(1), 1u);
  EXPECT_EQ(hypertree_num_vertices(2), 5u);
  EXPECT_EQ(hypertree_num_vertices(3), 21u);
  EXPECT_EQ(hypertree_num_vertices(4), 85u);
  for (std::uint32_t h = 2; h <= 6; ++h) {
    const Hypertree ht = build_hypertree(h, 3);
    EXPECT_EQ(ht.graph.num_vertices(), hypertree_num_vertices(h));
  }
}

TEST(Hypertree, QRanges) {
  EXPECT_EQ(q_range_lo(1, 4), 4u);
  EXPECT_EQ(q_range_hi(1, 4), 7u);
  EXPECT_EQ(q_range_lo(3, 5), 15u);
  EXPECT_EQ(q_range_hi(3, 5), 19u);
}

TEST(Hypertree, StatesInduceASpanningTreeWithPreorderIds) {
  const Hypertree ht = build_hypertree(4, 2);
  const auto tree = ht.spanning_tree_edges();
  EXPECT_TRUE(is_spanning_tree(ht.graph, tree));

  // Preorder identities: root gets 1, all distinct, max = n.
  EXPECT_EQ(ht.states[ht.root].id, 1u);
  EXPECT_TRUE(ht.config().ids_unique());
  std::uint64_t mx = 0;
  for (const auto& s : ht.states) mx = std::max(mx, *s.id);
  EXPECT_EQ(mx, ht.graph.num_vertices());
}

TEST(Hypertree, PathStructureMatchesFigure1) {
  const Hypertree ht = build_hypertree(3, 4);
  // V(3) = 21 = 2*V(2) + 1 + 2*V(2): 10 path-vertices => 5 paths at level
  // 3 plus the two level-2 paths of the sub-hypertrees: 7 total.
  EXPECT_EQ(ht.paths.size(), 7u);
  std::size_t level3 = 0;
  for (const auto& p : ht.paths) {
    // Path(a0, a1) = (a0, hat0, hat1, a1) with unit outer edges.
    const auto pe0 = ht.graph.find_edge(p.a0, p.hat0);
    const auto pe1 = ht.graph.find_edge(p.hat1, p.a1);
    ASSERT_TRUE(pe0 && pe1);
    EXPECT_EQ(ht.graph.edge(*pe0).w, 1u);
    EXPECT_EQ(ht.graph.edge(*pe1).w, 1u);
    // Middle edge carries the level weight (legal construction).
    EXPECT_EQ(ht.graph.edge(p.mid_edge).w, ht.level_x[p.level]);
    if (p.level == 3) ++level3;
    // hats point outward at a0 / a1 (their parent ports).
    const RootedTree t(ht.graph, ht.spanning_tree_edges(), ht.root);
    EXPECT_EQ(t.parent(p.hat0), p.a0);
    EXPECT_EQ(t.parent(p.hat1), p.a1);
  }
  EXPECT_EQ(level3, 5u);
}

TEST(Hypertree, Claim41OnLegalHypertrees) {
  for (std::uint32_t h = 1; h <= 5; ++h) {
    for (const std::uint64_t mu : {1u, 2u, 7u}) {
      Rng rng(h * 100 + mu);
      const Hypertree ht = build_hypertree(h, mu, {}, &rng);
      EXPECT_TRUE(check_claim_4_1(ht)) << "h=" << h << " mu=" << mu;
      EXPECT_TRUE(is_mst(ht.graph, ht.spanning_tree_edges()));
    }
  }
}

TEST(Hypertree, LegalPathWeightEqualsMaxOfEndpoints) {
  const Hypertree ht = build_hypertree(4, 5);
  const RootedTree t(ht.graph, ht.spanning_tree_edges(), ht.root);
  const TreePathQueries q(t);
  for (const auto& p : ht.paths) {
    EXPECT_EQ(q.path_max(p.a0, p.a1), ht.level_x[p.level]);
  }
}

TEST(Hypertree, LighterPathBreaksMinimality) {
  const Hypertree ht = build_hypertree(3, 4, {0, 0, 5, 9});
  for (std::size_t i = 0; i < ht.paths.size(); ++i) {
    const Weight x = ht.level_x[ht.paths[i].level];
    ASSERT_GE(x, 1u);
    const Hypertree lighter = with_path_weight(ht, i, x - 1);
    EXPECT_FALSE(is_mst(lighter.graph, lighter.spanning_tree_edges()))
        << "path " << i;
    EXPECT_TRUE(check_claim_4_1(lighter));  // claim still holds vacuously
  }
}

TEST(Hypertree, HeavierPathKeepsMinimality) {
  const Hypertree ht = build_hypertree(3, 4, {0, 0, 4, 8});
  for (std::size_t i = 0; i < ht.paths.size(); ++i) {
    const Weight x = ht.level_x[ht.paths[i].level];
    const Hypertree heavier = with_path_weight(ht, i, x + 1);
    EXPECT_TRUE(is_mst(heavier.graph, heavier.spanning_tree_edges()));
  }
}

TEST(Hypertree, PiMstAcceptsLegalRejectsLightened) {
  const MstScheme scheme;
  const Hypertree ht = build_hypertree(3, 8);
  const ConfigGraph cfg = ht.config();
  const auto labels = scheme.mark(cfg);
  EXPECT_TRUE(run_verifier(scheme, cfg, labels).accepted);

  // Lightening any path must be caught even with the stale legal labels.
  for (std::size_t i = 0; i < ht.paths.size(); ++i) {
    const Weight x = ht.level_x[ht.paths[i].level];
    const Hypertree lighter = with_path_weight(ht, i, x - 1);
    EXPECT_FALSE(run_verifier(scheme, lighter.config(), labels).accepted)
        << "path " << i;
  }
}

TEST(Hypertree, CustomLevelWeightsValidated) {
  EXPECT_THROW((void)build_hypertree(3, 4, {0, 0, 99, 8}),
               PreconditionError);  // level-2 weight outside Q_1(4)=[4,7]
  EXPECT_THROW((void)build_hypertree(3, 4, {0, 0, 5}), PreconditionError);
  (void)build_hypertree(3, 4, {0, 0, 7, 11});  // boundary values fine
}

TEST(Hypertree, MaxWeightBound) {
  const Hypertree ht = build_hypertree(5, 6);
  // All weights sit in [1, h*mu - 1].
  EXPECT_LE(ht.graph.max_weight(),
            static_cast<Weight>(ht.h) * ht.mu - 1);
}

}  // namespace
}  // namespace mstv
