#include "plscheme/mst_scheme.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/runner.hpp"

namespace mstv {
namespace {

struct CompletenessCase {
  const char* name;
  std::uint64_t seed;
  std::size_t n;
  std::size_t extra;
  Weight max_w;
  bool distinct;
};

class MstSchemeCompleteness
    : public ::testing::TestWithParam<CompletenessCase> {};

TEST_P(MstSchemeCompleteness, MarkerLabelsAreAcceptedEverywhere) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  WeightOptions wo;
  wo.max_weight = c.max_w;
  wo.distinct = c.distinct;
  const Graph g = random_connected_graph(c.n, c.extra, wo, rng);
  const auto mst = kruskal_mst(g);

  for (const SepCoding coding :
       {SepCoding::Telescoping, SepCoding::FixedWidth}) {
    const MstScheme scheme(coding);
    for (const VertexId root :
         {VertexId{0}, static_cast<VertexId>(c.n / 2)}) {
      const ConfigGraph cfg = make_tree_config(g, mst, root);
      ASSERT_TRUE(mst_predicate(cfg));
      const auto result = mark_and_verify(scheme, cfg);
      EXPECT_TRUE(result.accepted)
          << scheme.name() << " root=" << root
          << " rejecting=" << result.rejecting.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MstSchemeCompleteness,
    ::testing::Values(
        CompletenessCase{"tiny", 1, 2, 0, 8, false},
        CompletenessCase{"small_sparse", 2, 20, 10, 100, false},
        CompletenessCase{"small_dense", 3, 16, 100, 1u << 16, true},
        CompletenessCase{"ties_everywhere", 4, 40, 80, 3, false},
        CompletenessCase{"medium", 5, 150, 300, 1u << 20, true},
        CompletenessCase{"large_sparse", 6, 400, 100, 1u << 30, false},
        CompletenessCase{"tree_only", 7, 100, 0, 50, false},
        CompletenessCase{"unit_weights", 8, 50, 120, 1, false}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(MstScheme, AcceptsEveryMstOfANonUniqueInstance) {
  // A 4-cycle with two equal heavy edges has two MSTs; both must verify.
  Graph::Builder b(4);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  const EdgeId e12 = b.add_edge(1, 2, 5);
  const EdgeId e23 = b.add_edge(2, 3, 1);
  const EdgeId e30 = b.add_edge(3, 0, 5);
  const Graph g = b.build();
  const MstScheme scheme;
  for (const auto& tree :
       {std::vector<EdgeId>{e01, e12, e23}, std::vector<EdgeId>{e01, e23, e30}}) {
    const ConfigGraph cfg = make_tree_config(g, tree, 0);
    EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
  }
}

TEST(MstScheme, MarkerRejectsNonMstInput) {
  Graph::Builder b(3);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const EdgeId e02 = b.add_edge(0, 2, 9);
  const Graph g = b.build();
  const MstScheme scheme;
  const ConfigGraph cfg = make_tree_config(g, {e01, e02}, 0);
  EXPECT_THROW((void)scheme.mark(cfg), PreconditionError);
}

TEST(MstScheme, GrowsLikeLogNLogW) {
  // Theorem 3.4 envelope check, one scale step in each dimension.
  const MstScheme scheme;
  WeightOptions wo;
  auto max_bits = [&](std::size_t n, Weight w, std::uint64_t seed) {
    Rng rng(seed);
    wo.max_weight = w;
    const Graph g = random_connected_graph(n, 2 * n, wo, rng);
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
    return mark_and_verify(scheme, cfg).max_label_bits;
  };
  for (const std::size_t n : {64u, 512u}) {
    for (const Weight w : {Weight{16}, Weight{1} << 24}) {
      const double logn = std::log2(static_cast<double>(n));
      const double logw = std::log2(static_cast<double>(w) + 1);
      const double envelope = 4.0 * (logn * logw + logn + logw) + 120.0;
      EXPECT_LE(static_cast<double>(max_bits(n, w, n + w)), envelope)
          << "n=" << n << " W=" << w;
    }
  }
}

TEST(MstScheme, TelescopingNoLargerThanNaive) {
  Rng rng(31);
  WeightOptions wo;
  wo.max_weight = 8;
  const Graph g = random_connected_graph(1024, 1024, wo, rng);
  const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
  const auto small = mark_and_verify(MstScheme(SepCoding::Telescoping), cfg);
  const auto naive = mark_and_verify(MstScheme(SepCoding::FixedWidth), cfg);
  ASSERT_TRUE(small.accepted);
  ASSERT_TRUE(naive.accepted);
  EXPECT_LT(small.total_label_bits, naive.total_label_bits);
}

TEST(MstScheme, SingleVertexAndSingleEdge) {
  const MstScheme scheme;
  {
    Graph::Builder b(1);
    const Graph g = b.build();
    const ConfigGraph cfg = make_tree_config(g, {}, 0);
    EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
  }
  {
    Graph::Builder b(2);
    const EdgeId e = b.add_edge(0, 1, 42);
    const Graph g = b.build();
    const ConfigGraph cfg = make_tree_config(g, {e}, 1);
    EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
  }
}

TEST(MstScheme, WorksOnGridsAndRings) {
  Rng rng(32);
  WeightOptions wo;
  wo.max_weight = 1000;
  const MstScheme scheme;
  {
    const Graph g = grid_graph(8, 9, wo, rng);
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 3);
    EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
  }
  {
    const Graph g = ring_graph(31, wo, rng);
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 30);
    EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
  }
  {
    const Graph g = complete_graph(12, wo, rng);
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
    EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
  }
}

TEST(MstScheme, PortShuffleInvariance) {
  // The scheme must not depend on port numbering conventions: rebuild the
  // same weighted graph with shuffled ports and verify again.
  WeightOptions wo;
  wo.max_weight = 1u << 10;
  wo.distinct = true;
  Rng rng(33);
  const Graph base = random_connected_graph(50, 80, wo, rng);
  Graph::Builder b(base.num_vertices());
  for (const Edge& e : base.edges()) b.add_edge(e.u, e.v, e.w);
  Rng shuffle_rng(99);
  const Graph shuffled = b.build(&shuffle_rng);

  const MstScheme scheme;
  const ConfigGraph cfg = make_tree_config(shuffled, kruskal_mst(shuffled), 0);
  EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
}

}  // namespace
}  // namespace mstv
