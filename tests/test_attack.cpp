#include "lowerbound/attack.hpp"

#include <gtest/gtest.h>

#include "mst/algorithms.hpp"
#include "graph/generators.hpp"
#include "plscheme/runner.hpp"

namespace mstv {
namespace {

TEST(QuantizedScheme, CompletenessSurvivesQuantization) {
  // The lossy scheme still accepts genuine MSTs (it only under-estimates).
  const QuantizedMstScheme scheme;
  Rng rng(61);
  WeightOptions wo;
  wo.max_weight = 1u << 20;
  for (int i = 0; i < 5; ++i) {
    const Graph g = random_connected_graph(40, 60, wo, rng);
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
    EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
  }
}

TEST(QuantizedScheme, LabelsAreMuchSmallerThanExact) {
  Rng rng(62);
  WeightOptions wo;
  wo.max_weight = Weight{1} << 40;
  const Graph g = random_connected_graph(300, 500, wo, rng);
  const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
  const auto exact = mark_and_verify(MstScheme(), cfg);
  const auto lossy = mark_and_verify(QuantizedMstScheme(), cfg);
  ASSERT_TRUE(exact.accepted);
  ASSERT_TRUE(lossy.accepted);
  EXPECT_LT(lossy.max_label_bits, exact.max_label_bits);
}

TEST(QuantizationAttack, BreaksSoundnessOnTheGadget) {
  const auto rep = quantization_attack();
  EXPECT_TRUE(rep.forgery_accepted);
  EXPECT_LT(rep.lowered_weight, rep.true_max);
}

TEST(CutAndPaste, RealSchemeHasNoCollisions) {
  // Lemma 4.3 in executable form: pi_mst's weight classes are disjoint,
  // so the splice never even starts.
  const MstScheme scheme;
  const auto rep = cut_and_paste_attack(scheme, 3, 6);
  EXPECT_FALSE(rep.collision_found);
  EXPECT_FALSE(rep.forgery_accepted);
}

TEST(CutAndPaste, NaiveCodingIsStillSound) {
  const MstScheme naive(SepCoding::FixedWidth);
  const auto rep = cut_and_paste_attack(naive, 3, 5);
  EXPECT_FALSE(rep.collision_found);
}

TEST(CutAndPaste, QuantizedSchemeCollidesAndIsFooled) {
  // The compressed scheme cannot keep mu weight classes apart: the splice
  // finds a collision and the forged non-MST is accepted everywhere.
  const QuantizedMstScheme scheme;
  const auto rep = cut_and_paste_attack(scheme, 3, 8);
  EXPECT_TRUE(rep.collision_found);
  EXPECT_TRUE(rep.forgery_accepted);
  EXPECT_LT(rep.x_light, rep.x_heavy);
  // The colliding weights share a power-of-two bucket by construction.
  EXPECT_EQ(bit_width_u64(rep.x_light), bit_width_u64(rep.x_heavy));
}

TEST(CutAndPaste, ReportsLabelBits) {
  const QuantizedMstScheme scheme;
  const auto rep = cut_and_paste_attack(scheme, 2, 4);
  EXPECT_GT(rep.label_bits, 0u);
}

}  // namespace
}  // namespace mstv
