#include "util/bitstream.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mstv {
namespace {

TEST(BitWidth, SmallValues) {
  EXPECT_EQ(bit_width_u64(0), 0);
  EXPECT_EQ(bit_width_u64(1), 1);
  EXPECT_EQ(bit_width_u64(2), 2);
  EXPECT_EQ(bit_width_u64(3), 2);
  EXPECT_EQ(bit_width_u64(4), 3);
  EXPECT_EQ(bit_width_u64(255), 8);
  EXPECT_EQ(bit_width_u64(256), 9);
}

TEST(BitWidth, ExtremeValues) {
  EXPECT_EQ(bit_width_u64(~std::uint64_t{0}), 64);
  EXPECT_EQ(bit_width_u64(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(bit_width_u64((std::uint64_t{1} << 63) - 1), 63);
}

TEST(BitWriter, SingleBits) {
  BitWriter w;
  w.write_bit(true);
  w.write_bit(false);
  w.write_bit(true);
  EXPECT_EQ(w.size_bits(), 3u);
  BitReader r(w.words(), w.size_bits());
  EXPECT_TRUE(r.read_bit());
  EXPECT_FALSE(r.read_bit());
  EXPECT_TRUE(r.read_bit());
  EXPECT_TRUE(r.exhausted());
}

TEST(BitWriter, FixedWidthRoundTrip) {
  BitWriter w;
  w.write_uint(0b1011, 4);
  w.write_uint(0, 0);  // zero-width is legal and writes nothing
  w.write_uint(12345, 17);
  w.write_uint(~std::uint64_t{0}, 64);
  BitReader r(w.words(), w.size_bits());
  EXPECT_EQ(r.read_uint(4), 0b1011u);
  EXPECT_EQ(r.read_uint(0), 0u);
  EXPECT_EQ(r.read_uint(17), 12345u);
  EXPECT_EQ(r.read_uint(64), ~std::uint64_t{0});
  EXPECT_TRUE(r.exhausted());
}

TEST(BitWriter, RejectsOverflowingValue) {
  BitWriter w;
  EXPECT_THROW(w.write_uint(16, 4), PreconditionError);
  EXPECT_THROW(w.write_uint(2, 1), PreconditionError);
}

TEST(BitWriter, UnaryRoundTrip) {
  BitWriter w;
  for (std::uint64_t n : {0u, 1u, 2u, 17u}) w.write_unary(n);
  BitReader r(w.words(), w.size_bits());
  EXPECT_EQ(r.read_unary(), 0u);
  EXPECT_EQ(r.read_unary(), 1u);
  EXPECT_EQ(r.read_unary(), 2u);
  EXPECT_EQ(r.read_unary(), 17u);
  EXPECT_TRUE(r.exhausted());
}

TEST(EliasGamma, KnownSizes) {
  // gamma(v) costs 2*floor(log2 v) + 1 bits.
  auto size_of = [](std::uint64_t v) {
    BitWriter w;
    w.write_gamma(v);
    return w.size_bits();
  };
  EXPECT_EQ(size_of(1), 1u);
  EXPECT_EQ(size_of(2), 3u);
  EXPECT_EQ(size_of(3), 3u);
  EXPECT_EQ(size_of(4), 5u);
  EXPECT_EQ(size_of(7), 5u);
  EXPECT_EQ(size_of(8), 7u);
  EXPECT_EQ(gamma_cost_bits(1), 1u);
  EXPECT_EQ(gamma_cost_bits(8), 7u);
}

TEST(EliasGamma, RejectsZero) {
  BitWriter w;
  EXPECT_THROW(w.write_gamma(0), PreconditionError);
}

TEST(EliasGamma, RoundTripSweep) {
  Rng rng(42);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    const int width = static_cast<int>(rng.uniform(1, 63));
    values.push_back(rng.uniform(1, (std::uint64_t{1} << width)));
  }
  values.push_back(1);
  values.push_back(~std::uint64_t{0} >> 1);

  BitWriter w;
  for (const auto v : values) w.write_gamma(v);
  BitReader r(w.words(), w.size_bits());
  for (const auto v : values) EXPECT_EQ(r.read_gamma(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(EliasGamma0, CoversZero) {
  BitWriter w;
  w.write_gamma0(0);
  w.write_gamma0(5);
  BitReader r(w.words(), w.size_bits());
  EXPECT_EQ(r.read_gamma0(), 0u);
  EXPECT_EQ(r.read_gamma0(), 5u);
}

TEST(EliasDelta, RoundTripSweep) {
  Rng rng(7);
  BitWriter w;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    const int width = static_cast<int>(rng.uniform(1, 63));
    values.push_back(rng.uniform(1, std::uint64_t{1} << width));
  }
  for (const auto v : values) w.write_delta(v);
  BitReader r(w.words(), w.size_bits());
  for (const auto v : values) EXPECT_EQ(r.read_delta(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitReader, OverrunThrows) {
  BitWriter w;
  w.write_uint(3, 2);
  BitReader r(w.words(), w.size_bits());
  (void)r.read_uint(2);
  EXPECT_THROW((void)r.read_bit(), PreconditionError);
}

TEST(BitReader, MixedInterleavedCodes) {
  BitWriter w;
  w.write_gamma(9);
  w.write_uint(0xABCD, 16);
  w.write_unary(3);
  w.write_gamma0(0);
  w.write_delta(1000);
  BitReader r(w.words(), w.size_bits());
  EXPECT_EQ(r.read_gamma(), 9u);
  EXPECT_EQ(r.read_uint(16), 0xABCDu);
  EXPECT_EQ(r.read_unary(), 3u);
  EXPECT_EQ(r.read_gamma0(), 0u);
  EXPECT_EQ(r.read_delta(), 1000u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStream, WordBoundaryCrossing) {
  // Write values straddling the 64-bit word boundary.
  BitWriter w;
  w.write_uint(0x7FFFFFFFFFFFFFFF, 63);
  w.write_uint(0b101, 3);  // crosses into the second word
  BitReader r(w.words(), w.size_bits());
  EXPECT_EQ(r.read_uint(63), 0x7FFFFFFFFFFFFFFFu);
  EXPECT_EQ(r.read_uint(3), 0b101u);
}

}  // namespace
}  // namespace mstv
