#include "plscheme/agreement_scheme.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "plscheme/runner.hpp"

namespace mstv {
namespace {

Label payload_of(std::uint64_t value, int bits) {
  BitWriter w;
  w.write_uint(value, bits);
  return Label(w);
}

ConfigGraph agreement_config(const Graph& g, std::uint64_t value, int bits) {
  std::vector<State> states(g.num_vertices());
  for (auto& s : states) s.payload = payload_of(value, bits);
  return ConfigGraph(g, std::move(states));
}

TEST(AgreementScheme, CompletenessOnAgreeingStates) {
  Rng rng(71);
  WeightOptions wo;
  const Graph g = random_connected_graph(30, 40, wo, rng);
  const ConfigGraph cfg = agreement_config(g, 0xDEAD, 16);
  EXPECT_TRUE(agreement_predicate(cfg));
  const AgreementScheme scheme;
  const auto result = mark_and_verify(scheme, cfg);
  EXPECT_TRUE(result.accepted);
  // Lemma 2.2: proof size is exactly m (the payload is copied verbatim).
  EXPECT_EQ(result.max_label_bits, 16u);
}

TEST(AgreementScheme, SoundnessOneDeviantState) {
  Rng rng(72);
  WeightOptions wo;
  const Graph g = random_connected_graph(30, 10, wo, rng);
  ConfigGraph cfg = agreement_config(g, 5, 8);
  cfg.state(17).payload = payload_of(6, 8);
  EXPECT_FALSE(agreement_predicate(cfg));

  const AgreementScheme scheme;
  // Any labels: try the honest copy labels and several adversarial mixes.
  std::vector<Label> labels(cfg.size());
  for (VertexId v = 0; v < cfg.size(); ++v) labels[v] = cfg.state(v).payload;
  EXPECT_FALSE(run_verifier(scheme, cfg, labels).accepted);

  // Adversary lies uniformly: claims 5 everywhere -> node 17 must catch
  // the mismatch with its own state.
  for (auto& l : labels) l = payload_of(5, 8);
  const auto r = run_verifier(scheme, cfg, labels);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.rejecting, std::vector<VertexId>{17});

  // Adversary lies the other way: everyone claims 6.
  for (auto& l : labels) l = payload_of(6, 8);
  EXPECT_FALSE(run_verifier(scheme, cfg, labels).accepted);
}

TEST(AgreementScheme, SoundnessRandomAdversaries) {
  Rng rng(73);
  WeightOptions wo;
  const Graph g = random_connected_graph(12, 8, wo, rng);
  ConfigGraph cfg = agreement_config(g, 1, 4);
  cfg.state(3).payload = payload_of(2, 4);
  const AgreementScheme scheme;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Label> labels;
    for (VertexId v = 0; v < cfg.size(); ++v) {
      labels.push_back(payload_of(rng.uniform(0, 15), 4));
    }
    EXPECT_FALSE(run_verifier(scheme, cfg, labels).accepted);
  }
}

TEST(AgreementScheme, TwoVertexLowerBoundScenario) {
  // The lemma's lower-bound gadget: two nodes, disagreeing states; no
  // label pair of any size may be accepted by both.
  Graph::Builder b(2);
  b.add_edge(0, 1, 1);
  const Graph g = b.build();
  std::vector<State> states(2);
  states[0].payload = payload_of(3, 4);
  states[1].payload = payload_of(9, 4);
  const ConfigGraph cfg(g, std::move(states));
  const AgreementScheme scheme;
  for (std::uint64_t l0 = 0; l0 < 16; ++l0) {
    for (std::uint64_t l1 = 0; l1 < 16; ++l1) {
      const std::vector<Label> labels{payload_of(l0, 4), payload_of(l1, 4)};
      EXPECT_FALSE(run_verifier(scheme, cfg, labels).accepted);
    }
  }
}

}  // namespace
}  // namespace mstv
