#include "plscheme/config_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"

namespace mstv {
namespace {

TEST(ConfigGraph, TreeConfigInducesTheTree) {
  Rng rng(61);
  WeightOptions wo;
  const Graph g = random_connected_graph(40, 60, wo, rng);
  const auto tree = kruskal_mst(g);
  const ConfigGraph cfg = make_tree_config(g, tree, 5);

  auto induced = cfg.induced_subgraph();
  auto expected = tree;
  std::sort(induced.begin(), induced.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(induced, expected);

  // Root 5 has no parent; everyone else points somewhere.
  EXPECT_FALSE(cfg.state(5).parent_port.has_value());
  for (VertexId v = 0; v < cfg.size(); ++v) {
    if (v != 5) {
      EXPECT_TRUE(cfg.state(v).parent_port.has_value());
    }
    EXPECT_EQ(cfg.state(v).id, v);
  }
  EXPECT_TRUE(cfg.ids_unique());
}

TEST(ConfigGraph, CustomIds) {
  Graph::Builder b(3);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  const EdgeId e12 = b.add_edge(1, 2, 1);
  const Graph g = b.build();
  const std::vector<std::uint64_t> ids{10, 20, 30};
  const ConfigGraph cfg = make_tree_config(g, {e01, e12}, 0, &ids);
  EXPECT_EQ(cfg.state(2).id, 30u);
}

TEST(ConfigGraph, DefinitionTwoOneEitherEndpointSuffices) {
  // An edge belongs to the induced subgraph iff *one* endpoint points at
  // it; craft states manually to check the disjunction.
  Graph::Builder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const Graph g = b.build();
  std::vector<State> states(3);
  states[0].parent_port = g.find_port(0, 1);  // edge (0,1) from side 0
  states[2].parent_port = g.find_port(2, 1);  // edge (1,2) from side 2
  const ConfigGraph cfg(g, std::move(states));
  EXPECT_EQ(cfg.induced_subgraph().size(), 2u);
}

TEST(ConfigGraph, DanglingParentPortIsIgnored) {
  Graph::Builder b(2);
  b.add_edge(0, 1, 1);
  const Graph g = b.build();
  std::vector<State> states(2);
  states[0].parent_port = 7;  // no such port
  const ConfigGraph cfg(g, std::move(states));
  EXPECT_TRUE(cfg.induced_subgraph().empty());
}

TEST(ConfigGraph, DuplicateIdsDetected) {
  Graph::Builder b(2);
  b.add_edge(0, 1, 1);
  const Graph g = b.build();
  std::vector<State> states(2);
  states[0].id = 4;
  states[1].id = 4;
  const ConfigGraph cfg(g, std::move(states));
  EXPECT_FALSE(cfg.ids_unique());
}

TEST(ConfigGraph, StateEqualityIncludesPayload) {
  State a, b;
  EXPECT_EQ(a, b);
  BitWriter w;
  w.write_uint(3, 2);
  a.payload = Label(w);
  EXPECT_NE(a, b);
}

TEST(ConfigGraph, SizeMismatchRejected) {
  Graph::Builder b(3);
  b.add_edge(0, 1, 1);
  const Graph g = b.build();
  std::vector<State> states(2);
  EXPECT_THROW(ConfigGraph(g, std::move(states)), PreconditionError);
}

}  // namespace
}  // namespace mstv
