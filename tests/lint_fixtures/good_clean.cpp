// mstv-lint-fixture: src/plscheme/fixture_clean.cpp
// Known-good: deterministic, lock-free, convention-following code; the
// engine must report nothing at all.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mstv {

// Tokens that *look* adjacent to banned constructs but aren't: a string
// mentioning rand(), an identifier containing "time", a sorted map walk.
inline const char* kDoc = "never call rand() in result-producing code";

std::uint64_t total_node_time_us(const std::map<int, std::uint64_t>& by_node) {
  std::uint64_t time_total = 0;
  for (const auto& [node, t] : by_node) {
    (void)node;
    time_total += t;
  }
  return time_total;
}

std::vector<int> stable_order(std::vector<int> xs) {
  // Deterministic: explicit comparison, no hash order anywhere.
  for (std::size_t i = 1; i < xs.size(); ++i) {
    for (std::size_t j = i; j > 0 && xs[j - 1] > xs[j]; --j) {
      std::swap(xs[j - 1], xs[j]);
    }
  }
  return xs;
}

}  // namespace mstv
