// mstv-lint-fixture: src/runtime/mp/fixture_worker.cpp
// Known-bad: code in src/runtime/mp/ runs in a forked child between
// fork() and _exit().  Spawning threads, calling exit() (atexit
// handlers + parent-inherited stdio buffers flushed twice), or touching
// stdio streams there is fork-unsafe.  The raw-fd wire protocol and
// _exit() are the sanctioned counterparts.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>

namespace mstv::mp {

void fixture_child_loop(int fd) {
  std::thread watchdog([] {});     // expect: MP-FORK-SAFE
  watchdog.join();
  std::printf("worker up\n");      // expect: MP-FORK-SAFE
  std::cout << "fd " << fd << '\n';  // expect: MP-FORK-SAFE
  exit(1);                         // expect: MP-FORK-SAFE
}

void fixture_child_exit(int code) {
  // mstv-lint: allow(MP-FORK-SAFE) — fixture: terminal error epitaph on
  // unbuffered stderr immediately before _exit; nothing else will flush.
  std::fprintf(stderr, "worker dying\n");
  _exit(code);
}

}  // namespace mstv::mp
