// mstv-lint-fixture: src/plscheme/fixture_clock.cpp
// Known-bad: wall-clock reads in a result-producing layer.
#include <chrono>
#include <ctime>

namespace mstv {

double stamp() {
  const auto t = std::chrono::steady_clock::now();   // expect: DET-CLOCK
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long unix_now() {
  return ::time(nullptr);                            // expect: DET-CLOCK
}

double sys_now() {
  const auto t = std::chrono::system_clock::now();   // expect: DET-CLOCK
  return static_cast<double>(t.time_since_epoch().count());
}

// Mentioning the clock *type* (a parameter, an alias) is fine — only the
// now() read is ambient state.
using Instant = std::chrono::steady_clock::time_point;
double span_of(Instant a, Instant b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace mstv
