// mstv-lint-fixture: src/labeling/fixture_det_reach.cpp
// Known-bad: the entry point itself is clean, but a helper it calls
// draws ambient entropy — the per-file rule flags the primitive, and
// DET-REACH flags the call edge in the entry point that reaches it.
#include <cstdlib>

namespace mstv {

int entropy_helper() {
  return rand();  // expect: DET-RAND
}

void mark(int n) {
  const int seed = entropy_helper();  // expect: DET-REACH
  (void)seed;
  (void)n;
}

}  // namespace mstv
