// mstv-lint-fixture: src/runtime/fixture_hot_reach.cpp
// Known-bad: the shard lambda contains no lock and no syscall itself,
// but both helpers it calls do — HOT-REACH flags each call edge inside
// the lambda (the per-file HOT-MUTEX rule cannot see past the call).
#include <mutex>
#include <poll.h>

#include "parallel/parallel_for.hpp"

namespace mstv {

void guarded_bump(std::mutex& mu, int& x) {
  const std::lock_guard<std::mutex> g(mu);
  ++x;
}

int wait_ready(int fd) {
  return ::poll(nullptr, 0, fd);
}

void run_shards(std::mutex& mu, int& x, int fd) {
  mstv::parallel::for_each_shard(8, [&](const auto& s) {
    guarded_bump(mu, x);  // expect: HOT-REACH
    wait_ready(fd);       // expect: HOT-REACH
    (void)s;
  });
}

}  // namespace mstv
