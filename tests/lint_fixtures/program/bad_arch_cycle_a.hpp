// mstv-lint-fixture: src/tree/fixture_cyc_a.hpp
// Known-bad (multi-file program fixture): this header and its partner
// include each other.  Both files sit in the same module, so no layer
// edge is violated — the cycle obligation alone fires, reported at the
// back edge's include line in the cycle's first file.
#pragma once

#include "tree/fixture_cyc_b.hpp"       // expect: ARCH-LAYER

namespace mstv {

inline int fixture_cyc_a() { return 1; }

}  // namespace mstv
