// mstv-lint-fixture: src/tree/fixture_cyc_b.hpp
// Known-bad (multi-file program fixture): partner of fixture_cyc_a.hpp;
// the pair forms an include cycle.  The finding is anchored in the
// cycle's lexicographically first file, so this one carries no marker.
#pragma once

#include "tree/fixture_cyc_a.hpp"

namespace mstv {

inline int fixture_cyc_b() { return 2; }

}  // namespace mstv
