// mstv-lint-fixture: src/runtime/fixture_sched.hpp
// Support file for the program fixture corpus: a runtime-layer header
// the obs-layer file illegally includes.
#pragma once

namespace mstv {

inline int fixture_sched_arity() { return 2; }

}  // namespace mstv
