// mstv-lint-fixture: src/util/fixture_bits.hpp
// Support file for the program fixture corpus: a util-layer header —
// every module may depend on util, so including this is always legal.
#pragma once

namespace mstv {

inline int fixture_bits_arity() { return 1; }

}  // namespace mstv
