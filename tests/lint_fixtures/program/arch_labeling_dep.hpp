// mstv-lint-fixture: src/labeling/fixture_labels.hpp
// Support file for the program fixture corpus: a labeling-layer header
// that itself legally reaches down to util.
#pragma once

#include "util/fixture_bits.hpp"

namespace mstv {

inline int fixture_labels_arity() { return fixture_bits_arity() + 1; }

}  // namespace mstv
