// mstv-lint-fixture: src/obs/fixture_probe.cpp
// Known-bad (multi-file program fixture): obs is a leaf-ish layer — it
// may depend on util and nothing else, so the verifier layers can be
// instrumented without the instrumentation depending back on them.
// Both includes below resolve to modules outside obs's dependency cone.
#include "runtime/fixture_sched.hpp"    // expect: ARCH-LAYER
#include "plscheme/fixture_api.hpp"     // expect: ARCH-LAYER
#include "util/fixture_bits.hpp"

namespace mstv {

int probe() { return fixture_sched_arity() + fixture_api_arity(); }

}  // namespace mstv
