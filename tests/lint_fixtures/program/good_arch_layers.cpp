// mstv-lint-fixture: src/store/fixture_snapshot.cpp
// Known-good (multi-file program fixture): store may depend on labeling
// (and transitively on whatever labeling may use), obs, parallel, and
// util — every include below is inside the declared dependency cone.
#include "labeling/fixture_labels.hpp"
#include "util/fixture_bits.hpp"

namespace mstv {

int snapshot_arity() { return fixture_labels_arity() + fixture_bits_arity(); }

}  // namespace mstv
