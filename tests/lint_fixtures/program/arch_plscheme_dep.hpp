// mstv-lint-fixture: src/plscheme/fixture_api.hpp
// Support file for the program fixture corpus: a plscheme-layer header
// the obs-layer file illegally includes.
#pragma once

namespace mstv {

inline int fixture_api_arity() { return 3; }

}  // namespace mstv
