// mstv-lint-fixture: src/runtime/fixture_obs.cpp
// Known-bad: instrument names off the `component.noun[_unit]` convention.
#include <cstdint>

// Stand-ins for the obs entry points; the rule matches call shape, not
// definitions.
#define MSTV_COUNTER_INC(name) (void)sizeof(name)
#define MSTV_HIST_OBSERVE(name, v) (void)sizeof(name)
#define MSTV_SPAN(name) (void)sizeof(name)

struct FakeRegistry {
  int counter(const char*) { return 0; }
  int gauge(const char*) { return 0; }
};

void record(FakeRegistry& reg) {
  MSTV_COUNTER_INC("VerifyMessages");        // expect: OBS-METRIC-NAME
  MSTV_HIST_OBSERVE("nodetime", 1.0);        // expect: OBS-METRIC-NAME
  MSTV_SPAN("marker.Assign_Labels");         // expect: OBS-METRIC-NAME
  reg.counter("faults.injected_total");      // ok: two snake segments
  reg.gauge("threads");                      // expect: OBS-METRIC-NAME
  MSTV_COUNTER_INC("verify.messages");       // ok
  MSTV_HIST_OBSERVE("verify.node_time_us", 2.0);  // ok
}
