// mstv-lint-fixture: src/runtime/fixture_trace.cpp
// Known-bad: trace-session categories and ledger phase keys off the
// conventions of docs/observability.md.
#include <cstdint>

// Stand-ins for the obs entry points; the rules match call shape, not
// definitions.
#define MSTV_TRACE_SCOPE(cat, name, ...) (void)sizeof(cat)
#define MSTV_TRACE_INSTANT(cat, name, ...) (void)sizeof(cat)
#define MSTV_LEDGER_COMMIT(phase, round, scheme, cell) (void)sizeof(phase)

void record(std::uint64_t round, int cell) {
  MSTV_TRACE_SCOPE("Network", "network.round");        // expect: OBS-TRACE-CATEGORY
  MSTV_TRACE_SCOPE("verify.round", "verify.round");    // expect: OBS-TRACE-CATEGORY
  MSTV_TRACE_INSTANT("network", "RoundDone");          // expect: OBS-TRACE-CATEGORY
  MSTV_TRACE_SCOPE("network", "verify.round");         // expect: OBS-TRACE-CATEGORY
  MSTV_TRACE_SCOPE("network", "network.verify_round");  // ok
  MSTV_TRACE_INSTANT("selfstab", "selfstab.tick");      // ok

  MSTV_LEDGER_COMMIT("VerifyRound", round, "pi-mst", cell);   // expect: OBS-LEDGER-KEY
  MSTV_LEDGER_COMMIT("repair", round, "pi-mst", cell);        // expect: OBS-LEDGER-KEY
  MSTV_LEDGER_COMMIT("verify.round", round, "pi-mst", cell);  // ok
  MSTV_LEDGER_COMMIT("rogue.phase", round, "pi-mst", cell);   // expect: OBS-LEDGER-PHASE-REGISTRY
  MSTV_LEDGER_COMMIT("mp.wire", round, "pi-mst", cell);       // ok
}
