// mstv-lint-fixture: src/plscheme/fixture_suppressed.cpp
// Known-good: every violation below carries a justified allow()
// certificate, so the whole file must lint clean.
#include <chrono>
#include <cstdlib>
#include <unordered_set>
#include <vector>

namespace mstv {

int jitter() {
  // mstv-lint: allow(DET-RAND) — fixture: demonstrates a justified
  // suppression covering the line after a whole-line comment block.
  return rand();
}

double coarse_now() {
  const auto t = std::chrono::steady_clock::now();  // mstv-lint: allow(DET-CLOCK) — fixture: same-line certificate
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

std::size_t count_all(const std::unordered_set<int>& seen) {
  std::size_t n = 0;
  // mstv-lint: allow(DET-UMAP) — fixture: fold is order-insensitive (pure count)
  for (int v : seen) n += static_cast<std::size_t>(v >= 0 ? 1 : 1);
  return n;
}

}  // namespace mstv
