// mstv-lint-fixture: src/runtime/fixture_hot.cpp
// Known-bad: lock acquisition inside shard lambdas (the verifier's hot
// path).  One lock serializes every worker in the pool.
#include <cstddef>
#include <mutex>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace mstv {

void tally(std::vector<int>& hits) {
  std::mutex mu;
  parallel::for_each_shard(hits.size(), [&](const parallel::ShardRange& s) {
    for (std::size_t i = s.begin; i < s.end; ++i) {
      std::lock_guard<std::mutex> lock(mu);   // expect: HOT-MUTEX
      ++hits[i];
    }
  });
}

int reduce_locked(std::vector<int>& xs) {
  std::mutex mu;
  return parallel::sharded_reduce(
      xs.size(), 0,
      [&](const parallel::ShardRange& s) {
        std::unique_lock<std::mutex> lock(mu);   // expect: HOT-MUTEX
        int acc = 0;
        for (std::size_t i = s.begin; i < s.end; ++i) acc += xs[i];
        return acc;
      },
      [](int& acc, int part) { acc += part; });
}

// A lock *outside* the shard lambda (serial setup) is legitimate.
void fine(std::vector<int>& xs) {
  std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  parallel::for_each_shard(xs.size(), [&](const parallel::ShardRange& s) {
    for (std::size_t i = s.begin; i < s.end; ++i) xs[i] = 0;
  });
}

}  // namespace mstv
