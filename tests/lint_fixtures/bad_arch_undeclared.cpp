// mstv-lint-fixture: src/scratch/fixture_probe.cpp    <- expect: ARCH-LAYER
// Known-bad: the file lives in a src/ directory that tools/lint/layers.txt
// does not declare.  Every src module must have a declared place in the
// layer DAG; an undeclared module is reported once, at its first file.
namespace mstv {

int probe() { return 1; }

}  // namespace mstv
