// mstv-lint-fixture: src/plscheme/fixture_umap.cpp
// Known-bad: hash-order iteration in a result-producing layer.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mstv {

std::vector<std::uint32_t> fold_rejectors(
    const std::unordered_set<std::uint32_t>& rejectors) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t v : rejectors) {   // expect: DET-UMAP
    out.push_back(v);
  }
  return out;
}

std::uint64_t walk_weights() {
  std::unordered_map<std::uint32_t, std::uint64_t> weight;
  weight[1] = 10;
  std::uint64_t sum = 0;
  for (auto it = weight.begin(); it != weight.end(); ++it) {  // expect: DET-UMAP
    sum += it->second;
  }
  return sum;
}

// Point lookups are order-free and fine.
bool member(const std::unordered_set<std::uint32_t>& live, std::uint32_t v) {
  return live.find(v) != live.end();
}

}  // namespace mstv
