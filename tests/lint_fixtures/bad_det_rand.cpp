// mstv-lint-fixture: src/labeling/fixture_rand.cpp
// Known-bad: ambient randomness in a result-producing layer.  Every
// `expect:` line below must be flagged by exactly the named rule.
#include <cstdlib>
#include <random>

namespace mstv {

int draw_weight() {
  std::random_device rd;              // expect: DET-RAND
  return static_cast<int>(rd());
}

void reseed() {
  srand(42);                          // expect: DET-RAND
}

int noisy_pick(int n) {
  return rand() % n;                  // expect: DET-RAND
}

// Member access spelled like the C call is NOT a violation.
struct FakeDie {
  int rand() const { return 4; }
};
int fine(const FakeDie& d) { return d.rand(); }

}  // namespace mstv
