// mstv-lint-fixture: src/graph/fixture_stale.cpp
// Known-bad: a justified, well-formed certificate whose violation has
// since been fixed.  It suppresses nothing, so it is dead weight that
// would silently bless a future regression — LINT-STALE-ALLOW flags it.
namespace mstv {

int stable_weight() {
  return 7;  // mstv-lint: allow(DET-RAND) -- the rand() jitter was removed   expect: LINT-STALE-ALLOW
}

}  // namespace mstv
