// mstv-lint-fixture: src/labeling/fixture_allow.cpp
// Known-bad: suppressions that don't carry their evidence.  A bare
// allow() is a violation, and so is one naming a rule that doesn't exist
// (it would silently suppress nothing forever).
#include <cstdlib>

namespace mstv {

int a() {
  return rand();  /* mstv-lint: allow(DET-RAND) */   // expect: DET-RAND, LINT-BARE-ALLOW
}

int b() {  /* mstv-lint: allow(DET-RANDOM) — wrong id */   // expect: LINT-UNKNOWN-RULE
  return 7;
}

int c() {
  return rand();  // mstv-lint: allow(DET-RAND) — fixture: justified, so only the meta rules stay quiet here
}

}  // namespace mstv
