// mstv-lint-fixture: src/labeling/fixture_hot_file.cpp
// mstv-lint: hot-path-file — whole-file hot region for the fixture suite.
// Known-bad: with the marker above, any lock anywhere in the file is a
// violation, call sites or not.
#include <mutex>

namespace mstv {

int shared_count(std::mutex& mu, int& counter) {   // expect: HOT-MUTEX
  std::lock_guard<std::mutex> lock(mu);            // expect: HOT-MUTEX
  return ++counter;
}

}  // namespace mstv
