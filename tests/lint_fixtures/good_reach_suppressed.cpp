// mstv-lint-fixture: src/plscheme/fixture_reach_ok.cpp
// Known-good: reach paths certified at both ends.  The entry point
// reaches a clock and an entropy source whose primitives carry
// certificates for their per-file rules — a primitive-site certificate
// covers every call path through it, so DET-REACH stays quiet too.
// The shard lambda reaches a blocking poll() through a helper; blocking
// syscalls have no per-file rule, so that edge carries its certificate
// at the call site instead.
#include <poll.h>

#include <chrono>
#include <cstdlib>

#include "parallel/parallel_for.hpp"

namespace mstv {

double shard_telemetry() {
  // mstv-lint: allow(DET-CLOCK) — fixture: telemetry certified at the
  // primitive; every reach path through it inherits the certificate.
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int jitter_source() {
  return rand();  // mstv-lint: allow(DET-RAND) — fixture: certified entropy source
}

void mark(int n) {
  const double t = shard_telemetry();
  const int j = jitter_source();
  (void)t;
  (void)j;
  (void)n;
}

int drain_control_fd(int fd) {
  return ::poll(nullptr, 0, fd);
}

void fan_out(int fd) {
  mstv::parallel::for_each_shard(4, [&](const auto& s) {
    // mstv-lint: allow(HOT-REACH) — fixture: call-site certificate; the
    // fd is nonblocking and drained once per shard epoch by design.
    drain_control_fd(fd);
    (void)s;
  });
}

}  // namespace mstv
