// mstv-lint-fixture: src/graph/fixture_stale_kept.cpp
// Known-good: a currently-unused certificate kept on purpose, with the
// keep itself certified by allow(LINT-STALE-ALLOW).  The outer
// certificate is what the stale audit charges against — covering it
// makes the file clean, and the covering certificate counts as used.
namespace mstv {

int seasonal_weight(bool heavy) {
  // mstv-lint: allow(LINT-STALE-ALLOW) — fixture: the certificate below
  // guards a seasonal branch that is compiled out right now.
  // mstv-lint: allow(DET-RAND) -- jitter returns when the branch does
  return heavy ? 9 : 7;
}

}  // namespace mstv
