#include "runtime/boruvka_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"
#include "plscheme/mst_scheme.hpp"

namespace mstv {
namespace {

TEST(DistributedBoruvka, ComputesAnMst) {
  Rng rng(81);
  WeightOptions wo;
  wo.max_weight = 1u << 16;
  for (int i = 0; i < 5; ++i) {
    const Graph g = random_connected_graph(60, 120, wo, rng);
    const auto stats = distributed_boruvka(g);
    EXPECT_TRUE(is_spanning_tree(g, stats.tree));
    EXPECT_TRUE(is_mst(g, stats.tree));
    EXPECT_EQ(total_weight(g, stats.tree),
              total_weight(g, kruskal_mst(g)));
  }
}

TEST(DistributedBoruvka, PhaseCountIsLogarithmic) {
  Rng rng(82);
  WeightOptions wo;
  wo.max_weight = 1u << 20;
  wo.distinct = true;
  for (const std::size_t n : {2u, 16u, 100u, 500u}) {
    const Graph g = random_connected_graph(n, 2 * n, wo, rng);
    const auto stats = distributed_boruvka(g);
    EXPECT_LE(stats.phases,
              static_cast<std::size_t>(std::ceil(std::log2(n))) + 1)
        << "n=" << n;
    EXPECT_GE(stats.phases, 1u);
  }
}

TEST(DistributedBoruvka, AccountsTraffic) {
  Rng rng(83);
  WeightOptions wo;
  const Graph g = random_connected_graph(40, 80, wo, rng);
  const auto stats = distributed_boruvka(g);
  // At least the probe traffic of the first phase.
  EXPECT_GE(stats.messages, 2 * g.num_edges());
  EXPECT_GT(stats.message_bits, stats.messages);  // multi-bit messages
  EXPECT_GE(stats.rounds, stats.phases);
}

TEST(DistributedBoruvka, HandlesTiesViaEdgeIdOrder) {
  Rng rng(84);
  WeightOptions wo;
  wo.max_weight = 1;  // all ties
  const Graph g = random_connected_graph(50, 100, wo, rng);
  const auto stats = distributed_boruvka(g);
  EXPECT_TRUE(is_mst(g, stats.tree));
}

TEST(DistributedBoruvka, SingleVertex) {
  Graph::Builder b(1);
  const Graph g = b.build();
  const auto stats = distributed_boruvka(g);
  EXPECT_TRUE(stats.tree.empty());
  EXPECT_EQ(stats.phases, 0u);
  EXPECT_EQ(stats.messages, 0u);
}

TEST(DistributedBoruvka, VerificationIsCheaperThanComputation) {
  // The paper's headline motivation, at test scale: one verification round
  // moves fewer bits than the distributed computation.
  Rng rng(85);
  WeightOptions wo;
  wo.max_weight = 1u << 16;
  const Graph g = random_connected_graph(200, 400, wo, rng);
  const auto compute = distributed_boruvka(g);

  // One verification round: every node sends its O(log n log W) label
  // across every edge.
  std::size_t verify_bits = 0;
  {
    const MstScheme scheme;
    const ConfigGraph cfg = make_tree_config(g, compute.tree, 0);
    const auto labels = scheme.mark(cfg);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      verify_bits += g.degree(v) * labels[v].size_bits();
    }
  }
  EXPECT_LT(verify_bits, compute.message_bits * 4);  // same order at worst
}

}  // namespace
}  // namespace mstv
