// Golden tests for the trace-session layer: the exported Chrome Trace
// Event document must actually parse (mstv::json), carry the thread
// metadata Perfetto keys on, and keep per-thread completion order.  The
// direct TraceSession API is exercised (it compiles in every config,
// including -DMSTV_OBS_DISABLED where only the macros vanish), plus one
// parallel pass through the real shard engine.
#include "obs/trace_session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "util/json.hpp"

namespace mstv::obs {
namespace {

TEST(TraceSession, NeverStartedExportsValidEmptyDocument) {
  TraceSession s;
  const SessionSnapshot snap = s.snapshot();
  EXPECT_FALSE(snap.was_active);
  EXPECT_TRUE(snap.threads.empty());

  const std::string doc = to_chrome_trace(snap);
  const json::Value v = json::parse(doc);  // throws if malformed
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("traceEvents"), nullptr);
  EXPECT_TRUE(v.find("traceEvents")->as_array().empty());
  EXPECT_DOUBLE_EQ(v.find_path("otherData.dropped_events")->as_number(), 0.0);
}

TEST(TraceSession, RecordsEventsAndExportsChromeTrace) {
  TraceSession s;
  s.start();
  s.record_complete("network", "network.verify_round", 12.5,
                    {TraceArg::uint("round", 3), TraceArg::str("scheme", "pi-mst")});
  s.record_instant("selfstab", "selfstab.tick",
                   {TraceArg::real("score", 0.5)});
  s.stop();

  const SessionSnapshot snap = s.snapshot();
  EXPECT_TRUE(snap.was_active);
  ASSERT_EQ(snap.threads.size(), 1u);
  ASSERT_EQ(snap.threads[0].events.size(), 2u);
  EXPECT_EQ(snap.threads[0].events[0].phase, 'X');
  EXPECT_EQ(snap.threads[0].events[1].phase, 'i');

  const json::Value v = json::parse(to_chrome_trace(snap));
  const auto& events = v.find("traceEvents")->as_array();
  // One thread_name metadata row plus the two recorded events.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0]->find("ph")->as_string(), "M");
  EXPECT_EQ(events[0]->find_path("args.name")->as_string(), "driver");

  const json::Value& scope = *events[1];
  EXPECT_EQ(scope.find("name")->as_string(), "network.verify_round");
  EXPECT_EQ(scope.find("cat")->as_string(), "network");
  EXPECT_EQ(scope.find("ph")->as_string(), "X");
  ASSERT_NE(scope.find("dur"), nullptr);
  EXPECT_DOUBLE_EQ(scope.find("dur")->as_number(), 12.5);
  EXPECT_DOUBLE_EQ(scope.find_path("args.round")->as_number(), 3.0);
  EXPECT_EQ(scope.find_path("args.scheme")->as_string(), "pi-mst");

  const json::Value& instant = *events[2];
  EXPECT_EQ(instant.find("ph")->as_string(), "i");
  EXPECT_EQ(instant.find("s")->as_string(), "t");
  EXPECT_DOUBLE_EQ(instant.find_path("args.score")->as_number(), 0.5);
}

TEST(TraceSession, CompletionTimestampsAreMonotonePerThread) {
  TraceSession s;
  s.start();
  for (int i = 0; i < 50; ++i) {
    // Varying claimed durations: the *completion* instants (ts + dur)
    // are what arrive in order, and what the exporter must keep.
    s.record_complete("t", "t.step", i % 7, {});
    s.record_instant("t", "t.mark");
  }
  s.stop();

  const SessionSnapshot snap = s.snapshot();
  for (const ThreadTrace& t : snap.threads) {
    double last_end = -1.0;
    for (const SessionEvent& ev : t.events) {
      const double end = ev.ts_us + ev.dur_us;
      EXPECT_GE(end, last_end) << "completion order broken on tid " << t.tid;
      EXPECT_GE(ev.dur_us, 0.0);
      last_end = end;
    }
  }
}

TEST(TraceSession, KeepsOldestAndCountsDrops) {
  TraceSession s;
  s.start(/*capacity_per_thread=*/2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    s.record_instant("t", "t.mark", {TraceArg::uint("i", i)});
  }
  s.stop();

  const SessionSnapshot snap = s.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  ASSERT_EQ(snap.threads[0].events.size(), 2u);
  // Keep-oldest: the first two events survive, the tail is dropped.
  EXPECT_EQ(snap.threads[0].events[0].args[0].u, 0u);
  EXPECT_EQ(snap.threads[0].events[1].args[0].u, 1u);
  EXPECT_EQ(snap.threads[0].dropped, 3u);

  const json::Value v = json::parse(to_chrome_trace(snap));
  EXPECT_DOUBLE_EQ(v.find_path("otherData.dropped_events")->as_number(), 3.0);
}

TEST(TraceSession, RestartDiscardsPreviousSession) {
  TraceSession s;
  s.start();
  s.record_instant("t", "t.old");
  s.stop();
  s.start();
  s.record_instant("t", "t.fresh");
  s.stop();

  const SessionSnapshot snap = s.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  ASSERT_EQ(snap.threads[0].events.size(), 1u);
  EXPECT_EQ(snap.threads[0].events[0].name, "t.fresh");
}

TEST(TraceSession, InactiveSessionRecordsNothing) {
  TraceSession s;
  s.record_instant("t", "t.mark");  // no session open yet
  s.start();
  s.stop();
  s.record_instant("t", "t.mark");  // window already closed
  const SessionSnapshot snap = s.snapshot();
  for (const ThreadTrace& t : snap.threads) {
    EXPECT_TRUE(t.events.empty());
  }
}

// The quiescence contract in practice: pooled shards record concurrently,
// the pool's completion wait synchronizes with the driver, and the export
// sees every shard event exactly once.  (Run under TSan in CI.)
TEST(TraceSession, ParallelShardsRecordIntoGlobalSession) {
  parallel::set_thread_count(4);
  TraceSession& s = TraceSession::global();
  s.start();
  std::atomic<std::uint64_t> shards_run{0};
  parallel::for_each_shard(4096, [&](const parallel::ShardRange& shard) {
    s.record_complete("test", "test.shard", 1.0,
                      {TraceArg::uint("shard", shard.index)});
    shards_run.fetch_add(1, std::memory_order_relaxed);
  });
  s.stop();

  // The shard engine's own instrumentation (cat "parallel") rides along
  // in instrumented builds; count only this test's events.
  const SessionSnapshot snap = s.snapshot();
  std::uint64_t exported = 0;
  std::set<std::uint64_t> shard_ids;
  std::set<std::uint32_t> tids;
  for (const ThreadTrace& t : snap.threads) {
    EXPECT_EQ(t.dropped, 0u);
    for (const SessionEvent& ev : t.events) {
      if (ev.cat != "test") continue;
      ASSERT_EQ(ev.args.size(), 1u);
      shard_ids.insert(ev.args[0].u);
      tids.insert(t.tid);
      ++exported;
    }
  }
  EXPECT_EQ(exported, shards_run.load());
  EXPECT_EQ(shard_ids.size(), shards_run.load());  // each shard once

  // The document parses and names every registered thread.
  const json::Value v = json::parse(to_chrome_trace(snap));
  std::size_t meta_rows = 0;
  for (const auto& ev : v.find("traceEvents")->as_array()) {
    if (ev->find("ph")->as_string() == "M") ++meta_rows;
  }
  EXPECT_EQ(meta_rows, snap.threads.size());
  EXPECT_GE(tids.size(), 1u);
  parallel::set_thread_count(0);  // back to the default
}

}  // namespace
}  // namespace mstv::obs
