#include "plscheme/fragment_scheme.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"
#include "mst/union_find.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "tree/path_queries.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {
namespace {

struct FragCase {
  const char* name;
  std::uint64_t seed;
  std::size_t n;
  std::size_t extra;
  Weight max_w;
  bool distinct;
};

class FragmentCompleteness : public ::testing::TestWithParam<FragCase> {};

TEST_P(FragmentCompleteness, MarkerLabelsAccepted) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  WeightOptions wo;
  wo.max_weight = c.max_w;
  wo.distinct = c.distinct;
  const Graph g = random_connected_graph(c.n, c.extra, wo, rng);
  const FragmentScheme scheme;
  for (const VertexId root : {VertexId{0}, static_cast<VertexId>(c.n - 1)}) {
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), root);
    const auto result = mark_and_verify(scheme, cfg);
    EXPECT_TRUE(result.accepted)
        << "root=" << root << " rejecting=" << result.rejecting.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FragmentCompleteness,
    ::testing::Values(
        FragCase{"tiny", 1, 2, 0, 8, false},
        FragCase{"small", 2, 20, 25, 100, false},
        FragCase{"ties", 3, 40, 80, 3, false},
        FragCase{"medium", 4, 150, 300, 1u << 20, true},
        FragCase{"tree_only", 5, 80, 0, 50, false},
        FragCase{"dense", 6, 24, 200, 1u << 12, true},
        FragCase{"unit", 7, 60, 120, 1, false}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(FragmentScheme, AcceptsAnyMstOfNonUniqueInstance) {
  Graph::Builder b(4);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  const EdgeId e12 = b.add_edge(1, 2, 5);
  const EdgeId e23 = b.add_edge(2, 3, 1);
  const EdgeId e30 = b.add_edge(3, 0, 5);
  const Graph g = b.build();
  const FragmentScheme scheme;
  for (const auto& tree : {std::vector<EdgeId>{e01, e12, e23},
                           std::vector<EdgeId>{e01, e23, e30}}) {
    const ConfigGraph cfg = make_tree_config(g, tree, 0);
    EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
  }
}

TEST(FragmentScheme, MarkerRejectsNonMst) {
  Graph::Builder b(3);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const EdgeId e02 = b.add_edge(0, 2, 9);
  const Graph g = b.build();
  const FragmentScheme scheme;
  EXPECT_THROW((void)scheme.mark(make_tree_config(g, {e01, e02}, 0)),
               PreconditionError);
}

TEST(FragmentScheme, SizeShapeIsLog2NPlusLogNLogW) {
  // At large n / small W pi_frag must be visibly larger than pi_mst (its
  // log^2 n term), converging toward parity as W grows.
  WeightOptions wo;
  auto sizes = [&](std::size_t n, Weight w, std::uint64_t seed) {
    Rng rng(seed);
    wo.max_weight = w;
    const Graph g = random_connected_graph(n, 2 * n, wo, rng);
    const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
    const auto frag = mark_and_verify(FragmentScheme(), cfg);
    const auto mst = mark_and_verify(MstScheme(), cfg);
    EXPECT_TRUE(frag.accepted);
    EXPECT_TRUE(mst.accepted);
    return std::pair{frag.max_label_bits, mst.max_label_bits};
  };
  const auto [frag_small_w, mst_small_w] = sizes(4096, 4, 1);
  EXPECT_GT(frag_small_w, 2 * mst_small_w);  // log^2 n dominates
}

TEST(FragmentScheme, SoundnessSwappedTreeEdge) {
  // Same mutation battery as pi_mst: heavier-chord swaps with stale and
  // re-marked labels must be rejected.
  Rng rng(900);
  WeightOptions wo;
  wo.max_weight = 1u << 10;
  wo.distinct = true;
  const auto g = std::make_unique<Graph>(
      random_connected_graph(30, 60, wo, rng));
  const auto mst = kruskal_mst(*g);
  const FragmentScheme scheme;
  const ConfigGraph cfg = make_tree_config(*g, mst, 0);
  const auto labels = scheme.mark(cfg);
  const RootedTree tree(*g, mst, 0);
  const TreePathQueries q(tree);

  int tested = 0;
  for (const EdgeId chord : non_tree_edges(*g, mst)) {
    const Edge& ce = g->edge(chord);
    if (ce.w <= q.path_max(ce.u, ce.v)) continue;
    // Drop the path-max edge, add the chord.
    VertexId x = ce.u, y = ce.v;
    EdgeId drop = kInvalidEdge;
    Weight best = 0;
    while (x != y) {
      if (tree.depth(x) < tree.depth(y)) std::swap(x, y);
      if (tree.parent_weight(x) >= best) {
        best = tree.parent_weight(x);
        drop = tree.parent_edge(x);
      }
      x = tree.parent(x);
    }
    std::vector<EdgeId> swapped;
    for (const EdgeId e : mst) {
      if (e != drop) swapped.push_back(e);
    }
    swapped.push_back(chord);
    ASSERT_FALSE(is_mst(*g, swapped));
    const ConfigGraph broken = make_tree_config(*g, swapped, 0);
    EXPECT_FALSE(run_verifier(scheme, broken, labels).accepted);
    if (++tested >= 5) break;
  }
  EXPECT_GT(tested, 0);
}

TEST(FragmentScheme, SoundnessLoweredChord) {
  Rng rng(901);
  WeightOptions wo;
  wo.max_weight = 1u << 10;
  wo.distinct = true;
  const auto g = std::make_unique<Graph>(
      random_connected_graph(25, 40, wo, rng));
  const auto mst = kruskal_mst(*g);
  const FragmentScheme scheme;
  const ConfigGraph cfg = make_tree_config(*g, mst, 0);
  const auto labels = scheme.mark(cfg);
  const RootedTree tree(*g, mst, 0);
  const TreePathQueries q(tree);

  int tested = 0;
  for (const EdgeId chord : non_tree_edges(*g, mst)) {
    const Edge& ce = g->edge(chord);
    const Weight mx = q.path_max(ce.u, ce.v);
    Graph::Builder b(g->num_vertices());
    for (EdgeId e = 0; e < g->num_edges(); ++e) {
      const Edge& ed = g->edge(e);
      b.add_edge(ed.u, ed.v, e == chord ? mx - 1 : ed.w);
    }
    const Graph lowered = b.build();
    ASSERT_FALSE(is_mst(lowered, mst));
    std::vector<State> st;
    for (VertexId v = 0; v < cfg.size(); ++v) st.push_back(cfg.state(v));
    const ConfigGraph broken(lowered, std::move(st));
    EXPECT_FALSE(run_verifier(scheme, broken, labels).accepted);
    if (++tested >= 5) break;
  }
  EXPECT_GT(tested, 0);
}

TEST(FragmentScheme, SoundnessRandomBitFlipsOnBrokenConfig) {
  Rng rng(902);
  WeightOptions wo;
  wo.max_weight = 1u << 8;
  wo.distinct = true;
  const auto g = std::make_unique<Graph>(
      random_connected_graph(20, 30, wo, rng));
  const auto mst = kruskal_mst(*g);
  const FragmentScheme scheme;
  const ConfigGraph cfg = make_tree_config(*g, mst, 0);
  const auto labels = scheme.mark(cfg);

  // Break the config: redirect one parent pointer off the MST.
  ConfigGraph broken = cfg;
  bool broke = false;
  for (VertexId v = 0; v < broken.size() && !broke; ++v) {
    if (!broken.state(v).parent_port || g->degree(v) < 2) continue;
    for (PortNumber p = 1; p <= g->degree(v); ++p) {
      if (p == *broken.state(v).parent_port) continue;
      State saved = broken.state(v);
      broken.state(v).parent_port = p;
      const auto induced = broken.induced_subgraph();
      if (is_spanning_tree(*g, induced) && !is_mst(*g, induced)) {
        broke = true;
        break;
      }
      broken.state(v) = saved;
    }
  }
  ASSERT_TRUE(broke);

  EXPECT_FALSE(run_verifier(scheme, broken, labels).accepted);
  for (int trial = 0; trial < 60; ++trial) {
    auto tampered = labels;
    const auto victim = static_cast<VertexId>(rng.index(tampered.size()));
    tampered[victim] = tampered[victim].with_bit_flipped(
        rng.index(tampered[victim].size_bits()));
    EXPECT_FALSE(run_verifier(scheme, broken, tampered).accepted);
  }
}

TEST(FragmentScheme, SingleVertexAndEdge) {
  const FragmentScheme scheme;
  {
    Graph::Builder b(1);
    const Graph g = b.build();
    EXPECT_TRUE(mark_and_verify(scheme, make_tree_config(g, {}, 0)).accepted);
  }
  {
    Graph::Builder b(2);
    const EdgeId e = b.add_edge(0, 1, 9);
    const Graph g = b.build();
    EXPECT_TRUE(
        mark_and_verify(scheme, make_tree_config(g, {e}, 1)).accepted);
  }
}

TEST(FragmentScheme, CrossSchemeLabelsRejected) {
  // Labels of pi_mst presented to pi_frag's verifier (and vice versa)
  // must be rejected as unparseable or inconsistent, not accepted.
  Rng rng(903);
  WeightOptions wo;
  const Graph g = random_connected_graph(15, 20, wo, rng);
  const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
  const FragmentScheme frag;
  const MstScheme mst;
  EXPECT_FALSE(run_verifier(frag, cfg, mst.mark(cfg)).accepted);
  EXPECT_FALSE(run_verifier(mst, cfg, frag.mark(cfg)).accepted);
}

}  // namespace
}  // namespace mstv
