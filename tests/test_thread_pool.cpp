// The parallel execution engine: pool lifecycle, the deterministic
// sharding contract (pure-function boundaries, shard-ordered merge,
// lowest-shard exception), and the global thread configuration that
// backs the CLI's --threads flag.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace mstv::parallel {
namespace {

/// Restores the default (auto) thread count when a test ends, so the
/// global configuration never leaks across test cases.
struct ThreadCountGuard {
  explicit ThreadCountGuard(std::size_t n) { set_thread_count(n); }
  ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue, then joins
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SingleWorkerDrainsInOrder) {
  std::vector<int> order;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&order, i] { order.push_back(i); });
    }
  }
  std::vector<int> expect(16);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);  // one worker: FIFO order is observable
}

TEST(ThreadPool, ZeroThreadsIsAPreconditionError) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

TEST(ShardRanges, ExactCoverageAndStableBoundaries) {
  for (const std::size_t n : {0u, 1u, 2u, 7u, 64u, 1000u, 1001u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 8u, 64u}) {
      const auto ranges = shard_ranges(n, shards);
      if (n == 0) {
        EXPECT_TRUE(ranges.empty());
        continue;
      }
      ASSERT_EQ(ranges.size(), std::min<std::size_t>(shards, n));
      std::size_t next = 0;
      std::size_t max_len = 0, min_len = n;
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        EXPECT_EQ(ranges[i].index, i);
        EXPECT_EQ(ranges[i].count, ranges.size());
        EXPECT_EQ(ranges[i].begin, next);  // contiguous, ascending
        EXPECT_LT(ranges[i].begin, ranges[i].end);
        next = ranges[i].end;
        max_len = std::max(max_len, ranges[i].end - ranges[i].begin);
        min_len = std::min(min_len, ranges[i].end - ranges[i].begin);
      }
      EXPECT_EQ(next, n);             // full coverage of [0, n)
      EXPECT_LE(max_len - min_len, 1u);  // balanced within one element
      // Pure function of (n, shards): a second call is bit-identical.
      const auto again = shard_ranges(n, shards);
      ASSERT_EQ(again.size(), ranges.size());
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        EXPECT_EQ(again[i].begin, ranges[i].begin);
        EXPECT_EQ(again[i].end, ranges[i].end);
      }
    }
  }
}

TEST(ForEachShard, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadCountGuard guard(threads);
    const std::size_t n = 10007;  // prime: uneven shard boundaries
    std::vector<std::atomic<int>> visits(n);
    for (auto& v : visits) v.store(0);
    for_each_shard(n, [&](const ShardRange& shard) {
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads";
    }
  }
}

TEST(ForEachShard, PropagatesTaskExceptions) {
  ThreadCountGuard guard(4);
  EXPECT_THROW(
      for_each_shard(1000,
                     [](const ShardRange& shard) {
                       if (shard.begin <= 500 && 500 < shard.end) {
                         throw std::runtime_error("boom at 500");
                       }
                     }),
      std::runtime_error);
}

TEST(ForEachShard, LowestShardExceptionWins) {
  // Several shards throw; the caller must observe the lowest-index one —
  // the same error a serial left-to-right loop would have hit first.
  for (const std::size_t threads : {2u, 8u}) {
    ThreadCountGuard guard(threads);
    try {
      for_each_shard(1000, [](const ShardRange& shard) {
        throw std::runtime_error("shard " + std::to_string(shard.index));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "shard 0");
    }
  }
}

TEST(ForEachShard, NestedCallsRunInline) {
  ThreadCountGuard guard(4);
  std::atomic<int> inner_visits{0};
  std::atomic<int> outer_bodies{0};
  for_each_shard(8, [&](const ShardRange& outer) {
    outer_bodies.fetch_add(1, std::memory_order_relaxed);
    // A nested sharded call from a worker must not deadlock on the pool.
    for_each_shard(4, [&](const ShardRange& inner) {
      inner_visits.fetch_add(static_cast<int>(inner.end - inner.begin),
                             std::memory_order_relaxed);
    });
    (void)outer;
  });
  // One outer body per shard (= thread count here), each covering all 4
  // inner indices.
  EXPECT_EQ(outer_bodies.load(), 4);
  EXPECT_EQ(inner_visits.load(), outer_bodies.load() * 4);
}

TEST(ShardedReduce, MergesInShardOrder) {
  for (const std::size_t threads : {1u, 3u, 8u}) {
    ThreadCountGuard guard(threads);
    // Each shard reports its own index; the merged list must come back
    // 0, 1, 2, ... regardless of execution interleaving.
    const auto order = sharded_reduce<std::vector<std::size_t>>(
        1000, {},
        [](const ShardRange& shard) {
          return std::vector<std::size_t>{shard.index};
        },
        [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
    ASSERT_EQ(order.size(), plan_shards(1000));
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(ShardedReduce, SumMatchesSerialAtAnyThreadCount) {
  const std::size_t n = 12345;
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < n; ++i) expect += i * i;
  for (const std::size_t threads : {1u, 2u, 5u, 16u}) {
    ThreadCountGuard guard(threads);
    const auto sum = sharded_reduce<std::uint64_t>(
        n, 0,
        [](const ShardRange& shard) {
          std::uint64_t s = 0;
          for (std::size_t i = shard.begin; i < shard.end; ++i) s += i * i;
          return s;
        },
        [](std::uint64_t& acc, std::uint64_t part) { acc += part; });
    EXPECT_EQ(sum, expect) << threads << " threads";
  }
}

TEST(ThreadConfig, SetAndQuery) {
  {
    ThreadCountGuard guard(6);
    EXPECT_EQ(thread_count(), 6u);
    EXPECT_EQ(plan_shards(100), 6u);
    EXPECT_EQ(plan_shards(3), 3u);  // never more shards than elements
    EXPECT_EQ(plan_shards(0), 0u);
  }
  EXPECT_GE(thread_count(), 1u);  // auto: hardware concurrency, >= 1
}

}  // namespace
}  // namespace mstv::parallel
