#include "labeling/label.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace mstv {
namespace {

Label make_label(std::initializer_list<bool> bits) {
  BitWriter w;
  for (const bool b : bits) w.write_bit(b);
  return Label(w);
}

TEST(Label, EmptyLabel) {
  Label l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.size_bits(), 0u);
  EXPECT_EQ(l, Label());
}

TEST(Label, EqualityIsBitExact) {
  const Label a = make_label({1, 0, 1});
  const Label b = make_label({1, 0, 1});
  const Label c = make_label({1, 0, 1, 0});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // same prefix, different length
}

TEST(Label, NormalizationIgnoresStaleHighBits) {
  // Two labels with identical logical bits must compare equal even if the
  // writers' backing words would have differed.
  BitWriter w1;
  w1.write_uint(0xFF, 8);
  Label a(w1);
  Label b({0xFFull}, 8);
  Label c({0x1FFull}, 8);  // bit 8 set beyond the logical size
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(Label, BitAccess) {
  const Label l = make_label({1, 0, 0, 1});
  EXPECT_TRUE(l.bit(0));
  EXPECT_FALSE(l.bit(1));
  EXPECT_TRUE(l.bit(3));
  EXPECT_THROW((void)l.bit(4), PreconditionError);
}

TEST(Label, FlipBit) {
  const Label l = make_label({1, 0, 1});
  const Label f = l.with_bit_flipped(1);
  EXPECT_NE(l, f);
  EXPECT_TRUE(f.bit(1));
  EXPECT_EQ(f.with_bit_flipped(1), l);  // involution
}

TEST(Label, Truncate) {
  const Label l = make_label({1, 1, 0, 1, 0});
  const Label t = l.truncated(3);
  EXPECT_EQ(t.size_bits(), 3u);
  EXPECT_EQ(t, make_label({1, 1, 0}));
  EXPECT_EQ(l.truncated(99), l);
}

TEST(Label, Concatenation) {
  const Label a = make_label({1, 0});
  const Label b = make_label({0, 1, 1});
  const Label ab = a + b;
  EXPECT_EQ(ab, make_label({1, 0, 0, 1, 1}));
  EXPECT_EQ((Label() + a), a);
  EXPECT_EQ((a + Label()), a);
}

TEST(Label, ConcatenationAcrossWordBoundary) {
  Rng rng(3);
  BitWriter w1, w2;
  std::vector<bool> bits;
  for (int i = 0; i < 100; ++i) {
    const bool b = rng.chance(0.5);
    bits.push_back(b);
    w1.write_bit(b);
  }
  for (int i = 0; i < 100; ++i) {
    const bool b = rng.chance(0.5);
    bits.push_back(b);
    w2.write_bit(b);
  }
  const Label joined = Label(w1) + Label(w2);
  ASSERT_EQ(joined.size_bits(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(joined.bit(i), bits[i]) << "bit " << i;
  }
}

TEST(Label, OrderingIsConsistent) {
  std::set<Label> s;
  s.insert(make_label({1}));
  s.insert(make_label({0}));
  s.insert(make_label({1, 0}));
  s.insert(make_label({1}));  // duplicate
  EXPECT_EQ(s.size(), 3u);
}

TEST(Label, ToString) {
  EXPECT_EQ(make_label({1, 0, 1, 1}).to_string(), "1011");
  EXPECT_EQ(Label().to_string(), "");
}

TEST(Label, ReaderSeesWrittenData) {
  BitWriter w;
  w.write_gamma(17);
  w.write_uint(5, 3);
  const Label l(w);
  BitReader r = l.reader();
  EXPECT_EQ(r.read_gamma(), 17u);
  EXPECT_EQ(r.read_uint(3), 5u);
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace mstv
