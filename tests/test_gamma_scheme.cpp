#include "plscheme/gamma_scheme.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "plscheme/runner.hpp"
#include "tree/path_queries.hpp"

namespace mstv {
namespace {

/// Builds a tree configuration whose payloads are the labels of a member
/// of Gamma (perfect if `perfect`, a random member otherwise).
ConfigGraph gamma_config(const Graph& tree_graph, VertexId root,
                         const ExtremaLabelingScheme& imp, bool perfect,
                         Rng& rng) {
  const RootedTree tree(tree_graph, root);
  const SeparatorDecomposition sd =
      perfect ? perfect_separator_decomposition(tree)
              : random_separator_decomposition(tree, rng);
  const auto imps = imp.encode(tree, sd);
  std::vector<State> states(tree_graph.num_vertices());
  for (VertexId v = 0; v < tree_graph.num_vertices(); ++v) {
    states[v].id = v;
    if (!tree.is_root(v)) states[v].parent_port = tree.parent_port(v);
    states[v].payload = imp.to_bits(imps[v]);
  }
  return ConfigGraph(tree_graph, std::move(states));
}

struct GammaCase {
  const char* name;
  bool perfect;
  std::size_t n;
  std::uint64_t seed;
};

class GammaSchemeTest : public ::testing::TestWithParam<GammaCase> {};

TEST_P(GammaSchemeTest, CompletenessOnGenuineLabels) {
  const auto& c = GetParam();
  const GammaScheme scheme;
  Rng rng(c.seed);
  WeightOptions wo;
  wo.max_weight = 1u << 12;
  const Graph g = random_tree(c.n, wo, rng);
  const ConfigGraph cfg =
      gamma_config(g, static_cast<VertexId>(rng.index(c.n)),
                   scheme.implicit_scheme(), c.perfect, rng);
  const auto result = mark_and_verify(scheme, cfg);
  EXPECT_TRUE(result.accepted)
      << "rejecting nodes: " << result.rejecting.size();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GammaSchemeTest,
    ::testing::Values(GammaCase{"perfect_small", true, 12, 1},
                      GammaCase{"perfect_medium", true, 120, 2},
                      GammaCase{"perfect_large", true, 600, 3},
                      GammaCase{"random_small", false, 12, 4},
                      GammaCase{"random_medium", false, 60, 5},
                      GammaCase{"random_other", false, 45, 6},
                      GammaCase{"single", true, 1, 7},
                      GammaCase{"pair", true, 2, 8}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(GammaScheme, CompletenessOnPathAndStar) {
  const GammaScheme scheme;
  Rng rng(11);
  WeightOptions wo;
  for (auto* gen : {path_graph, star_graph, caterpillar}) {
    const Graph g = gen(33, wo, rng);
    const ConfigGraph cfg =
        gamma_config(g, 0, scheme.implicit_scheme(), true, rng);
    EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
  }
}

TEST(GammaScheme, MarkerLabelSizeTracksStateSize) {
  // Lemma 3.3: the proof label is asymptotically the size of the state.
  const GammaScheme scheme;
  Rng rng(12);
  WeightOptions wo;
  wo.max_weight = 1u << 16;
  const Graph g = random_tree(500, wo, rng);
  const ConfigGraph cfg =
      gamma_config(g, 0, scheme.implicit_scheme(), true, rng);
  std::size_t max_state = 0;
  for (VertexId v = 0; v < cfg.size(); ++v) {
    max_state = std::max(max_state, cfg.state(v).payload.size_bits());
  }
  const auto r = mark_and_verify(scheme, cfg);
  ASSERT_TRUE(r.accepted);
  // Label = ST sublabel + orient flags + state copy: within a small
  // multiple of the state size plus O(log n).
  EXPECT_LE(r.max_label_bits, 3 * max_state + 200);
}

TEST(GammaScheme, SoundnessTamperedPayload) {
  // Change one state's payload after marking: condition 1 catches the
  // divergence (or a neighbor catches the inconsistency).
  const GammaScheme scheme;
  Rng rng(13);
  WeightOptions wo;
  const Graph g = random_tree(40, wo, rng);
  ConfigGraph cfg = gamma_config(g, 0, scheme.implicit_scheme(), true, rng);
  const auto labels = scheme.mark(cfg);

  for (int trial = 0; trial < 50; ++trial) {
    ConfigGraph broken = cfg;
    const auto victim = static_cast<VertexId>(rng.index(cfg.size()));
    Label p = broken.state(victim).payload;
    broken.state(victim).payload =
        p.with_bit_flipped(rng.index(p.size_bits()));
    EXPECT_FALSE(run_verifier(scheme, broken, labels).accepted);
  }
}

TEST(GammaScheme, SoundnessWrongWeightInState) {
  // Re-encode one vertex's E_omega field with a wrong weight and rebuild
  // both state and label consistently: conditions 7/8 must catch it at
  // some node (the forged field disagrees with the inductive fold).
  const GammaScheme scheme;
  const auto& imp = scheme.implicit_scheme();
  Rng rng(14);
  WeightOptions wo;
  wo.max_weight = 100;
  const Graph g = random_tree(30, wo, rng);
  ConfigGraph cfg = gamma_config(g, 0, imp, true, rng);

  int caught = 0, attempts = 0;
  for (VertexId victim = 0; victim < cfg.size(); ++victim) {
    ExtremaLabel l = imp.from_bits(cfg.state(victim).payload);
    if (l.extrema.empty()) continue;
    ++attempts;
    ConfigGraph broken = cfg;
    ExtremaLabel forged = l;
    forged.extrema[0] += 1;  // lie about MAX(v, v_1)
    broken.state(victim).payload = imp.to_bits(forged);
    // Give the adversary the best shot: a marker run on the broken states
    // (the marker itself is honest about copying them).
    std::vector<Label> labels;
    bool marker_ok = true;
    try {
      labels = scheme.mark(broken);
    } catch (const PreconditionError&) {
      marker_ok = false;  // structure no longer recoverable: fine, caught
    }
    if (!marker_ok || !run_verifier(scheme, broken, labels).accepted) {
      ++caught;
    }
  }
  EXPECT_EQ(caught, attempts);
}

TEST(GammaScheme, SoundnessForgedSeparatorStructure) {
  // Swap the payloads of two vertices: the Sep_level property breaks and
  // some condition (5, 6c or the count discipline) must fire.
  const GammaScheme scheme;
  Rng rng(15);
  WeightOptions wo;
  const Graph g = random_tree(25, wo, rng);
  ConfigGraph cfg = gamma_config(g, 0, scheme.implicit_scheme(), true, rng);
  const auto labels = scheme.mark(cfg);
  int caught = 0, trials = 0;
  for (int t = 0; t < 40; ++t) {
    const auto a = static_cast<VertexId>(rng.index(cfg.size()));
    const auto b = static_cast<VertexId>(rng.index(cfg.size()));
    if (a == b || cfg.state(a).payload == cfg.state(b).payload) continue;
    ++trials;
    ConfigGraph broken = cfg;
    std::swap(broken.state(a).payload, broken.state(b).payload);
    auto swapped = labels;
    std::swap(swapped[a], swapped[b]);
    // Swapping labels alongside keeps condition 1 satisfied at a and b;
    // the structural conditions must do the rejecting.  Note the ST
    // sublabels inside the swapped labels now lie about ids, which is
    // also a legitimate catch.
    if (!run_verifier(scheme, broken, swapped).accepted) ++caught;
  }
  EXPECT_EQ(caught, trials);
  EXPECT_GT(trials, 10);
}

TEST(GammaScheme, MarkRejectsInconsistentPayloads) {
  // recover_separator_ancestors must refuse states that no member of
  // Gamma could have produced (duplicate full rho sequences).
  const GammaScheme scheme;
  const auto& imp = scheme.implicit_scheme();
  Rng rng(16);
  WeightOptions wo;
  const Graph g = random_tree(10, wo, rng);
  ConfigGraph cfg = gamma_config(g, 0, imp, true, rng);
  // Duplicate vertex 1's payload into vertex 2.
  cfg.state(2).payload = cfg.state(1).payload;
  EXPECT_THROW((void)scheme.mark(cfg), PreconditionError);
}

}  // namespace
}  // namespace mstv
