// The bound auditor is a regression tripwire: these tests pin down when
// it passes, when it fails, and which checks may only advise.  All
// inputs are synthetic — the auditor is a pure function of AuditInput —
// so the suite runs identically under -DMSTV_OBS_DISABLED.
#include "obs/audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/json.hpp"

namespace mstv::obs {
namespace {

LedgerEntry verify_round_row(std::uint64_t round, std::uint64_t messages,
                             std::uint64_t bits_per_message) {
  LedgerEntry e;
  e.key = LedgerKey{round, "verify.round", "pi-mst"};
  e.cell.messages = messages;
  e.cell.bits = messages * bits_per_message;
  e.cell.labels = messages;
  e.cell.label_bits_min = bits_per_message;
  e.cell.label_bits_max = bits_per_message;
  e.cell.label_bits_sum = e.cell.bits;
  return e;
}

AuditInput healthy_input() {
  AuditInput in;
  in.n = 1000;        // bitlen 10
  in.m = 2000;
  in.max_weight = 1u << 16;  // bitlen 17
  in.scheme = "pi-mst";
  in.max_label_bits = 300;   // bound: 4 * 10 * 17 + 64 = 744
  in.max_components = 11;    // bound: 2 * 10 = 20
  in.ledger.push_back(verify_round_row(0, 2 * in.m, 300));
  return in;
}

const AuditCheck* check_named(const AuditReport& r, std::string_view name) {
  for (const AuditCheck& c : r.checks) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(BoundAudit, LabelBitsBoundFollowsTheSchemeForm) {
  const std::uint64_t n = 1u << 10;
  const std::uint64_t w = 1u << 16;
  // Telescoping (Theorem 3.4): slack * log n * log W + offset.
  EXPECT_DOUBLE_EQ(label_bits_bound("pi-mst", n, w),
                   kAuditLabelSlack * 11 * 17 + kAuditLabelOffsetBits);
  EXPECT_DOUBLE_EQ(label_bits_bound("pi-gamma", n, w),
                   label_bits_bound("pi-mst", n, w));
  // Naive form pays the extra log^2 n term; so does the unproved default.
  EXPECT_DOUBLE_EQ(label_bits_bound("pi-mst-naive", n, w),
                   kAuditLabelSlack * (11 * 11 + 11 * 17) +
                       kAuditLabelOffsetBits);
  EXPECT_GT(label_bits_bound("pi-frag", n, w), label_bits_bound("pi-mst", n, w));
  EXPECT_DOUBLE_EQ(label_bits_bound("agreement", n, w),
                   label_bits_bound("pi-mst-naive", n, w));
  // bitlen floors at 1 even for degenerate graphs.
  EXPECT_DOUBLE_EQ(label_bits_bound("pi-mst", 1, 1),
                   kAuditLabelSlack + kAuditLabelOffsetBits);
}

TEST(BoundAudit, HealthyRunPasses) {
  const AuditReport r = audit_bounds(healthy_input());
  EXPECT_TRUE(r.pass);
  ASSERT_EQ(r.checks.size(), 5u);
  for (const AuditCheck& c : r.checks) {
    EXPECT_TRUE(c.pass) << c.name;
    EXPECT_FALSE(c.advisory) << c.name;
  }
  EXPECT_EQ(r.scheme, "pi-mst");
  EXPECT_EQ(r.n, 1000u);
}

TEST(BoundAudit, OversizedLabelFails) {
  AuditInput in = healthy_input();
  in.max_label_bits = 100000;
  const AuditReport r = audit_bounds(in);
  EXPECT_FALSE(r.pass);
  const AuditCheck* c = check_named(r, "label.max_bits");
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->pass);
  EXPECT_FALSE(c->advisory);
}

TEST(BoundAudit, TooManyRoundMessagesFails) {
  AuditInput in = healthy_input();
  in.ledger.push_back(verify_round_row(1, 2 * in.m + 1, 10));
  const AuditReport r = audit_bounds(in);
  EXPECT_FALSE(r.pass);
  const AuditCheck* c = check_named(r, "ledger.round_messages");
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->pass);
  // The worst round is what gets reported.
  EXPECT_DOUBLE_EQ(c->measured, static_cast<double>(2 * in.m + 1));
}

TEST(BoundAudit, BitsOverTheEnvelopeFail) {
  AuditInput in = healthy_input();
  // Each message carries far more than the label envelope allows.
  in.ledger = {verify_round_row(0, 2 * in.m, 5000)};
  const AuditReport r = audit_bounds(in);
  EXPECT_FALSE(r.pass);
  const AuditCheck* c = check_named(r, "ledger.round_bits");
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->pass);
  EXPECT_GT(c->measured, 1.0);  // ratio of bits to msgs * envelope
}

TEST(BoundAudit, EmptyLedgerFailsLoudly) {
  AuditInput in = healthy_input();
  in.ledger.clear();
  const AuditReport r = audit_bounds(in);
  EXPECT_FALSE(r.pass);
  const AuditCheck* c = check_named(r, "ledger.round_messages");
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->pass);
  EXPECT_NE(c->note.find("wiring"), std::string::npos);
  // Rows from other phases don't count as verification traffic.
  in.ledger.push_back(
      LedgerEntry{LedgerKey{0, "selfstab.repair", "pi-mst"}, {}});
  EXPECT_FALSE(audit_bounds(in).pass);
}

TEST(BoundAudit, UnprovedSchemeLabelCheckIsAdvisory) {
  AuditInput in = healthy_input();
  in.scheme = "spanning-tree";
  in.max_label_bits = 100000;  // would fail any envelope...
  for (LedgerEntry& e : in.ledger) e.key.scheme = in.scheme;
  const AuditReport r = audit_bounds(in);
  const AuditCheck* c = check_named(r, "label.max_bits");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->advisory);
  EXPECT_FALSE(c->pass);
  EXPECT_TRUE(r.pass);  // ...but advisory checks never fail the report
}

TEST(BoundAudit, UnsetComponentGaugeIsAdvisory) {
  AuditInput in = healthy_input();
  in.max_components = 0;
  const AuditReport r = audit_bounds(in);
  const AuditCheck* c = check_named(r, "label.max_components");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->advisory);
  EXPECT_TRUE(r.pass);

  in.max_components = 100;  // way past 2 * bitlen(n) = 20
  const AuditCheck* hot = check_named(audit_bounds(in), "label.max_components");
  ASSERT_NE(hot, nullptr);
  EXPECT_FALSE(hot->advisory);
  EXPECT_FALSE(hot->pass);
  EXPECT_FALSE(audit_bounds(in).pass);
}

TEST(BoundAudit, ReportSerializesToParsableJson) {
  const AuditReport r = audit_bounds(healthy_input());
  const json::Value v = json::parse(audit_to_json(r));
  EXPECT_EQ(v.find("audit")->as_string(), "mstv-bounds");
  EXPECT_EQ(v.find("scheme")->as_string(), "pi-mst");
  EXPECT_TRUE(v.find("pass")->as_bool());
  const auto& checks = v.find("checks")->as_array();
  ASSERT_EQ(checks.size(), r.checks.size());
  for (std::size_t i = 0; i < checks.size(); ++i) {
    EXPECT_EQ(checks[i]->find("name")->as_string(), r.checks[i].name);
    EXPECT_EQ(checks[i]->find("pass")->as_bool(), r.checks[i].pass);
    ASSERT_NE(checks[i]->find("bound"), nullptr);
  }
}

}  // namespace
}  // namespace mstv::obs
