#include "mst/union_find.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mstv {
namespace {

TEST(UnionFind, StartsDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
  EXPECT_FALSE(uf.same(0, 1));
}

TEST(UnionFind, UniteAndFind) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));  // already joined
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(1, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);  // {0,1,2,3}, {4}, {5}
}

TEST(UnionFind, TransitiveClosureMatchesBruteForce) {
  Rng rng(11);
  const std::size_t n = 200;
  UnionFind uf(n);
  // Brute-force component labels.
  std::vector<std::size_t> comp(n);
  for (std::size_t i = 0; i < n; ++i) comp[i] = i;

  for (int ops = 0; ops < 500; ++ops) {
    const std::size_t a = rng.index(n), b = rng.index(n);
    uf.unite(a, b);
    const std::size_t ca = comp[a], cb = comp[b];
    if (ca != cb) {
      for (auto& c : comp) {
        if (c == cb) c = ca;
      }
    }
    // Spot-check random pairs.
    for (int q = 0; q < 5; ++q) {
      const std::size_t x = rng.index(n), y = rng.index(n);
      EXPECT_EQ(uf.same(x, y), comp[x] == comp[y]);
    }
  }
}

TEST(UnionFind, CountReachesOne) {
  UnionFind uf(64);
  for (std::size_t i = 1; i < 64; ++i) uf.unite(0, i);
  EXPECT_EQ(uf.num_sets(), 1u);
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW((void)uf.find(3), PreconditionError);
}

}  // namespace
}  // namespace mstv
