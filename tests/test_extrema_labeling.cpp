#include "labeling/extrema_labeling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/generators.hpp"
#include "tree/path_queries.hpp"

namespace mstv {
namespace {

struct SchemeCase {
  const char* name;
  ExtremaKind kind;
  SepCoding coding;
};

class ExtremaSchemeTest : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(ExtremaSchemeTest, DecodeMatchesPathQueriesOnRandomTrees) {
  const auto& c = GetParam();
  const ExtremaLabelingScheme scheme(c.kind, c.coding);
  Rng rng(101);
  WeightOptions wo;
  wo.max_weight = 1u << 20;
  for (const std::size_t n : {1u, 2u, 5u, 64u, 300u}) {
    const Graph g = random_tree(n, wo, rng);
    const RootedTree t(g, 0);
    const TreePathQueries q(t);
    const auto labels = scheme.encode(t);
    ASSERT_EQ(labels.size(), n);
    for (int iter = 0; iter < 300; ++iter) {
      const auto u = static_cast<VertexId>(rng.index(n));
      const auto v = static_cast<VertexId>(rng.index(n));
      const Weight expect = (c.kind == ExtremaKind::Max)
                                ? q.path_max(u, v)
                                : q.path_min(u, v);
      EXPECT_EQ(scheme.decode(labels[u], labels[v]), expect)
          << "n=" << n << " u=" << u << " v=" << v;
    }
  }
}

TEST_P(ExtremaSchemeTest, BitsRoundTripExactly) {
  const auto& c = GetParam();
  const ExtremaLabelingScheme scheme(c.kind, c.coding);
  Rng rng(102);
  WeightOptions wo;
  wo.max_weight = 1u << 30;
  const Graph g = random_tree(200, wo, rng);
  const RootedTree t(g, 0);
  for (const ExtremaLabel& l : scheme.encode(t)) {
    const Label bits = scheme.to_bits(l);
    EXPECT_EQ(scheme.from_bits(bits), l);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ExtremaSchemeTest,
    ::testing::Values(
        SchemeCase{"max_small", ExtremaKind::Max, SepCoding::Telescoping},
        SchemeCase{"max_naive", ExtremaKind::Max, SepCoding::FixedWidth},
        SchemeCase{"flow_small", ExtremaKind::Min, SepCoding::Telescoping},
        SchemeCase{"flow_naive", ExtremaKind::Min, SepCoding::FixedWidth}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(ExtremaLabeling, Claim31AnyFamilyMemberDecodesCorrectly) {
  // Claim 3.1: the decoder is correct for EVERY member of Gamma, not just
  // gamma_small.  Exercise random (bad) separator decompositions.
  const ExtremaLabelingScheme scheme(ExtremaKind::Max, SepCoding::Telescoping);
  WeightOptions wo;
  wo.max_weight = 1000;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(900 + seed);
    const Graph g = random_tree(40, wo, rng);
    const RootedTree t(g, 0);
    const TreePathQueries q(t);
    const auto sd = random_separator_decomposition(t, rng);
    const auto labels = scheme.encode(t, sd);
    for (VertexId u = 0; u < t.size(); ++u) {
      for (VertexId v = 0; v < t.size(); ++v) {
        ASSERT_EQ(scheme.decode(labels[u], labels[v]), q.path_max(u, v));
      }
    }
  }
}

TEST(ExtremaLabeling, GammaSmallSizeIsOLogNLogW) {
  // Lemma 3.2: measure max label bits over random trees and check the
  // c * (log n * log W + log n + log W + 1) envelope with a fixed modest c.
  const ExtremaLabelingScheme scheme(ExtremaKind::Max, SepCoding::Telescoping);
  WeightOptions wo;
  for (const std::size_t n : {16u, 256u, 2048u}) {
    for (const Weight w : {Weight{2}, Weight{1} << 16, Weight{1} << 40}) {
      Rng rng(n + static_cast<std::uint64_t>(w));
      wo.max_weight = w;
      const Graph g = random_tree(n, wo, rng);
      const RootedTree t(g, 0);
      std::size_t max_bits = 0;
      for (const auto& l : scheme.encode(t)) {
        max_bits = std::max(max_bits, scheme.label_bits(l));
      }
      const double logn = std::log2(static_cast<double>(n));
      const double logw = std::log2(static_cast<double>(w) + 1);
      const double envelope = 3.0 * (logn * logw + logn + logw + 8);
      EXPECT_LE(static_cast<double>(max_bits), envelope)
          << "n=" << n << " W=" << w;
    }
  }
}

TEST(ExtremaLabeling, TelescopingBeatsNaiveOnLargeTrees) {
  // E2's core claim at unit scale: for big n and small W the telescoping
  // E_sep coding is strictly smaller than the fixed-width one.
  const ExtremaLabelingScheme small(ExtremaKind::Max, SepCoding::Telescoping);
  const ExtremaLabelingScheme naive(ExtremaKind::Max, SepCoding::FixedWidth);
  Rng rng(103);
  WeightOptions wo;
  wo.max_weight = 4;
  const Graph g = random_tree(4096, wo, rng);
  const RootedTree t(g, 0);
  const auto sd = perfect_separator_decomposition(t);
  std::size_t small_total = 0, naive_total = 0;
  const auto ls = small.encode(t, sd);
  const auto ln = naive.encode(t, sd);
  for (VertexId v = 0; v < t.size(); ++v) {
    small_total += small.label_bits(ls[v]);
    naive_total += naive.label_bits(ln[v]);
  }
  EXPECT_LT(small_total, naive_total);
}

TEST(ExtremaLabeling, CorruptBitsAreRejectedNotMisread) {
  const ExtremaLabelingScheme scheme(ExtremaKind::Max, SepCoding::Telescoping);
  Rng rng(104);
  WeightOptions wo;
  const Graph g = random_tree(64, wo, rng);
  const RootedTree t(g, 0);
  const auto labels = scheme.encode(t);
  int parse_failures = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const auto& l = labels[rng.index(labels.size())];
    Label bits = scheme.to_bits(l);
    bits = bits.truncated(rng.uniform(0, bits.size_bits() - 1));
    try {
      (void)scheme.from_bits(bits);
    } catch (const PreconditionError&) {
      ++parse_failures;
    }
  }
  // Truncation must usually be caught (either mid-field or by the
  // trailing-bits check); it must never crash or hang.
  EXPECT_GT(parse_failures, 150);
}

TEST(ExtremaLabeling, IdentityElements) {
  EXPECT_EQ(extrema_identity(ExtremaKind::Max), 0u);
  EXPECT_EQ(extrema_identity(ExtremaKind::Min),
            std::numeric_limits<Weight>::max());
}

TEST(ExtremaLabeling, DecodeSameVertexLabel) {
  const ExtremaLabelingScheme scheme(ExtremaKind::Max, SepCoding::Telescoping);
  Rng rng(105);
  WeightOptions wo;
  const Graph g = random_tree(20, wo, rng);
  const RootedTree t(g, 0);
  const auto labels = scheme.encode(t);
  for (VertexId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(scheme.decode(labels[v], labels[v]), 0u);  // empty path
  }
}

}  // namespace
}  // namespace mstv
