// JsonReporter escaping audit (bench/common.hpp): bench names, titles,
// headers and cells containing JSON-hostile characters must still yield a
// structurally valid BENCH_*.json, and non-finite metric values must not
// leak `inf`/`nan` literals into the document.
#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "bench/common.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace mstv {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Structural check: braces/brackets balance and every quote is paired,
/// honouring backslash escapes.  Catches any unescaped `"` or `\` that
/// would truncate or derail a real parser.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      } else if (c == '\n') {
        return false;  // raw newline inside a string literal
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(BenchJson, HostileNamesAndCellsStayValid) {
  bench::Table t({"plain", "quo\"te", "back\\slash", "tab\there"});
  t.add_row({"1.5", "say \"hi\"", "a\\b", "line\nbreak"});
  t.add_row({"42", "-3.25", "1e9", "not.a+number-"});

  bench::JsonReporter rep("quo\"te\\bench");
  rep.add_table("title with \"quotes\" and \\slashes\\", t);
  const std::string path = ::testing::TempDir() + "mstv_bench_json_test.json";
  ASSERT_TRUE(rep.write(path));

  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(json_balanced(json)) << json;
  // The name arrived escaped, not raw.
  EXPECT_NE(json.find("\"bench\": \"quo\\\"te\\\\bench\""), std::string::npos)
      << json;
  // Numeric-looking cells are bare numbers; text cells are escaped strings.
  EXPECT_NE(json.find("[1.5, "), std::string::npos) << json;
  EXPECT_NE(json.find("\"say \\\"hi\\\"\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\\nbreak\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"not.a+number-\""), std::string::npos) << json;
}

TEST(BenchJson, NonFiniteMetricValuesSerializeAsNull) {
  obs::reset_all();
  obs::Registry::global().gauge("test.nonfinite_gauge")
      .set(std::numeric_limits<double>::infinity());
  const std::string json = obs::to_json(obs::capture());
  EXPECT_TRUE(json_balanced(json)) << json;
  // `inf` must not appear as a bare number — only `null`.  (Histogram
  // overflow buckets legitimately carry the *string* "inf".)
  EXPECT_NE(json.find("\"test.nonfinite_gauge\": null"), std::string::npos)
      << json;
  EXPECT_EQ(json.find("\"test.nonfinite_gauge\": inf"), std::string::npos)
      << json;
  obs::reset_all();
}

}  // namespace
}  // namespace mstv
