// Sharded marker pipeline determinism: mark() is byte-identical at any
// --threads=N, for every scheme, because the parallel separator builder
// replicates the serial recursion's traversal order exactly and every
// downstream phase writes schedule-independent values by direct index.
// This file is the contract's dedicated gate (the CI scaling job runs it
// under TSan via the Marker|ParallelMark test regex): decomposition
// arenas, per-scheme labels, and incremental repair on top of a
// parallel-marked baseline all compared against thread_count=1 bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/gamma_scheme.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "plscheme/spanning_tree_scheme.hpp"
#include "tree/centroid.hpp"

namespace mstv {
namespace {

/// Restores the configured worker count when a test body returns.
struct ThreadCountGuard {
  explicit ThreadCountGuard(std::size_t n) { parallel::set_thread_count(n); }
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

/// Byte-compares two label vectors, attributing a mismatch to its vertex.
void expect_same_labels(const std::vector<Label>& got,
                        const std::vector<Label>& want,
                        const std::string& what,
                        std::size_t threads) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (VertexId v = 0; v < got.size(); ++v) {
    ASSERT_EQ(got[v], want[v]) << what << ": label " << v << " differs at "
                               << threads << " threads";
  }
}

struct MarkerCase {
  const char* name;
  Graph (*make)(std::size_t, const WeightOptions&, Rng&);
  std::size_t n;
  std::uint64_t seed;
};

class ParallelMarker : public ::testing::TestWithParam<MarkerCase> {
 protected:
  Graph make_graph() const {
    const auto& c = GetParam();
    Rng rng(c.seed);
    WeightOptions wo;
    wo.max_weight = 1u << 14;
    return c.make(c.n, wo, rng);
  }
};

// Degenerate shard plans (more workers than vertices, 1-vertex shards)
// are covered by the small sizes; the 1500-vertex tree gives every level
// of the decomposition more components than workers.
std::vector<MarkerCase> marker_cases() {
  return {{"tree_small", random_tree, 9, 11},
          {"tree_medium", random_tree, 260, 12},
          {"tree_large", random_tree, 1500, 13},
          {"path", path_graph, 257, 14},
          {"star", star_graph, 129, 15},
          {"caterpillar", caterpillar, 240, 16},
          {"binary", balanced_binary_tree, 255, 17}};
}

TEST_P(ParallelMarker, DecompositionArenasMatchSerial) {
  const Graph g = make_graph();
  const RootedTree tree(g, 0);
  const SeparatorDecomposition serial = [&] {
    ThreadCountGuard guard(1);
    return perfect_separator_decomposition(tree);
  }();
  for (const std::size_t threads : {2u, 8u}) {
    ThreadCountGuard guard(threads);
    const auto sd = perfect_separator_decomposition(tree);
    ASSERT_EQ(sd.level, serial.level) << threads << " threads";
    ASSERT_EQ(sd.sep_parent, serial.sep_parent) << threads << " threads";
    for (VertexId v = 0; v < tree.size(); ++v) {
      const auto a = sd.ancestors(v), sa = serial.ancestors(v);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), sa.begin(), sa.end()))
          << "ancestors of " << v << " differ at " << threads << " threads";
      const auto r = sd.rho(v), sr = serial.rho(v);
      ASSERT_TRUE(std::equal(r.begin(), r.end(), sr.begin(), sr.end()))
          << "rho of " << v << " differs at " << threads << " threads";
      const auto m = sd.maxw(v), sm = serial.maxw(v);
      ASSERT_TRUE(std::equal(m.begin(), m.end(), sm.begin(), sm.end()))
          << "maxw of " << v << " differs at " << threads << " threads";
      const auto t = sd.toward(v), st = serial.toward(v);
      ASSERT_TRUE(std::equal(t.begin(), t.end(), st.begin(), st.end()))
          << "toward of " << v << " differs at " << threads << " threads";
    }
  }
}

TEST_P(ParallelMarker, MstLabelsBytesMatchSerial) {
  const Graph g = make_graph();
  const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
  for (const auto coding : {SepCoding::Telescoping, SepCoding::FixedWidth}) {
    const MstScheme scheme(coding);
    std::vector<Label> serial;
    {
      ThreadCountGuard guard(1);
      serial = scheme.mark(cfg);
    }
    for (const std::size_t threads : {2u, 8u}) {
      ThreadCountGuard guard(threads);
      expect_same_labels(scheme.mark(cfg), serial, scheme.name(), threads);
    }
  }
}

TEST_P(ParallelMarker, SpanningTreeLabelsBytesMatchSerial) {
  const Graph g = make_graph();
  const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
  const SpanningTreeScheme scheme;
  std::vector<Label> serial;
  {
    ThreadCountGuard guard(1);
    serial = scheme.mark(cfg);
  }
  for (const std::size_t threads : {2u, 8u}) {
    ThreadCountGuard guard(threads);
    expect_same_labels(scheme.mark(cfg), serial, scheme.name(), threads);
  }
}

TEST_P(ParallelMarker, GammaLabelsBytesMatchSerial) {
  const Graph g = make_graph();
  const GammaScheme scheme;
  // Gamma's family is trees whose payloads already carry gamma_small
  // labels; build them once (serially) so mark() is the only phase under
  // test.
  const RootedTree tree(g, 0);
  const auto& imp = scheme.implicit_scheme();
  const auto imps = imp.encode(tree, perfect_separator_decomposition(tree));
  std::vector<State> states(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    states[v].id = v;
    if (!tree.is_root(v)) states[v].parent_port = tree.parent_port(v);
    states[v].payload = imp.to_bits(imps[v]);
  }
  const ConfigGraph cfg(g, std::move(states));
  std::vector<Label> serial;
  {
    ThreadCountGuard guard(1);
    serial = scheme.mark(cfg);
  }
  for (const std::size_t threads : {2u, 8u}) {
    ThreadCountGuard guard(threads);
    expect_same_labels(scheme.mark(cfg), serial, scheme.name(), threads);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelMarker, ::testing::ValuesIn(marker_cases()),
    [](const auto& param_info) { return std::string(param_info.param.name); });

// Incremental repair on top of a parallel-marked baseline: the repaired
// labels after every update must equal a from-scratch serial mark() on
// the updated configuration — the repair path reads and rewrites the
// shared decomposition arenas, so this exercises the arena layout end to
// end at 8 workers.
TEST(ParallelMarkerRepair, IncrementalRepairMatchesSerialRemark) {
  Rng rng(4711);
  WeightOptions wo;
  wo.max_weight = 1u << 12;
  const Graph g = random_connected_graph(160, 320, wo, rng);
  const auto mst = kruskal_mst(g);
  for (const auto coding : {SepCoding::Telescoping, SepCoding::FixedWidth}) {
    const MstScheme scheme(coding);
    ThreadCountGuard guard(8);
    IncrementalMarker marker(scheme, g, mst, 0);
    for (int step = 0; step < 40; ++step) {
      const Graph& cur = marker.graph();
      const Edge& e =
          cur.edge(static_cast<EdgeId>(rng.index(cur.num_edges())));
      marker.apply(EdgeUpdate::weight_change(
          e.u, e.v, 1 + rng.uniform(0, wo.max_weight - 1)));
      std::vector<Label> fresh;
      {
        ThreadCountGuard serial(1);
        fresh = scheme.mark(marker.config());
      }
      ASSERT_EQ(fresh.size(), marker.labels().size());
      for (VertexId v = 0; v < fresh.size(); ++v) {
        ASSERT_EQ(marker.labels()[v], fresh[v])
            << scheme.name() << " step " << step << " vertex " << v;
      }
    }
  }
}

}  // namespace
}  // namespace mstv
