// Parallel/serial equivalence: the sharded engine must produce
// bit-identical verdicts, rejector sets, labels and telemetry counters at
// every thread count — --threads=8 may only be faster than --threads=1,
// never different.  Runs the same scheme x workload fixtures as
// test_scheme_matrix.cpp.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "obs/export.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/fragment_scheme.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "runtime/network.hpp"

namespace mstv {
namespace {

std::unique_ptr<ProofLabelingScheme> make_scheme(int which) {
  switch (which) {
    case 0: return std::make_unique<MstScheme>(SepCoding::Telescoping);
    case 1: return std::make_unique<MstScheme>(SepCoding::FixedWidth);
    default: return std::make_unique<FragmentScheme>();
  }
}

Graph make_workload(int which, Rng& rng) {
  WeightOptions wo;
  wo.max_weight = 1u << 14;
  switch (which) {
    case 0: return random_connected_graph(60, 90, wo, rng);
    case 1: return random_connected_graph(25, 250, wo, rng);  // dense
    case 2: return grid_graph(6, 8, wo, rng);
    case 3: return ring_graph(40, wo, rng);
    default: return random_tree(70, wo, rng);
  }
}

struct ThreadCountGuard {
  explicit ThreadCountGuard(std::size_t n) { parallel::set_thread_count(n); }
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

/// The additive verifier counters that must match between engines.
std::map<std::string, std::uint64_t> verify_counters() {
  std::map<std::string, std::uint64_t> out;
  const auto snap = obs::Registry::global().snapshot();
  for (const auto& c : snap.counters) {
    if (c.name.rfind("verify.", 0) == 0 || c.name.rfind("label.", 0) == 0 ||
        c.name.rfind("marker.", 0) == 0) {
      out[c.name] = c.value;
    }
  }
  return out;
}

struct MatrixCase {
  int scheme;
  int workload;
};

class ParallelDeterminism : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ParallelDeterminism, VerdictsLabelsAndCountersMatchSerial) {
  const auto& c = GetParam();
  const auto scheme = make_scheme(c.scheme);
  Rng rng(static_cast<std::uint64_t>(c.scheme * 100 + c.workload));
  const Graph g = make_workload(c.workload, rng);
  const auto mst = kruskal_mst(g);
  const ConfigGraph cfg = make_tree_config(g, mst, 0);

  // Serial reference: labels, accept verdict, and a forged-label run with
  // a non-empty rejector set.
  std::vector<Label> serial_labels;
  VerificationResult serial_ok, serial_bad;
  std::map<std::string, std::uint64_t> serial_counters;
  {
    ThreadCountGuard guard(1);
    serial_labels = scheme->mark(cfg);
    obs::reset_all();
    serial_ok = run_verifier(*scheme, cfg, serial_labels);
    auto forged = serial_labels;
    forged[forged.size() / 2] =
        forged[forged.size() / 2].with_bit_flipped(0);
    serial_bad = run_verifier(*scheme, cfg, forged);
    serial_counters = verify_counters();
  }
  ASSERT_TRUE(serial_ok.accepted);
  ASSERT_FALSE(serial_bad.accepted);

  for (const std::size_t threads : {2u, 8u}) {
    ThreadCountGuard guard(threads);
    // Marker determinism: per-node labels are bit-identical.
    const auto labels = scheme->mark(cfg);
    ASSERT_EQ(labels.size(), serial_labels.size());
    for (std::size_t v = 0; v < labels.size(); ++v) {
      ASSERT_EQ(labels[v], serial_labels[v])
          << scheme->name() << " label " << v << " differs at " << threads
          << " threads";
    }

    // Verifier determinism: verdict, rejector set, label statistics.
    obs::reset_all();
    const auto ok = run_verifier(*scheme, cfg, labels);
    EXPECT_EQ(ok.accepted, serial_ok.accepted);
    EXPECT_EQ(ok.rejecting, serial_ok.rejecting);
    EXPECT_EQ(ok.max_label_bits, serial_ok.max_label_bits);
    EXPECT_EQ(ok.total_label_bits, serial_ok.total_label_bits);

    auto forged = labels;
    forged[forged.size() / 2] =
        forged[forged.size() / 2].with_bit_flipped(0);
    const auto bad = run_verifier(*scheme, cfg, forged);
    EXPECT_EQ(bad.accepted, serial_bad.accepted);
    EXPECT_EQ(bad.rejecting, serial_bad.rejecting)
        << scheme->name() << " rejector set differs at " << threads
        << " threads";

    // Telemetry determinism: every additive verify/label counter equals
    // the serial run's value (both engines saw the same two rounds).
    EXPECT_EQ(verify_counters(), serial_counters)
        << scheme->name() << " counters differ at " << threads << " threads";
  }
  obs::reset_all();
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (int s = 0; s < 3; ++s) {
    for (int w = 0; w < 5; ++w) cases.push_back({s, w});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  static const char* schemes[] = {"pimst", "pimstnaive", "pifrag"};
  static const char* loads[] = {"sparse", "dense", "grid", "ring", "tree"};
  return std::string(schemes[info.param.scheme]) + "_" +
         loads[info.param.workload];
}

INSTANTIATE_TEST_SUITE_P(All, ParallelDeterminism,
                         ::testing::ValuesIn(all_cases()), case_name);

TEST(ParallelDeterminism, ChannelFaultRoundMatchesSerialRngStream) {
  // The faulty round draws its corruption pattern from a serial Rng
  // pre-pass, so the same seed yields the same fault pattern — and the
  // same verdict — at any thread count.
  Rng grng(4242);
  WeightOptions wo;
  wo.max_weight = 1u << 12;
  const Graph g = random_connected_graph(80, 140, wo, grng);
  const MstScheme scheme;
  SimNetwork net(make_tree_config(g, kruskal_mst(g), 0), scheme);
  net.install_marker_labels();

  auto run = [&](std::size_t threads, std::uint64_t seed) {
    ThreadCountGuard guard(threads);
    Rng rng(seed);
    return net.verification_round_with_channel_faults(rng, 0.3);
  };
  for (const std::uint64_t seed : {1u, 7u, 99u}) {
    const RoundStats serial = run(1, seed);
    for (const std::size_t threads : {2u, 8u}) {
      const RoundStats par = run(threads, seed);
      EXPECT_EQ(par.accepted, serial.accepted) << "seed " << seed;
      EXPECT_EQ(par.rejecting, serial.rejecting) << "seed " << seed;
      EXPECT_EQ(par.messages, serial.messages) << "seed " << seed;
      EXPECT_EQ(par.bits, serial.bits) << "seed " << seed;
    }
  }
}

TEST(ParallelDeterminism, CleanRoundStatsMatchSerial) {
  Rng grng(777);
  WeightOptions wo;
  const Graph g = random_connected_graph(60, 120, wo, grng);
  const MstScheme scheme;
  SimNetwork net(make_tree_config(g, kruskal_mst(g), 0), scheme);
  net.install_marker_labels();

  RoundStats serial;
  {
    ThreadCountGuard guard(1);
    serial = net.verification_round();
  }
  EXPECT_TRUE(serial.accepted);
  for (const std::size_t threads : {2u, 8u}) {
    ThreadCountGuard guard(threads);
    const RoundStats par = net.verification_round();
    EXPECT_EQ(par.accepted, serial.accepted);
    EXPECT_EQ(par.rejecting, serial.rejecting);
    EXPECT_EQ(par.messages, serial.messages);
    EXPECT_EQ(par.bits, serial.bits);
  }
}

}  // namespace
}  // namespace mstv
