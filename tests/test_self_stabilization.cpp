#include "runtime/self_stabilization.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mst/predicates.hpp"

namespace mstv {
namespace {

Graph make_graph(std::uint64_t seed, std::size_t n, std::size_t extra) {
  Rng rng(seed);
  WeightOptions wo;
  wo.max_weight = 1u << 12;
  wo.distinct = true;
  return random_connected_graph(n, extra, wo, rng);
}

TEST(SelfStabilization, SteadyStateIsSilent) {
  const Graph g = make_graph(91, 40, 60);
  const MstScheme scheme;
  SelfStabilizingMst sys(g, scheme);
  for (int round = 0; round < 5; ++round) {
    const RoundStats stats = sys.tick();
    EXPECT_TRUE(stats.accepted);
    EXPECT_EQ(stats.rejecting, 0u);
  }
  // Nothing to repair.
  const auto stab = sys.stabilize();
  EXPECT_FALSE(stab.fault_detected);
  EXPECT_FALSE(stab.repaired);
}

TEST(SelfStabilization, DetectsAndRepairsStateFault) {
  const Graph g = make_graph(92, 35, 50);
  const MstScheme scheme;
  SelfStabilizingMst sys(g, scheme);

  Rng frng(920);
  FaultInjector inj(frng);
  // Break something for sure: try until a fault applies.
  std::optional<FaultRecord> rec;
  while (!rec) rec = inj.inject(sys.network());

  const auto stab = sys.stabilize();
  EXPECT_TRUE(stab.fault_detected);
  EXPECT_GE(stab.detecting_nodes, 1u);
  EXPECT_TRUE(stab.repaired);
  EXPECT_TRUE(stab.silent_after);
  EXPECT_TRUE(mst_predicate(sys.network().config()));
  EXPECT_GT(stab.recompute.messages, 0u);
  EXPECT_GT(stab.remark_bits, 0u);

  // Subsequent rounds are silent again.
  EXPECT_TRUE(sys.tick().accepted);
}

TEST(SelfStabilization, RepeatedFaultCycles) {
  const Graph g = make_graph(93, 25, 30);
  const MstScheme scheme;
  SelfStabilizingMst sys(g, scheme);
  Rng frng(930);
  FaultInjector inj(frng);

  for (int cycle = 0; cycle < 8; ++cycle) {
    std::optional<FaultRecord> rec;
    for (int tries = 0; tries < 50 && !rec; ++tries) {
      rec = inj.inject(sys.network());
    }
    ASSERT_TRUE(rec.has_value());
    const auto stab = sys.stabilize();
    EXPECT_TRUE(stab.fault_detected) << "cycle " << cycle;
    EXPECT_TRUE(stab.silent_after) << "cycle " << cycle;
  }
}

TEST(SelfStabilization, VerificationCostTracksLabelTraffic) {
  const Graph g = make_graph(94, 50, 100);
  const MstScheme scheme;
  SelfStabilizingMst sys(g, scheme);
  const auto stats = sys.tick();
  EXPECT_EQ(stats.messages, 2 * g.num_edges());
  // Repair is strictly more expensive than one verification round here.
  Rng frng(940);
  FaultInjector inj(frng);
  while (!inj.inject(sys.network())) {
  }
  const auto stab = sys.stabilize();
  ASSERT_TRUE(stab.repaired);
  EXPECT_GT(stab.recompute.messages + stab.recompute.message_bits,
            stab.verify_messages);
}

}  // namespace
}  // namespace mstv
