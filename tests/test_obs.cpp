// The telemetry layer: counter/gauge/histogram semantics, span nesting
// and timing monotonicity, export well-formedness and round-trip, and the
// contract that the instrumented SimNetwork round reports exactly the
// traffic its RoundStats returns.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <thread>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/mst_scheme.hpp"
#include "runtime/network.hpp"

namespace mstv {
namespace {

TEST(Counter, MonotonicAddAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWins) {
  obs::Gauge g;
  g.set(3.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketsSumMinMax) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);   // bucket le=1
  h.observe(1.0);   // le=1 (bounds are inclusive upper limits)
  h.observe(7.0);   // le=10
  h.observe(1000);  // overflow
  const auto s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 0u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 1008.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(obs::Histogram({10.0, 1.0}), std::invalid_argument);
}

TEST(Registry, NamesAreStableAndKindChecked) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("test.counter");
  a.add(7);
  // Same name, same instrument.
  EXPECT_EQ(&reg.counter("test.counter"), &a);
  EXPECT_EQ(reg.counter("test.counter").value(), 7u);
  // One name, one kind.
  EXPECT_THROW(reg.gauge("test.counter"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("test.counter"), std::invalid_argument);
  // Reset zeroes but keeps the registration (and the reference) alive.
  reg.reset();
  EXPECT_EQ(a.value(), 0u);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "test.counter");
}

TEST(Registry, CountersAreThreadSafe) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.parallel_adds");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(Tracer, SpanNestingAndTimingMonotonicity) {
  obs::reset_all();
  {
    obs::Span outer("test.outer");
    obs::Span inner("test.inner");
    // Scope exit closes inner before outer.
  }
  const obs::TraceSnapshot t = obs::Tracer::global().snapshot();

  ASSERT_EQ(t.events.size(), 4u);
  // enter(outer) -> enter(inner) -> exit(inner) -> exit(outer).
  EXPECT_EQ(t.events[0].name, "test.outer");
  EXPECT_TRUE(t.events[0].enter);
  EXPECT_EQ(t.events[0].depth, 0u);
  EXPECT_EQ(t.events[1].name, "test.inner");
  EXPECT_TRUE(t.events[1].enter);
  EXPECT_EQ(t.events[1].depth, 1u);
  EXPECT_EQ(t.events[2].name, "test.inner");
  EXPECT_FALSE(t.events[2].enter);
  EXPECT_EQ(t.events[3].name, "test.outer");
  EXPECT_FALSE(t.events[3].enter);

  // Sequence numbers and timestamps never run backwards.
  for (std::size_t i = 1; i < t.events.size(); ++i) {
    EXPECT_EQ(t.events[i].seq, t.events[i - 1].seq + 1);
    EXPECT_GE(t.events[i].t_us, t.events[i - 1].t_us);
  }

  // Aggregates: one completed span each; the outer span contains the
  // inner one, so its duration is at least as large.
  ASSERT_EQ(t.spans.size(), 2u);
  std::map<std::string, obs::SpanStat> by_name;
  for (const auto& s : t.spans) by_name[s.name] = s;
  ASSERT_TRUE(by_name.count("test.outer"));
  ASSERT_TRUE(by_name.count("test.inner"));
  EXPECT_EQ(by_name["test.outer"].count, 1u);
  EXPECT_EQ(by_name["test.inner"].count, 1u);
  EXPECT_GE(by_name["test.outer"].total_us, by_name["test.inner"].total_us);
  EXPECT_GE(by_name["test.outer"].max_us, 0.0);
}

TEST(Tracer, RingBufferKeepsMostRecentEvents) {
  obs::reset_all();
  for (std::size_t i = 0; i < obs::kTraceRingCapacity; ++i) {
    obs::Span s("test.spin");
  }
  const obs::TraceSnapshot t = obs::Tracer::global().snapshot();
  // 2 * capacity events were pushed into a capacity-sized ring.
  EXPECT_EQ(t.events.size(), obs::kTraceRingCapacity);
  EXPECT_EQ(t.events.back().seq, 2 * obs::kTraceRingCapacity - 1);
  EXPECT_EQ(t.events.front().seq, obs::kTraceRingCapacity);
  // Aggregates saw every span regardless of ring overwrite.
  ASSERT_EQ(t.spans.size(), 1u);
  EXPECT_EQ(t.spans[0].count, obs::kTraceRingCapacity);
  obs::reset_all();
}

// Minimal structural JSON check: quotes/braces/brackets balance outside
// strings.  Not a parser, but catches every malformed-emitter bug the
// serializer could realistically produce (dangling commas aside).
bool json_balanced(const std::string& s) {
  int brace = 0, bracket = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

TEST(Export, JsonWellFormedAndTextRoundTrips) {
  obs::reset_all();
  obs::Registry::global().counter("test.export_counter").add(123);
  obs::Registry::global().gauge("test.export_gauge").set(4.5);
  obs::Registry::global().histogram("test.export_hist").observe(3.0);
  { obs::Span s("test.export_span"); }

  const obs::Snapshot snap = obs::capture();
  const std::string json = obs::to_json(snap);
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"test.export_counter\": 123"), std::string::npos);
  EXPECT_NE(json.find("\"test.export_gauge\": 4.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.export_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_span\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"enter\""), std::string::npos);

  // Text format: parse every `key value` line back and compare the
  // scalars against the snapshot they came from.
  std::map<std::string, std::string> kv;
  std::istringstream lines(obs::to_text(snap));
  std::string key, value;
  while (lines >> key >> value) kv[key] = value;
  EXPECT_EQ(kv.at("test.export_counter"), "123");
  EXPECT_EQ(kv.at("test.export_gauge"), "4.5");
  EXPECT_EQ(kv.at("hist.test.export_hist.count"), "1");
  EXPECT_EQ(kv.at("hist.test.export_hist.sum"), "3");
  EXPECT_EQ(kv.at("span.test.export_span.count"), "1");
  obs::reset_all();
}

#ifndef MSTV_OBS_DISABLED

// The instrumented network round must report exactly the traffic its
// RoundStats returns: SimNetwork counts sender-side (degree * own label),
// run_verifier counts receiver-side (neighbors' labels) — identical sums.
TEST(Instrumentation, SimNetworkRoundMatchesRoundStats) {
  Rng rng(91);
  WeightOptions wo;
  const Graph g = random_connected_graph(24, 36, wo, rng);
  const MstScheme scheme;
  SimNetwork net(make_tree_config(g, kruskal_mst(g), 0), scheme);
  net.install_marker_labels();

  obs::reset_all();
  const RoundStats stats = net.verification_round();
  EXPECT_TRUE(stats.accepted);

  obs::Registry& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("verify.messages").value(), stats.messages);
  EXPECT_EQ(reg.counter("verify.bits_total").value(), stats.bits);
  EXPECT_EQ(reg.counter("verify.rejections").value(), stats.rejecting);
  EXPECT_EQ(reg.counter("verify.rounds").value(), 1u);
  EXPECT_EQ(reg.counter("verify.nodes").value(), g.num_vertices());
  EXPECT_EQ(static_cast<std::size_t>(reg.gauge("label.max_bits").value()),
            [&] {
              std::size_t mx = 0;
              for (const Label& l : net.labels()) {
                mx = std::max(mx, l.size_bits());
              }
              return mx;
            }());
  obs::reset_all();
}

// The marker span shows up in the trace, and the per-field label-bit
// counters account for every bit of every label.
TEST(Instrumentation, MarkerSpanAndLabelBitBreakdown) {
  Rng rng(92);
  WeightOptions wo;
  const Graph g = random_connected_graph(20, 28, wo, rng);
  const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
  const MstScheme scheme;

  obs::reset_all();
  const auto labels = scheme.mark(cfg);

  const obs::TraceSnapshot t = obs::Tracer::global().snapshot();
  bool saw_marker = false;
  for (const auto& s : t.spans) saw_marker |= s.name == "marker.assign_labels";
  EXPECT_TRUE(saw_marker);

  std::size_t total_bits = 0;
  for (const Label& l : labels) total_bits += l.size_bits();
  obs::Registry& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("label.spanning_tree_bits").value() +
                reg.counter("label.orient_bits").value() +
                reg.counter("label.extrema_bits").value(),
            total_bits);
  EXPECT_EQ(reg.counter("marker.labels").value(), g.num_vertices());
  obs::reset_all();
}

#endif  // MSTV_OBS_DISABLED

}  // namespace
}  // namespace mstv
