// src/store/ — snapshot container round trips, corruption rejection,
// backing equivalence, and store-served verifier parity.
//
// The container format under test is normative in docs/label_format.md
// ("Snapshot container format"); the FNV-1a constants reimplemented here
// are an independent check that the written bytes match that document,
// not just that the writer agrees with its own reader.
#include "store/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/gamma_scheme.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "plscheme/spanning_tree_scheme.hpp"
#include "store/memory_source.hpp"
#include "tree/path_queries.hpp"

namespace mstv {
namespace {

// Independent FNV-1a 64 per docs/label_format.md (not the library's).
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a64(std::uint64_t h, const std::uint8_t* p,
                      std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::vector<std::uint8_t> snapshot_image(const std::vector<Label>& labels,
                                         const store::SnapshotMeta& meta) {
  std::ostringstream os;
  store::write_snapshot(os, labels, meta);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

/// Re-stamps the header checksum after a deliberate patch, so a test can
/// reach the structural validation behind the integrity check.
void restamp_checksum(std::vector<std::uint8_t>& img) {
  std::uint64_t h = fnv1a64(kFnvOffset, img.data(),
                            store::kSnapshotChecksumOffset);
  h = fnv1a64(h, img.data() + store::kSnapshotHeaderBytes,
              img.size() - store::kSnapshotHeaderBytes);
  for (int i = 0; i < 8; ++i) {
    img[store::kSnapshotChecksumOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((h >> (8 * i)) & 0xFF);
  }
}

void put_u64_at(std::vector<std::uint8_t>& img, std::size_t off,
                std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    img[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
  }
}

store::LabelStore open_image(std::vector<std::uint8_t> img) {
  return store::LabelStore(store::MemorySource::from_bytes(std::move(img)));
}

ConfigGraph mst_config(std::uint64_t seed, std::size_t n, Graph& storage) {
  Rng rng(seed);
  WeightOptions wo;
  wo.max_weight = 1u << 20;
  storage = random_connected_graph(n, 2 * n, wo, rng);
  return make_tree_config(storage, kruskal_mst(storage), 0);
}

/// Same construction as test_gamma_scheme.cpp: payloads are the implicit
/// labels of a perfect member of Gamma.
ConfigGraph gamma_config(const Graph& tree_graph, VertexId root,
                         const ExtremaLabelingScheme& imp) {
  const RootedTree tree(tree_graph, root);
  const SeparatorDecomposition sd = perfect_separator_decomposition(tree);
  const auto imps = imp.encode(tree, sd);
  std::vector<State> states(tree_graph.num_vertices());
  for (VertexId v = 0; v < tree_graph.num_vertices(); ++v) {
    states[v].id = v;
    if (!tree.is_root(v)) states[v].parent_port = tree.parent_port(v);
    states[v].payload = imp.to_bits(imps[v]);
  }
  return ConfigGraph(tree_graph, std::move(states));
}

std::vector<Label> marked_labels(Graph& storage) {
  const ConfigGraph cfg = mst_config(901, 150, storage);
  const MstScheme scheme;
  return scheme.mark(cfg);
}

TEST(LabelStore, RoundTripPreservesEveryLabelAndMeta) {
  Graph g;
  ConfigGraph cfg = mst_config(901, 150, g);
  const MstScheme scheme;
  const auto labels = scheme.mark(cfg);

  store::SnapshotMeta meta;
  meta.scheme = scheme.name();
  meta.root = 0;
  meta.graph_vertices = g.num_vertices();
  meta.graph_edges = g.num_edges();
  const store::LabelStore snap = open_image(snapshot_image(labels, meta));

  ASSERT_EQ(snap.size(), labels.size());
  const auto back = snap.decode_all();
  ASSERT_EQ(back.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(back[i], labels[i]) << "label " << i;
  }
  // decode_one agrees with the batch path at block starts, interiors and
  // the ragged tail.
  for (const std::size_t v : {std::size_t{0}, std::size_t{63}, std::size_t{64},
                              std::size_t{100}, labels.size() - 1}) {
    EXPECT_EQ(snap.labels().decode_one(v), labels[v]) << "vertex " << v;
  }
  EXPECT_EQ(snap.meta().scheme, scheme.name());
  EXPECT_EQ(snap.meta().graph_vertices, g.num_vertices());
  EXPECT_EQ(snap.meta().graph_edges, g.num_edges());
  std::size_t max_bits = 0;
  for (const auto& l : labels) max_bits = std::max(max_bits, l.size_bits());
  EXPECT_EQ(snap.meta().max_label_bits, max_bits);
}

TEST(LabelStore, RoundTripEmptyAndOddSizes) {
  // Zero labels: header + empty directory + empty arena + meta.
  {
    const store::LabelStore snap =
        open_image(snapshot_image({}, store::SnapshotMeta{}));
    EXPECT_EQ(snap.size(), 0u);
    EXPECT_TRUE(snap.decode_all().empty());
  }
  // Degenerate bit widths: 0, 1, 64 and 65 bits (word-boundary spills).
  std::vector<Label> labels;
  labels.emplace_back();
  BitWriter w1;
  w1.write_bit(true);
  labels.emplace_back(w1);
  BitWriter w64;
  w64.write_uint(~std::uint64_t{0}, 64);
  labels.emplace_back(w64);
  BitWriter w65;
  w65.write_uint(~std::uint64_t{0}, 64);
  w65.write_bit(true);
  labels.emplace_back(w65);
  const store::LabelStore snap =
      open_image(snapshot_image(labels, store::SnapshotMeta{}));
  const auto back = snap.decode_all();
  ASSERT_EQ(back.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(back[i], labels[i]) << "label " << i;
  }
}

TEST(LabelStore, ChecksumFieldMatchesSpecConstants) {
  // The checksum the writer stamps must equal FNV-1a64 with the offset
  // basis / prime fixed in docs/label_format.md, folded over [0, 88) then
  // [96, EOF) — recomputed here from scratch.
  Graph g;
  const auto labels = marked_labels(g);
  auto img = snapshot_image(labels, store::SnapshotMeta{.scheme = "pi-mst"});
  std::uint64_t expect = fnv1a64(kFnvOffset, img.data(),
                                 store::kSnapshotChecksumOffset);
  expect = fnv1a64(expect, img.data() + store::kSnapshotHeaderBytes,
                   img.size() - store::kSnapshotHeaderBytes);
  std::uint64_t stored = 0;
  for (int i = 7; i >= 0; --i) {
    stored = (stored << 8) | img[store::kSnapshotChecksumOffset +
                                 static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(stored, expect);
}

TEST(LabelStore, RejectsEveryTruncationPoint) {
  std::vector<Label> labels;
  BitWriter w;
  w.write_uint(0xFEEDBEEF, 32);
  labels.emplace_back(w);
  BitWriter w2;
  w2.write_uint(~std::uint64_t{0}, 64);
  w2.write_uint(0x5A, 8);
  labels.emplace_back(w2);
  const auto img =
      snapshot_image(labels, store::SnapshotMeta{.scheme = "pi-mst"});

  // Every proper prefix must throw — header truncations (< 96 bytes) via
  // the header guard, body truncations via section bounds or checksum.
  for (std::size_t keep = 0; keep < img.size(); ++keep) {
    std::vector<std::uint8_t> cut(img.begin(),
                                  img.begin() + static_cast<long>(keep));
    EXPECT_THROW((void)open_image(std::move(cut)), PreconditionError)
        << "prefix of " << keep << " bytes accepted";
  }
  EXPECT_EQ(open_image(img).size(), labels.size());
}

TEST(LabelStore, RejectsBadMagicVersionAndHeaderSize) {
  std::vector<Label> labels;
  BitWriter w;
  w.write_uint(0xAB, 8);
  labels.emplace_back(w);
  const auto img = snapshot_image(labels, store::SnapshotMeta{});

  {
    auto bad = img;
    bad[0] = 'X';  // magic
    EXPECT_THROW((void)open_image(std::move(bad)), PreconditionError);
  }
  {
    auto bad = img;
    bad[8] = 2;  // version (checked before the checksum)
    EXPECT_THROW((void)open_image(std::move(bad)), PreconditionError);
  }
  {
    auto bad = img;
    bad[12] = 104;  // header_bytes
    EXPECT_THROW((void)open_image(std::move(bad)), PreconditionError);
  }
}

TEST(LabelStore, RejectsChecksumMismatchAnywhere) {
  std::vector<Label> labels;
  BitWriter w;
  w.write_uint(0x1234, 16);
  labels.emplace_back(w);
  const auto img = snapshot_image(labels, store::SnapshotMeta{});

  // One flipped bit in each section — header field, directory, arena,
  // metadata — must surface as corruption.
  for (const std::size_t off :
       {std::size_t{16}, std::size_t{100}, img.size() - 40, img.size() - 1}) {
    auto bad = img;
    bad[off] ^= 0x40;
    EXPECT_THROW((void)open_image(std::move(bad)), PreconditionError)
        << "flip at byte " << off << " accepted";
  }
}

TEST(LabelStore, RejectsAbsurdCountsBehindValidChecksum) {
  std::vector<Label> labels;
  BitWriter w;
  w.write_uint(0x77, 8);
  labels.emplace_back(w);
  const auto img = snapshot_image(labels, store::SnapshotMeta{});

  {
    // label_count past the 2^28 cap: the count guard fires, no allocation.
    auto bad = img;
    put_u64_at(bad, 16, (std::uint64_t{1} << 28) + 1);
    restamp_checksum(bad);
    EXPECT_THROW((void)open_image(std::move(bad)), PreconditionError);
  }
  {
    // arena_bits beyond n * max label bits.
    auto bad = img;
    put_u64_at(bad, 24, ~std::uint64_t{0});
    restamp_checksum(bad);
    EXPECT_THROW((void)open_image(std::move(bad)), PreconditionError);
  }
}

TEST(LabelStore, RejectsSectionAndAnchorOutOfBounds) {
  Graph g;
  const auto labels = marked_labels(g);
  const auto img = snapshot_image(labels, store::SnapshotMeta{});

  {
    // Directory offset pointing past EOF (8-aligned, so only the bounds
    // clause can reject it).
    auto bad = img;
    put_u64_at(bad, 32, (img.size() + 15) & ~std::uint64_t{7});
    restamp_checksum(bad);
    EXPECT_THROW((void)open_image(std::move(bad)), PreconditionError);
  }
  {
    // Misaligned arena offset.
    auto bad = img;
    put_u64_at(bad, 48, 100);
    restamp_checksum(bad);
    EXPECT_THROW((void)open_image(std::move(bad)), PreconditionError);
  }
  {
    // Second block's arena anchor beyond arena_bits: caught by the anchor
    // sweep before any decode dereferences it.
    ASSERT_GT(labels.size(), store::kSnapshotBlockSize);  // >= 2 blocks
    auto bad = img;
    const std::size_t anchor2 = store::kSnapshotHeaderBytes + 16 + 16;
    put_u64_at(bad, anchor2, ~std::uint64_t{0});
    restamp_checksum(bad);
    EXPECT_THROW((void)open_image(std::move(bad)), PreconditionError);
  }
  {
    // Directory block count disagreeing with ceil(n / block_size).
    auto bad = img;
    bad[store::kSnapshotHeaderBytes] ^= 0x01;
    restamp_checksum(bad);
    EXPECT_THROW((void)open_image(std::move(bad)), PreconditionError);
  }
}

TEST(LabelStore, MmapAndHeapBackingsServeIdenticalLabels) {
  Graph g;
  const auto labels = marked_labels(g);
  const std::string path = "/tmp/mstv_test_label_store_backing.snap";
  store::SnapshotMeta meta;
  meta.scheme = "pi-mst";
  const std::uint64_t bytes = store::write_snapshot_file(path, labels, meta);

  const store::LabelStore mapped = store::LabelStore::open(path, true);
  const store::LabelStore heaped = store::LabelStore::open(path, false);
  std::remove(path.c_str());

  // map_file may legitimately fall back to Buffer; read_file never mmaps.
  EXPECT_EQ(heaped.backing(), store::MemorySource::Backing::Buffer);
  EXPECT_EQ(mapped.file_bytes(), bytes);
  EXPECT_EQ(heaped.file_bytes(), bytes);
  const auto a = mapped.decode_all();
  const auto b = heaped.decode_all();
  ASSERT_EQ(a.size(), labels.size());
  ASSERT_EQ(b.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(a[i], labels[i]);
    EXPECT_EQ(b[i], labels[i]);
  }
}

TEST(LabelStore, WriterAndDecoderAreThreadCountInvariant) {
  const std::size_t restore = parallel::thread_count();
  Graph g1, g8;
  const MstScheme scheme;

  parallel::set_thread_count(8);
  ConfigGraph cfg8 = mst_config(902, 300, g8);
  const auto img8 =
      snapshot_image(scheme.mark(cfg8), store::SnapshotMeta{.scheme = "pi-mst"});
  const auto dec8 = open_image(img8).decode_all();

  parallel::set_thread_count(1);
  ConfigGraph cfg1 = mst_config(902, 300, g1);
  const auto img1 =
      snapshot_image(scheme.mark(cfg1), store::SnapshotMeta{.scheme = "pi-mst"});
  const auto dec1 = open_image(img1).decode_all();

  parallel::set_thread_count(restore);
  // mark() at 8 threads and 1 thread must serialize to the same bytes...
  EXPECT_EQ(img1, img8);
  // ...and block decode must be schedule-independent.
  EXPECT_EQ(dec1, dec8);
}

TEST(LabelStore, VerifierParityAcrossSchemes) {
  // For each scheme: verdict AND rejector set from the snapshot path must
  // be identical to the in-memory path — on genuine labels and on a
  // tampered set.
  Rng rng(77);
  WeightOptions wo;
  wo.max_weight = 1u << 12;

  const auto check_parity = [](const ProofLabelingScheme& scheme,
                               const ConfigGraph& cfg,
                               const std::vector<Label>& labels) {
    const store::LabelStore snap = open_image(
        snapshot_image(labels, store::SnapshotMeta{.scheme = "x"}));
    const VerificationResult mem = run_verifier(scheme, cfg, labels);
    const VerificationResult st = run_verifier(scheme, cfg, snap);
    EXPECT_EQ(st.accepted, mem.accepted);
    EXPECT_EQ(st.rejecting, mem.rejecting);
    return mem.accepted;
  };
  const auto tampered = [](std::vector<Label> labels, Rng& r) {
    const std::size_t victim = r.index(labels.size());
    if (labels[victim].size_bits() > 0) {
      labels[victim] =
          labels[victim].with_bit_flipped(r.index(labels[victim].size_bits()));
    }
    return labels;
  };

  {
    const MstScheme scheme;
    Graph g;
    ConfigGraph cfg = mst_config(903, 60, g);
    const auto labels = scheme.mark(cfg);
    EXPECT_TRUE(check_parity(scheme, cfg, labels));
    check_parity(scheme, cfg, tampered(labels, rng));
  }
  {
    const SpanningTreeScheme scheme;
    Graph g;
    ConfigGraph cfg = mst_config(904, 60, g);
    const auto labels = scheme.mark(cfg);
    EXPECT_TRUE(check_parity(scheme, cfg, labels));
    check_parity(scheme, cfg, tampered(labels, rng));
  }
  {
    const GammaScheme scheme;
    const Graph g = random_tree(60, wo, rng);
    ConfigGraph cfg = gamma_config(g, 0, scheme.implicit_scheme());
    const auto labels = scheme.mark(cfg);
    EXPECT_TRUE(check_parity(scheme, cfg, labels));
    check_parity(scheme, cfg, tampered(labels, rng));
  }
}

TEST(LabelStore, RunVerifierRejectsCountMismatch) {
  const MstScheme scheme;
  Graph g_small, g_big;
  ConfigGraph small = mst_config(905, 20, g_small);
  ConfigGraph big = mst_config(905, 21, g_big);
  const auto labels = scheme.mark(small);
  const store::LabelStore snap = open_image(
      snapshot_image(labels, store::SnapshotMeta{.scheme = "pi-mst"}));
  EXPECT_THROW((void)run_verifier(scheme, big, snap), PreconditionError);
}

TEST(LabelStore, DecodeRangeChecks) {
  std::vector<Label> labels;
  BitWriter w;
  w.write_uint(0x3, 2);
  labels.emplace_back(w);
  const store::LabelStore snap =
      open_image(snapshot_image(labels, store::SnapshotMeta{}));
  EXPECT_THROW((void)snap.labels().decode_one(1), PreconditionError);
  std::vector<Label> out(1);
  EXPECT_THROW((void)snap.labels().decode_block(1, out), PreconditionError);
  std::vector<Label> wrong_size;
  EXPECT_THROW((void)snap.labels().decode_block(0, wrong_size),
               PreconditionError);
}

#ifndef MSTV_OBS_DISABLED
TEST(LabelStore, DecodeBlockHitsCounter) {
  Graph g;
  const auto labels = marked_labels(g);
  const store::LabelStore snap =
      open_image(snapshot_image(labels, store::SnapshotMeta{}));
  auto& counter =
      obs::Registry::global().counter("store.decode_block_hits");
  const std::uint64_t before = counter.value();
  (void)snap.decode_all();
  EXPECT_EQ(counter.value() - before, snap.labels().num_blocks());
}
#endif

}  // namespace
}  // namespace mstv
