#include "plscheme/tree_proof_schemes.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "plscheme/runner.hpp"
#include "tree/path_queries.hpp"

namespace mstv {
namespace {

/// Tree configuration whose payloads are implicit labels of a member of
/// Gamma (perfect or random decomposition).
template <typename Scheme>
ConfigGraph labeled_config(const Graph& tree_graph, VertexId root,
                           const Scheme& imp, bool perfect, Rng& rng) {
  const RootedTree tree(tree_graph, root);
  const SeparatorDecomposition sd =
      perfect ? perfect_separator_decomposition(tree)
              : random_separator_decomposition(tree, rng);
  const auto imps = imp.encode(tree, sd);
  std::vector<State> states(tree_graph.num_vertices());
  for (VertexId v = 0; v < tree_graph.num_vertices(); ++v) {
    states[v].id = v;
    if (!tree.is_root(v)) states[v].parent_port = tree.parent_port(v);
    states[v].payload = imp.to_bits(imps[v]);
  }
  return ConfigGraph(tree_graph, std::move(states));
}

struct SchemeCase {
  const char* name;
  bool perfect;
  std::size_t n;
  std::uint64_t seed;
};

class TreeProofSchemeTest : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(TreeProofSchemeTest, DistanceCompleteness) {
  const auto& c = GetParam();
  const DistanceProofScheme scheme;
  Rng rng(c.seed);
  WeightOptions wo;
  wo.max_weight = 1u << 10;
  const Graph g = random_tree(c.n, wo, rng);
  const ConfigGraph cfg =
      labeled_config(g, static_cast<VertexId>(rng.index(c.n)),
                     scheme.implicit_scheme(), c.perfect, rng);
  const auto r = mark_and_verify(scheme, cfg);
  EXPECT_TRUE(r.accepted) << "rejecting: " << r.rejecting.size();
}

TEST_P(TreeProofSchemeTest, RoutingCompleteness) {
  const auto& c = GetParam();
  const RoutingProofScheme scheme;
  Rng rng(c.seed + 50);
  WeightOptions wo;
  const Graph g = random_tree(c.n, wo, rng);
  const ConfigGraph cfg =
      labeled_config(g, static_cast<VertexId>(rng.index(c.n)),
                     scheme.implicit_scheme(), c.perfect, rng);
  const auto r = mark_and_verify(scheme, cfg);
  EXPECT_TRUE(r.accepted) << "rejecting: " << r.rejecting.size();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeProofSchemeTest,
    ::testing::Values(SchemeCase{"perfect_small", true, 14, 1},
                      SchemeCase{"perfect_medium", true, 150, 2},
                      SchemeCase{"perfect_large", true, 700, 3},
                      SchemeCase{"random_small", false, 14, 4},
                      SchemeCase{"random_medium", false, 70, 5},
                      SchemeCase{"single", true, 1, 6},
                      SchemeCase{"pair", true, 2, 7}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(TreeProofSchemes, SoundnessForgedDistanceField) {
  // Bump one distance field; conditions 7/8-with-sum must catch it.
  const DistanceProofScheme scheme;
  const auto& imp = scheme.implicit_scheme();
  Rng rng(11);
  WeightOptions wo;
  wo.max_weight = 50;
  const Graph g = random_tree(40, wo, rng);
  ConfigGraph cfg = labeled_config(g, 0, imp, true, rng);

  int caught = 0, attempts = 0;
  for (VertexId victim = 0; victim < cfg.size(); ++victim) {
    DistanceLabel l = imp.from_bits(cfg.state(victim).payload);
    if (l.dist.empty()) continue;
    ++attempts;
    ConfigGraph broken = cfg;
    DistanceLabel forged = l;
    forged.dist[0] += 1;
    broken.state(victim).payload = imp.to_bits(forged);
    bool rejected;
    try {
      rejected = !run_verifier(scheme, broken, scheme.mark(broken)).accepted;
    } catch (const PreconditionError&) {
      rejected = true;
    }
    if (rejected) ++caught;
  }
  EXPECT_EQ(caught, attempts);
  EXPECT_GT(attempts, 20);
}

TEST(TreeProofSchemes, SoundnessForgedRoutingPort) {
  // Point one `toward` entry at a wrong port; the fold check pins it.
  const RoutingProofScheme scheme;
  const auto& imp = scheme.implicit_scheme();
  Rng rng(12);
  WeightOptions wo;
  const Graph g = random_tree(40, wo, rng);
  ConfigGraph cfg = labeled_config(g, 0, imp, true, rng);

  int caught = 0, attempts = 0;
  for (VertexId victim = 0; victim < cfg.size(); ++victim) {
    RoutingLabel l = imp.from_bits(cfg.state(victim).payload);
    if (l.toward.empty()) continue;
    ++attempts;
    ConfigGraph broken = cfg;
    RoutingLabel forged = l;
    forged.toward[0] = forged.toward[0] % g.degree(victim) + 1;  // different
    if (forged.toward[0] == l.toward[0]) {
      --attempts;
      continue;  // degree-1 node: no other port to lie with
    }
    broken.state(victim).payload = imp.to_bits(forged);
    bool rejected;
    try {
      rejected = !run_verifier(scheme, broken, scheme.mark(broken)).accepted;
    } catch (const PreconditionError&) {
      rejected = true;
    }
    if (rejected) ++caught;
  }
  EXPECT_EQ(caught, attempts);
  EXPECT_GT(attempts, 5);
}

TEST(TreeProofSchemes, SoundnessForgedBranchPort) {
  // Corrupt a branch_port entry: either the separator catches its
  // neighbor directly, or the branch-prefix agreement catches the chain.
  const RoutingProofScheme scheme;
  const auto& imp = scheme.implicit_scheme();
  Rng rng(13);
  WeightOptions wo;
  const Graph g = random_tree(35, wo, rng);
  ConfigGraph cfg = labeled_config(g, 0, imp, true, rng);

  int caught = 0, attempts = 0;
  for (VertexId victim = 0; victim < cfg.size(); ++victim) {
    RoutingLabel l = imp.from_bits(cfg.state(victim).payload);
    if (l.branch_port.empty()) continue;
    ++attempts;
    ConfigGraph broken = cfg;
    RoutingLabel forged = l;
    forged.branch_port[0] += 1;
    broken.state(victim).payload = imp.to_bits(forged);
    bool rejected;
    try {
      rejected = !run_verifier(scheme, broken, scheme.mark(broken)).accepted;
    } catch (const PreconditionError&) {
      rejected = true;
    }
    if (rejected) ++caught;
  }
  EXPECT_EQ(caught, attempts);
  EXPECT_GT(attempts, 20);
}

TEST(TreeProofSchemes, SoundnessTamperedPayloadBits) {
  const DistanceProofScheme dist;
  const RoutingProofScheme route;
  Rng rng(14);
  WeightOptions wo;
  wo.max_weight = 100;
  const Graph g = random_tree(30, wo, rng);

  {
    ConfigGraph cfg = labeled_config(g, 0, dist.implicit_scheme(), true, rng);
    const auto labels = dist.mark(cfg);
    for (int t = 0; t < 40; ++t) {
      ConfigGraph broken = cfg;
      const auto v = static_cast<VertexId>(rng.index(cfg.size()));
      Label p = broken.state(v).payload;
      broken.state(v).payload = p.with_bit_flipped(rng.index(p.size_bits()));
      EXPECT_FALSE(run_verifier(dist, broken, labels).accepted);
    }
  }
  {
    ConfigGraph cfg = labeled_config(g, 0, route.implicit_scheme(), true, rng);
    const auto labels = route.mark(cfg);
    for (int t = 0; t < 40; ++t) {
      ConfigGraph broken = cfg;
      const auto v = static_cast<VertexId>(rng.index(cfg.size()));
      Label p = broken.state(v).payload;
      broken.state(v).payload = p.with_bit_flipped(rng.index(p.size_bits()));
      EXPECT_FALSE(run_verifier(route, broken, labels).accepted);
    }
  }
}

TEST(TreeProofSchemes, AcceptedLabelsActuallyRouteAndMeasure) {
  // End-to-end: verify the configuration, then use the *state payloads*
  // (now certified) with the implicit decoders and check against ground
  // truth — the "self-stabilizing compact routing" composition.
  const RoutingProofScheme route;
  const DistanceProofScheme dist;
  Rng rng(15);
  WeightOptions wo;
  wo.max_weight = 64;
  const Graph g = random_tree(60, wo, rng);
  const RootedTree t(g, 0);
  const TreePathQueries q(t);

  ConfigGraph rc = labeled_config(g, 0, route.implicit_scheme(), true, rng);
  ConfigGraph dc = labeled_config(g, 0, dist.implicit_scheme(), true, rng);
  ASSERT_TRUE(mark_and_verify(route, rc).accepted);
  ASSERT_TRUE(mark_and_verify(dist, dc).accepted);

  for (int i = 0; i < 100; ++i) {
    const auto u = static_cast<VertexId>(rng.index(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.index(g.num_vertices()));
    const auto du = dist.implicit_scheme().from_bits(dc.state(u).payload);
    const auto dv = dist.implicit_scheme().from_bits(dc.state(v).payload);
    Weight expected = 0;
    {
      VertexId a = u, b = v;
      while (a != b) {
        if (t.depth(a) < t.depth(b)) std::swap(a, b);
        expected += t.parent_weight(a);
        a = t.parent(a);
      }
    }
    EXPECT_EQ(dist.implicit_scheme().decode(du, dv), expected);
    if (u != v) {
      const auto ru = route.implicit_scheme().from_bits(rc.state(u).payload);
      const auto rv = route.implicit_scheme().from_bits(rc.state(v).payload);
      const PortNumber hop = route.implicit_scheme().decode_route(ru, rv);
      // The hop must strictly reduce the distance to v.
      const VertexId next = g.port(u, hop).neighbor;
      const auto dn = dist.implicit_scheme().from_bits(dc.state(next).payload);
      EXPECT_LT(q.path_length(next, v), q.path_length(u, v));
      (void)dn;
    }
  }
}

}  // namespace
}  // namespace mstv
