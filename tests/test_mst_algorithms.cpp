#include "mst/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "mst/predicates.hpp"

namespace mstv {
namespace {

TEST(MstAlgorithms, HandPickedExample) {
  // Classic 4-cycle with a chord; unique MST = {0-1:1, 1-2:2, 2-3:3}.
  Graph::Builder b(4);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  const EdgeId e12 = b.add_edge(1, 2, 2);
  const EdgeId e23 = b.add_edge(2, 3, 3);
  b.add_edge(3, 0, 10);
  b.add_edge(0, 2, 9);
  const Graph g = b.build();

  for (auto* algo : {kruskal_mst, prim_mst, boruvka_mst}) {
    auto tree = algo(g);
    std::sort(tree.begin(), tree.end());
    EXPECT_EQ(tree, (std::vector<EdgeId>{e01, e12, e23}));
  }
}

TEST(MstAlgorithms, SingleVertex) {
  Graph::Builder b(1);
  const Graph g = b.build();
  EXPECT_TRUE(kruskal_mst(g).empty());
  EXPECT_TRUE(prim_mst(g).empty());
  EXPECT_TRUE(boruvka_mst(g).empty());
}

TEST(MstAlgorithms, DisconnectedRejected) {
  Graph::Builder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(2, 3, 1);
  const Graph g = b.build();
  EXPECT_THROW((void)kruskal_mst(g), PreconditionError);
  EXPECT_THROW((void)prim_mst(g), PreconditionError);
  EXPECT_THROW((void)boruvka_mst(g), PreconditionError);
}

struct RandomCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t extra;
  Weight max_w;
  bool distinct;
};

class MstRandomTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(MstRandomTest, AllThreeAlgorithmsAgreeOnWeightAndValidity) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  WeightOptions wo;
  wo.max_weight = c.max_w;
  wo.distinct = c.distinct;
  const Graph g = random_connected_graph(c.n, c.extra, wo, rng);

  const auto k = kruskal_mst(g);
  const auto p = prim_mst(g);
  const auto bo = boruvka_mst(g);

  EXPECT_TRUE(is_spanning_tree(g, k));
  EXPECT_TRUE(is_spanning_tree(g, p));
  EXPECT_TRUE(is_spanning_tree(g, bo));

  const Weight wk = total_weight(g, k);
  EXPECT_EQ(wk, total_weight(g, p));
  EXPECT_EQ(wk, total_weight(g, bo));

  EXPECT_TRUE(is_mst(g, k));
  EXPECT_TRUE(is_mst(g, p));
  EXPECT_TRUE(is_mst(g, bo));

  if (c.distinct) {
    // Unique MST: the edge sets must be identical.
    auto ks = k, ps = p, bs = bo;
    std::sort(ks.begin(), ks.end());
    std::sort(ps.begin(), ps.end());
    std::sort(bs.begin(), bs.end());
    EXPECT_EQ(ks, ps);
    EXPECT_EQ(ks, bs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MstRandomTest,
    ::testing::Values(RandomCase{1, 2, 0, 10, false},
                      RandomCase{2, 10, 15, 5, false},   // many weight ties
                      RandomCase{3, 50, 100, 1u << 20, true},
                      RandomCase{4, 100, 50, 3, false},  // extreme ties
                      RandomCase{5, 200, 400, 1u << 30, true},
                      RandomCase{6, 333, 0, 100, false},  // tree input
                      RandomCase{7, 64, 1950, 1u << 16, true}));  // ~complete

TEST(MstAlgorithms, AllWeightsEqual) {
  Rng rng(9);
  WeightOptions wo;
  wo.max_weight = 1;  // every edge weight 1
  const Graph g = random_connected_graph(60, 120, wo, rng);
  const auto k = kruskal_mst(g);
  EXPECT_EQ(total_weight(g, k), 59u);
  EXPECT_TRUE(is_mst(g, k));
  EXPECT_TRUE(is_mst(g, prim_mst(g)));
  EXPECT_TRUE(is_mst(g, boruvka_mst(g)));
}

}  // namespace
}  // namespace mstv
