#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mstv {
namespace {

struct GenCase {
  const char* name;
  Graph (*make)(std::size_t, const WeightOptions&, Rng&);
};

class TreeGeneratorTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(TreeGeneratorTest, ProducesConnectedTreesOfRequestedSize) {
  Rng rng(123);
  WeightOptions wo;
  wo.max_weight = 100;
  for (const std::size_t n : {1u, 2u, 3u, 7u, 64u, 257u}) {
    const Graph g = GetParam().make(n, wo, rng);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_EQ(g.num_edges(), n - 1);
    EXPECT_TRUE(g.is_connected());
    for (const Edge& e : g.edges()) {
      EXPECT_GE(e.w, 1u);
      EXPECT_LE(e.w, wo.max_weight);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTreeShapes, TreeGeneratorTest,
    ::testing::Values(GenCase{"random_tree", random_tree},
                      GenCase{"path", path_graph},
                      GenCase{"star", star_graph},
                      GenCase{"caterpillar", caterpillar},
                      GenCase{"balanced_binary", balanced_binary_tree}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(RandomConnectedGraph, HasRequestedExtraEdges) {
  Rng rng(5);
  WeightOptions wo;
  const Graph g = random_connected_graph(50, 30, wo, rng);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 49u + 30u);
  EXPECT_TRUE(g.is_connected());
}

TEST(RandomConnectedGraph, ClampsExtraEdgesToComplete) {
  Rng rng(5);
  WeightOptions wo;
  const Graph g = random_connected_graph(5, 1000, wo, rng);
  EXPECT_EQ(g.num_edges(), 10u);  // K5
}

TEST(RandomConnectedGraph, DistinctWeightsAreDistinct) {
  Rng rng(5);
  WeightOptions wo;
  wo.max_weight = 1u << 20;
  wo.distinct = true;
  const Graph g = random_connected_graph(64, 100, wo, rng);
  std::set<Weight> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(seen.insert(e.w).second) << "duplicate weight " << e.w;
  }
}

TEST(RandomConnectedGraph, DistinctWeightsRequireRoom) {
  Rng rng(5);
  WeightOptions wo;
  wo.max_weight = 3;
  wo.distinct = true;
  EXPECT_THROW((void)random_connected_graph(10, 5, wo, rng),
               PreconditionError);
}

TEST(GridGraph, ShapeAndConnectivity) {
  Rng rng(6);
  WeightOptions wo;
  const Graph g = grid_graph(4, 7, wo, rng);
  EXPECT_EQ(g.num_vertices(), 28u);
  EXPECT_EQ(g.num_edges(), 4u * 6u + 7u * 3u);
  EXPECT_TRUE(g.is_connected());
}

TEST(RingGraph, ShapeAndMinimumSize) {
  Rng rng(6);
  WeightOptions wo;
  const Graph g = ring_graph(9, wo, rng);
  EXPECT_EQ(g.num_edges(), 9u);
  for (VertexId v = 0; v < 9; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW((void)ring_graph(2, wo, rng), PreconditionError);
}

TEST(CompleteGraph, AllPairs) {
  Rng rng(6);
  WeightOptions wo;
  const Graph g = complete_graph(6, wo, rng);
  EXPECT_EQ(g.num_edges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, DeterministicForFixedSeed) {
  WeightOptions wo;
  Rng r1(777), r2(777);
  const Graph a = random_connected_graph(40, 20, wo, r1);
  const Graph b = random_connected_graph(40, 20, wo, r2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    EXPECT_EQ(a.edge(e).w, b.edge(e).w);
  }
}

TEST(Generators, StarHasHighDegreeCenter) {
  Rng rng(8);
  WeightOptions wo;
  const Graph g = star_graph(10, wo, rng);
  EXPECT_EQ(g.degree(0), 9u);
}

}  // namespace
}  // namespace mstv
