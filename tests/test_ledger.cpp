// Communication-ledger semantics, plus the layer's headline contract:
// the ledger a verification round commits is bit-identical at any thread
// count (cells are computed in the deterministic sharded reduce and
// committed once per round by the driver).
#include "obs/ledger.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/mst_scheme.hpp"
#include "runtime/network.hpp"
#include "util/json.hpp"

namespace mstv::obs {
namespace {

TEST(LedgerCell, FoldTracksDistribution) {
  LedgerCell c;
  c.fold_label(10);
  c.fold_label(4);
  c.fold_label(7);
  EXPECT_EQ(c.messages, 3u);
  EXPECT_EQ(c.bits, 21u);
  EXPECT_EQ(c.labels, 3u);
  EXPECT_EQ(c.label_bits_min, 4u);
  EXPECT_EQ(c.label_bits_max, 10u);
  EXPECT_EQ(c.label_bits_sum, 21u);
}

TEST(LedgerCell, MergeRespectsEmptyPartials) {
  LedgerCell a;
  a.fold_label(8);
  LedgerCell empty;
  empty.messages = 2;  // traffic counted without label stats
  empty.bits = 5;

  LedgerCell m = a;
  m.merge(empty);
  EXPECT_EQ(m.messages, 3u);
  EXPECT_EQ(m.bits, 13u);
  // The empty partial must not drag min down to 0.
  EXPECT_EQ(m.labels, 1u);
  EXPECT_EQ(m.label_bits_min, 8u);

  LedgerCell other;
  other.fold_label(3);
  other.fold_label(12);
  m.merge(other);
  EXPECT_EQ(m.label_bits_min, 3u);
  EXPECT_EQ(m.label_bits_max, 12u);
  EXPECT_EQ(m.labels, 3u);
  EXPECT_EQ(m.label_bits_sum, 23u);
}

TEST(CommLedger, RepeatedCommitMergesAndSnapshotSorts) {
  CommLedger ledger;
  LedgerCell c;
  c.fold_label(5);
  ledger.commit("verify.round", 1, "pi-mst", c);
  ledger.commit("async.round", 0, "pi-mst", c);
  ledger.commit("verify.round", 1, "pi-mst", c);  // same key: merges
  ledger.commit("verify.round", 0, "pi-frag", c);

  const auto snap = ledger.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Sorted by (round, phase, scheme).
  EXPECT_EQ(snap[0].key.round, 0u);
  EXPECT_EQ(snap[0].key.phase, "async.round");
  EXPECT_EQ(snap[1].key.phase, "verify.round");
  EXPECT_EQ(snap[1].key.scheme, "pi-frag");
  EXPECT_EQ(snap[2].key.round, 1u);
  EXPECT_EQ(snap[2].cell.messages, 2u);
  EXPECT_EQ(snap[2].cell.label_bits_sum, 10u);

  ledger.reset();
  EXPECT_TRUE(ledger.snapshot().empty());
}

TEST(CommLedger, JsonSerializationParses) {
  CommLedger ledger;
  LedgerCell c;
  c.fold_label(60);
  c.fold_label(314);
  ledger.commit("verify.round", 0, "pi-mst", c);

  const json::Value v = json::parse(ledger_to_json(ledger.snapshot()));
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 1u);
  const json::Value& row = *v.as_array()[0];
  EXPECT_DOUBLE_EQ(row.find("round")->as_number(), 0.0);
  EXPECT_EQ(row.find("phase")->as_string(), "verify.round");
  EXPECT_EQ(row.find("scheme")->as_string(), "pi-mst");
  EXPECT_DOUBLE_EQ(row.find("messages")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(row.find_path("label_bits.min")->as_number(), 60.0);
  EXPECT_DOUBLE_EQ(row.find_path("label_bits.max")->as_number(), 314.0);

  EXPECT_EQ(ledger_to_json({}), "[]");
}

// The determinism contract: the same run at --threads=1 and --threads=8
// commits the exact same ledger, distribution stats included.
TEST(CommLedger, VerificationLedgerIsThreadCountInvariant) {
  Rng rng(91);
  WeightOptions wo;
  const Graph g = random_connected_graph(200, 320, wo, rng);
  const MstScheme scheme;

  const auto run = [&](std::size_t threads) {
    parallel::set_thread_count(threads);
    CommLedger::global().reset();
    SimNetwork net(make_tree_config(g, kruskal_mst(g), 0), scheme);
    net.install_marker_labels();
    (void)net.verification_round();
    (void)net.verification_round();
    return CommLedger::global().snapshot();
  };

  const auto serial = run(1);
  const auto sharded = run(8);
  parallel::set_thread_count(0);  // back to the default
  EXPECT_EQ(serial, sharded);

#ifndef MSTV_OBS_DISABLED
  // Two rounds committed under distinct round keys, each 2m messages.
  ASSERT_EQ(serial.size(), 2u);
  EXPECT_EQ(serial[0].key.round, 0u);
  EXPECT_EQ(serial[1].key.round, 1u);
  for (const LedgerEntry& e : serial) {
    EXPECT_EQ(e.key.phase, "verify.round");
    EXPECT_EQ(e.key.scheme, scheme.name());
    EXPECT_EQ(e.cell.messages, 2 * g.num_edges());
    EXPECT_EQ(e.cell.labels, e.cell.messages);
    EXPECT_EQ(e.cell.bits, e.cell.label_bits_sum);
    EXPECT_GE(e.cell.label_bits_max, e.cell.label_bits_min);
    EXPECT_GT(e.cell.label_bits_min, 0u);
  }
#endif
}

}  // namespace
}  // namespace mstv::obs
