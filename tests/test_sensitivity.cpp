#include "sensitivity/sensitivity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"

namespace mstv {
namespace {

TEST(CoverMin, HandPickedExample) {
  // Tree edges: 0-1 (1), 1-2 (2), 2-3 (3); chords 0-2 (5), 1-3 (4).
  Graph::Builder b(4);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  const EdgeId e12 = b.add_edge(1, 2, 2);
  const EdgeId e23 = b.add_edge(2, 3, 3);
  b.add_edge(0, 2, 5);
  b.add_edge(1, 3, 4);
  const Graph g = b.build();
  const RootedTree t(g, {e01, e12, e23}, 0);
  const auto cover = compute_cover_min(t);
  // Edge (0,1) covered by chord 0-2 only; (1,2) by both; (2,3) by 1-3.
  EXPECT_EQ(cover[1], 5u);  // child vertex 1 <-> edge (0,1)
  EXPECT_EQ(cover[2], 4u);  // edge (1,2): min(5, 4)
  EXPECT_EQ(cover[3], 4u);  // edge (2,3)
}

TEST(CoverMin, BridgesStayUncovered) {
  // A path with one chord leaves the pendant edge uncovered.
  Graph::Builder b(4);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  const EdgeId e12 = b.add_edge(1, 2, 2);
  const EdgeId e23 = b.add_edge(2, 3, 3);
  b.add_edge(0, 2, 9);
  const Graph g = b.build();
  const RootedTree t(g, {e01, e12, e23}, 0);
  const auto cover = compute_cover_min(t);
  EXPECT_TRUE(cover[1].has_value());
  EXPECT_TRUE(cover[2].has_value());
  EXPECT_FALSE(cover[3].has_value());  // edge (2,3) is a bridge
}

TEST(SensitivityOracle, HandPickedValues) {
  Graph::Builder b(4);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  const EdgeId e12 = b.add_edge(1, 2, 2);
  const EdgeId e23 = b.add_edge(2, 3, 3);
  const EdgeId c02 = b.add_edge(0, 2, 5);
  const EdgeId c13 = b.add_edge(1, 3, 4);
  const Graph g = b.build();
  const std::vector<EdgeId> mst{e01, e12, e23};
  ASSERT_TRUE(is_mst(g, mst));
  const SensitivityOracle oracle(g, mst);

  // Tree edge (0,1): cover 5 => grows stale at +5 (1+5=6 > 5).
  EXPECT_EQ(oracle.query(e01).tolerance, 5u);
  // Tree edge (1,2): cover 4 => +3.
  EXPECT_EQ(oracle.query(e12).tolerance, 3u);
  // Chord (0,2): MAX = 2 => -4 (5-4=1 < 2).
  EXPECT_EQ(oracle.query(c02).tolerance, 4u);
  // Chord (1,3): MAX = 3 => -2.
  EXPECT_EQ(oracle.query(c13).tolerance, 2u);
  EXPECT_TRUE(oracle.query(e01).is_tree_edge);
  EXPECT_FALSE(oracle.query(c02).is_tree_edge);
}

TEST(SensitivityOracle, RejectsNonMinimumTree) {
  Graph::Builder b(3);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const EdgeId e02 = b.add_edge(0, 2, 9);
  const Graph g = b.build();
  EXPECT_THROW(SensitivityOracle(g, {e01, e02}), PreconditionError);
}

struct SensCase {
  const char* name;
  std::uint64_t seed;
  std::size_t n;
  std::size_t extra;
  Weight max_w;
};

class SensitivityPropertyTest : public ::testing::TestWithParam<SensCase> {};

TEST_P(SensitivityPropertyTest, OracleMatchesBruteForceOnEveryEdge) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  WeightOptions wo;
  wo.max_weight = c.max_w;
  wo.distinct = true;  // keeps the brute-force thresholds crisp
  const Graph g = random_connected_graph(c.n, c.extra, wo, rng);
  const auto mst = kruskal_mst(g);
  const SensitivityOracle oracle(g, mst);
  const DistributedSensitivity dist(g, mst);

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto expect = brute_force_sensitivity(g, mst, e);
    const auto got = oracle.query(e);
    EXPECT_EQ(got.is_tree_edge, expect.is_tree_edge) << "edge " << e;
    EXPECT_EQ(got.tolerance, expect.tolerance) << "edge " << e;

    // Distributed variant answers identically from endpoint states.
    const Edge& ed = g.edge(e);
    const auto port = g.find_port(ed.u, ed.v);
    ASSERT_TRUE(port.has_value());
    const auto dgot = dist.query(ed.u, *port);
    EXPECT_EQ(dgot.is_tree_edge, expect.is_tree_edge);
    EXPECT_EQ(dgot.tolerance, expect.tolerance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SensitivityPropertyTest,
    ::testing::Values(SensCase{"small", 40, 10, 12, 1u << 12},
                      SensCase{"medium", 41, 24, 40, 1u << 14},
                      SensCase{"sparse", 42, 30, 6, 1u << 12},
                      SensCase{"dense", 43, 12, 50, 1u << 12}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(SensitivityOracle, TreeOnlyGraphHasNoFiniteTreeTolerances) {
  Rng rng(44);
  WeightOptions wo;
  const Graph g = random_tree(20, wo, rng);
  std::vector<EdgeId> mst(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) mst[e] = e;
  const SensitivityOracle oracle(g, mst);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto s = oracle.query(e);
    EXPECT_TRUE(s.is_tree_edge);
    EXPECT_FALSE(s.tolerance.has_value());  // all bridges
  }
}

TEST(SensitivityOracle, SensitivityWitnessesActuallyBreakMinimality) {
  // Applying the reported tolerance must break minimality; tolerance - 1
  // must preserve it.  (Directly validates the definition.)
  Rng rng(45);
  WeightOptions wo;
  wo.max_weight = 1u << 10;
  wo.distinct = true;
  const Graph g = random_connected_graph(16, 20, wo, rng);
  const auto mst = kruskal_mst(g);
  const SensitivityOracle oracle(g, mst);

  auto tree_still_min_with = [&](EdgeId e, Weight new_w) {
    Graph::Builder b(g.num_vertices());
    for (EdgeId i = 0; i < g.num_edges(); ++i) {
      const Edge& ed = g.edge(i);
      b.add_edge(ed.u, ed.v, i == e ? new_w : ed.w);
    }
    const Graph mod = b.build();
    return is_mst(mod, mst);
  };

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto s = oracle.query(e);
    if (!s.tolerance) continue;
    const Weight w = g.edge(e).w;
    const Weight c = *s.tolerance;
    if (s.is_tree_edge) {
      EXPECT_FALSE(tree_still_min_with(e, w + c));
      if (c > 1) {
        EXPECT_TRUE(tree_still_min_with(e, w + c - 1));
      }
    } else {
      ASSERT_LE(c, w);
      EXPECT_FALSE(tree_still_min_with(e, w - c));
      if (c > 1) {
        EXPECT_TRUE(tree_still_min_with(e, w - (c - 1)));
      }
    }
  }
}

TEST(DistributedSensitivity, StateSizeIsCompact) {
  Rng rng(46);
  WeightOptions wo;
  wo.max_weight = 1u << 16;
  const Graph g = random_connected_graph(256, 512, wo, rng);
  const DistributedSensitivity dist(g, kruskal_mst(g));
  // Per-node storage stays near the label bound, far under the
  // Omega(|E| log W / n) explicit-output average the relaxation avoids.
  EXPECT_LE(dist.max_state_bits(), 2000u);
  EXPECT_GE(dist.max_state_bits(), 16u);
}

TEST(SensitivityOracle, AuxiliaryBitsReported) {
  Rng rng(47);
  WeightOptions wo;
  const Graph g = random_connected_graph(50, 80, wo, rng);
  const SensitivityOracle oracle(g, kruskal_mst(g));
  EXPECT_GT(oracle.auxiliary_bits(), 0u);
}

}  // namespace
}  // namespace mstv
