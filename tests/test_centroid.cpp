#include "tree/centroid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "tree/path_queries.hpp"

namespace mstv {
namespace {

RootedTree make_tree(Graph& storage, std::size_t n, std::uint64_t seed,
                     Graph (*gen)(std::size_t, const WeightOptions&, Rng&)) {
  Rng rng(seed);
  WeightOptions wo;
  wo.max_weight = 1u << 16;
  storage = gen(n, wo, rng);
  return RootedTree(storage, 0);
}

TEST(Centroid, SingleVertex) {
  Graph g;
  const RootedTree t = make_tree(g, 1, 1, random_tree);
  const auto sd = perfect_separator_decomposition(t);
  EXPECT_EQ(sd.level[0], 1u);
  EXPECT_EQ(sd.max_level(), 1u);
  EXPECT_TRUE(sd.rho(0).empty());
  ASSERT_EQ(sd.maxw(0).size(), 1u);
  EXPECT_EQ(sd.maxw(0)[0], 0u);
}

TEST(Centroid, PathCentroidIsMiddle) {
  Graph g;
  const RootedTree t = make_tree(g, 7, 2, path_graph);
  const auto sd = perfect_separator_decomposition(t);
  // The level-1 separator of a 7-path is its middle vertex, 3.
  EXPECT_EQ(sd.level[3], 1u);
  EXPECT_TRUE(is_perfect_decomposition(t, sd));
}

TEST(Centroid, DepthIsLogarithmic) {
  for (const std::size_t n : {2u, 15u, 100u, 1000u, 4096u}) {
    Graph g;
    const RootedTree t = make_tree(g, n, n, random_tree);
    const auto sd = perfect_separator_decomposition(t);
    const auto bound =
        static_cast<std::uint32_t>(std::floor(std::log2(n))) + 1;
    EXPECT_LE(sd.max_level(), bound) << "n=" << n;
  }
}

struct ShapeCase {
  const char* name;
  Graph (*make)(std::size_t, const WeightOptions&, Rng&);
  std::size_t n;
};

class CentroidPropertyTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(CentroidPropertyTest, DecompositionInvariants) {
  Graph g;
  const auto& c = GetParam();
  const RootedTree t = make_tree(g, c.n, 77, c.make);
  const auto sd = perfect_separator_decomposition(t);
  const TreePathQueries q(t);

  EXPECT_TRUE(is_perfect_decomposition(t, sd));

  // Exactly one level-1 separator.
  std::size_t level1 = 0;
  for (VertexId v = 0; v < t.size(); ++v) {
    if (sd.level[v] == 1) ++level1;
  }
  EXPECT_EQ(level1, 1u);

  for (VertexId v = 0; v < t.size(); ++v) {
    // Ancestor chain is consistent: ancestors[v][k] has level k+1, and the
    // recorded extrema match real tree-path queries (the E_omega fields).
    for (std::size_t k = 0; k < sd.ancestors(v).size(); ++k) {
      const VertexId s = sd.ancestors(v)[k];
      EXPECT_EQ(sd.level[s], k + 1);
      EXPECT_EQ(sd.maxw(v)[k], q.path_max(v, s));
      EXPECT_EQ(sd.minw(v)[k], q.path_min(v, s));
    }
    // sep_parent chains the ancestors.
    if (sd.level[v] > 1) {
      EXPECT_EQ(sd.sep_parent[v], sd.ancestors(v)[sd.level[v] - 2]);
    } else {
      EXPECT_EQ(sd.sep_parent[v], kInvalidVertex);
    }
  }

  // The Sep_level property: two vertices share the same level-i separator
  // iff their rho prefixes of length i-1 agree (checked on random pairs).
  Rng rng(123);
  for (int iter = 0; iter < 200; ++iter) {
    const auto u = static_cast<VertexId>(rng.index(t.size()));
    const auto v = static_cast<VertexId>(rng.index(t.size()));
    const std::size_t cap =
        std::min(sd.ancestors(u).size(), sd.ancestors(v).size());
    for (std::size_t i = 1; i <= cap; ++i) {
      bool prefix_equal = true;
      for (std::size_t j = 0; j + 1 < i; ++j) {
        if (sd.rho(u)[j] != sd.rho(v)[j]) prefix_equal = false;
      }
      EXPECT_EQ(sd.ancestors(u)[i - 1] == sd.ancestors(v)[i - 1],
                prefix_equal)
          << "u=" << u << " v=" << v << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CentroidPropertyTest,
    ::testing::Values(ShapeCase{"random", random_tree, 300},
                      ShapeCase{"path", path_graph, 256},
                      ShapeCase{"star", star_graph, 120},
                      ShapeCase{"caterpillar", caterpillar, 200},
                      ShapeCase{"binary", balanced_binary_tree, 127}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(Centroid, RhoRanksAreSizeOrderedAndContiguous) {
  Graph g;
  const RootedTree t = make_tree(g, 500, 3, random_tree);
  const auto sd = perfect_separator_decomposition(t);
  // For each separator, collect proper-member counts by rho rank: the
  // ranks must be 1..p and sizes non-increasing in rank.
  std::vector<std::vector<std::uint32_t>> by_rank(t.size());
  for (VertexId u = 0; u < t.size(); ++u) {
    for (std::size_t k = 0; k + 1 < sd.ancestors(u).size(); ++k) {
      const VertexId a = sd.ancestors(u)[k];
      const auto r = static_cast<std::size_t>(sd.rho(u)[k]);
      ASSERT_GE(r, 1u);
      if (by_rank[a].size() < r) by_rank[a].resize(r, 0);
      ++by_rank[a][r - 1];
    }
  }
  for (VertexId a = 0; a < t.size(); ++a) {
    for (std::size_t i = 0; i < by_rank[a].size(); ++i) {
      EXPECT_GT(by_rank[a][i], 0u) << "gap in rho ranks";
      if (i > 0) {
        EXPECT_LE(by_rank[a][i], by_rank[a][i - 1]);
      }
    }
  }
}

TEST(Centroid, FieldMaskSubsetMatchesFullDecomposition) {
  Graph g;
  const RootedTree t = make_tree(g, 200, 11, random_tree);
  const auto full = perfect_separator_decomposition(t);
  const auto lean = perfect_separator_decomposition(t, kSepFieldMax);
  EXPECT_TRUE(full.has_fields(kSepFieldsAll));
  EXPECT_TRUE(lean.has_fields(kSepFieldMax));
  EXPECT_FALSE(lean.has_fields(kSepFieldMin));
  EXPECT_FALSE(lean.has_fields(kSepFieldRoute));
  ASSERT_EQ(lean.level, full.level);
  ASSERT_EQ(lean.sep_parent, full.sep_parent);
  for (VertexId v = 0; v < t.size(); ++v) {
    const auto a1 = lean.ancestors(v), a2 = full.ancestors(v);
    ASSERT_TRUE(std::equal(a1.begin(), a1.end(), a2.begin(), a2.end()));
    const auto r1 = lean.rho(v), r2 = full.rho(v);
    ASSERT_TRUE(std::equal(r1.begin(), r1.end(), r2.begin(), r2.end()));
    const auto m1 = lean.maxw(v), m2 = full.maxw(v);
    ASSERT_TRUE(std::equal(m1.begin(), m1.end(), m2.begin(), m2.end()));
  }
}

TEST(RandomDecomposition, IsValidMemberOfGamma) {
  Graph g;
  const RootedTree t = make_tree(g, 60, 4, random_tree);
  Rng rng(9);
  const auto sd = random_separator_decomposition(t, rng);
  const TreePathQueries q(t);
  // Same structural invariants as the perfect one, except perfection.
  for (VertexId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(sd.ancestors(v).size(), sd.level[v]);
    EXPECT_EQ(sd.ancestors(v).back(), v);
    for (std::size_t k = 0; k < sd.ancestors(v).size(); ++k) {
      EXPECT_EQ(sd.maxw(v)[k], q.path_max(v, sd.ancestors(v)[k]));
    }
  }
  // Sibling rho values at each separator are unique.
  std::vector<std::vector<std::uint64_t>> nums(t.size());
  for (VertexId u = 0; u < t.size(); ++u) {
    for (std::size_t k = 0; k + 1 < sd.ancestors(u).size(); ++k) {
      // Only direct members record this separator; uniqueness is per
      // (separator, subtree), so collect one value per subtree root.
      if (sd.level[u] == k + 2) {
        nums[sd.ancestors(u)[k]].push_back(sd.rho(u)[k]);
      }
    }
  }
  for (auto& v : nums) {
    std::sort(v.begin(), v.end());
    EXPECT_TRUE(std::adjacent_find(v.begin(), v.end()) == v.end());
  }
}

}  // namespace
}  // namespace mstv
