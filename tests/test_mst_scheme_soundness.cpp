// Soundness property tests for pi_mst: whenever the configuration does
// NOT induce an MST, some node must reject — for honest-but-stale labels,
// for tampered labels, and (on small instances) for exhaustive families
// of adversarial label choices.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"
#include "mst/union_find.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "tree/path_queries.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {
namespace {

/// Marks an MST config, then hands back graph + labels for mutation.
/// The Graph lives on the heap because ConfigGraph holds a pointer to it;
/// moving the fixture must not relocate the graph.
struct Fixture {
  std::unique_ptr<Graph> g_owner;
  std::vector<EdgeId> mst;
  std::optional<ConfigGraph> cfg_store;
  std::vector<Label> labels;

  const Graph& g() const { return *g_owner; }
  const ConfigGraph& cfg() const { return *cfg_store; }
};

Fixture make_fixture(std::uint64_t seed, std::size_t n, std::size_t extra,
                     Weight max_w, const MstScheme& scheme) {
  Rng rng(seed);
  WeightOptions wo;
  wo.max_weight = max_w;
  Fixture f;
  f.g_owner = std::make_unique<Graph>(
      random_connected_graph(n, extra, wo, rng));
  f.mst = kruskal_mst(*f.g_owner);
  f.cfg_store.emplace(make_tree_config(*f.g_owner, f.mst, 0));
  f.labels = scheme.mark(*f.cfg_store);
  return f;
}

struct SoundnessCase {
  const char* name;
  std::uint64_t seed;
  std::size_t n;
  std::size_t extra;
  Weight max_w;
};

class MstSchemeSoundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(MstSchemeSoundness, SwappingTreeEdgeForHeavierChordIsRejected) {
  // Replace a tree edge by a strictly heavier non-tree edge across the
  // same cut: still a spanning tree, no longer minimum.  Keep the stale
  // labels (the adversary's best consistent story).
  const auto& c = GetParam();
  const MstScheme scheme;
  Fixture f = make_fixture(c.seed, c.n, c.extra, c.max_w, scheme);
  const RootedTree tree(f.g(), f.mst, 0);
  const TreePathQueries q(tree);

  int tested = 0;
  for (const EdgeId chord : non_tree_edges(f.g(), f.mst)) {
    const Edge& ce = f.g().edge(chord);
    if (ce.w <= q.path_max(ce.u, ce.v)) continue;  // swap would stay optimal
    // Find a strictly lighter tree edge on the path u..v to drop: the max
    // edge works.
    VertexId x = ce.u, y = ce.v;
    EdgeId drop = kInvalidEdge;
    Weight best = 0;
    while (x != y) {
      if (tree.depth(x) < tree.depth(y)) std::swap(x, y);
      if (tree.parent_weight(x) >= best) {
        best = tree.parent_weight(x);
        drop = tree.parent_edge(x);
      }
      x = tree.parent(x);
    }
    ASSERT_NE(drop, kInvalidEdge);

    std::vector<EdgeId> swapped;
    for (const EdgeId e : f.mst) {
      if (e != drop) swapped.push_back(e);
    }
    swapped.push_back(chord);
    ASSERT_TRUE(is_spanning_tree(f.g(), swapped));
    ASSERT_FALSE(is_mst(f.g(), swapped));

    const ConfigGraph broken = make_tree_config(f.g(), swapped, 0);
    // (a) stale labels from the true MST:
    EXPECT_FALSE(run_verifier(scheme, broken, f.labels).accepted);
    // (b) labels an honest marker would produce for the swapped tree as
    // if it were minimum — build them via a scheme on the modified graph
    // where the swap *is* optimal, then replay on the real weights.
    Graph::Builder b(f.g().num_vertices());
    for (EdgeId e = 0; e < f.g().num_edges(); ++e) {
      const Edge& ed = f.g().edge(e);
      // In the forged story the chord pretends to weigh what the dropped
      // tree edge did, making the swapped tree "minimum".
      b.add_edge(ed.u, ed.v, e == chord ? best : ed.w);
    }
    const Graph forged_g = b.build();
    if (is_mst(forged_g, swapped)) {
      const ConfigGraph forged_cfg = make_tree_config(forged_g, swapped, 0);
      const auto forged_labels = scheme.mark(forged_cfg);
      EXPECT_FALSE(run_verifier(scheme, broken, forged_labels).accepted)
          << "labels forged from a re-weighted graph were accepted";
    }
    if (++tested >= 5) break;  // a few chords per instance suffice
  }
  EXPECT_GT(tested, 0) << "instance had no strictly-improving swap";
}

TEST_P(MstSchemeSoundness, LoweredChordWeightIsRejected) {
  // Keep the tree, lower a non-tree edge below the tree-path MAX: the
  // (unchanged) tree stops being minimum; stale labels must be rejected.
  const auto& c = GetParam();
  const MstScheme scheme;
  Fixture f = make_fixture(c.seed + 1000, c.n, c.extra, c.max_w, scheme);
  const RootedTree tree(f.g(), f.mst, 0);
  const TreePathQueries q(tree);

  int tested = 0;
  for (const EdgeId chord : non_tree_edges(f.g(), f.mst)) {
    const Edge& ce = f.g().edge(chord);
    const Weight mx = q.path_max(ce.u, ce.v);
    if (mx == 0) continue;
    Graph::Builder b(f.g().num_vertices());
    for (EdgeId e = 0; e < f.g().num_edges(); ++e) {
      const Edge& ed = f.g().edge(e);
      b.add_edge(ed.u, ed.v, e == chord ? mx - 1 : ed.w);
    }
    const Graph lowered = b.build();
    ASSERT_FALSE(is_mst(lowered, f.mst));
    ConfigGraph broken(lowered, [&] {
      std::vector<State> st;
      for (VertexId v = 0; v < f.cfg().size(); ++v) st.push_back(f.cfg().state(v));
      return st;
    }());
    EXPECT_FALSE(run_verifier(scheme, broken, f.labels).accepted);
    if (++tested >= 5) break;
  }
  EXPECT_GT(tested, 0);
}

TEST_P(MstSchemeSoundness, RandomLabelBitFlipsNeverFoolTheVerifier) {
  const auto& c = GetParam();
  const MstScheme scheme;
  Fixture f = make_fixture(c.seed + 2000, c.n, c.extra, c.max_w, scheme);

  // First break the configuration (redirect one parent pointer so the
  // induced subgraph is no longer the MST), then let the adversary flip
  // random label bits trying to repair the story.
  Rng rng(c.seed + 3000);
  ConfigGraph broken = f.cfg();
  for (int attempts = 0; attempts < 100; ++attempts) {
    const auto v = static_cast<VertexId>(rng.index(broken.size()));
    if (!broken.state(v).parent_port || f.g().degree(v) < 2) continue;
    PortNumber p;
    do {
      p = static_cast<PortNumber>(rng.uniform(1, f.g().degree(v)));
    } while (p == *broken.state(v).parent_port);
    broken.state(v).parent_port = p;
    const auto induced = broken.induced_subgraph();
    if (is_spanning_tree(f.g(), induced) && is_mst(f.g(), induced)) {
      broken.state(v) = f.cfg().state(v);  // accidentally still an MST; undo
      continue;
    }
    break;
  }
  ASSERT_FALSE(mst_predicate(broken));

  EXPECT_FALSE(run_verifier(scheme, broken, f.labels).accepted);
  for (int trial = 0; trial < 60; ++trial) {
    auto tampered = f.labels;
    const int flips = 1 + static_cast<int>(rng.uniform(0, 4));
    for (int i = 0; i < flips; ++i) {
      const auto victim = static_cast<VertexId>(rng.index(tampered.size()));
      tampered[victim] = tampered[victim].with_bit_flipped(
          rng.index(tampered[victim].size_bits()));
    }
    EXPECT_FALSE(run_verifier(scheme, broken, tampered).accepted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MstSchemeSoundness,
    ::testing::Values(SoundnessCase{"small", 10, 12, 20, 64},
                      SoundnessCase{"ties", 11, 20, 40, 6},
                      SoundnessCase{"medium", 12, 60, 120, 1u << 12},
                      SoundnessCase{"wide_weights", 13, 30, 60, 1u << 28},
                      SoundnessCase{"dense", 14, 18, 120, 1u << 10}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(MstSchemeSoundnessExhaustive, TriangleAllTreesAllSmallLabelSets) {
  // On a weighted triangle, enumerate every spanning tree; non-minimum
  // ones must be rejected under the honest labels of every *other* tree
  // (cross-labeling attack).
  Graph::Builder b(3);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  const EdgeId e12 = b.add_edge(1, 2, 2);
  const EdgeId e02 = b.add_edge(0, 2, 4);
  const Graph g = b.build();
  const MstScheme scheme;

  const std::vector<std::vector<EdgeId>> trees = {
      {e01, e12}, {e01, e02}, {e12, e02}};
  std::vector<std::vector<Label>> honest;
  for (const auto& t : trees) {
    if (is_mst(g, t)) {
      honest.push_back(scheme.mark(make_tree_config(g, t, 0)));
    } else {
      honest.emplace_back();  // no honest labels exist
    }
  }
  for (std::size_t i = 0; i < trees.size(); ++i) {
    const ConfigGraph cfg = make_tree_config(g, trees[i], 0);
    const bool should_accept = is_mst(g, trees[i]);
    for (const auto& labels : honest) {
      if (labels.empty()) continue;
      const bool accepted = run_verifier(scheme, cfg, labels).accepted;
      if (!should_accept) {
        EXPECT_FALSE(accepted) << "tree " << i << " accepted wrongly";
      }
    }
    if (should_accept) {
      EXPECT_TRUE(run_verifier(scheme, cfg, honest[i]).accepted);
    }
  }
}

TEST(MstSchemeSoundnessExhaustive, NonMstNeverAcceptedUnderManyMarkers) {
  // Randomized approximation of "for every marker L there exists a
  // rejecting vertex": try many plausible forged label assignments built
  // from honest labels of related instances.
  Rng rng(500);
  WeightOptions wo;
  wo.max_weight = 16;
  const MstScheme scheme;
  for (int round = 0; round < 10; ++round) {
    const Graph g = random_connected_graph(10, 12, wo, rng);
    const auto mst = kruskal_mst(g);
    // A non-MST spanning tree (if the instance has one).
    std::vector<EdgeId> order(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
    std::vector<EdgeId> bad;
    for (int t = 0; t < 50 && bad.empty(); ++t) {
      rng.shuffle(order);
      UnionFind uf(g.num_vertices());
      std::vector<EdgeId> tree;
      for (const EdgeId e : order) {
        if (uf.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
      }
      if (!is_mst(g, tree)) bad = tree;
    }
    if (bad.empty()) continue;

    const ConfigGraph broken = make_tree_config(g, bad, 0);
    const auto honest = scheme.mark(make_tree_config(g, mst, 0));
    // Forgery 1: honest MST labels on the bad tree.
    EXPECT_FALSE(run_verifier(scheme, broken, honest).accepted);
    // Forgery 2: mixtures of honest labels with random per-node swaps.
    for (int t = 0; t < 20; ++t) {
      auto forged = honest;
      const auto a = static_cast<VertexId>(rng.index(forged.size()));
      const auto b2 = static_cast<VertexId>(rng.index(forged.size()));
      std::swap(forged[a], forged[b2]);
      EXPECT_FALSE(run_verifier(scheme, broken, forged).accepted);
    }
  }
}

}  // namespace
}  // namespace mstv
