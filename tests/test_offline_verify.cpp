#include "mst/offline_verify.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"
#include "mst/union_find.hpp"

namespace mstv {
namespace {

TEST(OfflineVerify, AcceptsTrueMsts) {
  Rng rng(71);
  WeightOptions wo;
  wo.max_weight = 1u << 16;
  for (int i = 0; i < 10; ++i) {
    const Graph g = random_connected_graph(80, 160, wo, rng);
    const auto res = verify_mst_offline(g, kruskal_mst(g));
    EXPECT_TRUE(res.is_mst);
    EXPECT_FALSE(res.violating_chord.has_value());
  }
}

TEST(OfflineVerify, AgreesWithLcaBasedPredicateOnRandomTrees) {
  Rng rng(72);
  WeightOptions wo;
  wo.max_weight = 40;  // ties make near-minimum trees common
  for (int iter = 0; iter < 60; ++iter) {
    const Graph g = random_connected_graph(25, 35, wo, rng);
    // Random spanning tree via shuffled Kruskal.
    std::vector<EdgeId> order(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
    rng.shuffle(order);
    UnionFind uf(g.num_vertices());
    std::vector<EdgeId> tree;
    for (const EdgeId e : order) {
      if (uf.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
    }
    const auto res = verify_mst_offline(g, tree);
    EXPECT_EQ(res.is_mst, is_mst(g, tree));
  }
}

TEST(OfflineVerify, WitnessIsGenuine) {
  Rng rng(73);
  WeightOptions wo;
  wo.max_weight = 1u << 12;
  wo.distinct = true;
  const Graph g = random_connected_graph(30, 50, wo, rng);
  const auto mst = kruskal_mst(g);
  // Break minimality: swap a tree edge for a heavier chord.
  for (const EdgeId chord : non_tree_edges(g, mst)) {
    std::vector<EdgeId> tree;
    // Drop some tree edge on the chord's cycle: use brute force search
    // for a swap that stays a spanning tree.
    for (const EdgeId drop : mst) {
      tree.clear();
      for (const EdgeId e : mst) {
        if (e != drop) tree.push_back(e);
      }
      tree.push_back(chord);
      if (is_spanning_tree(g, tree) && !is_mst(g, tree)) {
        const auto res = verify_mst_offline(g, tree);
        ASSERT_FALSE(res.is_mst);
        ASSERT_TRUE(res.violating_chord && res.heavier_tree_edge);
        // The witness pair really violates the cycle rule.
        EXPECT_LT(g.edge(*res.violating_chord).w,
                  g.edge(*res.heavier_tree_edge).w);
        return;
      }
    }
  }
  FAIL() << "no breaking swap found";
}

TEST(OfflineVerify, RequiresSpanningTree) {
  Graph::Builder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const Graph g = b.build();
  EXPECT_THROW((void)verify_mst_offline(g, {0}), PreconditionError);
}

TEST(OfflineVerify, TreeOnlyGraphTriviallyMinimum) {
  Rng rng(74);
  WeightOptions wo;
  const Graph g = random_tree(50, wo, rng);
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  EXPECT_TRUE(verify_mst_offline(g, all).is_mst);
}

}  // namespace
}  // namespace mstv
