#include "runtime/async_network.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include <cmath>
#include <memory>
#include <optional>

#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

namespace mstv {
namespace {

struct Harness {
  std::unique_ptr<Graph> g;
  std::optional<ConfigGraph> cfg;
  std::vector<Label> labels;
};

Harness make_setup(std::uint64_t seed) {
  Rng rng(seed);
  WeightOptions wo;
  wo.max_weight = 1u << 12;
  wo.distinct = true;
  Harness s;
  s.g = std::make_unique<Graph>(random_connected_graph(40, 60, wo, rng));
  s.cfg.emplace(make_tree_config(*s.g, kruskal_mst(*s.g), 0));
  static const MstScheme scheme;
  s.labels = scheme.mark(*s.cfg);
  return s;
}

TEST(AsyncNetwork, VerdictMatchesSynchronousRound) {
  const MstScheme scheme;
  Harness s = make_setup(1);
  Rng rng(2);
  const auto async = async_verification_round(*s.cfg, scheme, s.labels, rng);
  const auto sync = run_verifier(scheme, *s.cfg, s.labels);
  EXPECT_EQ(async.accepted, sync.accepted);
  EXPECT_EQ(async.rejecting, sync.rejecting);
  EXPECT_TRUE(async.accepted);
  EXPECT_TRUE(std::isinf(async.first_detection_time));
}

TEST(AsyncNetwork, TimingWithinDelayBounds) {
  const MstScheme scheme;
  Harness s = make_setup(3);
  Rng rng(4);
  AsyncOptions opts;
  opts.min_delay = 2.0;
  opts.max_delay = 7.0;
  const auto r = async_verification_round(*s.cfg, scheme, s.labels, rng, opts);
  EXPECT_GE(r.completion_time, opts.min_delay);
  EXPECT_LE(r.completion_time, opts.max_delay);
  EXPECT_EQ(r.messages, 2 * s.g->num_edges());
}

TEST(AsyncNetwork, FaultDetectedWithinOneMessageDelay) {
  const MstScheme scheme;
  Harness s = make_setup(5);
  // Break the configuration: drop a parent pointer.
  for (VertexId v = 0; v < s.cfg->size(); ++v) {
    if (s.cfg->state(v).parent_port) {
      s.cfg->state(v).parent_port.reset();
      break;
    }
  }
  Rng rng(6);
  AsyncOptions opts;
  opts.min_delay = 1.0;
  opts.max_delay = 10.0;
  const auto r = async_verification_round(*s.cfg, scheme, s.labels, rng, opts);
  EXPECT_FALSE(r.accepted);
  // The first alarm fires no later than one maximal message delay — no
  // global synchronization needed — and never after completion.
  EXPECT_LE(r.first_detection_time, opts.max_delay);
  EXPECT_LE(r.first_detection_time, r.completion_time);
  EXPECT_GE(r.first_detection_time, opts.min_delay);
}

TEST(AsyncNetwork, RejectsMismatchedDelays) {
  const MstScheme scheme;
  Harness s = make_setup(7);
  Rng rng(8);
  AsyncOptions opts;
  opts.min_delay = 5.0;
  opts.max_delay = 1.0;  // inverted
  EXPECT_THROW((void)async_verification_round(*s.cfg, scheme, s.labels, rng,
                                              opts),
               PreconditionError);
}

}  // namespace
}  // namespace mstv
