// mstv::json is the read-side of every JSON artifact the repo emits
// (telemetry snapshots, bench reports, Chrome traces, audit verdicts);
// these tests lock down the accepted grammar and the rejection behavior
// bench_compare and the trace golden tests rely on.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mstv::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(parse(R"("tab\there\nnl")").as_string(), "tab\there\nnl");
  // \uXXXX decodes to UTF-8: U+00E9 (e-acute) -> 0xC3 0xA9.
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_THROW(parse(R"("\u00gz")"), ParseError);
  EXPECT_THROW(parse(R"("\q")"), ParseError);
}

TEST(Json, ParsesNestedContainers) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(v.is_object());
  const auto& arr = v.find("a")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[0]->as_number(), 1.0);
  EXPECT_TRUE(arr[2]->find("b")->as_bool());
  EXPECT_TRUE(v.find_path("c.d")->is_null());
}

TEST(Json, FindPathStopsAtMissingHop) {
  const Value v = parse(R"({"metrics": {"counters": {"x": 7}}})");
  ASSERT_NE(v.find_path("metrics.counters.x"), nullptr);
  EXPECT_DOUBLE_EQ(v.find_path("metrics.counters.x")->as_number(), 7.0);
  EXPECT_EQ(v.find_path("metrics.gauges.x"), nullptr);
  EXPECT_EQ(v.find_path("nope"), nullptr);
  // find on a non-object is a nullptr, not a throw.
  EXPECT_EQ(parse("[1]").find("k"), nullptr);
}

TEST(Json, DuplicateKeysLastWins) {
  const Value v = parse(R"({"k": 1, "k": 2})");
  EXPECT_DOUBLE_EQ(v.find("k")->as_number(), 2.0);
  // ...but both members stay visible in document order.
  EXPECT_EQ(v.as_object().size(), 2u);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(parse("1."), ParseError);
  EXPECT_THROW(parse("1e"), ParseError);
  EXPECT_THROW(parse("nul"), ParseError);
  EXPECT_THROW(parse("1 garbage"), ParseError);  // trailing junk
  EXPECT_FALSE(try_parse("{").has_value());
  EXPECT_TRUE(try_parse("{}").has_value());
}

TEST(Json, DepthCapGuardsRecursion) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW(parse(deep), ParseError);
  // A comfortably shallow document of the same shape is fine.
  EXPECT_NO_THROW(parse("[[[[[[[[[[]]]]]]]]]]"));
}

TEST(Json, TypedAccessorsThrowOnKindMismatch) {
  const Value v = parse("42");
  EXPECT_THROW((void)v.as_string(), std::logic_error);
  EXPECT_THROW((void)v.as_array(), std::logic_error);
  EXPECT_THROW((void)parse("\"s\"").as_number(), std::logic_error);
}

}  // namespace
}  // namespace mstv::json
