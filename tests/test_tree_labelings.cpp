#include "labeling/tree_labelings.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "tree/path_queries.hpp"

namespace mstv {
namespace {

struct ShapeCase {
  const char* name;
  Graph (*make)(std::size_t, const WeightOptions&, Rng&);
  std::size_t n;
};

/// Ground-truth weighted distance by parent walking.
Weight walk_distance(const RootedTree& t, VertexId u, VertexId v) {
  Weight d = 0;
  while (u != v) {
    if (t.depth(u) < t.depth(v)) std::swap(u, v);
    d += t.parent_weight(u);
    u = t.parent(u);
  }
  return d;
}

/// Ground-truth next hop: the first edge on the tree path u -> v.
PortNumber walk_next_hop(const RootedTree& t, VertexId u, VertexId v) {
  // Climb v-side until the path collapses onto u's side.
  // Simpler: walk from u: the next hop is either u's parent (if v is not
  // in u's subtree) or the child of u whose subtree contains v.
  if (!t.is_ancestor(u, v)) return t.parent_port(u);
  for (const VertexId c : t.children(u)) {
    if (t.is_ancestor(c, v)) {
      // Find u's port to c.
      const auto port = t.graph().find_port(u, c);
      return *port;
    }
  }
  MSTV_ASSERT(false);
  return 0;
}

class TreeLabelingShapeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(TreeLabelingShapeTest, DistanceDecodeIsExact) {
  const auto& c = GetParam();
  Rng rng(301);
  WeightOptions wo;
  wo.max_weight = 1u << 16;
  const Graph g = c.make(c.n, wo, rng);
  const RootedTree t(g, 0);
  const DistanceLabelingScheme scheme;
  const auto labels = scheme.encode(t);
  for (int iter = 0; iter < 500; ++iter) {
    const auto u = static_cast<VertexId>(rng.index(c.n));
    const auto v = static_cast<VertexId>(rng.index(c.n));
    EXPECT_EQ(scheme.decode(labels[u], labels[v]), walk_distance(t, u, v))
        << "u=" << u << " v=" << v;
  }
}

TEST_P(TreeLabelingShapeTest, RoutingDecodeGivesTheFirstHop) {
  const auto& c = GetParam();
  Rng rng(302);
  WeightOptions wo;
  const Graph g = c.make(c.n, wo, rng);
  const RootedTree t(g, 0);
  const RoutingLabelingScheme scheme;
  const auto labels = scheme.encode(t);
  for (int iter = 0; iter < 500; ++iter) {
    const auto u = static_cast<VertexId>(rng.index(c.n));
    const auto v = static_cast<VertexId>(rng.index(c.n));
    if (u == v) continue;
    EXPECT_EQ(scheme.decode_route(labels[u], labels[v]),
              walk_next_hop(t, u, v))
        << "u=" << u << " v=" << v;
  }
}

TEST_P(TreeLabelingShapeTest, RoutingHopByHopDelivers) {
  // Follow decode_route hop by hop: must reach v in <= n-1 steps, and the
  // traversed distance must equal the distance label's answer.
  const auto& c = GetParam();
  Rng rng(303);
  WeightOptions wo;
  wo.max_weight = 100;
  const Graph g = c.make(c.n, wo, rng);
  const RootedTree t(g, 0);
  const RoutingLabelingScheme router;
  const DistanceLabelingScheme dist;
  const auto rl = router.encode(t);
  const auto dl = dist.encode(t);
  for (int iter = 0; iter < 50; ++iter) {
    const auto src = static_cast<VertexId>(rng.index(c.n));
    const auto dst = static_cast<VertexId>(rng.index(c.n));
    VertexId cur = src;
    Weight travelled = 0;
    std::size_t hops = 0;
    while (cur != dst) {
      ASSERT_LE(++hops, c.n) << "routing loop";
      const PortNumber p = router.decode_route(rl[cur], rl[dst]);
      const PortInfo& info = g.port(cur, p);
      travelled += info.weight;
      cur = info.neighbor;
    }
    EXPECT_EQ(travelled, dist.decode(dl[src], dl[dst]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeLabelingShapeTest,
    ::testing::Values(ShapeCase{"random", random_tree, 250},
                      ShapeCase{"path", path_graph, 128},
                      ShapeCase{"star", star_graph, 90},
                      ShapeCase{"caterpillar", caterpillar, 140},
                      ShapeCase{"binary", balanced_binary_tree, 127},
                      ShapeCase{"pair", random_tree, 2}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(TreeLabelings, BitsRoundTrip) {
  Rng rng(304);
  WeightOptions wo;
  wo.max_weight = 1u << 20;
  const Graph g = random_tree(120, wo, rng);
  const RootedTree t(g, 0);
  const DistanceLabelingScheme dist;
  const RoutingLabelingScheme router;
  for (const auto& l : dist.encode(t)) {
    EXPECT_EQ(dist.from_bits(dist.to_bits(l)), l);
  }
  for (const auto& l : router.encode(t)) {
    EXPECT_EQ(router.from_bits(router.to_bits(l)), l);
  }
}

TEST(TreeLabelings, SizesAreCompact) {
  // Distance: O(log n log (nW)); routing: O(log n log n).  Check modest
  // envelopes at one large size.
  Rng rng(305);
  WeightOptions wo;
  wo.max_weight = 1u << 20;
  const std::size_t n = 1 << 14;
  const Graph g = random_tree(n, wo, rng);
  const RootedTree t(g, 0);
  const DistanceLabelingScheme dist;
  const RoutingLabelingScheme router;
  std::size_t dmax = 0, rmax = 0;
  for (const auto& l : dist.encode(t)) dmax = std::max(dmax, dist.label_bits(l));
  for (const auto& l : router.encode(t)) {
    rmax = std::max(rmax, router.label_bits(l));
  }
  const double logn = std::log2(static_cast<double>(n));
  EXPECT_LE(static_cast<double>(dmax), 4.0 * logn * (logn + 20.0) + 64.0);
  EXPECT_LE(static_cast<double>(rmax), 8.0 * logn * logn + 64.0);
}

TEST(TreeLabelings, RoutingToSelfRejected) {
  Rng rng(306);
  WeightOptions wo;
  const Graph g = random_tree(10, wo, rng);
  const RootedTree t(g, 0);
  const RoutingLabelingScheme router;
  const auto labels = router.encode(t);
  EXPECT_THROW((void)router.decode_route(labels[3], labels[3]),
               PreconditionError);
}

TEST(TreeLabelings, SingleVertexAndEdge) {
  {
    Graph::Builder b(1);
    const Graph g = b.build();
    const RootedTree t(g, 0);
    const DistanceLabelingScheme dist;
    const auto l = dist.encode(t);
    EXPECT_EQ(dist.decode(l[0], l[0]), 0u);
  }
  {
    Graph::Builder b(2);
    b.add_edge(0, 1, 7);
    const Graph g = b.build();
    const RootedTree t(g, 0);
    const DistanceLabelingScheme dist;
    const RoutingLabelingScheme router;
    const auto dl = dist.encode(t);
    const auto rl = router.encode(t);
    EXPECT_EQ(dist.decode(dl[0], dl[1]), 7u);
    EXPECT_EQ(g.port(0, router.decode_route(rl[0], rl[1])).neighbor, 1u);
    EXPECT_EQ(g.port(1, router.decode_route(rl[1], rl[0])).neighbor, 0u);
  }
}

}  // namespace
}  // namespace mstv
