// NetworkBackend determinism contract (runtime/backend.hpp): SimNetwork
// and MpNetwork must produce bit-identical verdicts, rejector sets and
// ledger cells for any worker count and thread count.  Plus the mp-only
// fault surface: killed workers degrade gracefully, partitioned workers
// make the affected nodes reject, and both recover where the contract
// says they should.
#include "runtime/mp/mp_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "obs/ledger.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/mst_scheme.hpp"
#include "runtime/network.hpp"

namespace mstv {
namespace {

Graph make_graph(std::size_t n, std::size_t extra, std::uint64_t seed) {
  Rng rng(seed);
  WeightOptions wo;
  wo.max_weight = 1u << 12;
  return random_connected_graph(n, extra, wo, rng);
}

ConfigGraph make_cfg(const Graph& g) {
  return make_tree_config(g, kruskal_mst(g), 0);
}

/// Everything parity-comparable: RoundStats minus the wire accounting
/// (which legitimately depends on the worker count).
void expect_same_protocol_result(const RoundStats& a, const RoundStats& b) {
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.rejecting, b.rejecting);
  EXPECT_EQ(a.rejectors, b.rejectors);
  EXPECT_EQ(a.degraded, b.degraded);
}

/// The single ledger cell committed under `phase` (merged if several
/// rounds committed); the caller resets the global ledger per run.
obs::LedgerCell ledger_cell_for(const std::string& phase) {
  obs::LedgerCell out;
  for (const obs::LedgerEntry& e : obs::CommLedger::global().snapshot()) {
    if (e.key.phase == phase) out.merge(e.cell);
  }
  return out;
}

TEST(MpNetwork, CleanRoundParityAcrossWorkerCounts) {
  const Graph g = make_graph(120, 200, 31);
  const MstScheme scheme;

  obs::CommLedger::global().reset();
  SimNetwork sim(make_cfg(g), scheme);
  sim.install_marker_labels();
  const RoundStats expect = sim.verification_round();
  ASSERT_TRUE(expect.accepted);
  const obs::LedgerCell expect_cell = ledger_cell_for("verify.round");

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    obs::CommLedger::global().reset();
    MpNetwork mp(make_cfg(g), scheme, workers);
    ASSERT_EQ(mp.workers(), workers);
    mp.install_marker_labels();
    const RoundStats got = mp.verification_round();
    expect_same_protocol_result(expect, got);
#ifndef MSTV_OBS_DISABLED
    // The per-round label-size distribution — not just the totals — must
    // match the in-process ledger row exactly.
    EXPECT_EQ(ledger_cell_for("verify.round"), expect_cell)
        << "workers=" << workers;
#endif
    // Real bytes cross process boundaries iff there is more than one
    // process to cross between.
    if (workers == 1) {
      EXPECT_EQ(got.wire_payload_bytes, 0u);
    } else {
      EXPECT_GT(got.wire_payload_bytes, 0u);
    }
  }
  EXPECT_EQ(expect.wire_payload_bytes, 0u);  // sim never ships bytes
}

TEST(MpNetwork, CorruptedLabelRejectorParity) {
  const Graph g = make_graph(90, 140, 32);
  const MstScheme scheme;
  const ConfigGraph cfg = make_cfg(g);
  std::vector<Label> labels = scheme.mark(cfg);
  // Corrupt a spread of labels; the rejector SET (who noticed, in order)
  // is the parity-sensitive part, not just the verdict.
  for (const VertexId v : {3u, 40u, 41u, 88u}) {
    labels[v] = labels[v].with_bit_flipped(v % labels[v].size_bits());
  }

  SimNetwork sim(cfg, scheme);
  sim.labels() = labels;
  const RoundStats expect = sim.verification_round();
  ASSERT_FALSE(expect.accepted);
  ASSERT_FALSE(expect.rejectors.empty());
  EXPECT_TRUE(std::is_sorted(expect.rejectors.begin(),
                             expect.rejectors.end()));

  for (const std::size_t workers : {2u, 5u}) {
    MpNetwork mp(cfg, scheme, workers);
    mp.install_labels(labels);
    const RoundStats got = mp.verification_round();
    expect_same_protocol_result(expect, got);
  }
}

// Satellite: the channel-fault round is deterministic under the backend
// interface — one (seed, flip_prob) produces one RoundStats on every
// backend implementation and at every thread count.
TEST(MpNetwork, ChannelFaultRoundDeterministicAcrossBackendsAndThreads) {
  const Graph g = make_graph(80, 120, 33);
  const MstScheme scheme;
  constexpr std::uint64_t kSeed = 999;
  constexpr double kFlipProb = 0.02;

  std::vector<RoundStats> results;
  for (const std::size_t threads : {1u, 4u}) {
    parallel::set_thread_count(threads);
    SimNetwork sim(make_cfg(g), scheme);
    sim.install_marker_labels();
    Rng rng(kSeed);
    results.push_back(sim.verification_round_with_channel_faults(rng,
                                                                 kFlipProb));
  }
  parallel::set_thread_count(0);
  for (const std::size_t workers : {1u, 3u, 8u}) {
    MpNetwork mp(make_cfg(g), scheme, workers);
    mp.install_marker_labels();
    Rng rng(kSeed);
    results.push_back(mp.verification_round_with_channel_faults(rng,
                                                                kFlipProb));
  }
  // At 2m = 480 transmissions and p = 0.02 the odds that no channel
  // corrupts anything are negligible; a flipped copy is overwhelmingly
  // detected by pi-mst, so the interesting fields are all non-trivial.
  EXPECT_FALSE(results.front().accepted);
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_same_protocol_result(results.front(), results[i]);
  }
}

TEST(MpNetwork, KilledWorkerDegradesTheRoundGracefully) {
  const Graph g = make_graph(100, 160, 34);
  const MstScheme scheme;
  MpNetwork mp(make_cfg(g), scheme, 4);
  mp.install_marker_labels();
  ASSERT_TRUE(mp.verification_round().accepted);

  mp.kill_worker(1);
  EXPECT_FALSE(mp.worker_alive(1));
  const RoundStats got = mp.verification_round();
  EXPECT_TRUE(got.degraded);
  EXPECT_FALSE(got.accepted);
  // The dead shard is wholly unreachable: every one of its nodes is
  // reported rejecting (shard 1 of 4 over [0, 100) is [25, 50)).
  for (VertexId v = 25; v < 50; ++v) {
    EXPECT_TRUE(std::binary_search(got.rejectors.begin(),
                                   got.rejectors.end(), v))
        << "vertex " << v;
  }
  EXPECT_TRUE(std::is_sorted(got.rejectors.begin(), got.rejectors.end()));

  // The fault is persistent but never wedges the coordinator: further
  // rounds still complete, still degraded.
  const RoundStats again = mp.verification_round();
  EXPECT_TRUE(again.degraded);
  EXPECT_FALSE(again.accepted);
}

TEST(MpNetwork, PartitionedWorkerRejectsAndRecovers) {
  const Graph g = make_graph(100, 160, 35);
  const MstScheme scheme;
  MpNetwork mp(make_cfg(g), scheme, 4);
  mp.install_marker_labels();
  const RoundStats clean = mp.verification_round();
  ASSERT_TRUE(clean.accepted);

  mp.set_partitioned(2, true);
  const RoundStats cut = mp.verification_round();
  EXPECT_FALSE(cut.accepted);
  EXPECT_FALSE(cut.degraded);  // nobody died — this is a link fault
  // Every node that owed or was owed a delivery across the partition
  // rejects; on a connected graph that includes at least one node of the
  // partitioned shard (any of its nodes with a cross-shard neighbor).
  bool shard2_rejects = false;
  for (const VertexId v : cut.rejectors) {
    if (v >= 50 && v < 75) shard2_rejects = true;
  }
  EXPECT_TRUE(shard2_rejects);

  // Healing the partition restores clean rounds bit-exactly: the worker
  // process survived the fault.
  mp.set_partitioned(2, false);
  const RoundStats healed = mp.verification_round();
  EXPECT_TRUE(mp.worker_alive(2));
  expect_same_protocol_result(clean, healed);
}

}  // namespace
}  // namespace mstv
