#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/io.hpp"

namespace mstv {
namespace {

Graph triangle() {
  Graph::Builder b(3);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 20);
  b.add_edge(2, 0, 30);
  return b.build();
}

TEST(Graph, BasicCounts) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.max_weight(), 30u);
}

TEST(Graph, PortsAreOneBased) {
  const Graph g = triangle();
  EXPECT_THROW((void)g.port(0, 0), PreconditionError);
  EXPECT_THROW((void)g.port(0, 3), PreconditionError);
  (void)g.port(0, 1);
  (void)g.port(0, 2);
}

TEST(Graph, ReversePortsMatch) {
  const Graph g = triangle();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (PortNumber p = 1; p <= g.degree(v); ++p) {
      const PortInfo& info = g.port(v, p);
      const PortInfo& back = g.port(info.neighbor, info.reverse_port);
      EXPECT_EQ(back.neighbor, v);
      EXPECT_EQ(back.edge, info.edge);
      EXPECT_EQ(back.weight, info.weight);
    }
  }
}

TEST(Graph, ReversePortsSurviveShuffle) {
  Rng rng(99);
  Graph::Builder b(6);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 2);
  b.add_edge(0, 3, 3);
  b.add_edge(0, 4, 4);
  b.add_edge(0, 5, 5);
  b.add_edge(1, 2, 6);
  const Graph g = b.build(&rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (PortNumber p = 1; p <= g.degree(v); ++p) {
      const PortInfo& info = g.port(v, p);
      EXPECT_EQ(g.port(info.neighbor, info.reverse_port).neighbor, v);
    }
  }
}

TEST(Graph, FindPortAndEdge) {
  const Graph g = triangle();
  ASSERT_TRUE(g.find_port(0, 1).has_value());
  EXPECT_EQ(g.port(0, *g.find_port(0, 1)).neighbor, 1u);
  EXPECT_FALSE(g.find_port(0, 0).has_value());  // no self edge
  ASSERT_TRUE(g.find_edge(1, 2).has_value());
  EXPECT_EQ(g.edge(*g.find_edge(1, 2)).w, 20u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph::Builder b(2);
  EXPECT_THROW(b.add_edge(1, 1, 5), PreconditionError);
}

TEST(Graph, RejectsParallelEdges) {
  Graph::Builder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 0, 2);  // same pair, other direction
  EXPECT_THROW((void)b.build(), PreconditionError);
}

TEST(Graph, RejectsOutOfRangeVertex) {
  Graph::Builder b(2);
  EXPECT_THROW(b.add_edge(0, 2, 1), PreconditionError);
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(triangle().is_connected());
  Graph::Builder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(2, 3, 1);
  EXPECT_FALSE(b.build().is_connected());
  Graph::Builder single(1);
  EXPECT_TRUE(single.build().is_connected());
}

TEST(Graph, EdgeOtherEndpoint) {
  const Edge e{3, 7, 1};
  EXPECT_EQ(e.other(3), 7u);
  EXPECT_EQ(e.other(7), 3u);
  EXPECT_THROW((void)e.other(5), PreconditionError);
}

TEST(Graph, DefaultConstructedIsEmpty) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphIo, EdgeListRoundTrip) {
  const Graph g = triangle();
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e).u, g.edge(e).u);
    EXPECT_EQ(h.edge(e).v, g.edge(e).v);
    EXPECT_EQ(h.edge(e).w, g.edge(e).w);
  }
}

TEST(GraphIo, RejectsMalformedInput) {
  std::stringstream ss("3");
  EXPECT_THROW((void)read_edge_list(ss), PreconditionError);
}

TEST(GraphIo, DotOutputMentionsEveryEdge) {
  const Graph g = triangle();
  std::stringstream ss;
  DotOptions opts;
  opts.tree_edge.assign(3, false);
  opts.tree_edge[0] = true;
  write_dot(ss, g, opts);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
}

}  // namespace
}  // namespace mstv
