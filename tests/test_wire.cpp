#include "labeling/wire.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

namespace mstv {
namespace {

TEST(Wire, RoundTripPreservesEveryBit) {
  Rng rng(501);
  WeightOptions wo;
  wo.max_weight = 1u << 20;
  const Graph g = random_connected_graph(50, 80, wo, rng);
  const MstScheme scheme;
  const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
  const auto labels = scheme.mark(cfg);

  std::stringstream ss;
  write_labels(ss, labels);
  const auto back = read_labels(ss);
  ASSERT_EQ(back.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(back[i], labels[i]) << "label " << i;
  }
  // Restored labels still verify.
  EXPECT_TRUE(run_verifier(scheme, cfg, back).accepted);
}

TEST(Wire, EmptyAndOddSizes) {
  std::vector<Label> labels;
  labels.emplace_back();  // 0 bits
  BitWriter w1;
  w1.write_bit(true);
  labels.emplace_back(w1);  // 1 bit
  BitWriter w2;
  w2.write_uint(~std::uint64_t{0}, 64);
  w2.write_bit(false);
  labels.emplace_back(w2);  // 65 bits
  std::stringstream ss;
  write_labels(ss, labels);
  const auto back = read_labels(ss);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], labels[0]);
  EXPECT_EQ(back[1], labels[1]);
  EXPECT_EQ(back[2], labels[2]);
}

TEST(Wire, RejectsGarbage) {
  {
    std::stringstream ss("not a label file at all");
    EXPECT_THROW((void)read_labels(ss), PreconditionError);
  }
  {
    std::stringstream ss(std::string("MSTV"));  // truncated header
    EXPECT_THROW((void)read_labels(ss), PreconditionError);
  }
  {
    // Valid magic, absurd count.
    std::stringstream ss;
    ss.write("MSTV", 4);
    for (int i = 0; i < 8; ++i) ss.put('\xFF');
    EXPECT_THROW((void)read_labels(ss), PreconditionError);
  }
}

TEST(Wire, TruncatedBodyDetected) {
  std::vector<Label> labels;
  BitWriter w;
  w.write_uint(0xABCD, 16);
  labels.emplace_back(w);
  std::stringstream ss;
  write_labels(ss, labels);
  std::string data = ss.str();
  data.resize(data.size() - 3);  // chop the tail
  std::stringstream broken(data);
  EXPECT_THROW((void)read_labels(broken), PreconditionError);
}

// The loader's rejection rules, one per framing field (documented in
// docs/label_format.md): every malformed input must throw
// PreconditionError — never crash, never silently truncate.

TEST(Wire, RejectsEveryTruncationPoint) {
  std::vector<Label> labels;
  BitWriter w;
  w.write_uint(0xFEEDBEEF, 32);
  w.write_uint(0x1234, 16);
  labels.emplace_back(w);
  BitWriter w2;
  w2.write_uint(~std::uint64_t{0}, 64);
  w2.write_uint(0x5A, 8);  // 72 bits -> two body words
  labels.emplace_back(w2);
  std::stringstream ss;
  write_labels(ss, labels);
  const std::string data = ss.str();

  // Chop the stream at every possible byte boundary; only the full
  // document may parse.
  for (std::size_t keep = 0; keep < data.size(); ++keep) {
    std::stringstream broken(data.substr(0, keep));
    EXPECT_THROW((void)read_labels(broken), PreconditionError)
        << "prefix of " << keep << " bytes parsed";
  }
  std::stringstream whole(data);
  EXPECT_EQ(read_labels(whole).size(), labels.size());
}

TEST(Wire, RejectsOversizedNbitsFraming) {
  const auto frame_with_nbits = [](std::uint64_t nbits) {
    std::stringstream ss;
    ss.write("MSTV", 4);
    const auto put = [&ss](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) ss.put(static_cast<char>((v >> (8 * i)) & 0xFF));
    };
    put(1);      // one label
    put(nbits);  // its declared size
    put(0);      // one body word (maybe not enough — the size check fires first)
    return ss;
  };

  // Just past the 2^30-bit cap: rejected by the size guard, not by an
  // attempted allocation of 2^30+ bits.
  auto over = frame_with_nbits((1u << 30) + 1);
  EXPECT_THROW((void)read_labels(over), PreconditionError);

  // Absurd nbits (would be ~2 EiB of words): same guard, no allocation.
  auto absurd = frame_with_nbits(~std::uint64_t{0});
  EXPECT_THROW((void)read_labels(absurd), PreconditionError);

  // nbits declaring more words than the stream carries: truncation guard.
  auto short_body = frame_with_nbits(128);  // needs 2 words, has 1
  EXPECT_THROW((void)read_labels(short_body), PreconditionError);
}

TEST(Wire, RejectsBadMagicVariants) {
  for (const char* magic : {"MSTW", "mstv", "VTSM", "MST", ""}) {
    std::stringstream ss;
    ss << magic;
    // A plausible rest-of-header after the wrong magic.
    for (int i = 0; i < 16; ++i) ss.put('\0');
    EXPECT_THROW((void)read_labels(ss), PreconditionError)
        << "magic '" << magic << "' accepted";
  }
}

TEST(Wire, RejectsCountBeyondLabelCap) {
  // count = 2^28 + 1 (just past kMaxLabels) with no bodies: the count
  // guard fires before any label is read.
  std::stringstream ss;
  ss.write("MSTV", 4);
  const std::uint64_t count = (1u << 28) + 1;
  for (int i = 0; i < 8; ++i) ss.put(static_cast<char>((count >> (8 * i)) & 0xFF));
  EXPECT_THROW((void)read_labels(ss), PreconditionError);
}

}  // namespace
}  // namespace mstv
