#include "labeling/wire.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

namespace mstv {
namespace {

TEST(Wire, RoundTripPreservesEveryBit) {
  Rng rng(501);
  WeightOptions wo;
  wo.max_weight = 1u << 20;
  const Graph g = random_connected_graph(50, 80, wo, rng);
  const MstScheme scheme;
  const ConfigGraph cfg = make_tree_config(g, kruskal_mst(g), 0);
  const auto labels = scheme.mark(cfg);

  std::stringstream ss;
  write_labels(ss, labels);
  const auto back = read_labels(ss);
  ASSERT_EQ(back.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(back[i], labels[i]) << "label " << i;
  }
  // Restored labels still verify.
  EXPECT_TRUE(run_verifier(scheme, cfg, back).accepted);
}

TEST(Wire, EmptyAndOddSizes) {
  std::vector<Label> labels;
  labels.emplace_back();  // 0 bits
  BitWriter w1;
  w1.write_bit(true);
  labels.emplace_back(w1);  // 1 bit
  BitWriter w2;
  w2.write_uint(~std::uint64_t{0}, 64);
  w2.write_bit(false);
  labels.emplace_back(w2);  // 65 bits
  std::stringstream ss;
  write_labels(ss, labels);
  const auto back = read_labels(ss);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], labels[0]);
  EXPECT_EQ(back[1], labels[1]);
  EXPECT_EQ(back[2], labels[2]);
}

TEST(Wire, RejectsGarbage) {
  {
    std::stringstream ss("not a label file at all");
    EXPECT_THROW((void)read_labels(ss), PreconditionError);
  }
  {
    std::stringstream ss(std::string("MSTV"));  // truncated header
    EXPECT_THROW((void)read_labels(ss), PreconditionError);
  }
  {
    // Valid magic, absurd count.
    std::stringstream ss;
    ss.write("MSTV", 4);
    for (int i = 0; i < 8; ++i) ss.put('\xFF');
    EXPECT_THROW((void)read_labels(ss), PreconditionError);
  }
}

TEST(Wire, TruncatedBodyDetected) {
  std::vector<Label> labels;
  BitWriter w;
  w.write_uint(0xABCD, 16);
  labels.emplace_back(w);
  std::stringstream ss;
  write_labels(ss, labels);
  std::string data = ss.str();
  data.resize(data.size() - 3);  // chop the tail
  std::stringstream broken(data);
  EXPECT_THROW((void)read_labels(broken), PreconditionError);
}

}  // namespace
}  // namespace mstv
