// Bounded-exhaustive check of both MST schemes on small graphs:
// enumerate EVERY possible state assignment (each vertex points at any of
// its ports or at nothing) and check the definition's two directions —
// completeness with the honest marker on every yes-instance, and for
// every no-instance rejection of every honest label vector taken from any
// yes-instance plus systematic cross-wirings.  This approximates "for
// every marker L there exists a rejecting vertex" far more tightly than
// random mutation alone.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.hpp"
#include "mst/predicates.hpp"
#include "plscheme/fragment_scheme.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

namespace mstv {
namespace {

/// All state assignments: vertex v gets parent_port in {none, 1..deg(v)}.
std::vector<ConfigGraph> all_configs(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<ConfigGraph> out;
  std::vector<PortNumber> choice(n, 0);  // 0 = no parent
  while (true) {
    std::vector<State> states(n);
    for (VertexId v = 0; v < n; ++v) {
      states[v].id = v;
      if (choice[v] > 0) states[v].parent_port = choice[v];
    }
    out.emplace_back(g, std::move(states));
    // Odometer increment.
    std::size_t i = 0;
    while (i < n) {
      if (choice[i] < g.degree(static_cast<VertexId>(i))) {
        ++choice[i];
        break;
      }
      choice[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return out;
}

struct TinyCase {
  const char* name;
  std::uint64_t seed;
  std::size_t n;
  std::size_t extra;
  Weight max_w;
};

class ExhaustiveTinyGraphs : public ::testing::TestWithParam<TinyCase> {};

TEST_P(ExhaustiveTinyGraphs, DefinitionHoldsOnEveryConfiguration) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  WeightOptions wo;
  wo.max_weight = c.max_w;
  const Graph g = random_connected_graph(c.n, c.extra, wo, rng);

  const MstScheme pi_mst;
  const FragmentScheme pi_frag;
  const std::vector<const ProofLabelingScheme*> schemes{&pi_mst, &pi_frag};

  const auto configs = all_configs(g);

  // Partition into yes/no instances; collect honest labels per scheme.
  std::vector<std::size_t> yes, no;
  std::vector<std::vector<std::vector<Label>>> honest(schemes.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (mst_predicate(configs[i])) {
      yes.push_back(i);
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        honest[s].push_back(schemes[s]->mark(configs[i]));
      }
    } else {
      no.push_back(i);
    }
  }
  ASSERT_GT(yes.size(), 0u);
  ASSERT_GT(no.size(), 0u);

  for (std::size_t s = 0; s < schemes.size(); ++s) {
    // Completeness on every yes-instance.
    for (std::size_t yi = 0; yi < yes.size(); ++yi) {
      EXPECT_TRUE(
          run_verifier(*schemes[s], configs[yes[yi]], honest[s][yi]).accepted)
          << schemes[s]->name() << " rejected yes-instance " << yes[yi];
    }
    // Soundness: every no-instance against every honest label vector.
    for (const std::size_t ni : no) {
      for (const auto& labels : honest[s]) {
        EXPECT_FALSE(run_verifier(*schemes[s], configs[ni], labels).accepted)
            << schemes[s]->name() << " accepted no-instance " << ni;
      }
    }
    // Soundness against cross-wired labels: rotate honest label vectors by
    // one vertex so every node holds a plausible-but-misplaced label.
    for (const std::size_t ni : no) {
      for (const auto& labels : honest[s]) {
        std::vector<Label> rotated(labels.size());
        for (std::size_t v = 0; v < labels.size(); ++v) {
          rotated[v] = labels[(v + 1) % labels.size()];
        }
        EXPECT_FALSE(
            run_verifier(*schemes[s], configs[ni], rotated).accepted);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExhaustiveTinyGraphs,
    ::testing::Values(TinyCase{"triangle_plus", 1, 4, 2, 8},
                      TinyCase{"k4", 2, 4, 6, 5},
                      TinyCase{"ties", 3, 4, 3, 2},
                      TinyCase{"five", 4, 5, 2, 16}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(ExhaustiveTinyGraphs, YesInstancesAlsoAcceptOtherYesLabelsOnlyIfValid) {
  // Cross-labeling between two different yes-instances: the verifier may
  // accept only if the labels happen to prove *this* configuration; it
  // must never accept labels whose embedded structure contradicts the
  // states (the spanning-tree layer pins parent ids, so cross-acceptance
  // between different trees is impossible).
  Rng rng(9);
  WeightOptions wo;
  wo.max_weight = 4;  // ties => several MSTs
  const Graph g = random_connected_graph(5, 4, wo, rng);
  const MstScheme scheme;
  const auto configs = all_configs(g);
  std::vector<std::size_t> yes;
  std::vector<std::vector<Label>> honest;
  std::vector<std::vector<EdgeId>> trees;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (mst_predicate(configs[i])) {
      yes.push_back(i);
      honest.push_back(scheme.mark(configs[i]));
      trees.push_back(configs[i].induced_subgraph());
    }
  }
  for (std::size_t a = 0; a < yes.size(); ++a) {
    for (std::size_t b = 0; b < yes.size(); ++b) {
      const bool accepted =
          run_verifier(scheme, configs[yes[a]], honest[b]).accepted;
      // Same induced tree AND same roots => the labels are honest for a
      // config with identical states; otherwise they must be rejected.
      const bool same_states = [&] {
        for (VertexId v = 0; v < configs[yes[a]].size(); ++v) {
          if (!(configs[yes[a]].state(v) == configs[yes[b]].state(v))) {
            return false;
          }
        }
        return true;
      }();
      if (same_states) {
        EXPECT_TRUE(accepted);
      } else {
        EXPECT_FALSE(accepted) << "labels of tree " << b
                               << " accepted on tree " << a;
      }
    }
  }
}

}  // namespace
}  // namespace mstv
