#include "lowerbound/counting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lowerbound/hypertree.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"

namespace mstv {
namespace {

TEST(LowerBound, ClosedFormMatchesRecurrence) {
  for (std::uint32_t h = 1; h <= 12; ++h) {
    for (const std::uint64_t mu : {2u, 16u, 1024u}) {
      const auto row = lower_bound_row(h, mu);
      const double closed =
          (static_cast<double>(h) - 1.0) / 2.0 *
          std::log2(static_cast<double>(mu));
      EXPECT_NEAR(row.log2_g, closed, 1e-9);
      EXPECT_EQ(row.n, hypertree_num_vertices(h));
    }
  }
}

TEST(LowerBound, GrowsWithBothParameters) {
  EXPECT_LT(lower_bound_row(3, 16).min_label_bits,
            lower_bound_row(6, 16).min_label_bits);
  EXPECT_LT(lower_bound_row(4, 4).min_label_bits,
            lower_bound_row(4, 4096).min_label_bits);
  EXPECT_EQ(lower_bound_row(1, 999).min_label_bits, 0.0);
}

TEST(LowerBound, IsOmegaLogNLogW) {
  // min_label_bits / (log n * log W) is bounded below by a constant once
  // W is polynomially larger than log n (the paper's proviso).
  for (std::uint32_t h = 4; h <= 10; ++h) {
    const std::uint64_t mu = 1u << 10;
    const auto row = lower_bound_row(h, mu);
    const double logn = std::log2(static_cast<double>(row.n));
    const double ratio = row.min_label_bits / (logn * row.log2_w);
    EXPECT_GT(ratio, 0.15) << "h=" << h;
    EXPECT_LT(ratio, 1.0) << "h=" << h;
  }
}

TEST(LowerBound, MeasuredSchemeSitsAboveTheFloor) {
  // The measured pi_mst label size on legal hypertrees must exceed the
  // counting floor (it had better — the scheme is correct).
  const MstScheme scheme;
  for (std::uint32_t h = 2; h <= 5; ++h) {
    const std::uint64_t mu = 8;
    const Hypertree ht = build_hypertree(h, mu);
    const auto result = mark_and_verify(scheme, ht.config());
    ASSERT_TRUE(result.accepted);
    const auto row = lower_bound_row(h, mu);
    EXPECT_GE(static_cast<double>(result.max_label_bits),
              row.min_label_bits)
        << "h=" << h;
  }
}

TEST(LowerBound, DisjointnessOfWeightClassesEmpirically) {
  // Lemma 4.3: labels across C(h, mu, x) classes never fully collide for
  // a correct scheme.  (The attack module relies on this signal.)
  const MstScheme scheme;
  const std::uint32_t h = 3;
  const std::uint64_t mu = 6;
  std::set<std::vector<std::string>> seen;
  for (Weight x = q_range_lo(h - 1, mu); x <= q_range_hi(h - 1, mu); ++x) {
    std::vector<Weight> level_x{0, 0, q_range_lo(1, mu), x};
    const Hypertree ht = build_hypertree(h, mu, level_x);
    std::vector<std::string> key;
    for (const Label& l : scheme.mark(ht.config())) {
      key.push_back(l.to_string());
    }
    EXPECT_TRUE(seen.insert(key).second) << "collision at x=" << x;
  }
}

}  // namespace
}  // namespace mstv
