#include "mst/predicates.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "mst/union_find.hpp"

namespace mstv {
namespace {

Graph square_with_diagonals() {
  Graph::Builder b(4);
  b.add_edge(0, 1, 1);  // e0
  b.add_edge(1, 2, 2);  // e1
  b.add_edge(2, 3, 3);  // e2
  b.add_edge(3, 0, 4);  // e3
  b.add_edge(0, 2, 5);  // e4
  return b.build();
}

TEST(IsSpanningTree, AcceptsValidTrees) {
  const Graph g = square_with_diagonals();
  EXPECT_TRUE(is_spanning_tree(g, {0, 1, 2}));
  EXPECT_TRUE(is_spanning_tree(g, {0, 1, 3}));
  EXPECT_TRUE(is_spanning_tree(g, {3, 4, 1}));
}

TEST(IsSpanningTree, RejectsWrongEdgeCount) {
  const Graph g = square_with_diagonals();
  EXPECT_FALSE(is_spanning_tree(g, {0, 1}));
  EXPECT_FALSE(is_spanning_tree(g, {0, 1, 2, 3}));
  EXPECT_FALSE(is_spanning_tree(g, {}));
}

TEST(IsSpanningTree, RejectsCyclesAndDuplicates) {
  const Graph g = square_with_diagonals();
  EXPECT_FALSE(is_spanning_tree(g, {0, 1, 4}));  // 0-1-2-0 cycle
  EXPECT_FALSE(is_spanning_tree(g, {0, 0, 1}));  // duplicate edge
}

TEST(IsSpanningTree, RejectsInvalidEdgeId) {
  const Graph g = square_with_diagonals();
  EXPECT_FALSE(is_spanning_tree(g, {0, 1, 99}));
}

TEST(IsMst, AcceptsTheMinimumAndRejectsOthers) {
  const Graph g = square_with_diagonals();
  EXPECT_TRUE(is_mst(g, {0, 1, 2}));    // weight 6, minimum
  EXPECT_FALSE(is_mst(g, {0, 1, 3}));   // weight 7
  EXPECT_FALSE(is_mst(g, {3, 4, 1}));   // weight 11
}

TEST(IsMst, RequiresSpanningTreeInput) {
  const Graph g = square_with_diagonals();
  EXPECT_THROW((void)is_mst(g, {0, 1}), PreconditionError);
}

TEST(IsMst, AcceptsEveryMstWhenNotUnique) {
  // Two equal-weight spanning trees: 0-1:1,1-2:2 and 0-1:1,0-2:2.
  Graph::Builder b(3);
  b.add_edge(0, 1, 1);  // e0
  b.add_edge(1, 2, 2);  // e1
  b.add_edge(0, 2, 2);  // e2
  const Graph g = b.build();
  EXPECT_TRUE(is_mst(g, {0, 1}));
  EXPECT_TRUE(is_mst(g, {0, 2}));
  EXPECT_FALSE(is_mst(g, {1, 2}));  // weight 4 > 3
}

TEST(IsMst, AgreesWithTotalWeightComparisonOnRandomGraphs) {
  Rng rng(21);
  WeightOptions wo;
  wo.max_weight = 30;  // small range forces many ties
  for (int iter = 0; iter < 40; ++iter) {
    const Graph g = random_connected_graph(30, 40, wo, rng);
    const Weight opt = total_weight(g, kruskal_mst(g));

    // Random spanning tree via randomized Kruskal order.
    std::vector<EdgeId> order(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
    rng.shuffle(order);
    UnionFind uf(g.num_vertices());
    std::vector<EdgeId> tree;
    for (const EdgeId e : order) {
      if (uf.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
    }
    ASSERT_TRUE(is_spanning_tree(g, tree));
    EXPECT_EQ(is_mst(g, tree), total_weight(g, tree) == opt);
  }
}

TEST(NonTreeEdges, PartitionIsExact) {
  const Graph g = square_with_diagonals();
  const std::vector<EdgeId> tree{0, 1, 2};
  const auto rest = non_tree_edges(g, tree);
  EXPECT_EQ(rest, (std::vector<EdgeId>{3, 4}));
}

}  // namespace
}  // namespace mstv
