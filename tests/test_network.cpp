#include "runtime/network.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/mst_scheme.hpp"

namespace mstv {
namespace {

SimNetwork make_net(const Graph& g, const MstScheme& scheme) {
  SimNetwork net(make_tree_config(g, kruskal_mst(g), 0), scheme);
  net.install_marker_labels();
  return net;
}

TEST(SimNetwork, CleanRoundAcceptsAndAccountsTraffic) {
  Rng rng(71);
  WeightOptions wo;
  const Graph g = random_connected_graph(30, 45, wo, rng);
  const MstScheme scheme;
  SimNetwork net = make_net(g, scheme);
  const RoundStats stats = net.verification_round();
  EXPECT_TRUE(stats.accepted);
  EXPECT_EQ(stats.rejecting, 0u);
  EXPECT_EQ(stats.messages, 2 * g.num_edges());
  EXPECT_GT(stats.bits, 0u);
  // Total bits = sum over nodes of degree * label bits.
  std::size_t expect_bits = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    expect_bits += g.degree(v) * net.labels()[v].size_bits();
  }
  EXPECT_EQ(stats.bits, expect_bits);
}

TEST(FaultInjector, EveryFaultKindIsDetected) {
  Rng rng(72);
  WeightOptions wo;
  wo.max_weight = 1u << 10;
  wo.distinct = true;  // unique MST: structural faults can't stay optimal
  const Graph g = random_connected_graph(25, 40, wo, rng);
  const MstScheme scheme;

  for (const FaultKind kind :
       {FaultKind::RedirectParent, FaultKind::DropParent,
        FaultKind::FlipLabelBit}) {
    Rng frng(100 + static_cast<std::uint64_t>(kind));
    FaultInjector inj(frng);
    int applied = 0, detected = 0;
    for (VertexId victim = 0; victim < g.num_vertices(); ++victim) {
      SimNetwork net = make_net(g, scheme);
      const auto rec = inj.inject(net, kind, victim);
      if (!rec) continue;
      ++applied;
      if (!net.verification_round().accepted) ++detected;
    }
    EXPECT_GT(applied, 0) << "kind " << static_cast<int>(kind);
    if (kind == FaultKind::FlipLabelBit) {
      // A label flip leaves the configuration a genuine MST, so the
      // verifier is *allowed* to accept when the flipped label happens to
      // be another valid proof (e.g. a different-but-unique subtree
      // number, i.e. a different member of Gamma).  It must still catch
      // the overwhelming majority.
      EXPECT_GE(detected * 10, applied * 9)
          << detected << "/" << applied;
    } else {
      // State faults change the induced subgraph away from the unique
      // MST: soundness demands detection every single time.
      EXPECT_EQ(detected, applied) << "kind " << static_cast<int>(kind);
    }
  }
}

TEST(FaultInjector, MakeParentAtRootDetected) {
  Rng rng(73);
  WeightOptions wo;
  const Graph g = random_connected_graph(15, 20, wo, rng);
  const MstScheme scheme;
  SimNetwork net = make_net(g, scheme);
  Rng frng(1);
  FaultInjector inj(frng);
  const auto rec = inj.inject(net, FaultKind::MakeParent, 0);  // root is 0
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(net.verification_round().accepted);
}

TEST(FaultInjector, InapplicableFaultsReturnNullopt) {
  Rng rng(74);
  WeightOptions wo;
  const Graph g = random_connected_graph(10, 5, wo, rng);
  const MstScheme scheme;
  SimNetwork net = make_net(g, scheme);
  Rng frng(2);
  FaultInjector inj(frng);
  // Root has no parent: cannot redirect or drop.
  EXPECT_FALSE(inj.inject(net, FaultKind::RedirectParent, 0).has_value());
  EXPECT_FALSE(inj.inject(net, FaultKind::DropParent, 0).has_value());
  // Non-root already has a parent: cannot make one.
  EXPECT_FALSE(inj.inject(net, FaultKind::MakeParent, 1).has_value());
}

TEST(FaultInjector, RandomFaultBarrageAlwaysCaught) {
  Rng rng(75);
  WeightOptions wo;
  wo.max_weight = 1u << 12;
  wo.distinct = true;
  const Graph g = random_connected_graph(20, 30, wo, rng);
  const MstScheme scheme;
  Rng frng(76);
  FaultInjector inj(frng);
  int applied = 0;
  for (int trial = 0; trial < 60; ++trial) {
    SimNetwork net = make_net(g, scheme);
    if (!inj.inject(net).has_value()) continue;
    ++applied;
    EXPECT_FALSE(net.verification_round().accepted);
  }
  EXPECT_GT(applied, 30);
}

TEST(SimNetwork, ChannelFaultsNeverCrashAndCleanChannelsAccept) {
  Rng rng(77);
  WeightOptions wo;
  wo.max_weight = 1u << 10;
  const Graph g = random_connected_graph(40, 60, wo, rng);
  const MstScheme scheme;
  SimNetwork net = make_net(g, scheme);

  Rng ch(78);
  // Clean channels: accepted.
  EXPECT_TRUE(net.verification_round_with_channel_faults(ch, 0.0).accepted);

  // Fully faulty channels: every received copy corrupted; the round must
  // complete (no crash on garbage) and essentially always reject — a
  // single flipped bit in a received label breaks some local check with
  // overwhelming probability.
  std::size_t rejected_rounds = 0;
  for (int round = 0; round < 20; ++round) {
    const RoundStats stats =
        net.verification_round_with_channel_faults(ch, 1.0);
    if (!stats.accepted) ++rejected_rounds;
  }
  EXPECT_GE(rejected_rounds, 19u);

  // Light noise: some rounds may slip through locally, but traffic
  // accounting stays exact.
  const RoundStats stats =
      net.verification_round_with_channel_faults(ch, 0.05);
  EXPECT_EQ(stats.messages, 2 * g.num_edges());
}

TEST(SimNetwork, ApplyRepairRejectsOutOfRangeVerticesWithoutMutating) {
  Rng rng(74);
  WeightOptions wo;
  const Graph g = random_connected_graph(20, 30, wo, rng);
  const MstScheme scheme;
  SimNetwork net = make_net(g, scheme);
  const std::vector<Label> before = net.labels();

  const ConfigGraph repaired = make_tree_config(g, kruskal_mst(g), 0);
  std::vector<Label> repaired_labels = scheme.mark(repaired);
  // A changed-list entry past the label vector is a malformed update and
  // must fail atomically: nothing installed, nothing replaced.
  const std::vector<VertexId> changed{
      2, static_cast<VertexId>(g.num_vertices())};
  EXPECT_THROW(net.apply_repair(repaired, changed, repaired_labels),
               PreconditionError);
  EXPECT_EQ(net.labels(), before);
  EXPECT_TRUE(net.verification_round().accepted);
}

}  // namespace
}  // namespace mstv
