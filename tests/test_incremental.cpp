// Incremental label repair (src/dynamic/) — the equivalence contract.
//
// The tentpole promise is *exact* equivalence: after any sequence of edge
// updates, the incrementally repaired labels are bit-identical to a
// from-scratch scheme.mark() on the repaired configuration, at any thread
// count.  The randomized sequences below drive >= 200 mixed updates per
// scheme through the marker and check that promise after every step,
// together with the derived equalities the paper cares about (verdicts,
// rejector sets, label-size bounds).
#include "dynamic/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/agreement_scheme.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "runtime/network.hpp"

namespace mstv {
namespace {

/// Restores the configured worker count when a test body returns.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n) { parallel::set_thread_count(n); }
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

/// Asserts the full contract at one point in the update sequence: labels
/// bit-identical to a fresh mark(), and therefore identical verdicts,
/// rejector sets and size bounds.
void expect_equivalent_to_remark(const ProofLabelingScheme& scheme,
                                 const IncrementalMarker& marker,
                                 const char* where,
                                 bool expect_accept = true) {
  const std::vector<Label> fresh = scheme.mark(marker.config());
  ASSERT_EQ(fresh.size(), marker.labels().size()) << where;
  for (VertexId v = 0; v < fresh.size(); ++v) {
    ASSERT_EQ(fresh[v], marker.labels()[v]) << where << " at vertex " << v;
  }
  const VerificationResult inc =
      run_verifier(scheme, marker.config(), marker.labels());
  const VerificationResult ref =
      run_verifier(scheme, marker.config(), fresh);
  EXPECT_EQ(inc.accepted, ref.accepted) << where;
  EXPECT_EQ(inc.rejecting, ref.rejecting) << where;
  EXPECT_EQ(inc.max_label_bits, ref.max_label_bits) << where;
  EXPECT_EQ(inc.total_label_bits, ref.total_label_bits) << where;
  if (expect_accept) {
    EXPECT_TRUE(inc.accepted) << where;
  }
}

/// Draws one applicable random update against the marker's current graph.
/// Over general families all three kinds are mixed; `weight_only`
/// restricts to weight changes (pi_Gamma's tree family).
EdgeUpdate random_update(const IncrementalMarker& marker, Rng& rng,
                         bool weight_only, Weight max_w) {
  const Graph& g = marker.graph();
  const std::size_t n = g.num_vertices();
  const int kind = weight_only ? 0 : static_cast<int>(rng.uniform(0, 3));
  if (kind <= 1) {  // weight changes get double odds: the common event
    const Edge& e = g.edge(static_cast<EdgeId>(rng.index(g.num_edges())));
    return EdgeUpdate::weight_change(e.u, e.v, 1 + rng.uniform(0, max_w - 1));
  }
  if (kind == 2) {  // insert a random absent edge (retry a few draws)
    for (int tries = 0; tries < 32; ++tries) {
      const auto u = static_cast<VertexId>(rng.index(n));
      const auto v = static_cast<VertexId>(rng.index(n));
      if (u == v || g.find_edge(u, v)) continue;
      return EdgeUpdate::insert(u, v, 1 + rng.uniform(0, max_w - 1));
    }
  }
  // Delete a random non-bridge edge; prefer non-tree edges so deletes
  // rarely throw.  Falls back to a weight change when unlucky.
  for (int tries = 0; tries < 32; ++tries) {
    const EdgeId e = static_cast<EdgeId>(rng.index(g.num_edges()));
    if (marker.tree().contains_edge(e) && rng.chance(0.7)) continue;
    return EdgeUpdate::erase(g.edge(e).u, g.edge(e).v);
  }
  const Edge& e = g.edge(0);
  return EdgeUpdate::weight_change(e.u, e.v, 1 + rng.uniform(0, max_w - 1));
}

/// The randomized acceptance sequence: >= `updates` applied updates, the
/// contract checked after every one.
void run_update_sequence(const ProofLabelingScheme& scheme, const Graph& g,
                         bool weight_only, std::size_t updates,
                         std::uint64_t seed, bool expect_accept = true) {
  constexpr Weight kMaxW = 1000;
  IncrementalMarker marker(scheme, g, kruskal_mst(g), 0);
  expect_equivalent_to_remark(scheme, marker, "initial", expect_accept);

  Rng rng(seed);
  std::size_t applied = 0;
  while (applied < updates) {
    const EdgeUpdate up = random_update(marker, rng, weight_only, kMaxW);
    try {
      const RepairStats stats = marker.apply(up);
      EXPECT_LE(stats.labels_repaired, stats.labels_total);
      ++applied;
    } catch (const PreconditionError&) {
      continue;  // e.g. the drawn delete would disconnect; marker unchanged
    }
    ASSERT_NO_FATAL_FAILURE(expect_equivalent_to_remark(
        scheme, marker, "after update", expect_accept));
    ASSERT_TRUE(is_mst(marker.graph(), marker.tree().tree_edges()));
  }
}

TEST(Incremental, SpanningTreeSchemeMixedUpdates) {
  Rng rng(1001);
  const Graph g = random_connected_graph(60, 50, WeightOptions{1000}, rng);
  run_update_sequence(SpanningTreeScheme{}, g, false, 200, 42);
}

TEST(Incremental, MstSchemeMixedUpdates) {
  Rng rng(1002);
  const Graph g = random_connected_graph(60, 50, WeightOptions{1000}, rng);
  run_update_sequence(MstScheme{}, g, false, 200, 43);
}

TEST(Incremental, MstSchemeNaiveCodingMixedUpdates) {
  Rng rng(1003);
  const Graph g = random_connected_graph(50, 40, WeightOptions{1000}, rng);
  run_update_sequence(MstScheme{SepCoding::FixedWidth}, g, false, 200, 44);
}

TEST(Incremental, GammaSchemeWeightUpdates) {
  Rng rng(1004);
  const Graph g = random_tree(60, WeightOptions{1000}, rng);
  run_update_sequence(GammaScheme{}, g, true, 200, 45);
}

TEST(Incremental, GammaSchemeMinKindWeightUpdates) {
  // The Min instantiation exercises the minw repair path.  pi_Gamma's
  // verifier implements the max-fold conditions of Lemma 3.3 and rejects
  // Min-labelled states even fresh from mark(), so only equivalence (not
  // acceptance) is asserted here — the incremental and from-scratch
  // verdicts must still agree exactly.
  Rng rng(1005);
  const Graph g = random_tree(40, WeightOptions{1000}, rng);
  run_update_sequence(GammaScheme{ExtremaKind::Min}, g, true, 200, 46,
                      /*expect_accept=*/false);
}

TEST(Incremental, MixedUpdatesAtEightThreads) {
  // Determinism contract: the dirty set is computed serially and the
  // re-serialization is per-vertex independent, so eight workers must
  // produce the same bits the serial engine does (the in-loop remark
  // comparison enforces it — mark() itself shards too).
  ThreadCountGuard guard(8);
  Rng rng(1006);
  const Graph g = random_connected_graph(60, 50, WeightOptions{1000}, rng);
  run_update_sequence(MstScheme{}, g, false, 200, 43);
  const Graph t = random_tree(40, WeightOptions{1000}, rng);
  run_update_sequence(GammaScheme{}, t, true, 100, 45);
  run_update_sequence(SpanningTreeScheme{}, g, false, 100, 42);
}

TEST(Incremental, WeightOnlyRepairIsLocalized) {
  // A kept-tree weight change repairs only the touched decomposition
  // components' far sides — far fewer than n labels on a long path.
  Rng rng(1007);
  const Graph g = path_graph(256, WeightOptions{1000}, rng);
  const MstScheme scheme;
  IncrementalMarker marker(scheme, g, kruskal_mst(g), 0);

  const Edge& mid = g.edge(128);
  const RepairStats stats =
      marker.apply(EdgeUpdate::weight_change(mid.u, mid.v, mid.w + 1));
  EXPECT_FALSE(stats.structural_change);
  EXPECT_FALSE(stats.full_remark);
  EXPECT_LT(stats.labels_repaired, stats.labels_total / 4);
  expect_equivalent_to_remark(scheme, marker, "after localized repair");
}

TEST(Incremental, NonTreeChurnRepairsNothing) {
  Rng rng(1008);
  const Graph g = random_connected_graph(40, 30, WeightOptions{100}, rng);
  const MstScheme scheme;
  IncrementalMarker marker(scheme, g, kruskal_mst(g), 0);

  // A heavy inserted edge stays off the tree: the graph and the states
  // change (ports renumber) but no label does.
  RepairStats stats = marker.apply(EdgeUpdate::insert(0, 39, 10000));
  EXPECT_EQ(stats.labels_repaired, 0u);
  EXPECT_FALSE(stats.structural_change);
  expect_equivalent_to_remark(scheme, marker, "after non-tree insert");

  stats = marker.apply(EdgeUpdate::weight_change(0, 39, 20000));
  EXPECT_EQ(stats.labels_repaired, 0u);

  stats = marker.apply(EdgeUpdate::erase(0, 39));
  EXPECT_EQ(stats.labels_repaired, 0u);
  expect_equivalent_to_remark(scheme, marker, "after non-tree delete");

  // A no-op weight change is free.
  const Edge& e0 = marker.graph().edge(0);
  stats = marker.apply(EdgeUpdate::weight_change(e0.u, e0.v, e0.w));
  EXPECT_EQ(stats.labels_repaired, 0u);
  EXPECT_TRUE(marker.last_repaired().empty());
}

TEST(Incremental, ThresholdZeroForcesFullRemark) {
  Rng rng(1009);
  const Graph g = random_connected_graph(30, 20, WeightOptions{100}, rng);
  const MstScheme scheme;
  IncrementalMarker marker(scheme, g, kruskal_mst(g), 0,
                           /*full_remark_threshold=*/0.0);

  // Find a tree edge and nudge its weight: any nonempty dirty set must
  // now escalate to a full remark.
  const EdgeId te = marker.tree().tree_edges().front();
  const Edge e = marker.graph().edge(te);
  const RepairStats stats =
      marker.apply(EdgeUpdate::weight_change(e.u, e.v, e.w + 1));
  if (stats.labels_repaired > 0) {
    EXPECT_TRUE(stats.full_remark);
    EXPECT_EQ(stats.labels_repaired, stats.labels_total);
  }
  expect_equivalent_to_remark(scheme, marker, "after forced full remark");
}

TEST(Incremental, RejectedUpdatesLeaveTheMarkerUntouched) {
  Rng rng(1010);
  const Graph g = path_graph(10, WeightOptions{100}, rng);  // all bridges
  const MstScheme scheme;
  IncrementalMarker marker(scheme, g, kruskal_mst(g), 0);
  const std::vector<Label> before = marker.labels();

  EXPECT_THROW(marker.apply(EdgeUpdate::erase(0, 1)), PreconditionError);
  EXPECT_THROW(marker.apply(EdgeUpdate::weight_change(0, 5, 7)),
               PreconditionError);  // no such edge
  EXPECT_THROW(marker.apply(EdgeUpdate::insert(0, 1, 5)),
               PreconditionError);  // already present
  EXPECT_THROW(marker.apply(EdgeUpdate::weight_change(3, 3, 5)),
               PreconditionError);  // self-loop
  EXPECT_THROW(marker.apply(EdgeUpdate::weight_change(0, 100, 5)),
               PreconditionError);  // endpoint out of range

  EXPECT_EQ(marker.labels(), before);
  expect_equivalent_to_remark(scheme, marker, "after rejected updates");
}

TEST(Incremental, GammaRejectsStructuralUpdates) {
  Rng rng(1011);
  const Graph g = random_tree(20, WeightOptions{100}, rng);
  const GammaScheme scheme;
  IncrementalMarker marker(scheme, g, kruskal_mst(g), 0);
  EXPECT_THROW(marker.apply(EdgeUpdate::insert(0, 19, 5)), PreconditionError);
  EXPECT_THROW(marker.apply(EdgeUpdate::erase(g.edge(0).u, g.edge(0).v)),
               PreconditionError);
}

TEST(Incremental, ConstructionRejectsBadInput) {
  Rng rng(1012);
  const Graph g = random_connected_graph(20, 15, WeightOptions{100}, rng);
  const auto mst = kruskal_mst(g);

  // Not a scheme the incremental engine knows how to serialize.
  const AgreementScheme agree;
  EXPECT_THROW(IncrementalMarker(agree, g, mst, 0), PreconditionError);

  // A spanning tree that is not minimum (swap in a strictly worse edge).
  std::vector<EdgeId> not_mst = mst;
  bool found_worse = false;
  for (EdgeId e = 0; e < g.num_edges() && !found_worse; ++e) {
    if (std::find(mst.begin(), mst.end(), e) != mst.end()) continue;
    for (std::size_t i = 0; i < not_mst.size(); ++i) {
      std::vector<EdgeId> cand = mst;
      cand[i] = e;
      if (is_spanning_tree(g, cand) &&
          total_weight(g, cand) > total_weight(g, mst)) {
        not_mst = cand;
        found_worse = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found_worse);
  EXPECT_THROW(IncrementalMarker(MstScheme{}, g, not_mst, 0),
               PreconditionError);
}

TEST(Incremental, UpdateAndRepairShipsOnlyChangedLabels) {
  Rng rng(1013);
  const Graph g = random_connected_graph(50, 40, WeightOptions{1000}, rng);
  const MstScheme scheme;
  IncrementalMarker marker(scheme, g, kruskal_mst(g), 0);

  SimNetwork net(marker.config(), scheme);
  std::vector<VertexId> all(marker.config().size());
  std::iota(all.begin(), all.end(), VertexId{0});
  net.apply_repair(marker.config(), all, marker.labels());  // initial install
  ASSERT_TRUE(net.verification_round().accepted);

  Rng urng(7);
  std::size_t applied = 0;
  while (applied < 25) {
    const EdgeUpdate up = random_update(marker, urng, false, 1000);
#ifndef MSTV_OBS_DISABLED
    const std::uint64_t shipped_before =
        obs::Registry::global().counter("dynamic.labels_shipped").value();
#endif
    UpdateResult res;
    try {
      res = update_and_repair(marker, net, up);
    } catch (const PreconditionError&) {
      continue;
    }
    ++applied;
    EXPECT_TRUE(res.verification.accepted);
    EXPECT_EQ(res.verification.rejecting.size(), 0u);
    // The network's installed labels are the marker's, entry for entry —
    // shipping only the repaired subset reconstructed the full vector.
    ASSERT_EQ(net.labels().size(), marker.labels().size());
    for (VertexId v = 0; v < net.labels().size(); ++v) {
      ASSERT_EQ(net.labels()[v], marker.labels()[v]) << "vertex " << v;
    }
    EXPECT_TRUE(net.verification_round().accepted);
#ifndef MSTV_OBS_DISABLED
    const std::uint64_t shipped_after =
        obs::Registry::global().counter("dynamic.labels_shipped").value();
    EXPECT_EQ(shipped_after - shipped_before, res.repair.labels_repaired);
#endif
  }
}

TEST(Incremental, CustomIdsFlowIntoLabels) {
  Rng rng(1014);
  const Graph g = random_connected_graph(20, 12, WeightOptions{100}, rng);
  std::vector<std::uint64_t> ids(g.num_vertices());
  for (std::size_t v = 0; v < ids.size(); ++v) ids[v] = 1000 + 7 * v;
  const MstScheme scheme;
  IncrementalMarker marker(scheme, g, kruskal_mst(g), 0, 0.25, &ids);
  expect_equivalent_to_remark(scheme, marker, "custom ids initial");

  Rng urng(9);
  for (int applied = 0; applied < 20;) {
    try {
      marker.apply(random_update(marker, urng, false, 100));
      ++applied;
    } catch (const PreconditionError&) {
      continue;
    }
    ASSERT_NO_FATAL_FAILURE(
        expect_equivalent_to_remark(scheme, marker, "custom ids update"));
  }
}

}  // namespace
}  // namespace mstv
