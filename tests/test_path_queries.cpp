#include "tree/path_queries.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"

namespace mstv {
namespace {

TEST(PathQueries, HandPickedLcaAndExtrema) {
  // 0 -5- 1 -3- 2
  //       |
  //       7
  //       |
  //       3 -2- 4
  Graph::Builder b(5);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 3);
  b.add_edge(1, 3, 7);
  b.add_edge(3, 4, 2);
  const Graph g = b.build();
  const RootedTree t(g, 0);
  const TreePathQueries q(t);

  EXPECT_EQ(q.lca(2, 4), 1u);
  EXPECT_EQ(q.lca(0, 4), 0u);
  EXPECT_EQ(q.lca(3, 3), 3u);
  EXPECT_EQ(q.lca(4, 3), 3u);

  EXPECT_EQ(q.path_max(2, 4), 7u);
  EXPECT_EQ(q.path_min(2, 4), 2u);
  EXPECT_EQ(q.path_max(0, 2), 5u);
  EXPECT_EQ(q.path_min(0, 2), 3u);
  EXPECT_EQ(q.path_length(2, 4), 3u);
  EXPECT_EQ(q.path_length(0, 0), 0u);

  // Empty path conventions.
  EXPECT_EQ(q.path_max(3, 3), 0u);
  EXPECT_EQ(q.path_min(3, 3), std::numeric_limits<Weight>::max());
}

struct TreeShapeCase {
  const char* name;
  Graph (*make)(std::size_t, const WeightOptions&, Rng&);
  std::size_t n;
};

class PathQueryPropertyTest : public ::testing::TestWithParam<TreeShapeCase> {};

TEST_P(PathQueryPropertyTest, MatchesBruteForceOnRandomPairs) {
  Rng rng(51);
  WeightOptions wo;
  wo.max_weight = 1u << 24;
  const auto& c = GetParam();
  const Graph g = c.make(c.n, wo, rng);
  const RootedTree t(g, static_cast<VertexId>(rng.index(c.n)));
  const TreePathQueries q(t);
  for (int iter = 0; iter < 400; ++iter) {
    const auto u = static_cast<VertexId>(rng.index(c.n));
    const auto v = static_cast<VertexId>(rng.index(c.n));
    EXPECT_EQ(q.path_max(u, v), brute_path_max(t, u, v));
    EXPECT_EQ(q.path_min(u, v), brute_path_min(t, u, v));
    // LCA sanity: it is an ancestor of both and the deepest such.
    const VertexId a = q.lca(u, v);
    EXPECT_TRUE(t.is_ancestor(a, u));
    EXPECT_TRUE(t.is_ancestor(a, v));
    for (const VertexId child : t.children(a)) {
      EXPECT_FALSE(t.is_ancestor(child, u) && t.is_ancestor(child, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PathQueryPropertyTest,
    ::testing::Values(TreeShapeCase{"random", random_tree, 300},
                      TreeShapeCase{"path", path_graph, 257},
                      TreeShapeCase{"star", star_graph, 100},
                      TreeShapeCase{"caterpillar", caterpillar, 128},
                      TreeShapeCase{"binary", balanced_binary_tree, 255},
                      TreeShapeCase{"tiny", random_tree, 2}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(PathQueries, SingleVertexTree) {
  Graph::Builder b(1);
  const Graph g = b.build();
  const RootedTree t(g, 0);
  const TreePathQueries q(t);
  EXPECT_EQ(q.lca(0, 0), 0u);
  EXPECT_EQ(q.path_max(0, 0), 0u);
}

TEST(PathQueries, DeepPathNoStackIssuesAndCorrectEnds) {
  Rng rng(52);
  WeightOptions wo;
  wo.max_weight = 1000;
  const std::size_t n = 5000;
  const Graph g = path_graph(n, wo, rng);
  const RootedTree t(g, 0);
  const TreePathQueries q(t);
  EXPECT_EQ(q.path_length(0, static_cast<VertexId>(n - 1)), n - 1);
  EXPECT_EQ(q.path_max(0, static_cast<VertexId>(n - 1)),
            brute_path_max(t, 0, static_cast<VertexId>(n - 1)));
}

}  // namespace
}  // namespace mstv
