// Tests for the mstv-lint static analysis engine (tools/lint/).
//
// Two layers:
//  * the fixture corpus under tests/lint_fixtures/ — each known-bad file
//    carries `expect: RULE-ID[, RULE-ID...]` markers on the exact lines
//    the engine must flag (and nothing else may be flagged); known-good
//    files must come back clean; and
//  * inline snippets pinning the engine mechanics — suppression
//    coverage, justification requirements, lexer robustness — at the
//    precision the fixtures can't express.
//
// The corpus harness and the tree-clean test make the acceptance
// criterion executable: every fixture flagged at the expected file:line,
// zero violations on the real tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "lint/engine.hpp"

namespace fs = std::filesystem;
using mstv::lint::Diagnostic;
using mstv::lint::LintContext;
using mstv::lint::LintOptions;
using mstv::lint::LintResult;
using mstv::lint::MemoryFile;
using mstv::lint::RuleRegistry;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out.push_back(text.substr(start, end - start));
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

std::string trim(std::string s) {
  const auto not_space = [](unsigned char c) { return std::isspace(c) == 0; };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
  s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
  return s;
}

// (line, rule) pairs, sorted — the comparable unit of both expectation
// markers and engine output.
using Findings = std::vector<std::pair<int, std::string>>;

Findings expected_findings(const std::vector<std::string>& lines) {
  Findings out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& row = lines[i];
    const std::size_t at = row.find("expect:");
    if (at == std::string::npos) continue;
    std::string spec = row.substr(at + 7);
    const std::size_t close = spec.find("-->");
    if (close != std::string::npos) spec = spec.substr(0, close);
    std::stringstream ss(spec);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule = trim(rule);
      // Only well-formed rule ids count: prose that merely mentions the
      // word "expect:" (a fixture's header comment) is not a marker.
      const bool id_shaped =
          !rule.empty() &&
          std::all_of(rule.begin(), rule.end(), [](unsigned char c) {
            return std::isupper(c) != 0 || std::isdigit(c) != 0 || c == '-';
          });
      if (id_shaped) {
        out.emplace_back(static_cast<int>(i) + 1, rule);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Findings actual_findings(const std::vector<Diagnostic>& diags) {
  Findings out;
  for (const Diagnostic& d : diags) out.emplace_back(d.line, d.rule);
  std::sort(out.begin(), out.end());
  return out;
}

std::string pretty(const Findings& f) {
  std::ostringstream out;
  for (const auto& [line, rule] : f) out << "  line " << line << ": " << rule
                                         << "\n";
  return out.str().empty() ? "  (none)\n" : out.str();
}

// A fixture's pretend path is the first whitespace-delimited token after
// the `mstv-lint-fixture:` marker — anything past it (a closing `-->`, an
// `expect:` annotation for a line-1 finding) is commentary, not path.
std::string pretend_relpath(const fs::path& path, const std::string& content) {
  std::string relpath = path.filename().string();
  const std::string first = content.substr(0, content.find('\n'));
  const std::size_t marker = first.find("mstv-lint-fixture:");
  if (marker != std::string::npos) {
    const std::string tail = trim(first.substr(marker + 18));
    const std::size_t cut = tail.find_first_of(" \t");
    relpath = cut == std::string::npos ? tail : tail.substr(0, cut);
  }
  return relpath;
}

// Runs the engine over one fixture, honoring its pretend-path marker.
std::vector<Diagnostic> lint_fixture(const fs::path& path,
                                     const std::string& content) {
  const RuleRegistry registry = RuleRegistry::builtin();
  LintContext ctx;
  ctx.root = MSTV_LINT_REPO_ROOT;
  ctx.known_rules = registry.ids();
  std::vector<Diagnostic> diags;
  mstv::lint::lint_content(registry, ctx, pretend_relpath(path, content),
                           content, {}, diags);
  return diags;
}

std::vector<Diagnostic> lint_snippet(const std::string& relpath,
                                     const std::string& content) {
  const RuleRegistry registry = RuleRegistry::builtin();
  LintContext ctx;
  ctx.root = MSTV_LINT_REPO_ROOT;
  ctx.known_rules = registry.ids();
  std::vector<Diagnostic> diags;
  mstv::lint::lint_content(registry, ctx, relpath, content, {}, diags);
  return diags;
}

}  // namespace

// --- the fixture corpus -------------------------------------------------

TEST(LintFixtures, EveryFixtureMatchesItsExpectations) {
  const fs::path dir = MSTV_LINT_FIXTURE_DIR;
  ASSERT_TRUE(fs::exists(dir)) << dir;

  std::vector<fs::path> fixtures;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) fixtures.push_back(entry.path());
  }
  std::sort(fixtures.begin(), fixtures.end());
  ASSERT_GE(fixtures.size(), 8u) << "fixture corpus went missing?";

  for (const fs::path& path : fixtures) {
    const std::string content = slurp(path);
    const Findings expected = expected_findings(split_lines(content));
    const Findings actual = actual_findings(lint_fixture(path, content));
    EXPECT_EQ(expected, actual)
        << path.filename().string() << " mismatch\nexpected:\n"
        << pretty(expected) << "actual:\n"
        << pretty(actual);
  }
}

TEST(LintFixtures, KnownBadFixturesDoFire) {
  // Guard the guard: if the expectation parser broke and returned empty
  // sets, the corpus test above would vacuously pass on bad files.
  const fs::path dir = MSTV_LINT_FIXTURE_DIR;
  std::size_t bad_with_findings = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("bad_", 0) != 0) continue;
    const std::string content = slurp(entry.path());
    EXPECT_FALSE(expected_findings(split_lines(content)).empty())
        << entry.path() << " is a bad_ fixture without expect: markers";
    if (!lint_fixture(entry.path(), content).empty()) ++bad_with_findings;
  }
  EXPECT_GE(bad_with_findings, 6u);
}

// --- the real tree ------------------------------------------------------

TEST(LintTree, RealTreeIsClean) {
  LintOptions options;
  options.root = MSTV_LINT_REPO_ROOT;
  const LintResult result =
      mstv::lint::run_lint(RuleRegistry::builtin(), options);
  std::ostringstream all;
  for (const Diagnostic& d : result.diagnostics) {
    all << d.file << ':' << d.line << " [" << d.rule << "] " << d.message
        << '\n';
  }
  EXPECT_TRUE(result.diagnostics.empty()) << all.str();
  // 120+ sources and the doc set; a collapse here means discovery broke.
  EXPECT_GT(result.files_scanned, 100u);
}

// --- suppression mechanics ----------------------------------------------

TEST(LintSuppression, SameLineCertificateSuppresses) {
  const auto diags = lint_snippet(
      "src/graph/x.cpp",
      "int f() { return rand(); }  // mstv-lint: allow(DET-RAND) — seed irrelevant here\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, WholeLineCommentCoversNextLine) {
  const auto diags = lint_snippet(
      "src/graph/x.cpp",
      "// mstv-lint: allow(DET-RAND) — test double\n"
      "int f() { return rand(); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, CommentBlockCoversLineBelowBlock) {
  const auto diags = lint_snippet(
      "src/graph/x.cpp",
      "// mstv-lint: allow(DET-RAND) — first line of a block whose\n"
      "// explanation continues on a second comment line\n"
      "int f() { return rand(); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, CertificateDoesNotLeakPastItsLine) {
  // The violation on line 3 is out of the certificate's reach — and the
  // certificate, having suppressed nothing, is itself flagged stale.
  const auto diags = lint_snippet(
      "src/graph/x.cpp",
      "// mstv-lint: allow(DET-RAND) — only covers the next line\n"
      "int f() { return 0; }\n"
      "int g() { return rand(); }\n");
  const Findings got = actual_findings(diags);
  const Findings want = {{1, "LINT-STALE-ALLOW"}, {3, "DET-RAND"}};
  EXPECT_EQ(got, want) << pretty(got);
}

TEST(LintSuppression, MultiRuleAllowCoversEveryNamedRule) {
  // allow(A, B) is one certificate naming two rules; both findings on
  // the covered line are suppressed and the certificate counts as used.
  const auto diags = lint_snippet(
      "src/mst/x.cpp",
      "double f() { return clock() + rand(); }"
      "  // mstv-lint: allow(DET-RAND, DET-CLOCK) — fused fixture seed\n");
  EXPECT_TRUE(diags.empty()) << pretty(actual_findings(diags));
}

TEST(LintSuppression, JustificationIsRequired) {
  const auto diags = lint_snippet(
      "src/graph/x.cpp",
      "int f() { return rand(); }  // mstv-lint: allow(DET-RAND)\n");
  const Findings got = actual_findings(diags);
  const Findings want = {{1, "DET-RAND"}, {1, "LINT-BARE-ALLOW"}};
  EXPECT_EQ(got, want) << pretty(got);
}

TEST(LintSuppression, UnknownRuleIdIsFlagged) {
  const auto diags = lint_snippet(
      "src/graph/x.cpp",
      "int f();  // mstv-lint: allow(DET-RND) — typo'd id\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "LINT-UNKNOWN-RULE");
}

TEST(LintSuppression, SeparatorVariantsAllCarryJustification) {
  for (const char* src : {
           "int f() { return rand(); }  // mstv-lint: allow(DET-RAND) -- ok\n",
           "int f() { return rand(); }  // mstv-lint: allow(DET-RAND): ok\n",
           "int f() { return rand(); }  // mstv-lint: allow(DET-RAND) ok\n"}) {
    EXPECT_TRUE(lint_snippet("src/graph/x.cpp", src).empty()) << src;
  }
}

// --- rule precision -----------------------------------------------------

TEST(LintRules, DetExemptPathsStayQuiet) {
  const std::string src = "double t() { return clock(); }\n";
  EXPECT_TRUE(lint_snippet("src/obs/x.cpp", src).empty());
  EXPECT_TRUE(lint_snippet("bench/x.cpp", src).empty());
  EXPECT_EQ(lint_snippet("src/mst/x.cpp", src).size(), 1u);
}

TEST(LintRules, UnorderedLayerScopingHolds) {
  const std::string src =
      "#include <unordered_set>\n"
      "std::size_t n(const std::unordered_set<int>& s) {\n"
      "  std::size_t k = 0;\n"
      "  for (int v : s) k += static_cast<std::size_t>(v != 0);\n"
      "  return k;\n"
      "}\n";
  // Result-producing layer: flagged; support layer (graph): not in scope.
  EXPECT_EQ(lint_snippet("src/dynamic/x.cpp", src).size(), 1u);
  EXPECT_TRUE(lint_snippet("src/graph/x.cpp", src).empty());
}

TEST(LintRules, HotRegionIsTheLambdaNotTheCaller) {
  const std::string src =
      "#include <mutex>\n"
      "#include \"parallel/parallel_for.hpp\"\n"
      "void f(std::mutex& mu) {\n"
      "  std::lock_guard<std::mutex> setup(mu);\n"  // caller scope: fine
      "  mstv::parallel::for_each_shard(8, [&](const auto& s) {\n"
      "    std::lock_guard<std::mutex> bad(mu);\n"  // shard body: hot
      "    (void)s;\n"
      "  });\n"
      "}\n";
  const auto diags = lint_snippet("src/runtime/x.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "HOT-MUTEX");
  EXPECT_EQ(diags[0].line, 6);
}

TEST(LintRules, ForEachShardDeclarationIsNotACallSite) {
  const std::string src =
      "#include <functional>\n"
      "namespace mstv::parallel {\n"
      "struct ShardRange;\n"
      "void for_each_shard(std::size_t n,\n"
      "                    const std::function<void(const ShardRange&)>& b);\n"
      "}\n";
  EXPECT_TRUE(lint_snippet("src/parallel/x.hpp", src).empty());
}

TEST(LintRules, MetricNameConventionIsTokenAccurate) {
  // In a comment or an unrelated string: quiet.  As a literal argument
  // to an instrumentation macro: checked.
  EXPECT_TRUE(lint_snippet("src/mst/x.cpp",
                           "// MSTV_COUNTER_INC(\"BadName\")\n"
                           "const char* s = \"BadName\";\n")
                  .empty());
  const auto diags = lint_snippet(
      "src/mst/x.cpp", "void f() { MSTV_COUNTER_INC(\"BadName\"); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "OBS-METRIC-NAME");
}

TEST(LintRules, TraceCategoryChecksCategoryNameAndPrefix) {
  // Bad category, bad name, and a name outside its category all fire;
  // a matching pair stays quiet.
  EXPECT_EQ(lint_snippet("src/mst/x.cpp",
                         "void f() { MSTV_TRACE_SCOPE(\"Bad\", \"bad.x\"); }\n")
                .size(),
            1u);
  EXPECT_EQ(
      lint_snippet("src/mst/x.cpp",
                   "void f() { MSTV_TRACE_INSTANT(\"net\", \"BadName\"); }\n")
          .size(),
      1u);
  const auto mismatch = lint_snippet(
      "src/mst/x.cpp",
      "void f() { MSTV_TRACE_SCOPE(\"net\", \"verify.round\"); }\n");
  ASSERT_EQ(mismatch.size(), 1u);
  EXPECT_EQ(mismatch[0].rule, "OBS-TRACE-CATEGORY");
  EXPECT_TRUE(lint_snippet(
                  "src/mst/x.cpp",
                  "void f() { MSTV_TRACE_SCOPE(\"net\", \"net.round\"); }\n")
                  .empty());
}

TEST(LintRules, LedgerPhaseKeyIsChecked) {
  const auto diags = lint_snippet(
      "src/mst/x.cpp",
      "void f() { MSTV_LEDGER_COMMIT(\"Repair\", 0, \"pi-mst\", c); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "OBS-LEDGER-KEY");
  EXPECT_TRUE(
      lint_snippet("src/mst/x.cpp",
                   "void f() { MSTV_LEDGER_COMMIT(\"dynamic.repair\", 0, "
                   "\"pi-mst\", c); }\n")
          .empty());
}

TEST(LintRules, LedgerPhaseMustBeRegistered) {
  // A well-formed but unregistered phase is a series nothing reads — the
  // registry rule (not the shape rule) fires, exactly once.
  const auto diags = lint_snippet(
      "src/mst/x.cpp",
      "void f() { MSTV_LEDGER_COMMIT(\"rogue.phase\", 0, \"pi-mst\", c); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "OBS-LEDGER-PHASE-REGISTRY");
  EXPECT_TRUE(lint_snippet("src/mst/x.cpp",
                           "void f() { MSTV_LEDGER_COMMIT(\"mp.wire\", 0, "
                           "\"pi-mst\", c); }\n")
                  .empty());
}

TEST(LintRules, RawStringsAndCommentsDoNotFoolTheLexer) {
  const std::string src =
      "const char* doc = R\"(call rand() and time() freely in prose)\";\n"
      "/* rand() in a block comment */\n"
      "int f() { return 1; }\n";
  EXPECT_TRUE(lint_snippet("src/mst/x.cpp", src).empty());
}

// --- output encoding ----------------------------------------------------

// --- whole-program analysis ---------------------------------------------

// The ARCH-LAYER obligations that need *resolved* include edges (illegal
// layer edges, include cycles) only exist in a multi-file program, so the
// program fixtures live in their own subdirectory and are linted as one
// scanned set; expectations are keyed by (pretend path, line, rule).
TEST(LintProgram, MultiFileArchFixturesMatchExpectations) {
  const fs::path dir = fs::path(MSTV_LINT_FIXTURE_DIR) / "program";
  ASSERT_TRUE(fs::exists(dir)) << dir;

  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  ASSERT_GE(paths.size(), 6u) << "program fixture corpus went missing?";

  using FileFindings = std::vector<std::tuple<std::string, int, std::string>>;
  std::vector<MemoryFile> inputs;
  FileFindings expected;
  for (const fs::path& p : paths) {
    std::string content = slurp(p);
    const std::string rel = pretend_relpath(p, content);
    for (const auto& [line, rule] : expected_findings(split_lines(content))) {
      expected.emplace_back(rel, line, rule);
    }
    inputs.push_back(MemoryFile{rel, std::move(content)});
  }
  std::sort(expected.begin(), expected.end());

  LintOptions options;
  options.root = MSTV_LINT_REPO_ROOT;
  const LintResult result =
      mstv::lint::lint_files(RuleRegistry::builtin(), options, inputs);
  FileFindings actual;
  for (const Diagnostic& d : result.diagnostics) {
    actual.emplace_back(d.file, d.line, d.rule);
  }
  std::sort(actual.begin(), actual.end());

  const auto render = [](const FileFindings& f) {
    std::ostringstream out;
    for (const auto& [file, line, rule] : f) {
      out << "  " << file << ':' << line << ": " << rule << '\n';
    }
    return out.str().empty() ? std::string("  (none)\n") : out.str();
  };
  EXPECT_EQ(expected, actual) << "expected:\n"
                              << render(expected) << "actual:\n"
                              << render(actual);
}

TEST(LintReach, MemberCallsAreNotTraversed) {
  // Name-based resolution cannot see through dynamic dispatch, so the
  // call graph only follows free calls: the member call in mark() is not
  // an edge, and only the primitive site itself is flagged.
  const auto diags = lint_snippet("src/labeling/x.cpp",
                                  "struct Jitter {\n"
                                  "  int next() { return rand(); }\n"
                                  "};\n"
                                  "int mark(int n) {\n"
                                  "  Jitter j;\n"
                                  "  return j.next() + n;\n"
                                  "}\n");
  const Findings got = actual_findings(diags);
  const Findings want = {{2, "DET-RAND"}};
  EXPECT_EQ(got, want) << pretty(got);
}

TEST(LintReach, FreeCallChainIsTraversedAndNamedInTheMessage) {
  const auto diags = lint_snippet(
      "src/labeling/x.cpp",
      "int helper() { return rand(); }\n"
      "int mark(int n) { return helper() + n; }\n");
  const Findings got = actual_findings(diags);
  const Findings want = {{1, "DET-RAND"}, {2, "DET-REACH"}};
  ASSERT_EQ(got, want) << pretty(got);
  for (const Diagnostic& d : diags) {
    if (d.rule != "DET-REACH") continue;
    EXPECT_NE(d.message.find("helper"), std::string::npos) << d.message;
  }
}

TEST(LintReach, PrimitiveSiteCertificateCoversEveryPathThroughIt) {
  // One allow() at the primitive silences both the per-file rule and the
  // reachability finding at every call site upstream of it — and having
  // suppressed findings, it is not stale.
  const auto diags = lint_snippet(
      "src/labeling/x.cpp",
      "int seeded() { return rand(); }"
      "  // mstv-lint: allow(DET-RAND) — audited fixture seed source\n"
      "int mark(int n) { return seeded() + n; }\n");
  EXPECT_TRUE(diags.empty()) << pretty(actual_findings(diags));
}

TEST(LintStale, OnlyRulesRunSkipsTheStaleAudit) {
  // Under --rules filtering most certificates are trivially unused; the
  // stale audit is meaningful only for full-registry runs.
  const std::string src =
      "int f() { return 7; }"
      "  // mstv-lint: allow(DET-CLOCK) — kept while the timer migrates\n";
  const RuleRegistry registry = RuleRegistry::builtin();
  LintContext ctx;
  ctx.root = MSTV_LINT_REPO_ROOT;
  ctx.known_rules = registry.ids();

  std::vector<Diagnostic> filtered;
  mstv::lint::lint_content(registry, ctx, "src/graph/x.cpp", src,
                           {"DET-RAND"}, filtered);
  EXPECT_TRUE(filtered.empty()) << pretty(actual_findings(filtered));

  std::vector<Diagnostic> full;
  mstv::lint::lint_content(registry, ctx, "src/graph/x.cpp", src, {}, full);
  const Findings got = actual_findings(full);
  const Findings want = {{1, "LINT-STALE-ALLOW"}};
  EXPECT_EQ(got, want) << pretty(got);
}

TEST(LintStale, MarkdownFencedDirectivesAreMentionNotUse) {
  // A directive displayed inside a fenced code block is the manual
  // quoting the syntax; only directives in live markdown lines (HTML
  // comments) are certificates — and audited as such.
  const std::string fenced =
      "# doc\n"
      "```cpp\n"
      "// mstv-lint: allow(DET-CLOCK) — example syntax in the manual\n"
      "```\n";
  EXPECT_TRUE(lint_snippet("docs/x.md", fenced).empty());

  const std::string live =
      "# doc\n"
      "<!-- mstv-lint: allow(DET-CLOCK) — live but suppresses nothing -->\n";
  const Findings got = actual_findings(lint_snippet("docs/x.md", live));
  const Findings want = {{2, "LINT-STALE-ALLOW"}};
  EXPECT_EQ(got, want) << pretty(got);
}

// --- lexer hardening ----------------------------------------------------

TEST(LintLexer, RawStringDelimitersAndEncodingPrefixes) {
  const std::string src =
      "const char* a = R\"x(rand() \") and time() are prose)x\";\n"
      "const char* b = u8R\"(srand(1) in utf-8 prose)\";\n"
      "const wchar_t* c = LR\"(clock() in wide prose)\";\n"
      "int f() { return 1; }\n";
  EXPECT_TRUE(lint_snippet("src/mst/x.cpp", src).empty());
}

TEST(LintLexer, LineContinuationExtendsLineComment) {
  // [lex.phases] p2: the backslash-newline splice runs before comment
  // stripping, so line 2 is still comment text — only line 3 is code.
  const auto diags =
      lint_snippet("src/mst/x.cpp",
                   "// this comment continues onto the next line \\\n"
                   "rand(); time(); still inside the comment\n"
                   "int f() { return rand(); }\n");
  const Findings got = actual_findings(diags);
  const Findings want = {{3, "DET-RAND"}};
  EXPECT_EQ(got, want) << pretty(got);
}

TEST(LintLexer, LineContinuationInsideStringLiteral) {
  const std::string src =
      "const char* s = \"call rand() \\\n"
      " and time() in prose\";\n"
      "int f() { return 1; }\n";
  EXPECT_TRUE(lint_snippet("src/mst/x.cpp", src).empty());
}

TEST(LintLexer, DigitSeparatorsAreNotCharLiterals) {
  // A lexer that misread 1'000'000 as char literals could swallow the
  // code after it; the rand() on line 2 must still be seen — and at the
  // right position.
  const auto diags = lint_snippet("src/graph/x.cpp",
                                  "long f() { return 1'000'000; }\n"
                                  "int g() { return rand(); }\n");
  const Findings got = actual_findings(diags);
  const Findings want = {{2, "DET-RAND"}};
  EXPECT_EQ(got, want) << pretty(got);
}

// --- header self-containment coverage -----------------------------------

TEST(LintHeaders, GeneratedTuListCoversStoreAndMpHeaders) {
  // The HDR family compiles one generated TU per public header; this
  // pins the generator's coverage of the newer subsystems — a header
  // added under src/store/ or src/runtime/mp/ without a matching
  // hdr_*.cpp would silently escape the self-containment check.
  const fs::path tu_dir = MSTV_LINT_HEADER_CHECK_DIR;
  ASSERT_TRUE(fs::exists(tu_dir)) << tu_dir;
  const fs::path src_root = fs::path(MSTV_LINT_REPO_ROOT) / "src";
  for (const char* top : {"store", "runtime/mp"}) {
    const fs::path subtree = src_root / top;
    ASSERT_TRUE(fs::exists(subtree)) << subtree;
    std::size_t seen = 0;
    for (const auto& entry : fs::recursive_directory_iterator(subtree)) {
      if (!entry.is_regular_file() ||
          entry.path().extension() != ".hpp") {
        continue;
      }
      std::string tu =
          fs::relative(entry.path(), src_root).generic_string();
      std::replace(tu.begin(), tu.end(), '/', '_');
      tu.replace(tu.size() - 4, 4, ".cpp");
      EXPECT_TRUE(fs::exists(tu_dir / ("hdr_" + tu)))
          << entry.path() << " has no generated TU hdr_" << tu;
      ++seen;
    }
    EXPECT_GE(seen, 1u) << "no public headers under src/" << top;
  }
}

// --- output encoding ----------------------------------------------------

TEST(LintOutput, SuppressionInventoryInJson) {
  LintOptions options;
  options.root = MSTV_LINT_REPO_ROOT;
  options.report_suppressions = true;
  const LintResult result = mstv::lint::lint_files(
      RuleRegistry::builtin(), options,
      {MemoryFile{"src/graph/a.cpp",
                  "int f() { return rand(); }"
                  "  // mstv-lint: allow(DET-RAND) — fixture\n"},
       MemoryFile{"src/graph/b.cpp",
                  "int g() { return 7; }"
                  "  // mstv-lint: allow(DET-RAND) — stale on purpose\n"}});
  ASSERT_EQ(result.suppressions.size(), 2u);
  EXPECT_EQ(result.suppressions[0].file, "src/graph/a.cpp");
  EXPECT_TRUE(result.suppressions[0].used);
  EXPECT_FALSE(result.suppressions[1].used);
  const std::string json = mstv::lint::to_json(result);
  EXPECT_NE(json.find("\"suppressions\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"used\": true"), std::string::npos);
  EXPECT_NE(json.find("\"used\": false"), std::string::npos);
  EXPECT_NE(json.find("\"engine_ms\""), std::string::npos);
}

TEST(LintOutput, JsonListsViolationsWithPositions) {
  LintContext ctx;
  ctx.root = MSTV_LINT_REPO_ROOT;
  const RuleRegistry registry = RuleRegistry::builtin();
  ctx.known_rules = registry.ids();
  LintResult result;
  result.files_scanned = 1;
  mstv::lint::lint_content(registry, ctx, "src/mst/x.cpp",
                           "int f() { return rand(); }\n", {},
                           result.diagnostics);
  const std::string json = mstv::lint::to_json(result);
  EXPECT_NE(json.find("\"rule\": \"DET-RAND\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"file\": \"src/mst/x.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
}
