#include "plscheme/spanning_tree_scheme.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mst/algorithms.hpp"
#include "plscheme/runner.hpp"

namespace mstv {
namespace {

ConfigGraph random_tree_config(std::uint64_t seed, std::size_t n,
                               std::size_t extra, Graph& storage,
                               VertexId root = 0) {
  Rng rng(seed);
  WeightOptions wo;
  storage = random_connected_graph(n, extra, wo, rng);
  return make_tree_config(storage, kruskal_mst(storage), root);
}

TEST(SpanningTreeScheme, SublabelRoundTrip) {
  for (const auto& s :
       {SpanningTreeSublabel{7, std::nullopt, 7, 0},
        SpanningTreeSublabel{12, 7, 7, 3},
        SpanningTreeSublabel{0, 0, 0, 1000000}}) {
    BitWriter w;
    write_spanning_tree_sublabel(w, s);
    BitReader r(w.words(), w.size_bits());
    const auto back = read_spanning_tree_sublabel(r);
    EXPECT_EQ(back.id_copy, s.id_copy);
    EXPECT_EQ(back.parent_id, s.parent_id);
    EXPECT_EQ(back.root_id, s.root_id);
    EXPECT_EQ(back.dist, s.dist);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(SpanningTreeScheme, CompletenessAcrossRootsAndShapes) {
  const SpanningTreeScheme scheme;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    Graph g;
    for (const VertexId root : {0u, 3u, 9u}) {
      const ConfigGraph cfg = random_tree_config(seed, 25, 30, g, root);
      EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
    }
  }
}

TEST(SpanningTreeScheme, LabelSizeIsOLogN) {
  const SpanningTreeScheme scheme;
  Graph g;
  const ConfigGraph cfg = random_tree_config(4, 1000, 500, g);
  const auto r = mark_and_verify(scheme, cfg);
  ASSERT_TRUE(r.accepted);
  // ids and distances are < n; four gamma codes + flag < 10 log2(n) + c.
  EXPECT_LE(r.max_label_bits, 10u * 10u + 16u);
}

TEST(SpanningTreeScheme, RejectsTwoRoots) {
  const SpanningTreeScheme scheme;
  Graph g;
  ConfigGraph cfg = random_tree_config(5, 20, 10, g);
  const auto labels = scheme.mark(cfg);
  // Detach some non-root vertex: second root appears.
  for (VertexId v = 0; v < cfg.size(); ++v) {
    if (v != 0 && cfg.state(v).parent_port) {
      ConfigGraph broken = cfg;
      broken.state(v).parent_port.reset();
      EXPECT_FALSE(run_verifier(scheme, broken, labels).accepted);
      break;
    }
  }
}

TEST(SpanningTreeScheme, RejectsParentCycle) {
  // 0-1-2 path; make 0 point at 1 and 1 point at 0 (cycle), 2 dangling up.
  Graph::Builder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const Graph g = b.build();
  std::vector<State> states(3);
  states[0].id = 0;
  states[1].id = 1;
  states[2].id = 2;
  states[0].parent_port = g.find_port(0, 1);
  states[1].parent_port = g.find_port(1, 0);
  states[2].parent_port = g.find_port(2, 1);
  const ConfigGraph cfg(g, std::move(states));

  const SpanningTreeScheme scheme;
  // The marker cannot label this (it is a no-instance)...
  EXPECT_THROW((void)scheme.mark(cfg), PreconditionError);
  // ...and no adversarial distance assignment can satisfy everyone:
  // exhaustively try all small dist/root assignments for 3 nodes.
  for (std::uint64_t d0 = 0; d0 < 4; ++d0) {
    for (std::uint64_t d1 = 0; d1 < 4; ++d1) {
      for (std::uint64_t d2 = 0; d2 < 4; ++d2) {
        for (std::uint64_t root_id = 0; root_id < 3; ++root_id) {
          auto lbl = [&](std::uint64_t id, std::optional<std::uint64_t> pid,
                         std::uint64_t dist) {
            BitWriter w;
            write_spanning_tree_sublabel(w, {id, pid, root_id, dist});
            return Label(w);
          };
          const std::vector<Label> labels{lbl(0, 1, d0), lbl(1, 0, d1),
                                          lbl(2, 1, d2)};
          EXPECT_FALSE(run_verifier(scheme, cfg, labels).accepted);
        }
      }
    }
  }
}

TEST(SpanningTreeScheme, RejectsLyingAboutIdentity) {
  const SpanningTreeScheme scheme;
  Graph g;
  ConfigGraph cfg = random_tree_config(6, 15, 5, g);
  auto labels = scheme.mark(cfg);
  // Rewrite node 3's label with a different id copy.
  BitReader r = labels[3].reader();
  auto sub = read_spanning_tree_sublabel(r);
  sub.id_copy += 1;
  BitWriter w;
  write_spanning_tree_sublabel(w, sub);
  labels[3] = Label(w);
  const auto result = run_verifier(scheme, cfg, labels);
  EXPECT_FALSE(result.accepted);
}

TEST(SpanningTreeScheme, RejectsWrongDistances) {
  const SpanningTreeScheme scheme;
  Graph g;
  ConfigGraph cfg = random_tree_config(7, 15, 5, g);
  auto labels = scheme.mark(cfg);
  for (VertexId victim = 1; victim < 4; ++victim) {
    auto tampered = labels;
    BitReader r = tampered[victim].reader();
    auto sub = read_spanning_tree_sublabel(r);
    sub.dist += 1;
    BitWriter w;
    write_spanning_tree_sublabel(w, sub);
    tampered[victim] = Label(w);
    EXPECT_FALSE(run_verifier(scheme, cfg, tampered).accepted);
  }
}

TEST(SpanningTreeScheme, RejectsRandomBitFlips) {
  const SpanningTreeScheme scheme;
  Graph g;
  ConfigGraph cfg = random_tree_config(8, 30, 30, g);
  const auto labels = scheme.mark(cfg);
  Rng rng(88);
  int rejected = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    auto tampered = labels;
    const auto victim = static_cast<VertexId>(rng.index(cfg.size()));
    tampered[victim] = tampered[victim].with_bit_flipped(
        rng.index(tampered[victim].size_bits()));
    if (!run_verifier(scheme, cfg, tampered).accepted) ++rejected;
  }
  // Every flip changes id/parent/root/dist or breaks parsing; all must be
  // caught.  (If a flip produced an equivalent encoding it would not
  // change the decoded sublabel, but gamma codes are canonical.)
  EXPECT_EQ(rejected, trials);
}

TEST(SpanningTreeScheme, SingleVertexGraph) {
  Graph::Builder b(1);
  const Graph g = b.build();
  const ConfigGraph cfg = make_tree_config(g, {}, 0);
  const SpanningTreeScheme scheme;
  EXPECT_TRUE(mark_and_verify(scheme, cfg).accepted);
}

}  // namespace
}  // namespace mstv
