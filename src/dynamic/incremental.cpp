#include "dynamic/incremental.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "mst/predicates.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/mst_scheme.hpp"
#include "plscheme/runner.hpp"
#include "runtime/network.hpp"
#include "sensitivity/sensitivity.hpp"

namespace mstv {

/// The validated outcome of an update: the new edge list, the new tree (as
/// endpoint pairs — edge ids shift under deletion) and what kind of repair
/// it needs.  Computed entirely against the pre-update world, so a throwing
/// update leaves the marker untouched.
struct IncrementalMarker::Plan {
  std::vector<Edge> edges;
  std::vector<std::pair<VertexId, VertexId>> tree;
  bool structural = false;  // the tree edge set changed
  bool swapped = false;     // via an MST edge swap
  // A kept tree edge changed weight (the label fast path); its endpoints.
  bool tree_weight_changed = false;
  VertexId wu = kInvalidVertex;
  VertexId wv = kInvalidVertex;
};

namespace {

/// The deepest endpoint of a tree edge (the vertex whose parent edge it is).
VertexId child_endpoint(const RootedTree& tree, EdgeId e) {
  const Edge& ed = tree.graph().edge(e);
  return (!tree.is_root(ed.u) && tree.parent_edge(ed.u) == e) ? ed.u : ed.v;
}

/// The maximum-weight edge on the tree path u..v, as its child endpoint.
/// Ties resolve to the first maximum met walking u, then v, up to the LCA —
/// any maximum preserves MST-ness, so the rule only needs to be a rule.
struct PathMax {
  VertexId child = kInvalidVertex;
  Weight w = 0;
};

PathMax path_max_edge(const RootedTree& tree, VertexId u, VertexId v) {
  PathMax best;
  auto step = [&](VertexId& x) {
    if (best.child == kInvalidVertex || tree.parent_weight(x) > best.w) {
      best = {x, tree.parent_weight(x)};
    }
    x = tree.parent(x);
  };
  while (tree.depth(u) > tree.depth(v)) step(u);
  while (tree.depth(v) > tree.depth(u)) step(v);
  while (u != v) {
    step(u);
    step(v);
  }
  MSTV_ASSERT(best.child != kInvalidVertex);
  return best;
}

void erase_pair(std::vector<std::pair<VertexId, VertexId>>& tree, VertexId a,
                VertexId b) {
  const auto it = std::find_if(tree.begin(), tree.end(), [&](const auto& p) {
    return (p.first == a && p.second == b) || (p.first == b && p.second == a);
  });
  MSTV_ASSERT(it != tree.end());
  tree.erase(it);
}

}  // namespace

IncrementalMarker::IncrementalMarker(
    const ProofLabelingScheme& scheme, const Graph& g,
    const std::vector<EdgeId>& tree_edges, VertexId root,
    double full_remark_threshold, const std::vector<std::uint64_t>* custom_ids)
    : scheme_(&scheme),
      engine_(Engine::SpanningTree),
      threshold_(full_remark_threshold),
      root_(root) {
  if (dynamic_cast<const SpanningTreeScheme*>(&scheme) != nullptr) {
    engine_ = Engine::SpanningTree;
  } else if (const auto* gs = dynamic_cast<const GammaScheme*>(&scheme)) {
    engine_ = Engine::Gamma;
    imp_ = &gs->implicit_scheme();
  } else if (const auto* ms = dynamic_cast<const MstScheme*>(&scheme)) {
    engine_ = Engine::Mst;
    imp_ = &ms->implicit_scheme();
  } else {
    throw PreconditionError(
        "IncrementalMarker: unsupported scheme '" + scheme.name() +
        "' (supported: spanning-tree, pi-gamma, pi-mst[-naive])");
  }

  const std::size_t n = g.num_vertices();
  MSTV_EXPECTS_MSG(root < n, "root out of range");
  MSTV_EXPECTS_MSG(threshold_ >= 0.0, "negative full-remark threshold");
  MSTV_EXPECTS_MSG(is_spanning_tree(g, tree_edges),
                   "incremental marker requires a spanning tree");
  MSTV_EXPECTS_MSG(is_mst(g, tree_edges),
                   "incremental marker requires a *minimum* spanning tree");
  MSTV_EXPECTS_MSG(engine_ != Engine::Gamma || g.num_edges() + 1 == n,
                   "pi_Gamma is defined over tree families");

  ids_.resize(n);
  if (custom_ids != nullptr) {
    MSTV_EXPECTS_MSG(custom_ids->size() == n, "id vector size mismatch");
    ids_ = *custom_ids;
  } else {
    std::iota(ids_.begin(), ids_.end(), std::uint64_t{0});
  }

  Plan plan;
  plan.edges = g.edges();
  plan.tree.reserve(tree_edges.size());
  for (const EdgeId e : tree_edges) {
    plan.tree.emplace_back(g.edge(e).u, g.edge(e).v);
  }
  rebuild_world(std::move(plan));
  recompute_artifacts_full();
  if (engine_ == Engine::Gamma) {
    for (VertexId v = 0; v < n; ++v) {
      cfg_->state(v).payload = imp_->to_bits(imps_[v]);
    }
  }

  labels_.resize(n);
  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), VertexId{0});
  RepairStats initial;
  serialize_dirty(all, initial);
}

auto IncrementalMarker::make_plan(const EdgeUpdate& up) const -> Plan {
  const std::size_t n = graph_->num_vertices();
  MSTV_EXPECTS_MSG(up.u < n && up.v < n, "update endpoint out of range");
  MSTV_EXPECTS_MSG(up.u != up.v, "self-loop update");
  MSTV_EXPECTS_MSG(
      engine_ != Engine::Gamma || up.kind == UpdateKind::WeightChange,
      "pi_Gamma is defined over tree families; only weight changes apply");

  Plan plan;
  plan.edges = edges_;
  plan.tree.reserve(tree_->tree_edges().size());
  for (const EdgeId e : tree_->tree_edges()) {
    plan.tree.emplace_back(edges_[e].u, edges_[e].v);
  }

  switch (up.kind) {
    case UpdateKind::WeightChange: {
      const auto eid = graph_->find_edge(up.u, up.v);
      MSTV_EXPECTS_MSG(eid.has_value(), "weight change on a missing edge");
      const Weight old_w = edges_[*eid].w;
      plan.edges[*eid].w = up.weight;
      if (tree_->contains_edge(*eid)) {
        // Tree edge.  Decreases keep the tree an MST (every path maximum
        // can only drop); increases need the lightest covering non-tree
        // edge as a challenger — strictly lighter, ties keep the tree
        // (the cycle rule's ">=" accepts any MST).
        EdgeId challenger = kInvalidEdge;
        if (up.weight > old_w) {
          challenger = compute_cover_edges(*tree_)[child_endpoint(*tree_, *eid)];
          if (challenger != kInvalidEdge &&
              edges_[challenger].w >= up.weight) {
            challenger = kInvalidEdge;
          }
        }
        if (challenger != kInvalidEdge) {
          erase_pair(plan.tree, up.u, up.v);
          plan.tree.emplace_back(edges_[challenger].u, edges_[challenger].v);
          plan.structural = plan.swapped = true;
        } else {
          plan.tree_weight_changed = true;
          plan.wu = up.u;
          plan.wv = up.v;
        }
      } else if (up.weight < old_w) {
        // Non-tree decrease: swaps in iff now strictly lighter than some
        // path maximum.  Increases never change an MST.
        const PathMax pm = path_max_edge(*tree_, up.u, up.v);
        if (up.weight < pm.w) {
          erase_pair(plan.tree, pm.child, tree_->parent(pm.child));
          plan.tree.emplace_back(up.u, up.v);
          plan.structural = plan.swapped = true;
        }
      }
      break;
    }
    case UpdateKind::Insert: {
      MSTV_EXPECTS_MSG(!graph_->find_edge(up.u, up.v).has_value(),
                       "insert of an already-present edge");
      plan.edges.push_back(Edge{up.u, up.v, up.weight});
      const PathMax pm = path_max_edge(*tree_, up.u, up.v);
      if (up.weight < pm.w) {
        erase_pair(plan.tree, pm.child, tree_->parent(pm.child));
        plan.tree.emplace_back(up.u, up.v);
        plan.structural = plan.swapped = true;
      }
      break;
    }
    case UpdateKind::Delete: {
      const auto eid = graph_->find_edge(up.u, up.v);
      MSTV_EXPECTS_MSG(eid.has_value(), "delete of a missing edge");
      plan.edges.erase(plan.edges.begin() +
                       static_cast<std::ptrdiff_t>(*eid));
      if (tree_->contains_edge(*eid)) {
        const EdgeId replacement =
            compute_cover_edges(*tree_)[child_endpoint(*tree_, *eid)];
        MSTV_EXPECTS_MSG(replacement != kInvalidEdge,
                         "deleting a bridge would disconnect the graph");
        erase_pair(plan.tree, up.u, up.v);
        plan.tree.emplace_back(edges_[replacement].u, edges_[replacement].v);
        plan.structural = plan.swapped = true;
      }
      break;
    }
  }
  return plan;
}

void IncrementalMarker::rebuild_world(Plan&& plan) {
  const std::size_t n =
      graph_ ? graph_->num_vertices() : ids_.size();
  Graph::Builder b(n);
  for (const Edge& e : plan.edges) b.add_edge(e.u, e.v, e.w);
  // Deterministic insertion-order ports: an update renumbers ports anyway,
  // and labels are port-free, so nothing downstream may depend on them.
  auto new_graph = std::make_unique<Graph>(b.build());

  std::vector<EdgeId> tree_ids;
  tree_ids.reserve(plan.tree.size());
  for (const auto& [a, c] : plan.tree) {
    const auto id = new_graph->find_edge(a, c);
    MSTV_ASSERT(id.has_value());
    tree_ids.push_back(*id);
  }
  RootedTree new_tree(*new_graph, tree_ids, root_);

  std::vector<State> states(n);
  for (VertexId v = 0; v < n; ++v) {
    states[v].id = ids_[v];
    if (!new_tree.is_root(v)) states[v].parent_port = new_tree.parent_port(v);
    // pi_Gamma states carry the claimed implicit label; preserve it (the
    // repair refreshes the dirty ones afterwards).
    if (engine_ == Engine::Gamma && cfg_) {
      states[v].payload = cfg_->state(v).payload;
    }
  }
  ConfigGraph new_cfg(*new_graph, std::move(states));

  // Commit in dependency order: the outgoing tree_/cfg_ reference the
  // outgoing graph, so they must die before graph_ is replaced.
  tree_.emplace(std::move(new_tree));
  cfg_.emplace(std::move(new_cfg));
  graph_ = std::move(new_graph);
  edges_ = std::move(plan.edges);
}

std::vector<SpanningTreeSublabel> IncrementalMarker::make_sublabels() const {
  const std::size_t n = graph_->num_vertices();
  std::vector<SpanningTreeSublabel> subs(n);
  for (VertexId v = 0; v < n; ++v) {
    subs[v].id_copy = ids_[v];
    subs[v].root_id = ids_[root_];
    subs[v].dist = tree_->depth(v);
    if (!tree_->is_root(v)) subs[v].parent_id = ids_[tree_->parent(v)];
  }
  return subs;
}

void IncrementalMarker::recompute_artifacts_full() {
  st_ = make_sublabels();
  if (engine_ != Engine::SpanningTree) {
    // All three weight folds stay resident: repair_weight_only re-folds
    // them in place.  The routing ports are the one arena repair never
    // touches.
    sd_ = perfect_separator_decomposition(
        *tree_, kSepFieldMax | kSepFieldMin | kSepFieldSum | kSepFieldRhoRaw);
    imps_ = imp_->encode(*tree_, sd_);
    orients_ = compute_orient_fields(*tree_, sd_);
  }
}

std::vector<VertexId> IncrementalMarker::repair_weight_only(VertexId wu,
                                                            VertexId wv) {
  // The spanning-tree sublabel is weight-free; only the E_omega extrema
  // entries of the separator decomposition can move.
  if (engine_ == Engine::SpanningTree) return {};

  const VertexId child = tree_->parent(wu) == wv ? wu : wv;
  const VertexId par = child == wu ? wv : wu;
  MSTV_ASSERT(tree_->parent(child) == par);
  const Weight w_new = tree_->parent_weight(child);
  const std::size_t n = graph_->num_vertices();

  std::vector<char> is_dirty(n, 0);
  std::vector<std::uint32_t> visited(n, 0);
  std::vector<VertexId> stack;

  // The edge (child, par) lies inside the level-(k+1) component of every
  // shared separator ancestor s = ancestors[child][k] == ancestors[par][k].
  // Within that component, E_omega field k folds the edge weight exactly
  // for the vertices on the far side of the edge from s; recompute their
  // entries by walking the far side from its endpoint — each visited
  // vertex's path to s provably crosses the edge, and its walk predecessor
  // is its next hop toward it, so folding along the walk is the path fold.
  const auto anc_c = sd_.ancestors(child);
  const auto anc_p = sd_.ancestors(par);
  const std::size_t shared = std::min(anc_c.size(), anc_p.size());
  for (std::size_t k = 0; k < shared && anc_c[k] == anc_p[k]; ++k) {
    const VertexId s = anc_c[k];
    const bool sep_on_child_side = tree_->is_ancestor(child, s);
    const VertexId far = sep_on_child_side ? par : child;
    const VertexId near = sep_on_child_side ? child : par;

    const auto in_component = [&](VertexId x) {
      const auto anc = sd_.ancestors(x);
      return anc.size() > k && anc[k] == s;
    };
    MSTV_ASSERT(in_component(far) && in_component(near));

    const auto stamp = static_cast<std::uint32_t>(k + 1);
    visited[near] = stamp;  // never cross the updated edge back to s's side
    visited[far] = stamp;

    const auto refold = [&](VertexId x, VertexId pred, Weight edge_w) {
      const Weight mx = std::max(edge_w, sd_.maxw(pred)[k]);
      const Weight mn = std::min(edge_w, sd_.minw(pred)[k]);
      const Weight sm = edge_w + sd_.sumw(pred)[k];
      const bool is_max = imp_->kind() == ExtremaKind::Max;
      const Weight relevant_old = is_max ? sd_.maxw(x)[k] : sd_.minw(x)[k];
      if (relevant_old != (is_max ? mx : mn)) {
        is_dirty[x] = 1;
      }
      sd_.maxw(x)[k] = mx;
      sd_.minw(x)[k] = mn;
      sd_.sumw(x)[k] = sm;
    };
    refold(far, near, w_new);

    stack.assign(1, far);
    while (!stack.empty()) {
      const VertexId x = stack.back();
      stack.pop_back();
      const auto visit = [&](VertexId y, Weight edge_w) {
        if (visited[y] == stamp || !in_component(y)) return;
        visited[y] = stamp;
        refold(y, x, edge_w);
        stack.push_back(y);
      };
      if (!tree_->is_root(x)) visit(tree_->parent(x), tree_->parent_weight(x));
      for (const VertexId c : tree_->children(x)) {
        visit(c, tree_->parent_weight(c));
      }
    }
  }

  std::vector<VertexId> dirty;
  for (VertexId v = 0; v < n; ++v) {
    if (is_dirty[v] == 0) continue;
    dirty.push_back(v);
    const auto src =
        imp_->kind() == ExtremaKind::Max ? sd_.maxw(v) : sd_.minw(v);
    imps_[v].extrema.assign(src.begin(), src.end() - 1);
    if (engine_ == Engine::Gamma) {
      cfg_->state(v).payload = imp_->to_bits(imps_[v]);
    }
  }
  return dirty;
}

Label IncrementalMarker::serialize_label(VertexId v) const {
  BitWriter w;
  write_spanning_tree_sublabel(w, st_[v]);
  switch (engine_) {
    case Engine::SpanningTree:
      break;
    case Engine::Mst:
      write_orient_fields(w, orients_[v]);
      imp_->write_to(w, imps_[v]);
      break;
    case Engine::Gamma: {
      write_orient_fields(w, orients_[v]);
      const Label& payload = cfg_->state(v).payload;
      w.write_gamma0(payload.size_bits());
      BitReader r = payload.reader();
      while (!r.exhausted()) w.write_bit(r.read_bit());
      break;
    }
  }
  return Label(std::move(w));
}

void IncrementalMarker::serialize_dirty(const std::vector<VertexId>& dirty,
                                        RepairStats& stats) {
  const std::size_t bits = parallel::sharded_reduce<std::size_t>(
      dirty.size(), std::size_t{0},
      [&](const parallel::ShardRange& shard) {
        std::size_t b = 0;
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          const VertexId v = dirty[i];
          labels_[v] = serialize_label(v);
          b += labels_[v].size_bits();
        }
        return b;
      },
      [](std::size_t& acc, std::size_t part) { acc += part; });
  stats.labels_repaired = dirty.size();
  stats.bits_repaired = bits;
}

RepairStats IncrementalMarker::apply(const EdgeUpdate& update) {
  MSTV_SPAN("dynamic.apply_update");
  MSTV_COUNTER_INC("dynamic.updates");
  const std::size_t n = graph_->num_vertices();
  RepairStats stats;
  stats.labels_total = n;

  if (update.kind == UpdateKind::WeightChange) {
    const auto eid = graph_->find_edge(update.u, update.v);
    MSTV_EXPECTS_MSG(eid.has_value(), "weight change on a missing edge");
    if (edges_[*eid].w == update.weight) {  // no-op update
      last_repaired_.clear();
      last_stats_ = stats;
      return stats;
    }
  }

  Plan plan = make_plan(update);  // throws before any state is touched
  stats.structural_change = plan.structural;
  stats.swapped = plan.swapped;

  std::vector<VertexId> dirty;
  if (plan.structural) {
    // The swap re-hangs a subtree and can shift centroid choices anywhere
    // on the path to the root, so recompute the artifacts and diff: the
    // dirty set is exact, just not cheaply localized.
    auto old_st = std::move(st_);
    auto old_imps = std::move(imps_);
    auto old_orients = std::move(orients_);
    rebuild_world(std::move(plan));
    recompute_artifacts_full();
    for (VertexId v = 0; v < n; ++v) {
      bool changed = !(st_[v] == old_st[v]);
      if (!changed && engine_ != Engine::SpanningTree) {
        changed = orients_[v] != old_orients[v] || !(imps_[v] == old_imps[v]);
      }
      if (changed) dirty.push_back(v);
    }
  } else {
    const bool weight_changed = plan.tree_weight_changed;
    const VertexId wu = plan.wu;
    const VertexId wv = plan.wv;
    rebuild_world(std::move(plan));
    if (weight_changed) dirty = repair_weight_only(wu, wv);
    // else: a non-tree insert/delete/re-weight — labels are port-free and
    // weight-free off the tree, so only the graph and states changed.
  }

  const auto limit =
      static_cast<std::size_t>(threshold_ * static_cast<double>(n));
  if (dirty.size() > limit) {
    stats.full_remark = true;
    MSTV_COUNTER_INC("dynamic.full_remarks");
    std::vector<VertexId> all(n);
    std::iota(all.begin(), all.end(), VertexId{0});
    serialize_dirty(all, stats);
    last_repaired_ = std::move(all);
  } else {
    serialize_dirty(dirty, stats);
    last_repaired_ = std::move(dirty);
  }

  if (stats.structural_change) MSTV_COUNTER_INC("dynamic.structural_updates");
  if (stats.swapped) MSTV_COUNTER_INC("dynamic.swaps");
  MSTV_COUNTER_ADD("dynamic.labels_repaired", stats.labels_repaired);
  MSTV_COUNTER_ADD("dynamic.bits_repaired", stats.bits_repaired);
  last_stats_ = stats;
  return stats;
}

UpdateResult update_and_repair(IncrementalMarker& marker, SimNetwork& net,
                               const EdgeUpdate& update) {
  UpdateResult out;
  out.repair = marker.apply(update);
  net.apply_repair(marker.config(), marker.last_repaired(), marker.labels());
  out.verification = run_verifier(net.scheme(), net.config(), net.labels());
  return out;
}

}  // namespace mstv
