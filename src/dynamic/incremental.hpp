// Incremental label repair under edge updates.
//
// The paper's model is "mark once (centralized), verify forever (local)":
// the marker runs after the MST is (re)computed and ships one label to
// every node.  Under churn — weight drift, link insert/delete — a naive
// operator re-marks all n labels per event, even though a single update
// usually invalidates few of them.  IncrementalMarker keeps the marker's
// intermediate artifacts (rooted tree, perfect separator decomposition,
// extrema labels, orientation flags, spanning-tree sublabels) alive
// between updates and, per update,
//
//   1. repairs the stored MST — single-swap rules driven by the
//      sensitivity machinery (cover_min for tree edges, tree-path maxima
//      for non-tree edges; src/sensitivity/),
//   2. computes the dirty label set:
//        * weight change that keeps the tree: the E_omega entries of
//          gamma_small change exactly for vertices whose path to a
//          separator ancestor crosses the re-weighted edge — the touched
//          decomposition components' far sides, repaired by a local
//          traversal per level (R2); the spanning-tree sublabel (R4) is
//          weight-free and stays untouched,
//        * tree structure change (an MST swap): the artifacts are
//          recomputed and diffed per vertex, so the dirty set is exactly
//          the re-hung subtree (R4) plus the touched components (R2),
//   3. re-serializes only the dirty labels (sharded over the configured
//      --threads workers), falling back to a full re-mark when the dirty
//      set exceeds `full_remark_threshold * n`.
//
// Equivalence contract (enforced by tests/test_incremental.cpp): after
// every apply(), labels() is BIT-IDENTICAL to a from-scratch
// `scheme.mark(config())` — not merely verdict-equivalent.  This works
// because every artifact the marker derives is a deterministic function
// of (graph, tree, root, ids), and the repair recomputes exactly the
// entries whose inputs changed.
//
// Supported schemes: SpanningTreeScheme (R4), MstScheme in both codings
// (R1), and GammaScheme (R3 over the R2 gamma_small states;
// weight-change updates only — its family is trees, so edge insertion
// or deletion leaves the family).  See docs/incremental.md.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "graph/edge_update.hpp"
#include "labeling/extrema_labeling.hpp"
#include "plscheme/scheme.hpp"
#include "plscheme/spanning_tree_scheme.hpp"
#include "plscheme/gamma_scheme.hpp"
#include "tree/centroid.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {

class IncrementalMarker {
 public:
  /// Takes a scheme (must be SpanningTreeScheme, GammaScheme or
  /// MstScheme), an initial graph, an MST of it and a root.  The marker
  /// owns its world from then on: it rebuilds the graph deterministically
  /// from `g`'s edge list (insertion-order ports — updates must be able
  /// to renumber ports, which a fixed hidden permutation would break) and
  /// exposes the resulting configuration via config().  Node ids default
  /// to the vertex index; pass `custom_ids` to override.
  ///
  /// Throws PreconditionError unless `tree_edges` is an MST of `g`.
  IncrementalMarker(const ProofLabelingScheme& scheme, const Graph& g,
                    const std::vector<EdgeId>& tree_edges, VertexId root,
                    double full_remark_threshold = 0.25,
                    const std::vector<std::uint64_t>* custom_ids = nullptr);

  /// Applies one edge update: repairs the MST, the states and the labels.
  /// Throws PreconditionError (leaving the marker unchanged) if the
  /// update is inapplicable: unknown edge, duplicate insert, a delete
  /// that would disconnect the graph, or a structural update under
  /// GammaScheme (whose family is trees).
  RepairStats apply(const EdgeUpdate& update);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const ConfigGraph& config() const noexcept { return *cfg_; }
  [[nodiscard]] const std::vector<Label>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] const RootedTree& tree() const noexcept { return *tree_; }
  [[nodiscard]] VertexId root() const noexcept { return root_; }

  /// Vertices whose labels the last apply() repaired, ascending.  This is
  /// the shipping list SimNetwork::apply_repair consumes.
  [[nodiscard]] const std::vector<VertexId>& last_repaired() const noexcept {
    return last_repaired_;
  }

  /// Stats of the last apply() (all-zero before the first).
  [[nodiscard]] const RepairStats& last_stats() const noexcept {
    return last_stats_;
  }

 private:
  enum class Engine { SpanningTree, Gamma, Mst };

  struct Plan;  // the validated outcome of an update, pre-commit

  [[nodiscard]] Plan make_plan(const EdgeUpdate& update) const;
  void rebuild_world(Plan&& plan);
  void recompute_artifacts_full();
  [[nodiscard]] std::vector<VertexId> repair_weight_only(VertexId wu,
                                                         VertexId wv);
  [[nodiscard]] Label serialize_label(VertexId v) const;
  void serialize_dirty(const std::vector<VertexId>& dirty,
                       RepairStats& stats);
  [[nodiscard]] std::vector<SpanningTreeSublabel> make_sublabels() const;

  const ProofLabelingScheme* scheme_;
  Engine engine_;
  const ExtremaLabelingScheme* imp_ = nullptr;  // Gamma/Mst engines
  double threshold_;
  VertexId root_;
  std::vector<std::uint64_t> ids_;

  std::vector<Edge> edges_;  // authoritative edge list, port order = index
  std::unique_ptr<Graph> graph_;
  std::optional<ConfigGraph> cfg_;
  std::optional<RootedTree> tree_;

  // Cached marker artifacts (sd_/imps_/orients_ only for Gamma/Mst).
  std::vector<SpanningTreeSublabel> st_;
  SeparatorDecomposition sd_;
  std::vector<ExtremaLabel> imps_;
  std::vector<std::vector<Orient>> orients_;
  std::vector<Label> labels_;

  std::vector<VertexId> last_repaired_;
  RepairStats last_stats_;
};

}  // namespace mstv
