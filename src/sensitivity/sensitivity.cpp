#include "sensitivity/sensitivity.hpp"

#include <algorithm>

#include "mst/algorithms.hpp"
#include "mst/predicates.hpp"
#include "tree/centroid.hpp"
#include "tree/path_queries.hpp"

namespace mstv {

std::vector<EdgeId> compute_cover_edges(const RootedTree& tree) {
  const Graph& g = tree.graph();
  const std::size_t n = tree.size();
  std::vector<EdgeId> cover(n, kInvalidEdge);

  // Non-tree edges sorted by increasing weight: the first edge to cover a
  // tree edge determines its cover_min.  The climb skips already-covered
  // tree edges with a path-compressed jump pointer, giving O(m alpha)
  // after the sort (the classic Tarjan interval-union sweep).
  std::vector<EdgeId> nte;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!tree.contains_edge(e)) nte.push_back(e);
  }
  std::sort(nte.begin(), nte.end(), [&](EdgeId a, EdgeId b) {
    return g.edge(a).w != g.edge(b).w ? g.edge(a).w < g.edge(b).w : a < b;
  });

  const TreePathQueries paths(tree);

  // jump[v]: deepest vertex at-or-above v whose parent edge is uncovered.
  std::vector<VertexId> jump(n);
  for (VertexId v = 0; v < n; ++v) jump[v] = v;
  auto find = [&](VertexId v) {
    VertexId root = v;
    while (jump[root] != root) root = jump[root];
    while (jump[v] != root) {
      const VertexId next = jump[v];
      jump[v] = root;
      v = next;
    }
    return root;
  };

  for (const EdgeId e : nte) {
    const Edge& ed = g.edge(e);
    const VertexId a = paths.lca(ed.u, ed.v);
    for (VertexId side : {ed.u, ed.v}) {
      VertexId v = find(side);
      while (tree.depth(v) > tree.depth(a)) {
        cover[v] = e;               // first (lightest) edge covering (v,p(v))
        jump[v] = tree.parent(v);   // skip it from now on
        v = find(v);
      }
    }
  }
  return cover;
}

std::vector<std::optional<Weight>> compute_cover_min(const RootedTree& tree) {
  const std::vector<EdgeId> edges = compute_cover_edges(tree);
  std::vector<std::optional<Weight>> cover(edges.size());
  for (std::size_t v = 0; v < edges.size(); ++v) {
    if (edges[v] != kInvalidEdge) cover[v] = tree.graph().edge(edges[v]).w;
  }
  return cover;
}

SensitivityOracle::SensitivityOracle(const Graph& g,
                                     const std::vector<EdgeId>& tree_edges)
    : g_(&g),
      tree_(g, tree_edges, 0),
      max_scheme_(ExtremaKind::Max, SepCoding::Telescoping) {
  MSTV_EXPECTS_MSG(is_mst(g, tree_edges),
                   "sensitivity is defined relative to a minimum tree");
  labels_ = max_scheme_.encode(tree_);
  cover_min_ = compute_cover_min(tree_);

  child_of_edge_.assign(g.num_edges(), kInvalidVertex);
  for (VertexId v = 0; v < tree_.size(); ++v) {
    if (!tree_.is_root(v)) child_of_edge_[tree_.parent_edge(v)] = v;
  }

  for (const ExtremaLabel& l : labels_) {
    aux_bits_ += max_scheme_.label_bits(l);
  }
  for (const auto& c : cover_min_) {
    aux_bits_ += 1 + (c ? gamma0_cost_bits(*c) : 0);
  }
}

EdgeSensitivity SensitivityOracle::query(EdgeId e) const {
  MSTV_EXPECTS(e < g_->num_edges());
  const Edge& ed = g_->edge(e);
  EdgeSensitivity out;
  if (tree_.contains_edge(e)) {
    out.is_tree_edge = true;
    const VertexId child = child_of_edge_[e];
    const auto& c = cover_min_[child];
    if (c) out.tolerance = *c - ed.w + 1;
  } else {
    out.is_tree_edge = false;
    const Weight mx = max_scheme_.decode(labels_[ed.u], labels_[ed.v]);
    out.tolerance = ed.w - mx + 1;
  }
  return out;
}

EdgeSensitivity brute_force_sensitivity(const Graph& g,
                                        const std::vector<EdgeId>& tree_edges,
                                        EdgeId e) {
  MSTV_EXPECTS(e < g.num_edges());
  std::vector<bool> in_tree(g.num_edges(), false);
  for (const EdgeId t : tree_edges) in_tree[t] = true;

  // Rebuilds the graph with omega(e) changed by +/- c and asks whether the
  // (unchanged) tree is still a minimum spanning tree.
  auto still_minimum = [&](Weight new_w) {
    Graph::Builder b(g.num_vertices());
    for (EdgeId i = 0; i < g.num_edges(); ++i) {
      const Edge& ed = g.edge(i);
      b.add_edge(ed.u, ed.v, i == e ? new_w : ed.w);
    }
    const Graph mod = b.build();
    Weight tree_w = 0;
    for (const EdgeId t : tree_edges) tree_w += mod.edge(t).w;
    return tree_w == total_weight(mod, kruskal_mst(mod));
  };

  EdgeSensitivity out;
  out.is_tree_edge = in_tree[e];
  const Weight w = g.edge(e).w;
  if (out.is_tree_edge) {
    // Increase until no longer minimum; monotone, so binary search.  The
    // largest meaningful increase makes e heavier than everything else.
    Weight lo = 1, hi = g.max_weight() + 2;
    if (still_minimum(w + hi)) return out;  // bridge: never replaceable
    while (lo < hi) {
      const Weight mid = lo + (hi - lo) / 2;
      if (still_minimum(w + mid)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    out.tolerance = lo;
  } else {
    // Decrease; c <= w keeps weights non-negative, and c = w - MAX + 1 <= w
    // always suffices because MAX >= 1 on weighted families.
    Weight lo = 1, hi = w;
    MSTV_EXPECTS_MSG(!still_minimum(0),
                     "non-tree edge at weight 0 must beat some tree edge");
    while (lo < hi) {
      const Weight mid = lo + (hi - lo) / 2;
      if (still_minimum(w - mid)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    out.tolerance = lo;
  }
  return out;
}

DistributedSensitivity::DistributedSensitivity(
    const Graph& g, const std::vector<EdgeId>& tree_edges)
    : g_(&g), max_scheme_(ExtremaKind::Max, SepCoding::Telescoping) {
  MSTV_EXPECTS_MSG(is_mst(g, tree_edges),
                   "sensitivity is defined relative to a minimum tree");
  const RootedTree tree(g, tree_edges, 0);
  const auto labels = max_scheme_.encode(tree);
  const auto cover = compute_cover_min(tree);

  node_states_.reserve(g.num_vertices());
  parent_port_.assign(g.num_vertices(), std::nullopt);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!tree.is_root(v)) parent_port_[v] = tree.parent_port(v);
    BitWriter w;
    max_scheme_.write_to(w, labels[v]);
    const bool has_parent = !tree.is_root(v);
    w.write_bit(has_parent);
    if (has_parent) {
      w.write_bit(cover[v].has_value());
      if (cover[v]) w.write_gamma0(*cover[v]);
    }
    node_states_.emplace_back(w);
  }
}

std::size_t DistributedSensitivity::max_state_bits() const {
  std::size_t mx = 0;
  for (const Label& l : node_states_) mx = std::max(mx, l.size_bits());
  return mx;
}

EdgeSensitivity DistributedSensitivity::query(VertexId v,
                                              PortNumber port) const {
  const PortInfo& p = g_->port(v, port);
  const VertexId u = p.neighbor;

  // Decode both endpoint states.
  struct Decoded {
    ExtremaLabel imp;
    bool has_parent = false;
    std::optional<Weight> cover;
  };
  auto decode = [&](VertexId x) {
    BitReader r = node_states_[x].reader();
    Decoded d;
    d.imp = max_scheme_.read_from(r);
    d.has_parent = r.read_bit();
    if (d.has_parent && r.read_bit()) d.cover = r.read_gamma0();
    return d;
  };
  const Decoded dv = decode(v);
  const Decoded du = decode(u);

  EdgeSensitivity out;
  const bool v_child = parent_port_[v] && *parent_port_[v] == port;
  const bool u_child = parent_port_[u] && *parent_port_[u] == p.reverse_port;
  if (v_child || u_child) {
    out.is_tree_edge = true;
    const Decoded& child = v_child ? dv : du;
    if (child.cover) out.tolerance = *child.cover - p.weight + 1;
  } else {
    out.is_tree_edge = false;
    out.tolerance = p.weight - max_scheme_.decode(dv.imp, du.imp) + 1;
  }
  return out;
}

}  // namespace mstv
