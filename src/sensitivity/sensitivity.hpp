// Sensitivity testing (Tarjan; Section 1.1 "Our results").
//
// Given a graph G and an MST T of G, the sensitivity of an edge e is the
// minimum (positive, integral) change c to omega(e) — an increase for tree
// edges, a decrease for non-tree edges — after which T is no longer *a*
// minimum spanning tree of the modified graph:
//
//   non-tree f=(x,y):  c = omega(f) - MAX_T(x,y) + 1
//   tree     e:        c = cover_min(e) - omega(e) + 1, where cover_min(e)
//                      is the lightest non-tree edge whose tree path uses e
//                      (no such edge => e is never replaceable => infinite).
//
// The paper relaxes Tarjan's problem: instead of writing each sensitivity
// explicitly (Omega(|E| log W) bits), precompute *auxiliary labels* and
// answer each edge query in constant time.  SensitivityOracle implements
// that relaxation:
//   * per-vertex gamma_small MAX labels (O(log n log W) bits each) answer
//     non-tree queries via the family decoder,
//   * per-tree-edge cover_min values (computed once with the classic
//     sorted-non-tree-edges + interval-union sweep, O(m alpha) after the
//     sort) answer tree queries.
// DistributedSensitivity stores the same information *at the nodes* (each
// node holds its label plus the cover_min of its parent edge), so an edge's
// sensitivity is computable from the two endpoint states alone — the
// distributed version of the problem.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "labeling/extrema_labeling.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {

struct EdgeSensitivity {
  bool is_tree_edge = false;
  /// Minimal change that invalidates T; nullopt = no finite change works.
  std::optional<Weight> tolerance;
};

/// cover_min per tree edge: cover_min[v] corresponds to the edge
/// (v, parent(v)); the root's slot is unused.  nullopt = uncovered bridge.
std::vector<std::optional<Weight>> compute_cover_min(const RootedTree& tree);

/// The witnessing edges behind compute_cover_min: cover_edges[v] is the id
/// of the lightest (ties: lowest-id) non-tree edge whose tree path uses
/// (v, parent(v)); kInvalidEdge for uncovered bridges and the root slot.
/// The incremental marker uses the witness as the replacement edge when a
/// tree edge is deleted or outweighed.
std::vector<EdgeId> compute_cover_edges(const RootedTree& tree);

class SensitivityOracle {
 public:
  /// Preprocesses G and its MST `tree_edges`.  Throws if the tree is not
  /// an MST (sensitivities are defined relative to a *minimum* tree).
  SensitivityOracle(const Graph& g, const std::vector<EdgeId>& tree_edges);

  /// O(1)-ish query (the label decode compares O(log n)-field prefixes; the
  /// unit-cost RAM of the paper's model does that in O(1) word operations).
  [[nodiscard]] EdgeSensitivity query(EdgeId e) const;

  [[nodiscard]] const RootedTree& tree() const noexcept { return tree_; }

  /// Total auxiliary storage in bits (labels + cover values) — the measure
  /// the relaxation trades against the Omega(|E| log W) explicit output.
  [[nodiscard]] std::size_t auxiliary_bits() const noexcept {
    return aux_bits_;
  }

 private:
  const Graph* g_;
  RootedTree tree_;
  ExtremaLabelingScheme max_scheme_;
  std::vector<ExtremaLabel> labels_;
  std::vector<std::optional<Weight>> cover_min_;  // by child vertex
  std::vector<VertexId> child_of_edge_;           // tree EdgeId -> child
  std::size_t aux_bits_ = 0;
};

/// Reference answer by recomputation: modifies omega(e) by c and checks
/// whether the tree is still minimum; binary-searches the threshold.
/// O(m log m log W) per edge — tests only.
EdgeSensitivity brute_force_sensitivity(const Graph& g,
                                        const std::vector<EdgeId>& tree_edges,
                                        EdgeId e);

/// The distributed variant: every node stores a bit-string state from
/// which any incident edge's sensitivity is computable given the neighbor's
/// state (one label exchange).
class DistributedSensitivity {
 public:
  DistributedSensitivity(const Graph& g,
                         const std::vector<EdgeId>& tree_edges);

  /// The bit-string stored at node v.
  [[nodiscard]] const Label& node_state(VertexId v) const {
    return node_states_.at(v);
  }

  [[nodiscard]] std::size_t max_state_bits() const;

  /// Computes the sensitivity of the edge behind `port` of v using only
  /// the two endpoint bit-strings (decoded on the fly).
  [[nodiscard]] EdgeSensitivity query(VertexId v, PortNumber port) const;

 private:
  const Graph* g_;
  ExtremaLabelingScheme max_scheme_;
  std::vector<Label> node_states_;
  std::vector<std::optional<PortNumber>> parent_port_;  // tree structure
};

}  // namespace mstv
