#include "store/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "util/check.hpp"

namespace mstv::store {

// The reader serves u64 words directly out of the file image
// (docs/label_format.md fixes them as little-endian), so the in-place
// path requires a little-endian host.  Ports to big-endian machines
// must byte-swap on load.
static_assert(std::endian::native == std::endian::little,
              "snapshot reader serves little-endian words in place");

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a64(std::uint64_t h, const std::uint8_t* p,
                      std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t align8(std::uint64_t v) { return (v + 7) & ~7ULL; }

constexpr std::uint64_t words_for_bits(std::uint64_t bits) {
  return (bits + 63) / 64;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Appends `nbits` bits (LSB-first in `src`, bits past nbits zero — the
/// Label normalization invariant) to `dst` at bit position `pos`.
/// Word-granular: no per-bit loop on the write path.
void append_bits(std::vector<std::uint64_t>& dst, std::uint64_t& pos,
                 const std::uint64_t* src, std::uint64_t nbits) {
  if (nbits == 0) return;
  const std::uint64_t need = words_for_bits(pos + nbits);
  if (dst.size() < need) dst.resize(need, 0);
  const std::uint64_t base = pos >> 6;
  const unsigned off = static_cast<unsigned>(pos & 63);
  const std::uint64_t src_words = words_for_bits(nbits);
  for (std::uint64_t i = 0; i < src_words; ++i) {
    const std::uint64_t w = src[i];
    dst[base + i] |= (off == 0) ? w : (w << off);
    if (off != 0 && base + i + 1 < dst.size()) {
      dst[base + i + 1] |= w >> (64 - off);
    }
  }
  pos += nbits;
}

/// Copies bit range [start, start + len) of `words` (LSB-first) into a
/// fresh normalized word vector.  `avail_words` bounds reads; the caller
/// has already checked start + len against the arena size.
std::vector<std::uint64_t> extract_bits(const std::uint64_t* words,
                                        std::uint64_t avail_words,
                                        std::uint64_t start,
                                        std::uint64_t len) {
  std::vector<std::uint64_t> out(words_for_bits(len));
  const std::uint64_t base = start >> 6;
  const unsigned off = static_cast<unsigned>(start & 63);
  for (std::size_t j = 0; j < out.size(); ++j) {
    const std::uint64_t idx = base + j;
    std::uint64_t w = words[idx] >> off;
    if (off != 0 && idx + 1 < avail_words) w |= words[idx + 1] << (64 - off);
    out[j] = w;
  }
  const unsigned rem = static_cast<unsigned>(len & 63);
  if (rem != 0) out.back() &= (std::uint64_t{1} << rem) - 1;
  return out;
}

}  // namespace

void write_snapshot(std::ostream& os, const std::vector<Label>& labels,
                    const SnapshotMeta& meta) {
  const std::uint64_t n = labels.size();
  MSTV_EXPECTS_MSG(n <= kSnapshotMaxLabels, "too many labels for a snapshot");

  // Arena + length stream + per-block anchors, one pass in vertex order.
  std::vector<std::uint64_t> arena;
  std::uint64_t arena_bits = 0;
  BitWriter len_writer;
  std::vector<std::uint64_t> anchors;  // arena bit, length-stream bit
  std::uint64_t max_label_bits = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    const Label& l = labels[v];
    MSTV_EXPECTS_MSG(l.size_bits() <= kSnapshotMaxLabelBits,
                     "label too large for a snapshot");
    if (v % kSnapshotBlockSize == 0) {
      anchors.push_back(arena_bits);
      anchors.push_back(len_writer.size_bits());
    }
    len_writer.write_gamma0(l.size_bits());
    append_bits(arena, arena_bits, l.words().data(), l.size_bits());
    max_label_bits = std::max<std::uint64_t>(max_label_bits, l.size_bits());
  }
  const std::uint64_t num_blocks = anchors.size() / 2;
  const std::uint64_t len_bits = len_writer.size_bits();
  const std::uint64_t len_words = words_for_bits(len_bits);
  arena.resize(words_for_bits(arena_bits), 0);

  const std::uint64_t dir_bytes = 16 + 16 * num_blocks + 8 * len_words;
  const std::uint64_t arena_bytes = 8 * arena.size();
  const std::uint64_t scheme_len = meta.scheme.size();
  const std::uint64_t meta_bytes = align8(4 + scheme_len) + 32;
  const std::uint64_t dir_offset = kSnapshotHeaderBytes;
  const std::uint64_t arena_offset = dir_offset + dir_bytes;
  const std::uint64_t meta_offset = arena_offset + arena_bytes;

  std::vector<std::uint8_t> file;
  file.reserve(static_cast<std::size_t>(meta_offset + meta_bytes));
  // Header.
  file.insert(file.end(), kSnapshotMagic, kSnapshotMagic + 8);
  put_u32(file, kSnapshotVersion);
  put_u32(file, kSnapshotHeaderBytes);
  put_u64(file, n);
  put_u64(file, arena_bits);
  put_u64(file, dir_offset);
  put_u64(file, dir_bytes);
  put_u64(file, arena_offset);
  put_u64(file, arena_bytes);
  put_u64(file, meta_offset);
  put_u64(file, meta_bytes);
  put_u32(file, kSnapshotBlockSize);
  put_u32(file, 0);  // reserved
  put_u64(file, 0);  // checksum, patched below
  // Directory.
  put_u32(file, static_cast<std::uint32_t>(num_blocks));
  put_u32(file, 0);  // reserved
  put_u64(file, len_bits);
  for (const std::uint64_t a : anchors) put_u64(file, a);
  for (std::uint64_t i = 0; i < len_words; ++i) {
    put_u64(file, len_writer.words()[i]);
  }
  // Arena.
  for (const std::uint64_t w : arena) put_u64(file, w);
  // Metadata.
  put_u32(file, static_cast<std::uint32_t>(scheme_len));
  file.insert(file.end(), meta.scheme.begin(), meta.scheme.end());
  file.resize(static_cast<std::size_t>(meta_offset + align8(4 + scheme_len)),
              0);
  put_u64(file, meta.root);
  put_u64(file, meta.graph_vertices);
  put_u64(file, meta.graph_edges);
  put_u64(file, max_label_bits);
  MSTV_ASSERT(file.size() == meta_offset + meta_bytes);

  // Checksum covers everything except its own field.
  std::uint64_t h = fnv1a64(kFnvOffset, file.data(), kSnapshotChecksumOffset);
  h = fnv1a64(h, file.data() + kSnapshotHeaderBytes,
              file.size() - kSnapshotHeaderBytes);
  for (int i = 0; i < 8; ++i) {
    file[kSnapshotChecksumOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((h >> (8 * i)) & 0xFF);
  }

  os.write(reinterpret_cast<const char*>(file.data()),
           static_cast<std::streamsize>(file.size()));
}

std::uint64_t write_snapshot_file(const std::string& path,
                                  const std::vector<Label>& labels,
                                  const SnapshotMeta& meta) {
  std::ofstream out(path, std::ios::binary);
  MSTV_EXPECTS_MSG(static_cast<bool>(out),
                   "cannot open snapshot file for writing");
  write_snapshot(out, labels, meta);
  out.flush();
  MSTV_EXPECTS_MSG(static_cast<bool>(out), "snapshot write failed");
  return static_cast<std::uint64_t>(out.tellp());
}

std::pair<std::size_t, std::size_t> LabelView::decode_block(
    std::size_t b, std::vector<Label>& out) const {
  MSTV_EXPECTS_MSG(b < blocks_, "snapshot block index out of range");
  MSTV_EXPECTS(out.size() == n_);
  const std::size_t first = b * block_;
  const std::size_t last = std::min<std::size_t>(n_, first + block_);
  std::uint64_t cursor = anchors_[2 * b];
  const std::uint64_t len_anchor = anchors_[2 * b + 1];
  BitReader lens(dir_words_, len_anchor, len_bits_ - len_anchor);
  const std::uint64_t arena_words = words_for_bits(arena_bits_);
  for (std::size_t v = first; v < last; ++v) {
    const std::uint64_t len = lens.read_gamma0();
    MSTV_EXPECTS_MSG(len <= kSnapshotMaxLabelBits &&
                         len <= arena_bits_ - cursor,
                     "snapshot arena overrun");
    out[v] = Label(extract_bits(arena_words_, arena_words, cursor, len),
                   static_cast<std::size_t>(len));
    cursor += len;
  }
  MSTV_COUNTER_INC("store.decode_block_hits");
  return {first, last};
}

Label LabelView::decode_one(std::size_t v) const {
  MSTV_EXPECTS_MSG(v < n_, "snapshot label index out of range");
  const std::size_t b = v / block_;
  std::uint64_t cursor = anchors_[2 * b];
  const std::uint64_t len_anchor = anchors_[2 * b + 1];
  BitReader lens(dir_words_, len_anchor, len_bits_ - len_anchor);
  const std::uint64_t arena_words = words_for_bits(arena_bits_);
  for (std::size_t u = b * block_; u <= v; ++u) {
    const std::uint64_t len = lens.read_gamma0();
    MSTV_EXPECTS_MSG(len <= kSnapshotMaxLabelBits &&
                         len <= arena_bits_ - cursor,
                     "snapshot arena overrun");
    if (u == v) {
      return Label(extract_bits(arena_words_, arena_words, cursor, len),
                   static_cast<std::size_t>(len));
    }
    cursor += len;
  }
  MSTV_ASSERT(false);  // unreachable
  return Label{};
}

std::vector<Label> LabelView::decode_all() const {
  MSTV_SPAN("store.decode");
  std::vector<Label> out(n_);
  // Blocks decode into disjoint contiguous ranges of `out`, so the result
  // is bit-identical at any thread count (block boundaries depend only on
  // (n, block_size), never on the schedule).
  parallel::for_each_shard(blocks_, [&](const parallel::ShardRange& shard) {
    for (std::size_t b = shard.begin; b < shard.end; ++b) {
      decode_block(b, out);
    }
  });
  return out;
}

LabelStore::LabelStore(MemorySource src) : source_(std::move(src)) {
  const std::uint8_t* p = source_.data();
  const std::uint64_t size = source_.size();

  MSTV_EXPECTS_MSG(size >= kSnapshotHeaderBytes, "truncated snapshot header");
  MSTV_EXPECTS_MSG(std::memcmp(p, kSnapshotMagic, 8) == 0,
                   "not a label snapshot (bad magic)");
  MSTV_EXPECTS_MSG(get_u32(p + 8) == kSnapshotVersion,
                   "unsupported snapshot version");
  MSTV_EXPECTS_MSG(get_u32(p + 12) == kSnapshotHeaderBytes,
                   "bad snapshot header size");

  const std::uint64_t n = get_u64(p + 16);
  const std::uint64_t arena_bits = get_u64(p + 24);
  MSTV_EXPECTS_MSG(n <= kSnapshotMaxLabels, "absurd label count");
  MSTV_EXPECTS_MSG(arena_bits <= n * kSnapshotMaxLabelBits,
                   "absurd arena size");

  const std::uint64_t dir_offset = get_u64(p + 32);
  const std::uint64_t dir_bytes = get_u64(p + 40);
  const std::uint64_t arena_offset = get_u64(p + 48);
  const std::uint64_t arena_bytes = get_u64(p + 56);
  const std::uint64_t meta_offset = get_u64(p + 64);
  const std::uint64_t meta_bytes = get_u64(p + 72);
  const std::uint32_t block_size = get_u32(p + 80);
  const auto section_ok = [size](std::uint64_t off, std::uint64_t bytes) {
    return off >= kSnapshotHeaderBytes && off % 8 == 0 && off <= size &&
           bytes <= size - off;
  };
  MSTV_EXPECTS_MSG(section_ok(dir_offset, dir_bytes) &&
                       section_ok(arena_offset, arena_bytes) &&
                       section_ok(meta_offset, meta_bytes),
                   "snapshot section out of bounds");

  // Integrity before structure: a flipped bit anywhere (outside the
  // checksum field itself) is reported as corruption, not as whatever
  // structural error it happens to masquerade as.
  std::uint64_t h = fnv1a64(kFnvOffset, p, kSnapshotChecksumOffset);
  h = fnv1a64(h, p + kSnapshotHeaderBytes,
              static_cast<std::size_t>(size - kSnapshotHeaderBytes));
  MSTV_EXPECTS_MSG(get_u64(p + kSnapshotChecksumOffset) == h,
                   "snapshot checksum mismatch");

  MSTV_EXPECTS_MSG(arena_bytes == 8 * words_for_bits(arena_bits),
                   "snapshot arena size mismatch");
  MSTV_EXPECTS_MSG(block_size >= 1, "bad snapshot block size");

  // Directory structure.
  MSTV_EXPECTS_MSG(dir_bytes >= 16, "truncated snapshot directory");
  const std::uint8_t* d = p + dir_offset;
  const std::uint64_t num_blocks = get_u32(d);
  const std::uint64_t len_bits = get_u64(d + 8);
  const std::uint64_t expected_blocks =
      n == 0 ? 0 : (n + block_size - 1) / block_size;
  MSTV_EXPECTS_MSG(num_blocks == expected_blocks,
                   "snapshot directory block count mismatch");
  MSTV_EXPECTS_MSG(len_bits <= 64 * (n + 1), "absurd length stream size");
  MSTV_EXPECTS_MSG(dir_bytes ==
                       16 + 16 * num_blocks + 8 * words_for_bits(len_bits),
                   "snapshot directory size mismatch");

  // The file image is 8-byte aligned (mmap is page-aligned, the heap
  // buffer is allocator-aligned) and every section offset is a multiple
  // of 8, so the directory and arena can be served as u64 words in place.
  const auto* anchors = reinterpret_cast<const std::uint64_t*>(d + 16);
  const auto* len_words =
      reinterpret_cast<const std::uint64_t*>(d + 16 + 16 * num_blocks);
  std::uint64_t prev_arena = 0;
  std::uint64_t prev_len = 0;
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    const std::uint64_t a = anchors[2 * b];
    const std::uint64_t l = anchors[2 * b + 1];
    const bool in_bounds = a <= arena_bits && l <= len_bits;
    const bool ordered = a >= prev_arena && l >= prev_len;
    MSTV_EXPECTS_MSG(in_bounds && ordered && (b > 0 || (a == 0 && l == 0)),
                     "snapshot directory anchor out of bounds");
    prev_arena = a;
    prev_len = l;
  }

  // Metadata structure.
  MSTV_EXPECTS_MSG(meta_bytes >= 40, "truncated snapshot metadata");
  const std::uint8_t* m = p + meta_offset;
  const std::uint64_t scheme_len = get_u32(m);
  MSTV_EXPECTS_MSG(align8(4 + scheme_len) + 32 == meta_bytes,
                   "snapshot metadata size mismatch");
  meta_.scheme.assign(reinterpret_cast<const char*>(m + 4),
                      static_cast<std::size_t>(scheme_len));
  const std::uint8_t* tail = m + align8(4 + scheme_len);
  meta_.root = get_u64(tail);
  meta_.graph_vertices = get_u64(tail + 8);
  meta_.graph_edges = get_u64(tail + 16);
  meta_.max_label_bits = get_u64(tail + 24);

  view_.dir_words_ = len_words;
  view_.len_bits_ = len_bits;
  view_.anchors_ = anchors;
  view_.arena_words_ = reinterpret_cast<const std::uint64_t*>(p + arena_offset);
  view_.arena_bits_ = arena_bits;
  view_.n_ = static_cast<std::size_t>(n);
  view_.block_ = block_size;
  view_.blocks_ = static_cast<std::size_t>(num_blocks);

  MSTV_GAUGE_SET("store.bytes_per_label",
                 n == 0 ? 0.0
                        : static_cast<double>(size) / static_cast<double>(n));
}

LabelStore LabelStore::open(const std::string& path, bool prefer_mmap) {
  MSTV_SPAN("store.load");
#ifndef MSTV_OBS_DISABLED
  const double t0 = obs::Tracer::global().now_us();
#endif
  LabelStore s(prefer_mmap ? MemorySource::map_file(path)
                           : MemorySource::read_file(path));
#ifndef MSTV_OBS_DISABLED
  MSTV_GAUGE_SET("store.load_us", obs::Tracer::global().now_us() - t0);
#endif
  return s;
}

}  // namespace mstv::store
