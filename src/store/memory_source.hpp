// MemorySource: owns the bytes a label snapshot is served from.
//
// The snapshot reader (store/snapshot.hpp) never copies label data — it
// points BitReaders straight into the file image — so *something* must
// own that image and keep it alive for as long as any LabelStore or
// LabelView refers to it.  MemorySource is that owner, with three
// backings:
//
//   * Mmap   — the file mapped read-only via mmap(2); the kernel pages
//              label blocks in on demand, so cold load touches only the
//              header/directory pages.  POSIX only.
//   * Buffer — the file (or caller-supplied bytes) copied into an
//              anonymous heap buffer.  The portable fallback, and the
//              path tests use to hand the reader corrupted images.
//
// `map_file` silently degrades to the Buffer backing where mmap is
// unavailable (non-POSIX) or fails (e.g. the path is on a filesystem
// that refuses mappings); `backing()` reports what actually happened.
// Ownership and lifetime rules are spelled out in docs/store.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mstv::store {

class MemorySource {
 public:
  enum class Backing {
    None,    // default-constructed, no bytes
    Mmap,    // mmap(2)-backed, unmapped on destruction
    Buffer,  // heap-backed
  };

  MemorySource() = default;

  /// Maps `path` read-only.  Falls back to `read_file` when mmap is
  /// unsupported or fails for this file; throws PreconditionError when
  /// the file cannot be opened or read at all.
  [[nodiscard]] static MemorySource map_file(const std::string& path);

  /// Reads `path` fully into a heap buffer (the no-mmap path).
  /// Throws PreconditionError when the file cannot be opened or read.
  [[nodiscard]] static MemorySource read_file(const std::string& path);

  /// Wraps caller-supplied bytes (tests, in-process round trips).
  [[nodiscard]] static MemorySource from_bytes(std::vector<std::uint8_t> bytes);

  MemorySource(MemorySource&& other) noexcept { swap(other); }
  MemorySource& operator=(MemorySource&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  MemorySource(const MemorySource&) = delete;
  MemorySource& operator=(const MemorySource&) = delete;
  ~MemorySource() { release(); }

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] Backing backing() const noexcept { return backing_; }

 private:
  void swap(MemorySource& other) noexcept;
  void release() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  Backing backing_ = Backing::None;
  std::vector<std::uint8_t> buffer_;  // Buffer backing only
};

}  // namespace mstv::store
