#include "store/memory_source.hpp"

#include <fstream>
#include <utility>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MSTV_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace mstv::store {

void MemorySource::swap(MemorySource& other) noexcept {
  std::swap(data_, other.data_);
  std::swap(size_, other.size_);
  std::swap(backing_, other.backing_);
  buffer_.swap(other.buffer_);
}

void MemorySource::release() noexcept {
#ifdef MSTV_STORE_HAS_MMAP
  if (backing_ == Backing::Mmap && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  backing_ = Backing::None;
  buffer_.clear();
}

MemorySource MemorySource::from_bytes(std::vector<std::uint8_t> bytes) {
  MemorySource src;
  src.buffer_ = std::move(bytes);
  src.data_ = src.buffer_.data();
  src.size_ = src.buffer_.size();
  src.backing_ = Backing::Buffer;
  return src;
}

MemorySource MemorySource::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MSTV_EXPECTS_MSG(static_cast<bool>(in), "cannot open snapshot file");
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  MSTV_EXPECTS_MSG(end >= 0, "cannot stat snapshot file");
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(end));
  if (!bytes.empty()) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    MSTV_EXPECTS_MSG(static_cast<bool>(in), "cannot read snapshot file");
  }
  return from_bytes(std::move(bytes));
}

MemorySource MemorySource::map_file(const std::string& path) {
#ifdef MSTV_STORE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  MSTV_EXPECTS_MSG(fd >= 0, "cannot open snapshot file");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    MSTV_EXPECTS_MSG(false, "cannot stat snapshot file");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap(2) rejects zero-length mappings; an empty file is an empty
    // (and, downstream, invalid) snapshot either way.
    ::close(fd);
    return from_bytes({});
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapping == MAP_FAILED) return read_file(path);
  MemorySource src;
  src.data_ = static_cast<const std::uint8_t*>(mapping);
  src.size_ = size;
  src.backing_ = Backing::Mmap;
  return src;
#else
  return read_file(path);
#endif
}

}  // namespace mstv::store
