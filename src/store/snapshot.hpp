// Immutable on-disk label snapshots: write once after mark(), serve
// forever by mmap.
//
// The paper's lifecycle is "mark once (centralized), verify forever
// (local)", which makes a label set the same shape as a search-engine
// posting index: write-once, read-millions.  This module is the storage
// layer for that read side.  A snapshot file is
//
//   header (96 bytes: magic, version, section table, checksum)
//   offset directory (per-block arena/length-stream anchors +
//                     Elias-gamma-coded per-label bit lengths)
//   label arena (every label's bits concatenated, LSB-first, unpadded)
//   metadata (scheme name, root, graph shape, max label bits)
//
// and is fully specified, byte by byte, in docs/label_format.md
// ("Snapshot container format") — a third party can implement a reader
// from that document alone.  Operational rules (mmap lifetime, failure
// modes, version policy) live in docs/store.md.
//
// Design points:
//
//  * Zero parse cost at load.  `LabelStore::open` validates the header,
//    checksum and directory bounds — O(file) byte scanning but no
//    per-label decoding — and then serves the arena in place from the
//    MemorySource.  Per-label work happens only when a block is decoded.
//  * Succinct framing.  The wire format (labeling/wire.hpp) spends
//    64 + 64·ceil(bits/64) framing bits per label; the snapshot spends
//    the label's exact bit count in the arena plus an Elias-gamma code
//    of that count (2·floor(log2(bits+1))+1 bits) in the directory —
//    bytes/label strictly below the wire encoding (gated by
//    bench_label_store).
//  * Block decode.  Labels are grouped in blocks of `block_size`
//    (default 64); `LabelView::decode_block` materialises one block with
//    a single directory cursor instead of a per-label seek, and
//    `decode_all` shards whole blocks across the thread pool —
//    bit-identical output at any thread count because block boundaries
//    depend only on (n, block_size).
//
// Telemetry (docs/observability.md): counter store.decode_block_hits,
// gauges store.bytes_per_label / store.load_us, spans store.load /
// store.decode.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "labeling/label.hpp"
#include "store/memory_source.hpp"

namespace mstv::store {

// ---- format constants (normative; docs/label_format.md) ----

/// First eight bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'M', 'S', 'T', 'V',
                                           'S', 'N', 'A', 'P'};
/// The only version this reader understands; bump policy in docs/store.md.
inline constexpr std::uint32_t kSnapshotVersion = 1;
/// Fixed header size; sections start at the next 8-byte boundary (96).
inline constexpr std::uint32_t kSnapshotHeaderBytes = 96;
/// Byte offset of the u64 FNV-1a checksum inside the header.
inline constexpr std::size_t kSnapshotChecksumOffset = 88;
/// Labels per directory block written by `write_snapshot`.
inline constexpr std::uint32_t kSnapshotBlockSize = 64;
/// Caps mirroring labeling/wire.cpp, so a corrupt header cannot drive
/// allocation: at most 2^28 labels of at most 2^30 bits each.
inline constexpr std::uint64_t kSnapshotMaxLabels = 1u << 28;
inline constexpr std::uint64_t kSnapshotMaxLabelBits = 1u << 30;

/// Per-scheme metadata carried in the snapshot's meta section: enough to
/// reject a snapshot mounted against the wrong scheme or graph before
/// any label is decoded.
struct SnapshotMeta {
  std::string scheme;                // ProofLabelingScheme::name()
  std::uint64_t root = 0;            // root vertex the config was built with
  std::uint64_t graph_vertices = 0;  // n of the marked graph
  std::uint64_t graph_edges = 0;     // m of the marked graph
  std::uint64_t max_label_bits = 0;  // filled by the writer from the labels
};

/// Serializes `labels` + `meta` as a version-1 snapshot.  Byte-for-byte
/// deterministic in its inputs (no timestamps, no thread-count
/// dependence): equal labels and meta always produce equal files.
void write_snapshot(std::ostream& os, const std::vector<Label>& labels,
                    const SnapshotMeta& meta);

/// write_snapshot into `path`; returns the file size in bytes.  Throws
/// PreconditionError if the file cannot be opened or written.
std::uint64_t write_snapshot_file(const std::string& path,
                                  const std::vector<Label>& labels,
                                  const SnapshotMeta& meta);

/// Non-owning view over a validated snapshot's directory and arena — the
/// batch-decode surface.  Lifetime: a LabelView is only valid while the
/// LabelStore (and its MemorySource) that produced it is alive.
class LabelView {
 public:
  /// Number of labels in the snapshot.
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t block_size() const noexcept { return block_; }
  [[nodiscard]] std::size_t num_blocks() const noexcept { return blocks_; }

  /// Decodes block `b` into `out[first..last)` where [first, last) is the
  /// returned label range; `out` must already have size() elements.
  /// One directory cursor per block, no per-label seeks.  Throws
  /// PreconditionError if the block's codes overrun their section.
  std::pair<std::size_t, std::size_t> decode_block(
      std::size_t b, std::vector<Label>& out) const;

  /// Random access to one label: seeks within its block.
  [[nodiscard]] Label decode_one(std::size_t v) const;

  /// Decodes every block, sharded over the thread pool; bit-identical
  /// output at any thread count.
  [[nodiscard]] std::vector<Label> decode_all() const;

 private:
  friend class LabelStore;

  const std::uint64_t* dir_words_ = nullptr;    // length-stream words
  std::uint64_t len_bits_ = 0;                  // length-stream bit count
  const std::uint64_t* anchors_ = nullptr;      // 2 u64 per block
  const std::uint64_t* arena_words_ = nullptr;  // label arena
  std::uint64_t arena_bits_ = 0;
  std::size_t n_ = 0;
  std::uint32_t block_ = 1;
  std::size_t blocks_ = 0;
};

/// An opened, validated snapshot.  Construction performs every integrity
/// check (magic, version, section bounds, checksum, directory anchors)
/// and throws PreconditionError on any violation; afterwards the arena
/// is served in place from the MemorySource with no further copying.
class LabelStore {
 public:
  /// Validates `src` as a snapshot image and takes ownership of it.
  explicit LabelStore(MemorySource src);

  /// Opens `path` via mmap (default) or a heap read, then validates.
  /// Records store.load_us / store.bytes_per_label telemetry.
  [[nodiscard]] static LabelStore open(const std::string& path,
                                       bool prefer_mmap = true);

  /// Number of labels.
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
  [[nodiscard]] const SnapshotMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] const LabelView& labels() const noexcept { return view_; }
  [[nodiscard]] std::size_t file_bytes() const noexcept {
    return source_.size();
  }
  [[nodiscard]] MemorySource::Backing backing() const noexcept {
    return source_.backing();
  }

  /// Convenience forwarders to the view.
  [[nodiscard]] std::vector<Label> decode_all() const {
    return view_.decode_all();
  }

 private:
  MemorySource source_;
  LabelView view_;
  SnapshotMeta meta_;
};

}  // namespace mstv::store
