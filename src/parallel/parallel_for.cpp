#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/trace.hpp"
#include "obs/trace_session.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace mstv::parallel {

namespace {

// Pool configuration.  `g_requested == 0` means "auto" (hardware
// concurrency); the pool itself is created lazily so a process that never
// goes parallel (or runs with --threads=1) never spawns a thread.
std::mutex g_pool_mu;
std::size_t g_requested = 0;
std::unique_ptr<ThreadPool> g_pool;

// Set while a worker executes a shard body: nested sharded calls run
// inline instead of re-entering (and possibly deadlocking on) the pool.
thread_local bool t_in_shard_body = false;

std::size_t effective(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc != 0 ? hc : 1;
}

ThreadPool& pool_for(std::size_t want) {
  // Caller holds g_pool_mu.
  if (!g_pool || g_pool->size() != want) {
    g_pool.reset();  // join the old workers before spawning the new set
    g_pool = std::make_unique<ThreadPool>(want);
    MSTV_GAUGE_SET("parallel.pool_threads", want);
  }
  return *g_pool;
}

double shard_ns(std::chrono::steady_clock::time_point t0) {
  // mstv-lint: allow(DET-CLOCK) — telemetry-only: elapsed time feeds the
  // parallel.shard_ns histogram, which is exempt from the determinism
  // contract (docs/parallelism.md); no result depends on it.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(now - t0).count();
}

void run_inline(const std::vector<ShardRange>& shards,
                const std::function<void(const ShardRange&)>& body) {
  for (const ShardRange& shard : shards) {
    // mstv-lint: allow(DET-CLOCK) — telemetry-only shard timing (see shard_ns).
    const auto t0 = std::chrono::steady_clock::now();
    body(shard);  // serial order: a throw here is the lowest-index one
    MSTV_HIST_OBSERVE("parallel.shard_ns", shard_ns(t0));
  }
}

}  // namespace

void set_thread_count(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested = n;
  if (g_pool && g_pool->size() != effective(n)) g_pool.reset();
}

std::size_t thread_count() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return effective(g_requested);
}

std::size_t plan_shards(std::size_t n) { return std::min(thread_count(), n); }

std::vector<ShardRange> shard_ranges(std::size_t n, std::size_t shards) {
  std::vector<ShardRange> out;
  if (n == 0 || shards == 0) return out;
  shards = std::min(shards, n);
  out.reserve(shards);
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;  // first `extra` shards get +1
  std::size_t begin = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    out.push_back(ShardRange{begin, begin + len, i, shards});
    begin += len;
  }
  MSTV_ASSERT(begin == n);
  return out;
}

void for_each_shard(std::size_t n,
                    const std::function<void(const ShardRange&)>& body) {
  const std::vector<ShardRange> shards = shard_ranges(n, plan_shards(n));
  if (shards.empty()) return;
  MSTV_COUNTER_ADD("parallel.tasks_total", shards.size());

  if (shards.size() == 1 || t_in_shard_body) {
    run_inline(shards, body);
    return;
  }

  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    pool = &pool_for(effective(g_requested));
  }

  MSTV_SPAN("parallel.for_each");
  std::vector<std::exception_ptr> errors(shards.size());
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t done = 0;
  for (const ShardRange& shard : shards) {
    pool->submit([&, shard] {
      // mstv-lint: allow(DET-CLOCK) — telemetry-only shard timing (see shard_ns).
      const auto t0 = std::chrono::steady_clock::now();
      t_in_shard_body = true;
      {
        // Scope closes before the done-counter handshake below, so every
        // trace-session write happens-before the caller's wakeup (and any
        // snapshot it takes).
        MSTV_TRACE_SCOPE("parallel", "parallel.shard",
                         {obs::TraceArg::uint("shard", shard.index),
                          obs::TraceArg::uint("shards", shard.count),
                          obs::TraceArg::uint("begin", shard.begin),
                          obs::TraceArg::uint("end", shard.end)});
        try {
          body(shard);
        } catch (...) {
          errors[shard.index] = std::current_exception();
        }
      }
      t_in_shard_body = false;
      MSTV_HIST_OBSERVE("parallel.shard_ns", shard_ns(t0));
      {
        // Notify while holding the lock: done_cv lives on the caller's
        // stack, and the caller may return (destroying it) the moment the
        // predicate holds.  Signaling under the mutex sequences this
        // worker's last touch of the cv before the waiter can wake, check
        // the predicate, and leave.
        std::lock_guard<std::mutex> lock(done_mu);
        if (++done == shards.size()) done_cv.notify_one();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done == shards.size(); });
  }
  // Serial-equivalent error reporting: the lowest failing shard wins.
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace mstv::parallel
