// Dependency-free fixed-size thread pool: N workers draining one FIFO
// task queue.  This is the execution substrate for the deterministic
// sharding helpers in parallel/parallel_for.hpp — the pool itself knows
// nothing about shards or ordering; determinism is the caller's job.
//
// Tasks must not let exceptions escape (for_each_shard catches per-shard
// exceptions before they reach the queue); an escaping exception would
// std::terminate inside a worker.  The destructor drains every task
// already submitted, then joins the workers, so a pool is safe to destroy
// while work is still queued.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mstv::parallel {

class ThreadPool {
 public:
  /// Spawns exactly `num_threads` workers (must be >= 1).
  explicit ThreadPool(std::size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues one task; wakes one idle worker.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mstv::parallel
