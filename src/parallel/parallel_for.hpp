// Deterministic node-range sharding over the global thread pool.
//
// The verifier side of a proof labeling scheme is embarrassingly parallel
// (every node runs the same local check), so the runtime's hot loops are
// expressed as shards of the vertex range [0, n).  Determinism contract:
//
//  * Shard boundaries depend only on (n, shard count); the shard count
//    depends only on the configured thread count.  Nothing about the OS
//    schedule leaks into the split.
//  * Results are merged strictly in shard-index order (shards cover
//    ascending contiguous ranges, so per-node outputs concatenated in
//    shard order equal the serial left-to-right order).
//  * Exceptions are re-thrown in shard-index order: the caller always
//    observes the error of the lowest-index failing shard, exactly what a
//    serial left-to-right loop would have thrown first.
//
// Together these make accept/reject verdicts, rejector sets, label bits
// and every additive telemetry counter bit-identical to the serial engine
// at any thread count.  `set_thread_count(1)` recovers the serial engine
// outright: work runs inline on the caller's thread, the pool is never
// touched.
//
// Nested calls (a shard body invoking for_each_shard again) run inline on
// the worker, so the engine never deadlocks on its own pool.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace mstv::parallel {

/// One contiguous chunk of the index range [0, n).
struct ShardRange {
  std::size_t begin = 0;  // first index (inclusive)
  std::size_t end = 0;    // past-the-end index
  std::size_t index = 0;  // shard number in [0, count)
  std::size_t count = 1;  // number of shards in this call
};

/// Sets the worker count used by for_each_shard / sharded_reduce.
/// 0 (the default) means std::thread::hardware_concurrency.  The global
/// pool is re-created lazily on next use; do not call concurrently with
/// in-flight parallel work.
void set_thread_count(std::size_t n);

/// The effective worker count (always >= 1).
[[nodiscard]] std::size_t thread_count();

/// Splits [0, n) into exactly `shards` contiguous ranges whose sizes
/// differ by at most one (the first n % shards ranges get the extra
/// element).  Pure function of (n, shards); n == 0 yields no shards.
[[nodiscard]] std::vector<ShardRange> shard_ranges(std::size_t n,
                                                   std::size_t shards);

/// The shard count for_each_shard would use for a range of n elements:
/// min(thread_count(), n).
[[nodiscard]] std::size_t plan_shards(std::size_t n);

/// Runs `body` once per shard of [0, n).  Blocks until every shard
/// finished; re-throws the lowest-index shard's exception, if any.
/// With thread_count() == 1 (or a single shard, or a nested call) the
/// body runs inline on the calling thread.
void for_each_shard(std::size_t n,
                    const std::function<void(const ShardRange&)>& body);

/// Sharded map-reduce: `body(shard)` produces one partial result per
/// shard, and `merge(acc, partial)` folds the partials into `init`
/// strictly in shard-index order.
template <typename T, typename Body, typename Merge>
T sharded_reduce(std::size_t n, T init, Body&& body, Merge&& merge) {
  std::vector<T> partial(plan_shards(n));
  for_each_shard(n, [&](const ShardRange& shard) {
    partial[shard.index] = body(shard);
  });
  for (T& p : partial) merge(init, std::move(p));
  return init;
}

}  // namespace mstv::parallel
