#include "parallel/thread_pool.hpp"

#include "util/check.hpp"

namespace mstv::parallel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  MSTV_EXPECTS(num_threads > 0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MSTV_EXPECTS(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    MSTV_EXPECTS_MSG(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace mstv::parallel
