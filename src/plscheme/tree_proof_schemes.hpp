// Proof labeling schemes for the distance and routing implicit labelings —
// the other half of the paper's closing remark ("similar techniques can be
// used to provide compact proof labeling schemes for various implicit
// labeling schemes on trees, such as routing, distance etc.").
//
// Both schemes follow the pi_Gamma template (Lemma 3.3): the label adds
// the spanning-tree/orientation sublabel, the per-level orientation flags
// and a copy of the state, and the verifier checks the same structural
// conditions (field counts, '*' discipline, E_sep prefix agreement,
// sibling-subtree disjointness) — only the inductive per-level fold
// changes:
//
//   * DistanceProofScheme — the level-k field must equal the *sum* of edge
//     weights folded toward the level-k separator
//     (conditions 7/8 with + in place of max);
//   * RoutingProofScheme — the level-k `toward` port must be the parent
//     port when the separator is above, or the port to the unique
//     continuing child when it is below, and each vertex's `branch_port`
//     entry must equal the separator's actual port into its subtree —
//     which the separator itself checks against its own port numbers, and
//     prefix agreement propagates down the branch.
//
// If every node accepts, the state payloads are distance / routing labels
// of *some* member of the family Gamma, and the family-wide decoders of
// labeling/tree_labelings.hpp answer dist(u, v) / next-hop(u, v) correctly
// — i.e. self-stabilizing compact distance/routing tables on trees.
#pragma once

#include "labeling/tree_labelings.hpp"
#include "plscheme/scheme.hpp"

namespace mstv {

class DistanceProofScheme final : public ProofLabelingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "pi-distance"; }
  [[nodiscard]] std::vector<Label> mark(const ConfigGraph& cfg) const override;
  [[nodiscard]] bool verify(const LocalView& view) const override;

  [[nodiscard]] const DistanceLabelingScheme& implicit_scheme() const {
    return imp_;
  }

 private:
  DistanceLabelingScheme imp_;
};

class RoutingProofScheme final : public ProofLabelingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "pi-routing"; }
  [[nodiscard]] std::vector<Label> mark(const ConfigGraph& cfg) const override;
  [[nodiscard]] bool verify(const LocalView& view) const override;

  [[nodiscard]] const RoutingLabelingScheme& implicit_scheme() const {
    return imp_;
  }

 private:
  RoutingLabelingScheme imp_;
};

}  // namespace mstv
