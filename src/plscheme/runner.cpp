#include "plscheme/runner.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace mstv {

LocalView make_local_view(const ConfigGraph& cfg, VertexId v,
                          const std::vector<Label>& labels) {
  MSTV_EXPECTS(labels.size() == cfg.size());
  LocalView view;
  view.v = v;
  view.state = &cfg.state(v);
  view.label = &labels[v];
  const auto ports = cfg.graph().ports(v);
  view.neighbors.reserve(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    view.neighbors.push_back(NeighborView{
        static_cast<PortNumber>(i + 1), ports[i].weight,
        &labels[ports[i].neighbor]});
  }
  return view;
}

VerificationResult run_verifier(const ProofLabelingScheme& scheme,
                                const ConfigGraph& cfg,
                                const std::vector<Label>& labels) {
  MSTV_SPAN("verifier.run");
  VerificationResult r;
  r.num_vertices = cfg.size();
  for (const Label& l : labels) {
    r.max_label_bits = std::max(r.max_label_bits, l.size_bits());
    r.total_label_bits += l.size_bits();
  }
  // Receiver-side message accounting: each node reads one label per
  // incident edge, so the totals match the sender-side sums of
  // SimNetwork::verification_round exactly.
  std::size_t messages = 0;
  std::size_t bits = 0;
  for (VertexId v = 0; v < cfg.size(); ++v) {
    const LocalView view = make_local_view(cfg, v, labels);
    messages += view.neighbors.size();
    for (const NeighborView& nb : view.neighbors) {
      bits += nb.label->size_bits();
    }
    bool ok;
    {
      MSTV_SCOPED_TIMER_US("verify.node_time_us");
      try {
        ok = scheme.verify(view);
      } catch (const PreconditionError&) {
        ok = false;  // malformed/forged label: reject locally
      }
    }
    if (!ok) r.rejecting.push_back(v);
  }
  r.accepted = r.rejecting.empty();
  MSTV_COUNTER_ADD("verify.rounds", 1);
  MSTV_COUNTER_ADD("verify.nodes", r.num_vertices);
  MSTV_COUNTER_ADD("verify.messages", messages);
  MSTV_COUNTER_ADD("verify.bits_total", bits);
  MSTV_COUNTER_ADD("verify.rejections", r.rejecting.size());
  MSTV_COUNTER_ADD("label.bits_total", r.total_label_bits);
  MSTV_GAUGE_SET("label.max_bits", r.max_label_bits);
  MSTV_GAUGE_SET("label.avg_bits", r.avg_label_bits());
  return r;
}

VerificationResult mark_and_verify(const ProofLabelingScheme& scheme,
                                   const ConfigGraph& cfg) {
  return run_verifier(scheme, cfg, scheme.mark(cfg));
}

}  // namespace mstv
