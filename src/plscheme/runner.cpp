#include "plscheme/runner.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "store/snapshot.hpp"

namespace mstv {

LocalView make_local_view(const ConfigGraph& cfg, VertexId v,
                          const std::vector<Label>& labels) {
  MSTV_EXPECTS(labels.size() == cfg.size());
  LocalView view;
  view.v = v;
  view.state = &cfg.state(v);
  view.label = &labels[v];
  const auto ports = cfg.graph().ports(v);
  view.neighbors.reserve(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    view.neighbors.push_back(NeighborView{
        static_cast<PortNumber>(i + 1), ports[i].weight,
        &labels[ports[i].neighbor]});
  }
  return view;
}

VerificationResult run_verifier(const ProofLabelingScheme& scheme,
                                const ConfigGraph& cfg,
                                const std::vector<Label>& labels) {
  MSTV_SPAN("verifier.run");
  MSTV_EXPECTS(labels.size() == cfg.size());
  VerificationResult r;
  r.num_vertices = cfg.size();
  for (const Label& l : labels) {
    r.max_label_bits = std::max(r.max_label_bits, l.size_bits());
    r.total_label_bits += l.size_bits();
  }

#ifndef MSTV_OBS_DISABLED
  // Resolved once, outside the sharded loop: the name lookup takes the
  // registry mutex, but Histogram::observe itself is lock-free, so the
  // per-node timer never serializes the workers.
  obs::Histogram& node_time_hist =
      obs::Registry::global().histogram("verify.node_time_us");
#endif

  // Each shard verifies a contiguous vertex range and reports its local
  // message/bit/rejector tallies; the shard-ordered merge reproduces the
  // serial left-to-right pass exactly (rejecting stays sorted ascending).
  //
  // Receiver-side message accounting: each node reads one label per
  // incident edge, so the totals match the sender-side sums of
  // SimNetwork::verification_round exactly.
  struct ShardOut {
    std::size_t messages = 0;
    std::size_t bits = 0;
    std::vector<VertexId> rejecting;
  };
  ShardOut total = parallel::sharded_reduce<ShardOut>(
      cfg.size(), ShardOut{},
      [&](const parallel::ShardRange& shard) {
        ShardOut out;
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          const auto v = static_cast<VertexId>(i);
          const LocalView view = make_local_view(cfg, v, labels);
          out.messages += view.neighbors.size();
          for (const NeighborView& nb : view.neighbors) {
            out.bits += nb.label->size_bits();
          }
          bool ok;
          {
#ifndef MSTV_OBS_DISABLED
            const obs::ScopedTimerUs node_timer(node_time_hist);
#endif
            try {
              ok = scheme.verify(view);
            } catch (const PreconditionError&) {
              ok = false;  // malformed/forged label: reject locally
            }
          }
          if (!ok) out.rejecting.push_back(v);
        }
        return out;
      },
      [](ShardOut& acc, ShardOut&& part) {
        acc.messages += part.messages;
        acc.bits += part.bits;
        acc.rejecting.insert(acc.rejecting.end(), part.rejecting.begin(),
                             part.rejecting.end());
      });
  r.rejecting = std::move(total.rejecting);
  r.accepted = r.rejecting.empty();
  MSTV_COUNTER_ADD("verify.rounds", 1);
  MSTV_COUNTER_ADD("verify.nodes", r.num_vertices);
  MSTV_COUNTER_ADD("verify.messages", total.messages);
  MSTV_COUNTER_ADD("verify.bits_total", total.bits);
  MSTV_COUNTER_ADD("verify.rejections", r.rejecting.size());
  MSTV_COUNTER_ADD("label.bits_total", r.total_label_bits);
  MSTV_GAUGE_SET("label.max_bits", r.max_label_bits);
  MSTV_GAUGE_SET("label.avg_bits", r.avg_label_bits());
  return r;
}

VerificationResult run_verifier(const ProofLabelingScheme& scheme,
                                const ConfigGraph& cfg,
                                const store::LabelStore& snapshot) {
  MSTV_EXPECTS_MSG(snapshot.size() == cfg.size(),
                   "snapshot label count does not match the configuration");
  // Block decode (store.decode span), then the standard sharded verify:
  // label bit-identity makes everything downstream bit-identical too.
  return run_verifier(scheme, cfg, snapshot.decode_all());
}

VerificationResult mark_and_verify(const ProofLabelingScheme& scheme,
                                   const ConfigGraph& cfg) {
  return run_verifier(scheme, cfg, scheme.mark(cfg));
}

}  // namespace mstv
