#include "plscheme/runner.hpp"

#include <algorithm>

namespace mstv {

LocalView make_local_view(const ConfigGraph& cfg, VertexId v,
                          const std::vector<Label>& labels) {
  MSTV_EXPECTS(labels.size() == cfg.size());
  LocalView view;
  view.v = v;
  view.state = &cfg.state(v);
  view.label = &labels[v];
  const auto ports = cfg.graph().ports(v);
  view.neighbors.reserve(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    view.neighbors.push_back(NeighborView{
        static_cast<PortNumber>(i + 1), ports[i].weight,
        &labels[ports[i].neighbor]});
  }
  return view;
}

VerificationResult run_verifier(const ProofLabelingScheme& scheme,
                                const ConfigGraph& cfg,
                                const std::vector<Label>& labels) {
  VerificationResult r;
  r.num_vertices = cfg.size();
  for (const Label& l : labels) {
    r.max_label_bits = std::max(r.max_label_bits, l.size_bits());
    r.total_label_bits += l.size_bits();
  }
  for (VertexId v = 0; v < cfg.size(); ++v) {
    const LocalView view = make_local_view(cfg, v, labels);
    bool ok;
    try {
      ok = scheme.verify(view);
    } catch (const PreconditionError&) {
      ok = false;  // malformed/forged label: reject locally
    }
    if (!ok) r.rejecting.push_back(v);
  }
  r.accepted = r.rejecting.empty();
  return r;
}

VerificationResult mark_and_verify(const ProofLabelingScheme& scheme,
                                   const ConfigGraph& cfg) {
  return run_verifier(scheme, cfg, scheme.mark(cfg));
}

}  // namespace mstv
