// Spanning-tree + orientation proof labeling sub-scheme (O(log n) bits).
//
// This is step (1) of the paper's split ("verifying an MST can be split
// into two: (1) verify the subgraph induced by the states is a spanning
// tree, (2) verify it is minimal" — Lemma 4.3 of [KKP05]), a direct
// translation of self-stabilizing rooted-tree protocols [AKY90, AfekDolev].
//
// Sublabel per node: (id copy, parent id or none, root id, distance).
// Local checks at v:
//   * the id copy equals the id in v's state (ids are trusted unique in
//     id-based families — the model's promise),
//   * root: no parent pointer, distance 0, own id equals the root id;
//   * non-root: the neighbor across the state's parent port carries
//     distance dist-1 and the id named as v's parent;
//   * every neighbor (over ALL graph edges) advertises the same root id.
// Strictly decreasing distances kill cycles; unique ids kill second roots;
// a shared root id over a connected graph kills forests.  Together the
// parent pointers must induce a spanning tree.
//
// The sublabel doubles as the orientation service for pi_Gamma / pi_mst:
// from labels alone, a node can classify a tree neighbor as its parent
// (own state's port) or child (the neighbor's parent id equals own id).
#pragma once

#include <optional>

#include "plscheme/scheme.hpp"

namespace mstv {

class RootedTree;

/// Decoded form of the sublabel.
struct SpanningTreeSublabel {
  std::uint64_t id_copy = 0;
  std::optional<std::uint64_t> parent_id;
  std::uint64_t root_id = 0;
  std::uint64_t dist = 0;

  friend bool operator==(const SpanningTreeSublabel&,
                         const SpanningTreeSublabel&) = default;
};

/// Serialization shared with the composed schemes: the sublabel is written
/// into / parsed out of a larger label's bit stream.
void write_spanning_tree_sublabel(BitWriter& w, const SpanningTreeSublabel& s);
SpanningTreeSublabel read_spanning_tree_sublabel(BitReader& r);

/// Computes the genuine sublabels for a configuration whose states encode
/// a spanning tree (throws if they do not).
std::vector<SpanningTreeSublabel> make_spanning_tree_sublabels(
    const ConfigGraph& cfg);

/// Same, over an already-rooted tree of the configuration — markers that
/// build a RootedTree anyway pass it in instead of paying for a second
/// construction.  `tree` must be rooted at the configuration's root.
std::vector<SpanningTreeSublabel> make_spanning_tree_sublabels(
    const ConfigGraph& cfg, const RootedTree& tree);

/// The local checks, exposed for composition.  `neighbor_sub[i]` is the
/// parsed sublabel of the neighbor behind port i+1.  Returns false iff any
/// check fails.
bool check_spanning_tree_sublabel(const State& state,
                                  const SpanningTreeSublabel& own,
                                  const std::vector<SpanningTreeSublabel>&
                                      neighbor_sub);

/// Standalone scheme wrapping the sublabel (for direct tests/benches).
class SpanningTreeScheme final : public ProofLabelingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "spanning-tree"; }
  [[nodiscard]] std::vector<Label> mark(const ConfigGraph& cfg) const override;
  [[nodiscard]] bool verify(const LocalView& view) const override;
};

}  // namespace mstv
