// The proof labeling scheme interface pi = <M, V> (Section 2).
//
// The marker M is centralized ("it is not required that the marker be
// distributed") and may inspect the whole configuration graph.  The
// verifier V is local: it runs independently at each node and sees only
// N_L(v) — the node's own state and label plus, per incident edge, the
// port number, the edge weight and the *label* (never the state) of the
// neighbor.  LocalView is the faithful encoding of N_L(v); the runner and
// the simulated network construct it strictly from that information, so a
// verifier cannot cheat even accidentally.
#pragma once

#include <string>
#include <vector>

#include "plscheme/config_graph.hpp"

namespace mstv {

/// One field of N'_L(v): what v knows about the neighbor across one port.
struct NeighborView {
  PortNumber port = 0;          // v's own port number for this edge
  Weight weight = 0;            // omega(e)
  const Label* label = nullptr; // L(u)
};

/// N_L(v): own state + own label + the neighbor fields.
struct LocalView {
  /// The global vertex index.  Provided for diagnostics/error messages
  /// only; verifiers must not branch on it (they would not have it in a
  /// real network).
  VertexId v = kInvalidVertex;

  const State* state = nullptr;
  const Label* label = nullptr;
  std::vector<NeighborView> neighbors;  // index i <-> port i+1
};

class ProofLabelingScheme {
 public:
  virtual ~ProofLabelingScheme() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Marker M: a label per vertex.  Preconditions: the configuration
  /// satisfies the scheme's predicate f (markers are only ever run on
  /// yes-instances; on no-instances *every* labeling must be rejected).
  [[nodiscard]] virtual std::vector<Label> mark(const ConfigGraph& cfg) const = 0;

  /// Verifier V at one node.  Must treat malformed labels as rejection by
  /// throwing PreconditionError (the runner converts that to "reject");
  /// returning false is equivalent.
  [[nodiscard]] virtual bool verify(const LocalView& view) const = 0;
};

}  // namespace mstv
