// The Agreement scheme of Lemma 2.2 — the paper's worked example.
//
// Problem: all nodes must hold identical states (payloads from
// S = {1..2^m}).  The scheme copies the state into the label; each node
// verifies its label equals its own payload and every neighbor's label.
// Proof size Theta(m): the label is exactly the m-bit payload, and the
// lemma's counting argument shows m/2 bits are necessary — bench E9
// measures the former, tests exercise both directions.
#pragma once

#include "plscheme/scheme.hpp"

namespace mstv {

class AgreementScheme final : public ProofLabelingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "agreement"; }

  [[nodiscard]] std::vector<Label> mark(const ConfigGraph& cfg) const override;

  [[nodiscard]] bool verify(const LocalView& view) const override;
};

/// f_Agreement: all payloads equal.
bool agreement_predicate(const ConfigGraph& cfg);

}  // namespace mstv
