#include "plscheme/tree_proof_schemes.hpp"

#include <algorithm>
#include <utility>

#include "plscheme/gamma_scheme.hpp"
#include "plscheme/spanning_tree_scheme.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {
namespace {

// ---------------------------------------------------------------------
// Payload policies: what the per-level fields are and how they fold.
// ---------------------------------------------------------------------

struct DistancePolicy {
  using ImplicitScheme = DistanceLabelingScheme;
  using ImplicitLabel = DistanceLabel;

  static const std::vector<std::uint64_t>& rho(const ImplicitLabel& l) {
    return l.rho;
  }
  static bool well_shaped(const ImplicitLabel& l, std::uint32_t level) {
    return l.dist.size() + 1 == level;
  }
  /// Distance contribution of a neighbor at level k ('*' contributes 0).
  static Weight field(const ImplicitLabel& l,
                      const std::vector<Orient>& orient, std::uint32_t k) {
    return orient[k - 1] == Orient::Self ? Weight{0} : l.dist[k - 1];
  }
  /// Condition 7/8 with + in place of max.
  static bool check_fold(const ImplicitLabel& self, std::uint32_t k,
                         const ImplicitLabel& via,
                         const std::vector<Orient>& via_orient, Weight w,
                         PortNumber /*port_to_via*/) {
    return self.dist[k - 1] == field(via, via_orient, k) + w;
  }
  /// No extra per-branch data.
  static bool check_branch_prefix(const ImplicitLabel&, const ImplicitLabel&,
                                  std::uint32_t) {
    return true;
  }
  static bool check_at_separator(const ImplicitLabel&, std::uint32_t,
                                 PortNumber) {
    return true;
  }
};

struct RoutingPolicy {
  using ImplicitScheme = RoutingLabelingScheme;
  using ImplicitLabel = RoutingLabel;

  static const std::vector<std::uint64_t>& rho(const ImplicitLabel& l) {
    return l.rho;
  }
  static bool well_shaped(const ImplicitLabel& l, std::uint32_t level) {
    return l.toward.size() + 1 == level &&
           l.branch_port.size() + 1 == level;
  }
  /// The `toward` entry must name the port by which the fold arrived.
  static bool check_fold(const ImplicitLabel& self, std::uint32_t k,
                         const ImplicitLabel& /*via*/,
                         const std::vector<Orient>& /*via_orient*/,
                         Weight /*w*/, PortNumber port_to_via) {
    return self.toward[k - 1] == port_to_via;
  }
  /// Vertices of the same subtree of the level-(j+1) separator share its
  /// entry port; adjacency propagates the equality down the branch.
  static bool check_branch_prefix(const ImplicitLabel& a,
                                  const ImplicitLabel& b,
                                  std::uint32_t upto) {
    for (std::uint32_t j = 0; j < upto; ++j) {
      if (a.branch_port[j] != b.branch_port[j]) return false;
    }
    return true;
  }
  /// The separator itself anchors the induction: a neighbor that is in
  /// one of its subtrees must carry exactly the separator's port to it.
  static bool check_at_separator(const ImplicitLabel& deep_neighbor,
                                 std::uint32_t k, PortNumber my_port) {
    return deep_neighbor.branch_port[k - 1] == my_port;
  }
};

// ---------------------------------------------------------------------
// Shared skeleton.
// ---------------------------------------------------------------------

template <typename Policy>
struct Node {
  std::vector<Orient> orient;
  typename Policy::ImplicitLabel imp;

  [[nodiscard]] std::uint32_t level() const {
    return static_cast<std::uint32_t>(orient.size());
  }
};

template <typename Policy>
struct Parsed {
  SpanningTreeSublabel st;
  Node<Policy> node;
  Label state_copy;
};

template <typename Policy>
Parsed<Policy> parse_label(const Label& label,
                           const typename Policy::ImplicitScheme& imp) {
  BitReader r = label.reader();
  Parsed<Policy> p;
  p.st = read_spanning_tree_sublabel(r);
  p.node.orient = read_orient_fields(r);
  const std::uint64_t copy_bits = r.read_gamma0();
  MSTV_EXPECTS_MSG(copy_bits <= r.remaining(), "corrupt label: copy length");
  BitWriter w;
  for (std::uint64_t i = 0; i < copy_bits; ++i) w.write_bit(r.read_bit());
  p.state_copy = Label(std::move(w));
  MSTV_EXPECTS_MSG(r.exhausted(), "corrupt label: trailing bits");
  p.node.imp = imp.from_bits(p.state_copy);
  return p;
}

template <typename Policy>
std::vector<Label> mark_impl(const ConfigGraph& cfg,
                             const typename Policy::ImplicitScheme& imp) {
  const Graph& g = cfg.graph();
  MSTV_EXPECTS_MSG(g.num_edges() + 1 == g.num_vertices(),
                   "tree-labeling proof schemes are defined over trees");
  const auto st = make_spanning_tree_sublabels(cfg);
  VertexId root = kInvalidVertex;
  for (VertexId v = 0; v < cfg.size(); ++v) {
    if (!cfg.state(v).parent_port) root = v;
  }
  const RootedTree tree(g, root);

  std::vector<std::vector<std::uint64_t>> rho;
  rho.reserve(cfg.size());
  for (VertexId v = 0; v < cfg.size(); ++v) {
    rho.push_back(Policy::rho(imp.from_bits(cfg.state(v).payload)));
  }
  const auto ancestors = recover_separator_ancestors_from_rho(rho);

  std::vector<Label> labels;
  labels.reserve(cfg.size());
  for (VertexId v = 0; v < cfg.size(); ++v) {
    BitWriter w;
    write_spanning_tree_sublabel(w, st[v]);
    write_orient_fields(w, orient_from_ancestors(tree, v, ancestors[v]));
    w.write_gamma0(cfg.state(v).payload.size_bits());
    BitReader r = cfg.state(v).payload.reader();
    while (!r.exhausted()) w.write_bit(r.read_bit());
    labels.emplace_back(w);
  }
  return labels;
}

template <typename Policy>
struct NeighborRef {
  const Node<Policy>* node;
  Weight weight;
  PortNumber port;  // our port to this neighbor
};

template <typename Policy>
bool verify_conditions(const Node<Policy>& self,
                       const NeighborRef<Policy>* parent,
                       const std::vector<NeighborRef<Policy>>& children) {
  const std::uint32_t l = self.level();

  const auto well_shaped = [](const Node<Policy>& node) {
    const std::uint32_t lv = node.level();
    if (lv == 0) return false;
    if (Policy::rho(node.imp).size() + 1 != lv) return false;
    if (!Policy::well_shaped(node.imp, lv)) return false;
    if (node.orient[lv - 1] != Orient::Self) return false;
    for (std::uint32_t k = 0; k + 1 < lv; ++k) {
      if (node.orient[k] == Orient::Self) return false;
    }
    return true;
  };
  if (!well_shaped(self)) return false;
  if (parent != nullptr && !well_shaped(*parent->node)) return false;
  for (const auto& c : children) {
    if (!well_shaped(*c.node)) return false;
  }

  // Condition 5 analog: E_sep prefixes (and per-branch data) agree with
  // every tree neighbor up to the smaller level.
  const auto check_prefix = [&](const Node<Policy>& w) {
    const std::uint32_t m = std::min(l, w.level());
    for (std::uint32_t j = 0; j + 1 < m; ++j) {
      if (Policy::rho(self.imp)[j] != Policy::rho(w.imp)[j]) return false;
    }
    return m < 2 || Policy::check_branch_prefix(self.imp, w.imp, m - 1);
  };
  if (parent != nullptr && !check_prefix(*parent->node)) return false;
  for (const auto& c : children) {
    if (!check_prefix(*c.node)) return false;
  }

  for (std::uint32_t k = 1; k <= l; ++k) {
    const Orient o = self.orient[k - 1];

    if (o == Orient::Up) {
      if (parent == nullptr) return false;
      const Node<Policy>& p = *parent->node;
      if (p.level() < k) return false;
      for (const auto& c : children) {
        if (c.node->level() >= k && c.node->orient[k - 1] != Orient::Up) {
          return false;
        }
      }
      if (!Policy::check_fold(self.imp, k, p.imp, p.orient, parent->weight,
                              parent->port)) {
        return false;
      }

    } else if (o == Orient::Down) {
      const NeighborRef<Policy>* next = nullptr;
      for (const auto& c : children) {
        if (c.node->level() >= k && c.node->orient[k - 1] != Orient::Up) {
          if (next != nullptr) return false;
          next = &c;
        }
      }
      if (next == nullptr) return false;
      if (parent != nullptr && parent->node->level() >= k &&
          parent->node->orient[k - 1] != Orient::Down) {
        return false;
      }
      if (!Policy::check_fold(self.imp, k, next->node->imp,
                              next->node->orient, next->weight,
                              next->port)) {
        return false;
      }

    } else {  // Self: k == l.
      std::vector<std::uint64_t> subtree_numbers;
      const auto check_deep = [&](const NeighborRef<Policy>& w,
                                  bool w_is_parent) {
        if (w.node->level() < l) return true;
        if (w.node->level() == l) return false;
        if (w_is_parent && w.node->orient[l - 1] != Orient::Down) {
          return false;
        }
        if (!w_is_parent && w.node->orient[l - 1] != Orient::Up) {
          return false;
        }
        subtree_numbers.push_back(Policy::rho(w.node->imp)[l - 1]);
        // The separator anchors the per-branch data of its neighbors.
        return Policy::check_at_separator(w.node->imp, l, w.port);
      };
      if (parent != nullptr && !check_deep(*parent, true)) return false;
      for (const auto& c : children) {
        if (!check_deep(c, false)) return false;
      }
      std::sort(subtree_numbers.begin(), subtree_numbers.end());
      if (std::adjacent_find(subtree_numbers.begin(),
                             subtree_numbers.end()) !=
          subtree_numbers.end()) {
        return false;
      }
    }
  }
  return true;
}

template <typename Policy>
bool verify_impl(const LocalView& view,
                 const typename Policy::ImplicitScheme& imp) {
  const Parsed<Policy> own = parse_label<Policy>(*view.label, imp);
  if (own.state_copy != view.state->payload) return false;  // condition 1

  std::vector<Parsed<Policy>> nbs;
  nbs.reserve(view.neighbors.size());
  for (const NeighborView& nb : view.neighbors) {
    nbs.push_back(parse_label<Policy>(*nb.label, imp));
  }

  {
    std::vector<SpanningTreeSublabel> st_nbs;
    st_nbs.reserve(nbs.size());
    for (const auto& p : nbs) st_nbs.push_back(p.st);
    if (!check_spanning_tree_sublabel(*view.state, own.st, st_nbs)) {
      return false;
    }
  }

  const NeighborRef<Policy>* parent_ref = nullptr;
  NeighborRef<Policy> parent_store{};
  std::vector<NeighborRef<Policy>> children;
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    const bool is_parent =
        view.state->parent_port &&
        *view.state->parent_port == view.neighbors[i].port;
    if (is_parent) {
      parent_store = NeighborRef<Policy>{&nbs[i].node,
                                         view.neighbors[i].weight,
                                         view.neighbors[i].port};
      parent_ref = &parent_store;
    } else if (nbs[i].st.parent_id &&
               *nbs[i].st.parent_id == own.st.id_copy) {
      children.push_back(NeighborRef<Policy>{
          &nbs[i].node, view.neighbors[i].weight, view.neighbors[i].port});
    } else {
      return false;  // tree family: every edge must be accounted for
    }
  }
  return verify_conditions<Policy>(own.node, parent_ref, children);
}

}  // namespace

std::vector<Label> DistanceProofScheme::mark(const ConfigGraph& cfg) const {
  return mark_impl<DistancePolicy>(cfg, imp_);
}

bool DistanceProofScheme::verify(const LocalView& view) const {
  return verify_impl<DistancePolicy>(view, imp_);
}

std::vector<Label> RoutingProofScheme::mark(const ConfigGraph& cfg) const {
  return mark_impl<RoutingPolicy>(cfg, imp_);
}

bool RoutingProofScheme::verify(const LocalView& view) const {
  return verify_impl<RoutingPolicy>(view, imp_);
}

}  // namespace mstv
