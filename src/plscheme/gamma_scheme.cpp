#include "plscheme/gamma_scheme.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {

void write_orient_fields(BitWriter& w, const std::vector<Orient>& orient) {
  w.write_gamma0(orient.size());
  for (const Orient o : orient) {
    w.write_uint(static_cast<std::uint64_t>(o), 2);
  }
}

std::vector<Orient> read_orient_fields(BitReader& r) {
  const std::uint64_t count = r.read_gamma0();
  MSTV_EXPECTS_MSG(count <= r.remaining() / 2 + 1,
                   "corrupt label: absurd orient count");
  std::vector<Orient> orient(count);
  for (auto& o : orient) {
    const auto raw = r.read_uint(2);
    MSTV_EXPECTS_MSG(raw <= 2, "corrupt label: bad orient value");
    o = static_cast<Orient>(raw);
  }
  return orient;
}

namespace {

Orient orient_of(const RootedTree& tree, VertexId v, VertexId s) {
  if (s == v) return Orient::Self;
  // Down: the separator is below v in the rooted tree.
  return tree.is_ancestor(v, s) ? Orient::Down : Orient::Up;
}

}  // namespace

std::vector<std::vector<Orient>> compute_orient_fields(
    const RootedTree& tree, const SeparatorDecomposition& sd) {
  const std::size_t n = tree.size();
  std::vector<std::vector<Orient>> out(n);
  // Rows are independent — shard over the vertex range.
  parallel::for_each_shard(n, [&](const parallel::ShardRange& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const auto v = static_cast<VertexId>(i);
      const auto anc = sd.ancestors(v);
      out[v].resize(anc.size());
      for (std::size_t k = 0; k < anc.size(); ++k) {
        out[v][k] = orient_of(tree, v, anc[k]);
      }
      MSTV_ASSERT(out[v].back() == Orient::Self);
    }
  });
  return out;
}

void write_orient_fields_direct(BitWriter& w, const RootedTree& tree,
                                const SeparatorDecomposition& sd, VertexId v) {
  const auto anc = sd.ancestors(v);
  w.write_gamma0(anc.size());
  for (const VertexId s : anc) {
    w.write_uint(static_cast<std::uint64_t>(orient_of(tree, v, s)), 2);
  }
}

bool verify_gamma_conditions(const GammaNode& self,
                             const GammaNeighborRef* parent,
                             const std::vector<GammaNeighborRef>& children) {
  const std::uint32_t l = self.level();

  // Field-count discipline (condition 4 adapted to the trimmed
  // representation): orient has l fields, rho/extrema have l-1 each, and
  // '*' appears exactly once, at position l.  The same shape is required
  // of every neighbor's label before any of its fields are indexed — a
  // malformed neighbor label is a local, visible reason to reject.
  const auto well_shaped = [](const GammaNode& node) {
    const std::uint32_t lv = node.level();
    if (lv == 0) return false;
    if (node.imp.rho.size() + 1 != lv) return false;
    if (node.imp.extrema.size() + 1 != lv) return false;
    if (node.orient[lv - 1] != Orient::Self) return false;
    for (std::uint32_t k = 0; k + 1 < lv; ++k) {
      if (node.orient[k] == Orient::Self) return false;
    }
    return true;
  };
  if (!well_shaped(self)) return false;
  if (parent != nullptr && !well_shaped(*parent->node)) return false;
  for (const auto& c : children) {
    if (!well_shaped(*c.node)) return false;
  }

  // Condition 5: E_sep prefixes agree with every tree neighbor up to the
  // smaller level (field 1 is the shared constant; field j+1 <-> rho[j-1]).
  auto check_prefix = [&](const GammaNode& w) {
    const std::uint32_t m = std::min(l, w.level());
    for (std::uint32_t j = 0; j + 1 < m; ++j) {
      if (self.imp.rho[j] != w.imp.rho[j]) return false;
    }
    return true;
  };
  if (parent != nullptr && !check_prefix(*parent->node)) return false;
  for (const auto& c : children) {
    if (!check_prefix(*c.node)) return false;
  }

  // The E_omega field of a neighbor w at level k, treating the separator
  // itself (orient '*') as contributing the identity (its trivial last
  // field, which is not transmitted).
  auto omega_field = [](const GammaNode& w, std::uint32_t k) -> Weight {
    MSTV_ASSERT(w.level() >= k);
    if (w.orient[k - 1] == Orient::Self) return 0;  // trivial field
    MSTV_ASSERT(w.imp.extrema.size() >= k);
    return w.imp.extrema[k - 1];
  };

  for (std::uint32_t k = 1; k <= l; ++k) {
    const Orient o = self.orient[k - 1];

    if (o == Orient::Up) {
      // Condition 2: not the root, the parent carries a field k, and every
      // child that carries a field k agrees the separator is above.
      if (parent == nullptr) return false;
      const GammaNode& p = *parent->node;
      if (p.level() < k) return false;
      for (const auto& c : children) {
        if (c.node->level() >= k && c.node->orient[k - 1] != Orient::Up) {
          return false;
        }
      }
      // Condition 7: E_omega_k folds the parent edge into the parent's
      // field ("if L_orient_k(p(v)) = * then omega, else max(..., omega)").
      const Weight expected =
          std::max(omega_field(p, k), parent->weight);
      if (self.imp.extrema[k - 1] != expected) return false;

    } else if (o == Orient::Down) {
      // Condition 3: exactly one child continues toward the separator, and
      // the parent (if it carries field k) also sees it below.
      const GammaNeighborRef* next = nullptr;
      for (const auto& c : children) {
        if (c.node->level() >= k && c.node->orient[k - 1] != Orient::Up) {
          if (next != nullptr) return false;
          next = &c;
        }
      }
      if (next == nullptr) return false;
      if (parent != nullptr && parent->node->level() >= k &&
          parent->node->orient[k - 1] != Orient::Down) {
        return false;
      }
      // Condition 8: fold the edge toward that child.
      const Weight expected =
          std::max(omega_field(*next->node, k), next->weight);
      if (self.imp.extrema[k - 1] != expected) return false;

    } else {  // Orient::Self, k == l: v is its own level-l separator.
      // Condition 6: neighbors at level >= l must be strictly deeper (6a),
      // oriented consistently (6b: parent sees the separator below it,
      // children see it above), and lie in pairwise-distinct subtrees of v
      // (6c: their E_sep field l+1, i.e. rho[l-1], are all different).
      std::vector<std::uint64_t> subtree_numbers;
      auto check_deep_neighbor = [&](const GammaNode& w, bool w_is_parent) {
        if (w.level() < l) return true;  // no field to check
        if (w.level() == l) return false;                       // 6a
        if (w_is_parent && w.orient[l - 1] != Orient::Down) return false;
        if (!w_is_parent && w.orient[l - 1] != Orient::Up) return false;
        MSTV_ASSERT(w.imp.rho.size() >= l);
        subtree_numbers.push_back(w.imp.rho[l - 1]);             // 6c
        return true;
      };
      if (parent != nullptr && !check_deep_neighbor(*parent->node, true)) {
        return false;
      }
      for (const auto& c : children) {
        if (!check_deep_neighbor(*c.node, false)) return false;
      }
      std::sort(subtree_numbers.begin(), subtree_numbers.end());
      if (std::adjacent_find(subtree_numbers.begin(), subtree_numbers.end())
          != subtree_numbers.end()) {
        return false;
      }
    }
  }
  return true;
}

std::vector<std::vector<VertexId>> recover_separator_ancestors_from_rho(
    const std::vector<std::vector<std::uint64_t>>& rho) {
  const std::size_t n = rho.size();
  // Map each rho prefix to the unique vertex whose full rho equals it.
  std::map<std::vector<std::uint64_t>, VertexId> by_prefix;
  for (VertexId v = 0; v < n; ++v) {
    const bool fresh = by_prefix.emplace(rho[v], v).second;
    MSTV_EXPECTS_MSG(fresh, "two vertices share a full E_sep sequence");
  }
  std::vector<std::vector<VertexId>> anc(n);
  for (VertexId v = 0; v < n; ++v) {
    anc[v].reserve(rho[v].size() + 1);
    for (std::size_t k = 0; k <= rho[v].size(); ++k) {
      const std::vector<std::uint64_t> prefix(
          rho[v].begin(), rho[v].begin() + static_cast<std::ptrdiff_t>(k));
      const auto it = by_prefix.find(prefix);
      MSTV_EXPECTS_MSG(it != by_prefix.end(),
                       "no separator for an E_sep prefix");
      anc[v].push_back(it->second);
    }
  }
  return anc;
}

std::vector<std::vector<VertexId>> recover_separator_ancestors(
    const std::vector<ExtremaLabel>& imps) {
  std::vector<std::vector<std::uint64_t>> rho;
  rho.reserve(imps.size());
  for (const auto& l : imps) rho.push_back(l.rho);
  return recover_separator_ancestors_from_rho(rho);
}

std::vector<Orient> orient_from_ancestors(const RootedTree& tree, VertexId v,
                                          const std::vector<VertexId>& anc) {
  std::vector<Orient> orient(anc.size());
  for (std::size_t k = 0; k < anc.size(); ++k) {
    const VertexId s = anc[k];
    orient[k] = (s == v)                  ? Orient::Self
                : tree.is_ancestor(v, s) ? Orient::Down
                                          : Orient::Up;
  }
  return orient;
}

std::vector<Label> GammaScheme::mark(const ConfigGraph& cfg) const {
  MSTV_SPAN("marker.assign_labels");
  const Graph& g = cfg.graph();
  MSTV_EXPECTS_MSG(g.num_edges() + 1 == g.num_vertices(),
                   "pi_Gamma is defined over tree families");

  // Spanning-tree sublabels (also identifies the root and the orientation).
  const auto st = make_spanning_tree_sublabels(cfg);
  VertexId root = kInvalidVertex;
  for (VertexId v = 0; v < cfg.size(); ++v) {
    if (!cfg.state(v).parent_port) root = v;
  }
  const RootedTree tree(g, root);

  // Decode the claimed implicit labels from the states and recover the
  // separator structure the (unknown) member of Gamma used.
  std::vector<ExtremaLabel> imps;
  imps.reserve(cfg.size());
  for (VertexId v = 0; v < cfg.size(); ++v) {
    imps.push_back(imp_.from_bits(cfg.state(v).payload));
  }
  const auto ancestors = recover_separator_ancestors(imps);

  // Per-node label assembly shards over the vertex range once the shared
  // tree + ancestor recovery above is done.
  struct BitBudget {
    std::size_t st = 0, orient = 0, state_copy = 0;
  };
  std::vector<Label> labels(cfg.size());
  const BitBudget bits = parallel::sharded_reduce<BitBudget>(
      cfg.size(), BitBudget{},
      [&](const parallel::ShardRange& shard) {
        BitBudget b;
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          const auto v = static_cast<VertexId>(i);
          // Orientation flags from the recovered ancestors.
          std::vector<Orient> orient(ancestors[v].size());
          for (std::size_t k = 0; k < ancestors[v].size(); ++k) {
            const VertexId s = ancestors[v][k];
            orient[k] = (s == v) ? Orient::Self
                        : tree.is_ancestor(v, s) ? Orient::Down
                                                 : Orient::Up;
          }
          BitWriter w;
          write_spanning_tree_sublabel(w, st[v]);
          const std::size_t after_st = w.size_bits();
          write_orient_fields(w, orient);
          const std::size_t after_orient = w.size_bits();
          // M_state: the copy of the state (the claimed implicit label).
          w.write_gamma0(cfg.state(v).payload.size_bits());
          {
            BitReader r = cfg.state(v).payload.reader();
            while (!r.exhausted()) w.write_bit(r.read_bit());
          }
          b.st += after_st;
          b.orient += after_orient - after_st;
          b.state_copy += w.size_bits() - after_orient;
          labels[v] = Label(std::move(w));
        }
        return b;
      },
      [](BitBudget& acc, BitBudget&& part) {
        acc.st += part.st;
        acc.orient += part.orient;
        acc.state_copy += part.state_copy;
      });
  MSTV_COUNTER_ADD("marker.labels", labels.size());
  MSTV_COUNTER_ADD("label.spanning_tree_bits", bits.st);
  MSTV_COUNTER_ADD("label.orient_bits", bits.orient);
  MSTV_COUNTER_ADD("label.state_copy_bits", bits.state_copy);
  return labels;
}

namespace {

/// Everything parsed out of one pi_Gamma label.
struct ParsedGamma {
  SpanningTreeSublabel st;
  GammaNode node;
  Label state_copy;
};

ParsedGamma parse_gamma_label(const Label& label,
                              const ExtremaLabelingScheme& imp) {
  BitReader r = label.reader();
  ParsedGamma p;
  p.st = read_spanning_tree_sublabel(r);
  p.node.orient = read_orient_fields(r);
  const std::uint64_t copy_bits = r.read_gamma0();
  MSTV_EXPECTS_MSG(copy_bits <= r.remaining(), "corrupt label: copy length");
  BitWriter w;
  for (std::uint64_t i = 0; i < copy_bits; ++i) w.write_bit(r.read_bit());
  p.state_copy = Label(std::move(w));
  MSTV_EXPECTS_MSG(r.exhausted(), "corrupt label: trailing bits");
  p.node.imp = imp.from_bits(p.state_copy);
  return p;
}

}  // namespace

bool GammaScheme::verify(const LocalView& view) const {
  const ParsedGamma own = parse_gamma_label(*view.label, imp_);

  // Condition 1: the label's state copy equals the actual state.
  if (own.state_copy != view.state->payload) return false;

  std::vector<ParsedGamma> nbs;
  nbs.reserve(view.neighbors.size());
  for (const NeighborView& nb : view.neighbors) {
    nbs.push_back(parse_gamma_label(*nb.label, imp_));
  }

  // Spanning tree / orientation checks.
  {
    std::vector<SpanningTreeSublabel> st_nbs;
    st_nbs.reserve(nbs.size());
    for (const auto& p : nbs) st_nbs.push_back(p.st);
    if (!check_spanning_tree_sublabel(*view.state, own.st, st_nbs)) {
      return false;
    }
  }

  // Classify tree neighbors.  Over a tree family every edge must be a tree
  // edge; a neighbor that is neither our parent nor names us as its parent
  // witnesses a non-tree state and is rejected outright.
  const GammaNeighborRef* parent_ref = nullptr;
  GammaNeighborRef parent_store;
  std::vector<GammaNeighborRef> children;
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    const bool is_parent =
        view.state->parent_port &&
        *view.state->parent_port == view.neighbors[i].port;
    if (is_parent) {
      parent_store = GammaNeighborRef{&nbs[i].node, view.neighbors[i].weight};
      parent_ref = &parent_store;
    } else if (nbs[i].st.parent_id &&
               *nbs[i].st.parent_id == own.st.id_copy) {
      children.push_back(
          GammaNeighborRef{&nbs[i].node, view.neighbors[i].weight});
    } else {
      return false;  // edge not accounted for by the spanning tree
    }
  }

  return verify_gamma_conditions(own.node, parent_ref, children);
}

}  // namespace mstv
