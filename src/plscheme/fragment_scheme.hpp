// pi_frag — the prior-art MST proof labeling scheme in the style of
// [KKP05] (the O(log^2 n + log n log W) construction the paper improves).
//
// Instead of certifying the cycle rule with implicit MAX labels, the
// label stores a *Borůvka execution history*: for each of the at most
// ceil(log2 n) phases, the node's fragment identity, its position in the
// fragment's spanning tree, and the fragment's chosen minimum outgoing
// edge (MOE) together with a hop-by-hop witness pointer to it.  A node
// verifies, phase by phase, that
//
//   * its fragment id chains to a real leader through already-added tree
//     edges (fragment trees are genuine, connected, and — because node
//     ids are unique — two distinct fragments can never share an id),
//   * every incident edge leaving the fragment is no better than the
//     fragment's claimed MOE under the tie-broken total order
//     (weight, tree-edge-first, endpoint ids),
//   * the MOE exists: witness pointers walk down the fragment tree with
//     strictly decreasing distance to a node that actually borders it,
//   * every tree edge was, at the phase it claims to have been added, the
//     MOE of one of the two fragments it merged.
//
// Soundness rests on the (blue-rule) cut argument: a tree edge that is
// minimal-outgoing for the set S = { nodes sharing its fragment id } under
// a strict total order belongs to the unique tie-broken MST; n-1 such
// edges force the claimed tree to *be* that MST, hence an MST of the real
// weights.  The tie-break prefers claimed-tree edges, which is what lets
// the scheme accept any MST even when MSTs are not unique.
//
// Label size: O(log n) phases x O(log n + log W) bits — the prior bound.
// Bench E2b compares it against pi_mst head-on.
#pragma once

#include "plscheme/scheme.hpp"

namespace mstv {

class FragmentScheme final : public ProofLabelingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "pi-frag"; }

  /// Marker: replays a deterministic Borůvka run under the tie-broken
  /// order and records the history.  Precondition: states induce an MST.
  [[nodiscard]] std::vector<Label> mark(const ConfigGraph& cfg) const override;

  [[nodiscard]] bool verify(const LocalView& view) const override;
};

}  // namespace mstv
