// pi_Gamma — the proof labeling scheme of Lemma 3.3.
//
// Problem Prob(Gamma): the states of a tree's vertices must equal the
// labels assigned by *some* implicit labeling scheme gamma in the family
// Gamma (Section 3.1).  The marker adds, per vertex:
//
//   * the spanning-tree/orientation sublabel (root id, distance, parent id),
//   * the orientation flags M_orient: for each level k <= l(v), whether the
//     level-k separator of v is a descendant of v in the rooted tree (0),
//     v itself (*, only at k = l(v)), or neither (1),
//   * a copy of the state M_state (the claimed implicit label).
//
// The verifier implements conditions 1-8 of the lemma: field-count
// discipline (4), orientation consistency with the parent and children
// (2, 3, 6a/6b), agreement of E_sep prefixes between neighbors (5),
// disjointness of sibling subtree numbers at each separator (6c), and the
// inductive propagation of the E_omega fields — each field must equal the
// running maximum of edge weights along the path toward the corresponding
// separator (7, 8).  If every node accepts, the states are the labels of
// some member of Gamma — even though nobody ever proves *which* member —
// which is all pi_mst needs, because the decoder is the same for the whole
// family (Claim 3.1).
//
// Representation note: we never store the constant first field of E_sep
// nor the trivial last field of E_omega (MAX(v,v) = 0), so our rho/extrema
// arrays have l-1 entries where the paper's E_sep/E_omega have l; the
// conditions are index-shifted accordingly.
#pragma once

#include <cstdint>
#include <vector>

#include "labeling/extrema_labeling.hpp"
#include "plscheme/scheme.hpp"
#include "plscheme/spanning_tree_scheme.hpp"
#include "tree/centroid.hpp"

namespace mstv {

/// Orientation flag values (the paper's 0 / 1 / *).
enum class Orient : std::uint8_t {
  Down = 0,  // the level-k separator is a descendant of v
  Up = 1,    // the level-k separator is v's ancestor or in another branch
  Self = 2,  // v itself is the level-k separator (k = l(v))
};

/// Parsed per-vertex gamma data: orientation flags + claimed implicit label.
struct GammaNode {
  std::vector<Orient> orient;  // fields 1..l
  ExtremaLabel imp;            // rho (l-1 entries) + extrema (l-1 entries)

  [[nodiscard]] std::uint32_t level() const {
    return static_cast<std::uint32_t>(orient.size());
  }
};

void write_orient_fields(BitWriter& w, const std::vector<Orient>& orient);
std::vector<Orient> read_orient_fields(BitReader& r);

/// Genuine orientation flags for every vertex, from the rooted tree and the
/// separator decomposition the marker used.
std::vector<std::vector<Orient>> compute_orient_fields(
    const RootedTree& tree, const SeparatorDecomposition& sd);

/// Serializes vertex v's orientation flags straight from the decomposition
/// (same bytes as write_orient_fields over compute_orient_fields' row,
/// without materializing it).  Used inside the marker's label shards.
void write_orient_fields_direct(BitWriter& w, const RootedTree& tree,
                                const SeparatorDecomposition& sd, VertexId v);

/// A tree neighbor as seen through labels: its parsed gamma data and the
/// connecting edge's weight.
struct GammaNeighborRef {
  const GammaNode* node = nullptr;
  Weight weight = 0;
};

/// Conditions 2-8 of Lemma 3.3 at one vertex (condition 1, the state copy,
/// is checked by the caller).  `parent` is null iff the vertex is the tree
/// root.  Children are the tree neighbors that name this vertex as parent.
bool verify_gamma_conditions(const GammaNode& self,
                             const GammaNeighborRef* parent,
                             const std::vector<GammaNeighborRef>& children);

/// Standalone scheme over tree configurations whose state payloads hold
/// claimed implicit labels (serialized with `coding`).  Recovers the
/// separator structure from the states alone when marking.
class GammaScheme final : public ProofLabelingScheme {
 public:
  explicit GammaScheme(ExtremaKind kind = ExtremaKind::Max,
                       SepCoding coding = SepCoding::Telescoping)
      : imp_(kind, coding) {}

  [[nodiscard]] std::string name() const override { return "pi-gamma"; }
  [[nodiscard]] std::vector<Label> mark(const ConfigGraph& cfg) const override;
  [[nodiscard]] bool verify(const LocalView& view) const override;

  [[nodiscard]] const ExtremaLabelingScheme& implicit_scheme() const {
    return imp_;
  }

 private:
  ExtremaLabelingScheme imp_;
};

/// Recovers each vertex's separator ancestors from decoded implicit labels
/// (level-k separator of v = the unique level-k vertex whose rho sequence
/// is a prefix of v's).  Throws PreconditionError if the labels are not
/// consistent with any separator decomposition.  Used by markers, which
/// must label whatever member of Gamma produced the states.
std::vector<std::vector<VertexId>> recover_separator_ancestors(
    const std::vector<ExtremaLabel>& imps);

/// Same, from bare E_sep (rho) sequences — shared with the verified
/// distance/routing schemes whose payloads are not ExtremaLabels.
std::vector<std::vector<VertexId>> recover_separator_ancestors_from_rho(
    const std::vector<std::vector<std::uint64_t>>& rho);

/// Orientation flags from a rooted tree and recovered ancestor lists (the
/// marker-side computation shared by all pi_Gamma-style schemes).
std::vector<Orient> orient_from_ancestors(const RootedTree& tree, VertexId v,
                                          const std::vector<VertexId>& anc);

}  // namespace mstv
