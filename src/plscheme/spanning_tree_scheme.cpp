#include "plscheme/spanning_tree_scheme.hpp"

#include <utility>

#include "mst/predicates.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {

void write_spanning_tree_sublabel(BitWriter& w,
                                  const SpanningTreeSublabel& s) {
  w.write_gamma0(s.id_copy);
  w.write_bit(s.parent_id.has_value());
  if (s.parent_id) w.write_gamma0(*s.parent_id);
  w.write_gamma0(s.root_id);
  w.write_gamma0(s.dist);
}

SpanningTreeSublabel read_spanning_tree_sublabel(BitReader& r) {
  SpanningTreeSublabel s;
  s.id_copy = r.read_gamma0();
  if (r.read_bit()) s.parent_id = r.read_gamma0();
  s.root_id = r.read_gamma0();
  s.dist = r.read_gamma0();
  return s;
}

std::vector<SpanningTreeSublabel> make_spanning_tree_sublabels(
    const ConfigGraph& cfg) {
  const Graph& g = cfg.graph();
  const std::vector<EdgeId> tree_edges = cfg.induced_subgraph();
  MSTV_EXPECTS_MSG(is_spanning_tree(g, tree_edges),
                   "states do not induce a spanning tree");
  MSTV_EXPECTS_MSG(cfg.ids_unique(), "id-based family requires unique ids");

  // Find the root: the unique vertex without a parent port.
  VertexId root = kInvalidVertex;
  for (VertexId v = 0; v < cfg.size(); ++v) {
    if (!cfg.state(v).parent_port) {
      MSTV_EXPECTS_MSG(root == kInvalidVertex,
                       "multiple roots in the configuration");
      root = v;
    }
    MSTV_EXPECTS_MSG(cfg.state(v).id.has_value(), "missing node identity");
  }
  MSTV_EXPECTS_MSG(root != kInvalidVertex, "no root in the configuration");

  const RootedTree tree(g, tree_edges, root);
  return make_spanning_tree_sublabels(cfg, tree);
}

std::vector<SpanningTreeSublabel> make_spanning_tree_sublabels(
    const ConfigGraph& cfg, const RootedTree& tree) {
  MSTV_EXPECTS_MSG(cfg.ids_unique(), "id-based family requires unique ids");
  for (VertexId v = 0; v < cfg.size(); ++v) {
    MSTV_EXPECTS_MSG(cfg.state(v).id.has_value(), "missing node identity");
  }
  const std::uint64_t root_id = *cfg.state(tree.root()).id;
  // Each vertex's sublabel depends only on itself and its parent, so the
  // fill shards over the vertex range.
  std::vector<SpanningTreeSublabel> subs(cfg.size());
  parallel::for_each_shard(cfg.size(), [&](const parallel::ShardRange& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const auto v = static_cast<VertexId>(i);
      subs[v].id_copy = *cfg.state(v).id;
      subs[v].root_id = root_id;
      subs[v].dist = tree.depth(v);
      if (!tree.is_root(v)) subs[v].parent_id = *cfg.state(tree.parent(v)).id;
    }
  });
  return subs;
}

bool check_spanning_tree_sublabel(
    const State& state, const SpanningTreeSublabel& own,
    const std::vector<SpanningTreeSublabel>& neighbor_sub) {
  if (!state.id || own.id_copy != *state.id) return false;

  if (!state.parent_port) {
    // Root: distance 0, no parent, and the advertised root is itself.
    if (own.parent_id || own.dist != 0 || own.root_id != own.id_copy) {
      return false;
    }
  } else {
    const auto p = *state.parent_port;
    if (p < 1 || p > neighbor_sub.size()) return false;  // dangling port
    const SpanningTreeSublabel& par = neighbor_sub[p - 1];
    if (!own.parent_id || *own.parent_id != par.id_copy) return false;
    if (own.dist == 0 || par.dist != own.dist - 1) return false;
  }

  for (const SpanningTreeSublabel& nb : neighbor_sub) {
    if (nb.root_id != own.root_id) return false;
  }
  return true;
}

std::vector<Label> SpanningTreeScheme::mark(const ConfigGraph& cfg) const {
  MSTV_SPAN("marker.assign_labels");
  const auto subs = make_spanning_tree_sublabels(cfg);
  // Per-node serialization shards over the vertex range.
  std::vector<Label> labels(subs.size());
  const std::size_t st_bits = parallel::sharded_reduce<std::size_t>(
      subs.size(), std::size_t{0},
      [&](const parallel::ShardRange& shard) {
        std::size_t bits = 0;
        for (std::size_t v = shard.begin; v < shard.end; ++v) {
          BitWriter w;
          write_spanning_tree_sublabel(w, subs[v]);
          bits += w.size_bits();
          labels[v] = Label(std::move(w));
        }
        return bits;
      },
      [](std::size_t& acc, std::size_t part) { acc += part; });
  MSTV_COUNTER_ADD("marker.labels", labels.size());
  MSTV_COUNTER_ADD("label.spanning_tree_bits", st_bits);
  return labels;
}

bool SpanningTreeScheme::verify(const LocalView& view) const {
  BitReader own_r = view.label->reader();
  const SpanningTreeSublabel own = read_spanning_tree_sublabel(own_r);
  if (!own_r.exhausted()) return false;

  std::vector<SpanningTreeSublabel> nbs;
  nbs.reserve(view.neighbors.size());
  for (const NeighborView& nb : view.neighbors) {
    BitReader r = nb.label->reader();
    nbs.push_back(read_spanning_tree_sublabel(r));
    if (!r.exhausted()) return false;
  }
  return check_spanning_tree_sublabel(*view.state, own, nbs);
}

}  // namespace mstv
