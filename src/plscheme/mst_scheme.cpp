#include "plscheme/mst_scheme.hpp"

#include <algorithm>
#include <utility>

#include "mst/predicates.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "plscheme/spanning_tree_scheme.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {

bool mst_predicate(const ConfigGraph& cfg) {
  // Canonical rooted representation — the paper's own example under
  // Definition 2.1: every vertex's state names the port to its parent,
  // "this field at the root is empty".  Exactly one root and valid ports;
  // together with the induced subgraph being a spanning tree this forces
  // the pointers to be the tree oriented toward the root (n-1 distinct
  // edges on a tree cannot contain a pointer cycle).
  std::size_t roots = 0;
  for (VertexId v = 0; v < cfg.size(); ++v) {
    const auto& pp = cfg.state(v).parent_port;
    if (!pp) {
      ++roots;
    } else if (*pp < 1 || *pp > cfg.graph().degree(v)) {
      return false;  // dangling pointer
    }
  }
  if (roots != 1) return false;
  const auto edges = cfg.induced_subgraph();
  return is_spanning_tree(cfg.graph(), edges) && is_mst(cfg.graph(), edges);
}

std::vector<Label> MstScheme::mark(const ConfigGraph& cfg) const {
  MSTV_SPAN("marker.assign_labels");
  const Graph& g = cfg.graph();
  const auto tree_edges = cfg.induced_subgraph();
  MSTV_EXPECTS_MSG(is_spanning_tree(g, tree_edges),
                   "marker precondition: states must induce a spanning tree");
  MSTV_EXPECTS_MSG(is_mst(g, tree_edges),
                   "marker precondition: the spanning tree must be minimum");

  VertexId root = kInvalidVertex;
  for (VertexId v = 0; v < cfg.size(); ++v) {
    if (!cfg.state(v).parent_port) root = v;
  }
  const RootedTree tree(g, tree_edges, root);

  // Sublabel 1: spanning tree + orientation (reusing the rooted tree).
  const auto st = make_spanning_tree_sublabels(cfg, tree);

  // Sublabel 2: gamma_small labels over the perfect separator
  // decomposition; sublabel 3: the matching orientation flags.  Only the
  // arenas this scheme's labels serialize are materialized — the extrema
  // side the fold kind reads, plus the raw subtree numbers when the
  // baseline coding is in play.
  const SepFieldMask fields =
      (imp_.kind() == ExtremaKind::Max ? kSepFieldMax : kSepFieldMin) |
      (imp_.coding() == SepCoding::FixedWidth ? kSepFieldRhoRaw
                                              : SepFieldMask{0});
  const SeparatorDecomposition sd =
      perfect_separator_decomposition(tree, fields);

  // Deepest separator level any label carries = the component count the
  // verifier's telescoping decode walks — the structural quantity behind
  // the O(log^2 n) verification bound, audited by obs/audit.cpp.
  MSTV_GAUGE_SET("label.max_components", sd.max_level());

  // Per-node label assembly is independent once the shared decomposition
  // above is computed, so it shards over the vertex range, serializing
  // sublabels 2 and 3 straight from the decomposition arenas.  Per-field
  // bit budgets, summed over the network: the O(log n) vs O(log n log W)
  // split of Thm 3.4 read directly off the label layout.
  struct BitBudget {
    std::size_t st = 0, orient = 0, extrema = 0;
  };
  std::vector<Label> labels(cfg.size());
  const BitBudget bits = parallel::sharded_reduce<BitBudget>(
      cfg.size(), BitBudget{},
      [&](const parallel::ShardRange& shard) {
        BitBudget b;
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          const auto v = static_cast<VertexId>(i);
          BitWriter w;
          write_spanning_tree_sublabel(w, st[v]);
          const std::size_t after_st = w.size_bits();
          write_orient_fields_direct(w, tree, sd, v);
          const std::size_t after_orient = w.size_bits();
          imp_.write_direct(w, sd, v);
          b.st += after_st;
          b.orient += after_orient - after_st;
          b.extrema += w.size_bits() - after_orient;
          labels[v] = Label(std::move(w));
        }
        return b;
      },
      [](BitBudget& acc, BitBudget&& part) {
        acc.st += part.st;
        acc.orient += part.orient;
        acc.extrema += part.extrema;
      });
  MSTV_COUNTER_ADD("marker.labels", labels.size());
  MSTV_COUNTER_ADD("label.spanning_tree_bits", bits.st);
  MSTV_COUNTER_ADD("label.orient_bits", bits.orient);
  MSTV_COUNTER_ADD("label.extrema_bits", bits.extrema);
  return labels;
}

namespace {

struct ParsedMst {
  SpanningTreeSublabel st;
  GammaNode node;
};

ParsedMst parse_mst_label(const Label& label,
                          const ExtremaLabelingScheme& imp) {
  BitReader r = label.reader();
  ParsedMst p;
  p.st = read_spanning_tree_sublabel(r);
  p.node.orient = read_orient_fields(r);
  p.node.imp = imp.read_from(r);
  MSTV_EXPECTS_MSG(r.exhausted(), "corrupt label: trailing bits");
  return p;
}

}  // namespace

bool MstScheme::verify(const LocalView& view) const {
  const ParsedMst own = parse_mst_label(*view.label, imp_);

  std::vector<ParsedMst> nbs;
  nbs.reserve(view.neighbors.size());
  for (const NeighborView& nb : view.neighbors) {
    nbs.push_back(parse_mst_label(*nb.label, imp_));
  }

  // (a) spanning tree / orientation.
  {
    std::vector<SpanningTreeSublabel> st_nbs;
    st_nbs.reserve(nbs.size());
    for (const auto& p : nbs) st_nbs.push_back(p.st);
    if (!check_spanning_tree_sublabel(*view.state, own.st, st_nbs)) {
      return false;
    }
  }

  // Classify neighbors: parent (our state's port), children (they name us
  // as parent), or non-tree neighbors (cycle-rule check only).
  const GammaNeighborRef* parent_ref = nullptr;
  GammaNeighborRef parent_store;
  std::vector<GammaNeighborRef> children;
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    const bool is_parent =
        view.state->parent_port &&
        *view.state->parent_port == view.neighbors[i].port;
    if (is_parent) {
      parent_store = GammaNeighborRef{&nbs[i].node, view.neighbors[i].weight};
      parent_ref = &parent_store;
    } else if (nbs[i].st.parent_id &&
               *nbs[i].st.parent_id == own.st.id_copy) {
      children.push_back(
          GammaNeighborRef{&nbs[i].node, view.neighbors[i].weight});
    }
  }

  // (b) the sublabels 2 were produced by some member of Gamma.
  if (!verify_gamma_conditions(own.node, parent_ref, children)) return false;

  // (c) cycle rule on every incident edge: omega(v,u) >= MAX(v,u).
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    const Weight mx = imp_.decode(own.node.imp, nbs[i].node.imp);
    if (view.neighbors[i].weight < mx) return false;
  }
  return true;
}

}  // namespace mstv
