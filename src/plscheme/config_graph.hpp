// Configuration graphs (Section 2 of the paper).
//
// A configuration graph G_s pairs a graph with a *state* per node.  States
// are the problem's distributed output: for the MST problem a state holds
// the node's unique identity and the port pointing at its parent in the
// claimed tree (Definition 2.1 — an edge belongs to the induced subgraph
// iff one endpoint's state names the port that points at the other).
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "labeling/label.hpp"

namespace mstv {

struct State {
  /// Unique identity in id-based families (O(log n) bits by assumption).
  std::optional<std::uint64_t> id;

  /// The Definition-2.1 pointer field: the port leading to this node's
  /// parent in the induced subgraph.  Empty at the root.
  std::optional<PortNumber> parent_port;

  /// Arbitrary additional state content, e.g. the implicit labels whose
  /// authenticity pi_Gamma proves (problem Prob(Gamma), Section 3.2).
  Label payload;

  friend bool operator==(const State&, const State&) = default;
};

class ConfigGraph {
 public:
  ConfigGraph(const Graph& g, std::vector<State> states)
      : g_(&g), states_(std::move(states)) {
    MSTV_EXPECTS(states_.size() == g.num_vertices());
  }

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }

  [[nodiscard]] const State& state(VertexId v) const { return states_.at(v); }
  [[nodiscard]] State& state(VertexId v) { return states_.at(v); }

  /// Edges of the subgraph induced by the states (Definition 2.1).
  [[nodiscard]] std::vector<EdgeId> induced_subgraph() const;

  /// True if all present ids are pairwise distinct (the id-based promise).
  [[nodiscard]] bool ids_unique() const;

 private:
  const Graph* g_;
  std::vector<State> states_;
};

/// The canonical MST-problem configuration: states encode `tree_edges`
/// rooted at `root` via parent ports, with id(v) = v unless custom ids are
/// given.  This is what a correct distributed MST computation would leave
/// behind, and what the marker of pi_mst labels.
ConfigGraph make_tree_config(const Graph& g,
                             const std::vector<EdgeId>& tree_edges,
                             VertexId root,
                             const std::vector<std::uint64_t>* custom_ids
                             = nullptr);

}  // namespace mstv
