// pi_mst — the paper's headline scheme (Theorem 3.4): a proof labeling
// scheme for f_MST over F(n, W) of size O(log n log W).
//
// Label layout per node (three sublabels, as in the proof):
//   1. spanning-tree/orientation sublabel       — O(log n) bits
//   2. gamma_small implicit MAX label E(v)      — O(log n log W) bits
//   3. pi_Gamma orientation flags M_orient      — O(log n) bits
//
// (The paper's pi_Gamma also carries M_state, a copy of the vertex state;
// in the composition the "state" being certified *is* sublabel 2, so one
// copy suffices — the paper keeps both only for modular exposition.)
//
// Verifier at v:
//   a. spanning-tree checks on sublabel 1 (step (1) of the split),
//   b. conditions 2-8 of Lemma 3.3 over the tree neighbors, proving the
//      sublabels 2 were produced by *some* member of the family Gamma,
//   c. the cycle rule [30] on every incident graph edge: omega(v,u) must be
//      at least MAX(v,u) as computed by the family-wide decoder from the
//      two sublabels 2.  (">=" — the scheme accepts any MST even when the
//      MST is not unique.)
//
// The SepCoding parameter selects gamma_small (Telescoping — the paper's
// O(log n log W) construction) or the naive fixed-width coding whose size
// reproduces the Theta(log^2 n + log n log W) bound of the prior scheme
// [KKP05]; benches E1/E2 sweep both.
#pragma once

#include "labeling/extrema_labeling.hpp"
#include "plscheme/gamma_scheme.hpp"
#include "plscheme/scheme.hpp"

namespace mstv {

class MstScheme final : public ProofLabelingScheme {
 public:
  explicit MstScheme(SepCoding coding = SepCoding::Telescoping)
      : imp_(ExtremaKind::Max, coding) {}

  [[nodiscard]] std::string name() const override {
    return imp_.coding() == SepCoding::Telescoping ? "pi-mst"
                                                   : "pi-mst-naive";
  }

  /// Marker (Theorem 3.4).  Precondition: the states induce an MST of the
  /// configuration's graph.
  [[nodiscard]] std::vector<Label> mark(const ConfigGraph& cfg) const override;

  [[nodiscard]] bool verify(const LocalView& view) const override;

  [[nodiscard]] const ExtremaLabelingScheme& implicit_scheme() const {
    return imp_;
  }

 private:
  ExtremaLabelingScheme imp_;
};

/// f_MST: the states of cfg are a canonical rooted-parent representation
/// (exactly one empty parent field — the paper's example representation
/// under Definition 2.1) inducing a minimum spanning tree.
bool mst_predicate(const ConfigGraph& cfg);

}  // namespace mstv
