#include "plscheme/fragment_scheme.hpp"

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>

#include "mst/predicates.hpp"
#include "mst/union_find.hpp"
#include "plscheme/spanning_tree_scheme.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {
namespace {

constexpr std::uint64_t kMaxPhases = 64;

/// The strict total order on edges: weight, then claimed-tree edges
/// first, then the endpoint-id pair.  Preferring tree edges makes the
/// claimed tree the unique minimum under this order whenever it is an
/// MST under the raw weights — which is what lets the scheme accept any
/// MST of a non-unique instance.
struct Cand {
  Weight w = 0;
  std::uint64_t nontree = 0;  // 0 for tree edges
  std::uint64_t min_id = 0;
  std::uint64_t max_id = 0;

  friend auto operator<=>(const Cand&, const Cand&) = default;
};

struct PhaseEntry {
  std::uint64_t fid = 0;        // fragment identity (min member id)
  std::uint64_t fdist = 0;      // hops to the fragment leader
  PortNumber fparent_port = 0;  // port toward the leader; 0 at the leader
  Cand moe;                     // the fragment's minimum outgoing edge
  PortNumber moe_port = 0;      // next hop toward the MOE endpoint
  std::uint64_t moe_dist = 0;   // hops to the MOE endpoint
};

struct FragLabel {
  SpanningTreeSublabel st;
  /// Borůvka phase at which the node's own tree-parent edge was added;
  /// absent at the root.
  std::optional<std::uint64_t> phase_parent;
  std::vector<PhaseEntry> phases;
};

void write_frag_label(BitWriter& w, const FragLabel& l) {
  write_spanning_tree_sublabel(w, l.st);
  w.write_bit(l.phase_parent.has_value());
  if (l.phase_parent) w.write_gamma0(*l.phase_parent);
  w.write_gamma0(l.phases.size());
  for (const PhaseEntry& p : l.phases) {
    w.write_gamma0(p.fid);
    w.write_gamma0(p.fdist);
    w.write_gamma0(p.fparent_port);
    w.write_gamma0(p.moe.w);
    w.write_gamma0(p.moe.min_id);
    w.write_gamma0(p.moe.max_id);
    w.write_gamma0(p.moe_port);
    w.write_gamma0(p.moe_dist);
  }
}

FragLabel read_frag_label(BitReader& r) {
  FragLabel l;
  l.st = read_spanning_tree_sublabel(r);
  if (r.read_bit()) l.phase_parent = r.read_gamma0();
  const std::uint64_t count = r.read_gamma0();
  MSTV_EXPECTS_MSG(count <= kMaxPhases, "corrupt label: phase count");
  l.phases.resize(count);
  for (PhaseEntry& p : l.phases) {
    p.fid = r.read_gamma0();
    p.fdist = r.read_gamma0();
    p.fparent_port = static_cast<PortNumber>(r.read_gamma0());
    p.moe.w = r.read_gamma0();
    p.moe.nontree = 0;  // a fragment's MOE is by construction a tree edge
    p.moe.min_id = r.read_gamma0();
    p.moe.max_id = r.read_gamma0();
    p.moe_port = static_cast<PortNumber>(r.read_gamma0());
    p.moe_dist = r.read_gamma0();
  }
  return l;
}

}  // namespace

std::vector<Label> FragmentScheme::mark(const ConfigGraph& cfg) const {
  const Graph& g = cfg.graph();
  const std::size_t n = g.num_vertices();
  const auto tree_edges = cfg.induced_subgraph();
  MSTV_EXPECTS_MSG(is_spanning_tree(g, tree_edges) && is_mst(g, tree_edges),
                   "marker precondition: states must induce an MST");
  const auto st = make_spanning_tree_sublabels(cfg);

  std::vector<bool> in_tree(g.num_edges(), false);
  for (const EdgeId e : tree_edges) in_tree[e] = true;
  auto id_of = [&](VertexId v) { return *cfg.state(v).id; };
  auto cand_of = [&](EdgeId e) {
    const Edge& ed = g.edge(e);
    return Cand{ed.w, in_tree[e] ? 0u : 1u,
                std::min(id_of(ed.u), id_of(ed.v)),
                std::max(id_of(ed.u), id_of(ed.v))};
  };

  // Replay Borůvka under the tie-broken order, recording the history.
  UnionFind uf(n);
  std::vector<std::uint64_t> phase_added(g.num_edges(), ~std::uint64_t{0});
  std::vector<FragLabel> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[v].st = st[v];

  std::uint64_t phase = 0;
  while (uf.num_sets() > 1) {
    MSTV_ASSERT(phase < kMaxPhases);
    // Fragment roots and min-id leaders.
    std::vector<std::size_t> root(n);
    std::vector<VertexId> leader(n, kInvalidVertex);
    for (VertexId v = 0; v < n; ++v) {
      root[v] = uf.find(v);
    }
    for (VertexId v = 0; v < n; ++v) {
      VertexId& l = leader[root[v]];
      if (l == kInvalidVertex || id_of(v) < id_of(l)) l = v;
    }

    // BFS from each leader along already-added tree edges: fragment tree
    // position (fid, fdist, fparent_port).
    {
      std::vector<VertexId> queue;
      std::vector<bool> seen(n, false);
      for (VertexId v = 0; v < n; ++v) {
        if (leader[root[v]] == v) {
          seen[v] = true;
          queue.push_back(v);
          labels[v].phases.push_back(PhaseEntry{});
          labels[v].phases.back().fid = id_of(v);
        }
      }
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const VertexId x = queue[qi];
        for (const PortInfo& p : g.ports(x)) {
          if (!in_tree[p.edge] || phase_added[p.edge] >= phase) continue;
          if (seen[p.neighbor]) continue;
          seen[p.neighbor] = true;
          labels[p.neighbor].phases.push_back(PhaseEntry{});
          PhaseEntry& e = labels[p.neighbor].phases.back();
          e.fid = labels[x].phases.back().fid;
          e.fdist = labels[x].phases.back().fdist + 1;
          e.fparent_port = p.reverse_port;
          queue.push_back(p.neighbor);
        }
      }
      for (VertexId v = 0; v < n; ++v) {
        MSTV_ASSERT_MSG(seen[v], "fragment tree does not span the fragment");
      }
    }

    // Minimum outgoing edge per fragment under the tie-broken order.
    constexpr Cand kCandMax{std::numeric_limits<Weight>::max(), 1,
                            ~std::uint64_t{0}, ~std::uint64_t{0}};
    std::vector<EdgeId> best(n, kInvalidEdge);
    std::vector<Cand> best_cand(n, kCandMax);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& ed = g.edge(e);
      if (root[ed.u] == root[ed.v]) continue;
      const Cand c = cand_of(e);
      for (const std::size_t f : {root[ed.u], root[ed.v]}) {
        if (c < best_cand[f]) {
          best_cand[f] = c;
          best[f] = e;
        }
      }
    }

    // Record the MOE and its witness (BFS from the fragment-side MOE
    // endpoint along already-added tree edges).
    {
      std::vector<VertexId> queue;
      std::vector<bool> seen(n, false);
      for (VertexId v = 0; v < n; ++v) {
        if (root[v] != v) continue;
        const EdgeId e = best[v];
        MSTV_ASSERT_MSG(e != kInvalidEdge, "fragment without outgoing edge");
        const Edge& ed = g.edge(e);
        const VertexId a = (root[ed.u] == v) ? ed.u : ed.v;
        const VertexId b = g.edge(e).other(a);
        PhaseEntry& pa = labels[a].phases.back();
        pa.moe = best_cand[v];
        pa.moe_dist = 0;
        pa.moe_port = *g.find_port(a, b);
        seen[a] = true;
        queue.push_back(a);
      }
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const VertexId x = queue[qi];
        for (const PortInfo& p : g.ports(x)) {
          if (!in_tree[p.edge] || phase_added[p.edge] >= phase) continue;
          if (seen[p.neighbor]) continue;
          seen[p.neighbor] = true;
          PhaseEntry& e = labels[p.neighbor].phases.back();
          e.moe = labels[x].phases.back().moe;
          e.moe_dist = labels[x].phases.back().moe_dist + 1;
          e.moe_port = p.reverse_port;
          queue.push_back(p.neighbor);
        }
      }
    }

    // Merge.
    for (VertexId v = 0; v < n; ++v) {
      if (root[v] != v || best[v] == kInvalidEdge) continue;
      const Edge& ed = g.edge(best[v]);
      if (uf.unite(ed.u, ed.v)) {
        MSTV_ASSERT_MSG(in_tree[best[v]],
                        "a fragment MOE must be a tree edge when the "
                        "configuration is an MST");
        phase_added[best[v]] = phase;
      }
    }
    ++phase;
  }

  // Tree-parent edge phases.
  for (VertexId v = 0; v < n; ++v) {
    const auto& pp = cfg.state(v).parent_port;
    if (!pp) continue;
    const EdgeId pe = g.port(v, *pp).edge;
    MSTV_ASSERT(phase_added[pe] < phase);
    labels[v].phase_parent = phase_added[pe];
  }

  std::vector<Label> out;
  out.reserve(n);
  for (const FragLabel& l : labels) {
    BitWriter w;
    write_frag_label(w, l);
    out.emplace_back(std::move(w));
  }
  return out;
}

bool FragmentScheme::verify(const LocalView& view) const {
  BitReader own_r = view.label->reader();
  const FragLabel own = read_frag_label(own_r);
  if (!own_r.exhausted()) return false;

  std::vector<FragLabel> nbs;
  nbs.reserve(view.neighbors.size());
  for (const NeighborView& nb : view.neighbors) {
    BitReader r = nb.label->reader();
    nbs.push_back(read_frag_label(r));
    if (!r.exhausted()) return false;
  }

  // Spanning-tree layer.
  {
    std::vector<SpanningTreeSublabel> st_nbs;
    st_nbs.reserve(nbs.size());
    for (const auto& p : nbs) st_nbs.push_back(p.st);
    if (!check_spanning_tree_sublabel(*view.state, own.st, st_nbs)) {
      return false;
    }
  }

  const std::uint64_t P = own.phases.size();
  for (const auto& nb : nbs) {
    if (nb.phases.size() != P) return false;  // history length is global
  }
  const bool is_root = !view.state->parent_port;
  if (!is_root && (!own.phase_parent || *own.phase_parent >= P)) {
    return false;
  }
  if (is_root && own.phase_parent) return false;

  // Classify neighbors; determine each tree edge's claimed phase (owned
  // by the child endpoint of the edge).
  const std::size_t deg = view.neighbors.size();
  std::vector<bool> is_tree(deg, false);
  std::vector<std::uint64_t> edge_phase(deg, ~std::uint64_t{0});
  for (std::size_t i = 0; i < deg; ++i) {
    const bool to_parent = view.state->parent_port &&
                           *view.state->parent_port ==
                               view.neighbors[i].port;
    const bool to_child =
        nbs[i].st.parent_id && *nbs[i].st.parent_id == own.st.id_copy;
    if (to_parent) {
      is_tree[i] = true;
      edge_phase[i] = *own.phase_parent;
    } else if (to_child) {
      if (!nbs[i].phase_parent || *nbs[i].phase_parent >= P) return false;
      is_tree[i] = true;
      edge_phase[i] = *nbs[i].phase_parent;
    }
  }

  auto cand_of = [&](std::size_t i) {
    return Cand{view.neighbors[i].weight, is_tree[i] ? 0u : 1u,
                std::min(own.st.id_copy, nbs[i].st.id_copy),
                std::max(own.st.id_copy, nbs[i].st.id_copy)};
  };

  for (std::uint64_t k = 0; k < P; ++k) {
    const PhaseEntry& me = own.phases[k];

    // Phase 0 starts from singletons.
    if (k == 0 && (me.fid != own.st.id_copy || me.fdist != 0 ||
                   me.fparent_port != 0)) {
      return false;
    }

    // Fragment-tree position: either the leader itself, or a parent hop
    // along an earlier-phase tree edge with the same fid and distance one
    // less (unsigned arithmetic kills cycles).
    if (me.fid == own.st.id_copy) {
      if (me.fdist != 0 || me.fparent_port != 0) return false;
    } else {
      if (me.fparent_port < 1 || me.fparent_port > deg) return false;
      const std::size_t i = me.fparent_port - 1;
      if (!is_tree[i] || edge_phase[i] >= k) return false;
      const PhaseEntry& pe = nbs[i].phases[k];
      if (pe.fid != me.fid || pe.fdist + 1 != me.fdist) return false;
    }

    for (std::size_t i = 0; i < deg; ++i) {
      const PhaseEntry& ne = nbs[i].phases[k];
      if (is_tree[i]) {
        if (edge_phase[i] < k) {
          // Merged earlier: same fragment, same MOE claim.
          if (ne.fid != me.fid || ne.moe != me.moe) return false;
        } else if (edge_phase[i] == k) {
          // This very edge merged two distinct fragments, and it must be
          // the MOE of one of them.
          if (ne.fid == me.fid) return false;
          const Cand c = cand_of(i);
          if (c != me.moe && c != ne.moe) return false;
        } else {
          // Merges later: still distinct fragments.
          if (ne.fid == me.fid) return false;
        }
      }
      // Cut minimality: anything leaving the fragment is no better than
      // the claimed MOE.
      if (ne.fid != me.fid && cand_of(i) < me.moe) return false;
    }

    // MOE witness.
    if (me.moe_dist == 0) {
      if (me.moe_port < 1 || me.moe_port > deg) return false;
      const std::size_t i = me.moe_port - 1;
      if (!is_tree[i] || edge_phase[i] != k) return false;
      if (nbs[i].phases[k].fid == me.fid) return false;
      if (cand_of(i) != me.moe) return false;
    } else {
      if (me.moe_port < 1 || me.moe_port > deg) return false;
      const std::size_t i = me.moe_port - 1;
      if (!is_tree[i] || edge_phase[i] >= k) return false;
      const PhaseEntry& ne = nbs[i].phases[k];
      if (ne.fid != me.fid || ne.moe_dist + 1 != me.moe_dist) return false;
    }
  }
  return true;
}

}  // namespace mstv
