#include "plscheme/agreement_scheme.hpp"

namespace mstv {

std::vector<Label> AgreementScheme::mark(const ConfigGraph& cfg) const {
  std::vector<Label> labels;
  labels.reserve(cfg.size());
  for (VertexId v = 0; v < cfg.size(); ++v) {
    labels.push_back(cfg.state(v).payload);  // M(v) = s_v
  }
  return labels;
}

bool AgreementScheme::verify(const LocalView& view) const {
  if (*view.label != view.state->payload) return false;  // L(v) = s_v
  for (const NeighborView& nb : view.neighbors) {
    if (*nb.label != *view.label) return false;  // L(v) = L(u)
  }
  return true;
}

bool agreement_predicate(const ConfigGraph& cfg) {
  for (VertexId v = 1; v < cfg.size(); ++v) {
    if (cfg.state(v).payload != cfg.state(0).payload) return false;
  }
  return true;
}

}  // namespace mstv
