// Drives a proof labeling scheme over a configuration graph: builds each
// node's LocalView from exactly the information the model grants it and
// collects the per-node verdicts plus label-size statistics (the paper's
// "size of a proof labeling scheme" is the max label size over all nodes).
#pragma once

#include <vector>

#include "graph/edge_update.hpp"
#include "plscheme/scheme.hpp"

namespace mstv::store {
class LabelStore;  // store/snapshot.hpp
}

namespace mstv {

class IncrementalMarker;  // dynamic/incremental.hpp
class SimNetwork;         // runtime/network.hpp

struct VerificationResult {
  bool accepted = false;                 // all nodes accepted
  std::vector<VertexId> rejecting;       // nodes that output 0
  std::size_t max_label_bits = 0;        // the scheme's size on this input
  std::size_t total_label_bits = 0;
  std::size_t num_vertices = 0;

  [[nodiscard]] double avg_label_bits() const {
    return num_vertices == 0
               ? 0.0
               : static_cast<double>(total_label_bits) /
                     static_cast<double>(num_vertices);
  }
};

/// Runs the verifier at every node against the given labels.
VerificationResult run_verifier(const ProofLabelingScheme& scheme,
                                const ConfigGraph& cfg,
                                const std::vector<Label>& labels);

/// Runs the verifier against a mounted label snapshot (store/snapshot.hpp):
/// labels are materialised block-wise through `LabelView::decode_block`
/// (sharded over the thread pool) instead of per-label cursors, then
/// verified by the same engine — verdicts, rejector sets and counters are
/// bit-identical to the in-memory overload at any thread count.
VerificationResult run_verifier(const ProofLabelingScheme& scheme,
                                const ConfigGraph& cfg,
                                const store::LabelStore& snapshot);

/// Convenience: mark, then verify the marker's own labels (completeness
/// direction of the definition).
VerificationResult mark_and_verify(const ProofLabelingScheme& scheme,
                                   const ConfigGraph& cfg);

/// Builds the LocalView of one vertex (exposed for the simulated network).
LocalView make_local_view(const ConfigGraph& cfg, VertexId v,
                          const std::vector<Label>& labels);

/// One edge update end to end: what the repair did and what the verifiers
/// said about the repaired labels.
struct UpdateResult {
  RepairStats repair;
  VerificationResult verification;
};

/// The dynamic-lifecycle entry point: applies `update` through the
/// incremental marker, ships only the repaired labels into the network
/// (counted under dynamic.labels_shipped / dynamic.bits_shipped), and
/// re-runs the verifier at every node.  Defined in dynamic/incremental.cpp.
UpdateResult update_and_repair(IncrementalMarker& marker, SimNetwork& net,
                               const EdgeUpdate& update);

}  // namespace mstv
