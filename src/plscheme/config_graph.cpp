#include "plscheme/config_graph.hpp"

#include <algorithm>

#include "tree/rooted_tree.hpp"

namespace mstv {

std::vector<EdgeId> ConfigGraph::induced_subgraph() const {
  std::vector<bool> present(g_->num_edges(), false);
  for (VertexId v = 0; v < size(); ++v) {
    const auto& pp = states_[v].parent_port;
    if (!pp) continue;
    if (*pp < 1 || *pp > g_->degree(v)) continue;  // dangling pointer
    present[g_->port(v, *pp).edge] = true;
  }
  std::vector<EdgeId> edges;
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    if (present[e]) edges.push_back(e);
  }
  return edges;
}

bool ConfigGraph::ids_unique() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(size());
  for (const State& s : states_) {
    if (s.id) ids.push_back(*s.id);
  }
  std::sort(ids.begin(), ids.end());
  return std::adjacent_find(ids.begin(), ids.end()) == ids.end();
}

ConfigGraph make_tree_config(const Graph& g,
                             const std::vector<EdgeId>& tree_edges,
                             VertexId root,
                             const std::vector<std::uint64_t>* custom_ids) {
  const RootedTree tree(g, tree_edges, root);
  std::vector<State> states(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    states[v].id = custom_ids ? custom_ids->at(v)
                              : static_cast<std::uint64_t>(v);
    if (!tree.is_root(v)) states[v].parent_port = tree.parent_port(v);
  }
  return ConfigGraph(g, std::move(states));
}

}  // namespace mstv
