// Asynchronous execution of a verification round.
//
// The paper's model is round-free: a verifier fires once it has its
// neighbors' labels, whenever they arrive.  This module runs one
// verification exchange under per-message delivery delays (the standard
// asynchronous abstraction of the self-stabilization literature): every
// directed label transmission gets an independent delay in
// [min_delay, max_delay]; a node decides at the instant its last input
// arrives.
//
// Verdicts are exactly those of the synchronous round (the verifier is a
// deterministic function of N_L(v)); what asynchrony adds is *timing* —
// when the first alarm fires and when the whole network has decided.
// Detection latency is therefore bounded by one maximal message delay,
// not by a global round: the "local" in local verification.
#pragma once

#include <cstdint>
#include <limits>

#include "plscheme/runner.hpp"
#include "util/rng.hpp"

namespace mstv {

struct AsyncOptions {
  double min_delay = 1.0;  // per-message delivery delay bounds
  double max_delay = 5.0;
  /// Round key for this exchange's communication-ledger row (`async.round`
  /// phase).  The caller owns round numbering — this module is stateless.
  std::uint64_t round = 0;
};

struct AsyncRoundResult {
  bool accepted = false;
  std::vector<VertexId> rejecting;
  /// Instant the last node decided (= max over nodes of its last input).
  double completion_time = 0.0;
  /// Instant the first rejecting node decided; +inf when all accept.
  double first_detection_time = std::numeric_limits<double>::infinity();
  std::size_t messages = 0;
};

AsyncRoundResult async_verification_round(const ConfigGraph& cfg,
                                          const ProofLabelingScheme& scheme,
                                          const std::vector<Label>& labels,
                                          Rng& rng,
                                          const AsyncOptions& opts = {});

}  // namespace mstv
