// Synchronous distributed Borůvka/GHS-style MST computation, simulated
// with message and round accounting.
//
// This is the "computation" side of the paper's motivating comparison:
// computing an MST distributively "requires a computation that involves
// all the network nodes, and involves messages sent to remote nodes and
// waiting for replies", whereas verification is one local exchange.
// Bench E6 puts the two side by side.
//
// Accounting model per phase (standard GHS-style costs):
//   * probe:      every edge exchanges fragment ids (2 messages/edge,
//                 O(log n) bits each),
//   * convergecast/broadcast: the minimum outgoing edge is aggregated to
//                 the fragment root and the merge decision broadcast back
//                 (2 messages per fragment tree edge, O(log n + log W)
//                 bits), taking 2 * fragment-tree-depth rounds,
//   * merge:      fragment ids are re-broadcast over the merged trees.
// Phases repeat until one fragment remains (at most ceil(log2 n) phases).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mstv {

struct DistributedMstStats {
  std::size_t phases = 0;
  std::size_t rounds = 0;        // synchronous time steps
  std::size_t messages = 0;
  std::size_t message_bits = 0;
  std::vector<EdgeId> tree;      // the MST found
};

DistributedMstStats distributed_boruvka(const Graph& g);

}  // namespace mstv
