// The self-stabilization application (Section 1.1): "self stabilizing
// algorithms often use distributed verification repeatedly.  If the
// verification fails, then the output (e.g. the MST) is recomputed.  An
// efficient verification algorithm thus saves repeatedly in
// communication."
//
// SelfStabilizingMst runs that loop on the simulated network:
//   1. steady state: one verification round per time step (cheap, local);
//   2. an adversary corrupts states and/or labels;
//   3. the next verification round detects the fault at some node
//      (detection is one round by construction — the verifier is local);
//   4. repair: recompute the MST with the distributed Borůvka simulation,
//      reinstall states, re-run the marker;
//   5. silence: verification passes again and stays label-stable.
// The stats separate the per-round verification cost from the repair
// cost, which is the quantitative content of the motivation.
#pragma once

#include "plscheme/mst_scheme.hpp"
#include "runtime/boruvka_sim.hpp"
#include "runtime/network.hpp"

namespace mstv {

struct StabilizationStats {
  // Detection (the verification round after the fault).
  bool fault_detected = false;
  std::size_t detecting_nodes = 0;
  std::size_t verify_messages = 0;
  std::size_t verify_bits = 0;

  // Repair (recompute + re-mark); zero if nothing was detected.
  bool repaired = false;
  DistributedMstStats recompute;
  std::size_t remark_bits = 0;  // total bits of the freshly installed labels

  // Post-repair check.
  bool silent_after = false;
};

class SelfStabilizingMst {
 public:
  /// Computes an MST of g, installs the canonical configuration rooted at
  /// vertex 0 and runs the marker.
  SelfStabilizingMst(const Graph& g, const MstScheme& scheme);

  [[nodiscard]] SimNetwork& network() noexcept { return net_; }

  /// One steady-state verification round.
  [[nodiscard]] RoundStats tick() const { return net_.verification_round(); }

  /// Detect-and-repair step: runs a verification round; if any node
  /// rejects, recomputes the MST distributively, reinstalls states and
  /// labels, and verifies silence.
  StabilizationStats stabilize();

 private:
  const Graph* g_;
  const MstScheme* scheme_;
  SimNetwork net_;
};

}  // namespace mstv
