// Simulated synchronous network executing a proof labeling scheme.
//
// Each verification round, every node sends its label across every
// incident edge and runs the verifier on what it received — exactly the
// model's "compare this information between neighboring nodes" cost.  The
// simulator accounts messages and bits so bench E6 can compare one round
// of verification against a full distributed MST computation, and the
// self-stabilization driver (R9) can charge repeated verification
// honestly.
//
// FaultInjector produces the adversarial transient faults that motivate
// the paper's self-stabilization application: it rewires parent pointers,
// deletes roots / creates second roots, and flips label bits.  Node
// identities are left alone — id-based families promise unique ids, and
// the schemes' guarantees are stated under that promise.
#pragma once

#include <cstdint>

#include "plscheme/runner.hpp"
#include "runtime/backend.hpp"
#include "util/rng.hpp"

namespace mstv {

/// The in-process backend: labels are "delivered" by reading the shared
/// label vector, so a round is a sharded pass over the vertex range.
/// Reference implementation of the NetworkBackend determinism contract.
class SimNetwork : public NetworkBackend {
 public:
  SimNetwork(ConfigGraph cfg, const ProofLabelingScheme& scheme)
      : cfg_(std::move(cfg)),
        scheme_(&scheme),
        labels_(cfg_.size()) {}

  [[nodiscard]] std::string_view backend_name() const noexcept override {
    return "sim";
  }

  /// Runs the marker and installs its labels.
  void install_marker_labels() override;

  /// Takes a repaired configuration from the incremental marker and ships
  /// only the labels listed in `changed` (the rest keep their installed
  /// copies — that is the point of incremental repair).  `labels` is the
  /// marker's full label vector; shipped volume is counted under
  /// dynamic.labels_shipped / dynamic.bits_shipped.  The configuration is
  /// replaced wholesale because updates rebuild the underlying graph.
  void apply_repair(const ConfigGraph& cfg,
                    const std::vector<VertexId>& changed,
                    const std::vector<Label>& labels);

  /// One synchronous verification round.
  [[nodiscard]] RoundStats verification_round() const override;

  /// One verification round over faulty channels: each transmitted label
  /// copy is independently corrupted (one random bit flip) with
  /// probability `flip_prob`.  Models transient link faults as opposed to
  /// the memory faults of FaultInjector; receivers must reject garbage
  /// rather than crash or accept.
  [[nodiscard]] RoundStats verification_round_with_channel_faults(
      Rng& rng, double flip_prob) const override;

  [[nodiscard]] ConfigGraph& config() noexcept { return cfg_; }
  [[nodiscard]] const ConfigGraph& config() const noexcept override {
    return cfg_;
  }
  [[nodiscard]] std::vector<Label>& labels() noexcept { return labels_; }
  [[nodiscard]] const std::vector<Label>& labels() const noexcept override {
    return labels_;
  }
  [[nodiscard]] const ProofLabelingScheme& scheme() const noexcept override {
    return *scheme_;
  }

  /// Rounds this network has executed (verification rounds of either
  /// flavor).  Keys the communication-ledger rows the network commits.
  [[nodiscard]] std::uint64_t round() const noexcept override {
    return round_;
  }

 private:
  ConfigGraph cfg_;
  const ProofLabelingScheme* scheme_;
  std::vector<Label> labels_;
  // Monotone round counter.  Mutable: running a round does not change the
  // network configuration (the API is const), but it is still the next
  // round.  Ledger commits key off this, so it advances deterministically
  // regardless of thread count.
  mutable std::uint64_t round_ = 0;
};

enum class FaultKind : std::uint8_t {
  RedirectParent,  // point the parent port at a random other port
  DropParent,      // clear the parent pointer (spurious second root)
  MakeParent,      // give the root a parent pointer (cycle risk)
  FlipLabelBit,    // corrupt one bit of the stored proof label
};

struct FaultRecord {
  FaultKind kind{};
  VertexId victim = kInvalidVertex;
};

class FaultInjector {
 public:
  explicit FaultInjector(Rng& rng) : rng_(&rng) {}

  /// Applies one random fault; returns what was done (or nullopt if the
  /// drawn fault is inapplicable, e.g. RedirectParent at the root).
  std::optional<FaultRecord> inject(SimNetwork& net);

  /// Applies a specific fault at a specific vertex if applicable.
  std::optional<FaultRecord> inject(SimNetwork& net, FaultKind kind,
                                    VertexId victim);

 private:
  Rng* rng_;
};

}  // namespace mstv
