#include "runtime/self_stabilization.hpp"

#include "mst/algorithms.hpp"
#include "obs/ledger.hpp"
#include "obs/trace.hpp"

namespace mstv {

SelfStabilizingMst::SelfStabilizingMst(const Graph& g, const MstScheme& scheme)
    : g_(&g),
      scheme_(&scheme),
      net_(make_tree_config(g, kruskal_mst(g), 0), scheme) {
  net_.install_marker_labels();
}

StabilizationStats SelfStabilizingMst::stabilize() {
  MSTV_SPAN("selfstab.stabilize");
  MSTV_COUNTER_ADD("selfstab.ticks", 1);
  StabilizationStats stats;

  {
    MSTV_SPAN("selfstab.detect");
    const RoundStats round = net_.verification_round();
    stats.verify_messages = round.messages;
    stats.verify_bits = round.bits;
    stats.fault_detected = !round.accepted;
    stats.detecting_nodes = round.rejecting;
  }
  if (!stats.fault_detected) return stats;
  MSTV_COUNTER_ADD("selfstab.faults_detected", 1);
  MSTV_COUNTER_ADD("selfstab.detecting_nodes", stats.detecting_nodes);

  // Repair: distributed recomputation, then reinstall states and labels.
  {
    MSTV_SPAN("selfstab.repair");
    stats.recompute = distributed_boruvka(*g_);
    ConfigGraph fresh = make_tree_config(*g_, stats.recompute.tree, 0);
    for (VertexId v = 0; v < fresh.size(); ++v) {
      net_.config().state(v) = fresh.state(v);
    }
    // Recompute traffic carries protocol messages, not proof labels, so
    // the cell has message/bit totals but no label distribution.
    obs::LedgerCell repair;
    repair.messages = stats.recompute.messages;
    repair.bits = stats.recompute.message_bits;
    MSTV_LEDGER_COMMIT("selfstab.repair", net_.round(), scheme_->name(),
                       repair);
  }
  {
    MSTV_SPAN("selfstab.remark");
    net_.install_marker_labels();
  }
  stats.repaired = true;
  obs::LedgerCell remark;
  for (const Label& l : net_.labels()) remark.fold_label(l.size_bits());
  stats.remark_bits = remark.bits;
  MSTV_LEDGER_COMMIT("selfstab.remark", net_.round(), scheme_->name(), remark);
  MSTV_COUNTER_ADD("selfstab.repairs", 1);
  MSTV_COUNTER_ADD("selfstab.repair_messages", stats.recompute.messages);
  MSTV_COUNTER_ADD("selfstab.repair_bits", stats.recompute.message_bits);
  MSTV_COUNTER_ADD("selfstab.remark_bits", stats.remark_bits);

  stats.silent_after = net_.verification_round().accepted;
  return stats;
}

}  // namespace mstv
