// NetworkBackend: the round-execution interface behind every transport.
//
// A verification round is the same protocol everywhere — every node ships
// its label through every port, runs the verifier on what arrived, and
// the driver accounts the traffic — but the transport that moves the
// labels is an implementation choice: SimNetwork delivers in-process
// (runtime/network.hpp), MpNetwork moves real bytes between forked worker
// processes (runtime/mp/).  This interface is the seam between them.
//
// Determinism contract (the reason the interface can exist at all): for a
// fixed configuration, label set, seed and flip probability, every
// backend must produce bit-identical verdicts, rejector sets and ledger
// cells — at any thread count and any worker count.  The parity tests in
// tests/test_mp_network.cpp hold the implementations to it.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "plscheme/runner.hpp"
#include "util/rng.hpp"

namespace mstv {

/// What one verification round measured.  Everything except
/// `wire_payload_bytes` is transport-independent and parity-checked
/// across backends; the wire field reports physical bytes that crossed a
/// process boundary (always 0 for the in-process simulator).
struct RoundStats {
  std::size_t messages = 0;   // one per delivered (edge, direction) copy
  std::size_t bits = 0;       // sum of delivered label bits
  std::size_t rejecting = 0;  // nodes that output 0 this round
  bool accepted = false;
  /// The rejecting nodes, ascending (shard-ordered merge keeps the serial
  /// left-to-right order on every backend).
  std::vector<VertexId> rejectors;
  /// True when the transport lost a worker mid-round (mp backend: killed
  /// process detected via EOF/timeout).  The verdict is then a graceful
  /// degradation — rejected, with the dead shard's nodes as rejectors —
  /// not a parity-comparable result.
  bool degraded = false;
  /// Label payload bytes that physically crossed a process boundary this
  /// round (mp backend; 0 for SimNetwork).  Excluded from parity: it
  /// depends on the worker count, not on the protocol.
  std::size_t wire_payload_bytes = 0;

  friend bool operator==(const RoundStats&, const RoundStats&) = default;
};

class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;

  /// Short transport name ("sim", "mp") for reports and CLI output.
  [[nodiscard]] virtual std::string_view backend_name() const noexcept = 0;

  /// Runs the marker on the configuration and installs its labels
  /// (distributing them to whatever owns the nodes).
  virtual void install_marker_labels() = 0;

  /// One synchronous verification round.  Const: a round inspects the
  /// configuration, it does not change it (SelfStabilizingMst::tick()
  /// relies on this), but backends still advance their round counter and
  /// transport state internally.
  [[nodiscard]] virtual RoundStats verification_round() const = 0;

  /// One verification round over faulty channels: each transmitted label
  /// copy is independently corrupted (one random bit flip) with
  /// probability `flip_prob`.  The corruption pattern is drawn serially
  /// from `rng` in global (node, port) order on every backend, so the
  /// same seed yields the same faults regardless of transport, thread
  /// count or worker count.
  [[nodiscard]] virtual RoundStats verification_round_with_channel_faults(
      Rng& rng, double flip_prob) const = 0;

  /// Rounds executed so far (either flavor); keys the ledger rows.
  [[nodiscard]] virtual std::uint64_t round() const noexcept = 0;

  [[nodiscard]] virtual const ConfigGraph& config() const noexcept = 0;
  [[nodiscard]] virtual const std::vector<Label>& labels() const noexcept = 0;
  [[nodiscard]] virtual const ProofLabelingScheme& scheme()
      const noexcept = 0;
};

}  // namespace mstv
