#include "runtime/async_network.hpp"

#include <algorithm>

#include "obs/ledger.hpp"
#include "obs/trace.hpp"

namespace mstv {

AsyncRoundResult async_verification_round(const ConfigGraph& cfg,
                                          const ProofLabelingScheme& scheme,
                                          const std::vector<Label>& labels,
                                          Rng& rng,
                                          const AsyncOptions& opts) {
  MSTV_EXPECTS(labels.size() == cfg.size());
  MSTV_EXPECTS(opts.min_delay >= 0 && opts.min_delay <= opts.max_delay);
  MSTV_SPAN("async.round");
  const Graph& g = cfg.graph();

  AsyncRoundResult res;
  obs::LedgerCell cell;
  // Decide-time per node = max delay over its incoming label messages.
  for (VertexId v = 0; v < cfg.size(); ++v) {
    double last_input = 0.0;
    const auto ports = g.ports(v);
    for (std::uint32_t i = 0; i < g.degree(v); ++i) {
      const double delay =
          opts.min_delay + (opts.max_delay - opts.min_delay) * rng.real();
      MSTV_HIST_OBSERVE("async.delivery_delay", delay);
      last_input = std::max(last_input, delay);
      ++res.messages;
      cell.fold_label(labels[ports[i].neighbor].size_bits());
    }
    res.completion_time = std::max(res.completion_time, last_input);

    const LocalView view = make_local_view(cfg, v, labels);
    bool ok;
    try {
      ok = scheme.verify(view);
    } catch (const PreconditionError&) {
      ok = false;
    }
    if (!ok) {
      res.rejecting.push_back(v);
      // Each alarm fires the instant the rejecting node's last input lands.
      MSTV_HIST_OBSERVE("async.detection_latency", last_input);
      res.first_detection_time =
          std::min(res.first_detection_time, last_input);
    }
  }
  res.accepted = res.rejecting.empty();
  MSTV_COUNTER_ADD("async.rounds", 1);
  MSTV_COUNTER_ADD("async.messages", res.messages);
  MSTV_COUNTER_ADD("async.rejections", res.rejecting.size());
  MSTV_LEDGER_COMMIT("async.round", opts.round, scheme.name(), cell);
  return res;
}

}  // namespace mstv
