// MpNetwork: the multi-process NetworkBackend.
//
// The coordinator forks one worker process per contiguous node shard
// (deterministic parallel::shard_ranges split, the same one the thread
// pool uses) and drives them over socketpairs: a control socket per
// worker for commands and results, and a full mesh of worker-to-worker
// sockets for the per-round label exchange.  Rounds move real bytes —
// each worker packs ONE bulk payload per peer (alltoallv style: a
// size/count header exchange, then the data exchange) instead of per-edge
// sends, so the syscall count per round is O(workers^2), not O(m).
//
// Determinism: verdicts, rejector sets and ledger cells are bit-identical
// to SimNetwork for any worker count (see runtime/backend.hpp for the
// contract and tests/test_mp_network.cpp for the enforcement).  The
// channel-fault Rng stream is drawn serially by the coordinator in global
// (node, port) order — workers receive the flip plan, they never draw.
//
// Process faults (docs/faults.md §4): kill_worker() SIGKILLs a worker;
// the next round degrades gracefully — peers detect the death via EOF and
// time out the affected deliveries, the dead shard's nodes reject, and
// RoundStats::degraded is set.  set_partitioned() keeps a worker alive
// but cut off from the mesh: every node missing a delivery rejects, and
// clearing the partition restores normal rounds.
#pragma once

#include <memory>

#include "runtime/backend.hpp"

namespace mstv {

class MpNetwork : public NetworkBackend {
 public:
  /// Forks the workers immediately (before any labels exist, so children
  /// stay cheap).  `workers` is clamped to [1, min(n, 64)].  The Graph
  /// behind `cfg` must outlive the network, as with SimNetwork.
  MpNetwork(ConfigGraph cfg, const ProofLabelingScheme& scheme,
            std::size_t workers);
  ~MpNetwork() override;

  MpNetwork(const MpNetwork&) = delete;
  MpNetwork& operator=(const MpNetwork&) = delete;

  [[nodiscard]] std::string_view backend_name() const noexcept override {
    return "mp";
  }

  /// Runs the marker in the coordinator, then ships each worker its shard
  /// of labels over the control sockets.
  void install_marker_labels() override;

  /// Installs an explicit label vector instead of the marker's (test
  /// hook: corrupted/forged labels must reach the workers through the
  /// same install path, because coordinator-side label mutations do NOT
  /// propagate into already-forked children).
  void install_labels(std::vector<Label> labels);

  [[nodiscard]] RoundStats verification_round() const override;
  [[nodiscard]] RoundStats verification_round_with_channel_faults(
      Rng& rng, double flip_prob) const override;

  [[nodiscard]] std::uint64_t round() const noexcept override;
  [[nodiscard]] const ConfigGraph& config() const noexcept override;
  [[nodiscard]] const std::vector<Label>& labels() const noexcept override;
  [[nodiscard]] const ProofLabelingScheme& scheme() const noexcept override;

  /// Actual worker count after clamping.
  [[nodiscard]] std::size_t workers() const noexcept;

  /// True if worker `w`'s process is still believed alive.
  [[nodiscard]] bool worker_alive(std::size_t w) const noexcept;

  /// SIGKILLs worker `w` and reaps it (blocking — the process is
  /// guaranteed dead on return, so the next round deterministically sees
  /// the fault).  Subsequent rounds are degraded: the shard's nodes
  /// reject and RoundStats::degraded is set.
  void kill_worker(std::size_t w);

  /// Cuts worker `w` off the mesh (both directions) without killing it;
  /// the control socket stays up, so clearing the partition restores full
  /// rounds.  While partitioned, every node missing a delivery rejects.
  void set_partitioned(std::size_t w, bool partitioned);

 private:
  struct Impl;
  // Not const-propagating on purpose: rounds are const at the interface
  // (they do not change the configuration) but advance transport state.
  std::unique_ptr<Impl> impl_;
};

}  // namespace mstv
