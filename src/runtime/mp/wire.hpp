// Wire format and socket I/O helpers for the multi-process backend.
//
// Everything the mp transport moves — control frames on the
// coordinator-worker sockets, the per-round alltoallv payloads on the
// worker mesh — is encoded with the fixed-width little-endian primitives
// here.  Peers are forked from the same binary on the same machine, so
// host byte order is the wire byte order; there is no versioning problem
// to solve, only framing.
//
// Label framing (docs/distributed.md): u32 bit count, then
// ceil(bits / 64) u64 words — the exact backing store of Label, so a
// shipped label decodes bit-identical to the original.
//
// The fd helpers speak "peer died" as a return value, never a signal or
// an exception: send_full/recv_full return false on EPIPE / EOF /
// timeout, which is how the backend detects killed workers (the
// process-fault surface of docs/faults.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "labeling/label.hpp"

namespace mstv::mp {

/// Appends fixed-width primitives to a byte buffer.
struct WireWriter {
  std::vector<std::uint8_t> buf;

  void u8(std::uint8_t v) { buf.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void label(const Label& l);
};

/// Reads the primitives back; MSTV_EXPECTS on truncated input, so a
/// malformed frame surfaces as PreconditionError, never as a wild read.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  Label label();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// Bytes `WireWriter::label` will emit for `l`.
[[nodiscard]] std::size_t label_wire_bytes(const Label& l) noexcept;

/// Writes the whole buffer to a (blocking) socket.  Returns false if the
/// peer is gone (EPIPE/ECONNRESET); throws PreconditionError on any other
/// error.  Never raises SIGPIPE.
bool send_full(int fd, const void* data, std::size_t len);

/// Reads exactly `len` bytes from a (blocking) socket.  Returns false on
/// EOF, peer reset, or when `timeout_ms` >= 0 elapses before the data
/// arrives; throws on any other error.
bool recv_full(int fd, void* data, std::size_t len, int timeout_ms = -1);

/// Length-prefixed frame: u64 byte count, then the payload.
bool send_frame(int fd, const std::vector<std::uint8_t>& payload);
bool recv_frame(int fd, std::vector<std::uint8_t>& payload,
                int timeout_ms = -1);

}  // namespace mstv::mp
