#include "runtime/mp/worker.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/ledger.hpp"
#include "runtime/mp/wire.hpp"
#include "util/check.hpp"

namespace mstv::mp {

namespace {

// Backstop for a peer that neither answers nor dies: after this long a
// blocked exchange treats the peer as gone rather than hanging the round
// (the coordinator's own result timeout would fire anyway; this keeps the
// failure local and the verdict degraded instead of wedged).
constexpr int kExchangeTimeoutMs = 60000;

constexpr std::uint64_t kNoFlip = ~std::uint64_t{0};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MSTV_EXPECTS_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "mp worker: cannot make mesh socket nonblocking");
}

// One peer's in-flight transfer during a poll-driven exchange phase.
struct PeerIo {
  int fd = -1;
  std::uint8_t* dead = nullptr;  // byte, not vector<bool> proxy
  const std::uint8_t* out = nullptr;
  std::size_t out_len = 0;
  std::size_t out_pos = 0;
  std::uint8_t* in = nullptr;
  std::size_t in_len = 0;
  std::size_t in_pos = 0;

  [[nodiscard]] bool done() const {
    return *dead || (out_pos >= out_len && in_pos >= in_len);
  }
};

// Drives every transfer concurrently with poll() until each peer is done
// or dead.  Progress is made opportunistically in both directions, so no
// send ordering between peers can deadlock: whoever has buffer space gets
// written, whoever has data gets read.
void exchange(std::vector<PeerIo>& ios) {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> idx;
  for (;;) {
    pfds.clear();
    idx.clear();
    for (std::size_t i = 0; i < ios.size(); ++i) {
      PeerIo& io = ios[i];
      if (io.done()) continue;
      short events = 0;
      if (io.out_pos < io.out_len) events |= POLLOUT;
      if (io.in_pos < io.in_len) events |= POLLIN;
      pfds.push_back(pollfd{io.fd, events, 0});
      idx.push_back(i);
    }
    if (pfds.empty()) return;

    int rc;
    do {
      rc = ::poll(pfds.data(), pfds.size(), kExchangeTimeoutMs);
    } while (rc < 0 && errno == EINTR);
    MSTV_EXPECTS_MSG(rc >= 0, "mp worker: mesh poll failed");
    if (rc == 0) {
      // Nothing moved for the whole backstop window: give up on every
      // unfinished peer.
      for (const std::size_t i : idx) *ios[i].dead = true;
      return;
    }

    for (std::size_t k = 0; k < pfds.size(); ++k) {
      PeerIo& io = ios[idx[k]];
      const short got = pfds[k].revents;
      if (got == 0 || *io.dead) continue;
      if ((got & (POLLIN | POLLHUP | POLLERR)) != 0 && io.in_pos < io.in_len) {
        const ssize_t n =
            ::recv(io.fd, io.in + io.in_pos, io.in_len - io.in_pos, 0);
        if (n == 0) {
          *io.dead = true;  // peer process exited
          continue;
        }
        if (n < 0) {
          if (errno == ECONNRESET) {
            *io.dead = true;
            continue;
          }
          MSTV_EXPECTS_MSG(errno == EAGAIN || errno == EWOULDBLOCK ||
                               errno == EINTR,
                           "mp worker: mesh recv failed");
        } else {
          io.in_pos += static_cast<std::size_t>(n);
        }
      } else if ((got & (POLLHUP | POLLERR)) != 0) {
        *io.dead = true;
        continue;
      }
      if ((got & POLLOUT) != 0 && io.out_pos < io.out_len && !*io.dead) {
        const ssize_t n = ::send(io.fd, io.out + io.out_pos,
                                 io.out_len - io.out_pos, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EPIPE || errno == ECONNRESET) {
            *io.dead = true;
            continue;
          }
          MSTV_EXPECTS_MSG(errno == EAGAIN || errno == EWOULDBLOCK ||
                               errno == EINTR,
                           "mp worker: mesh send failed");
        } else {
          io.out_pos += static_cast<std::size_t>(n);
        }
      }
    }
  }
}

// The long-lived worker state between rounds.
struct Worker {
  const WorkerContext& ctx;
  std::vector<Label> labels;  // own shard, index v - begin
  std::vector<std::uint8_t> peer_dead;
  // Per peer: the (vertex, port-index) slots whose label copies we ship
  // there, sorted by the RECEIVER's iteration order (neighbor vertex,
  // then our reverse port) so the receiver consumes the bulk payload
  // strictly sequentially.
  std::vector<std::vector<std::pair<VertexId, std::uint32_t>>> send_plan;
  // Per peer: how many label copies we expect back per round.
  std::vector<std::size_t> recv_count;

  explicit Worker(const WorkerContext& c)
      : ctx(c),
        labels(c.end - c.begin),
        peer_dead(c.peers.size(), 0),
        send_plan(c.peers.size()),
        recv_count(c.peers.size(), 0) {
    const Graph& g = ctx.cfg->graph();
    std::vector<std::size_t> peer_index(ctx.shard_of.empty()
                                            ? 0
                                            : *std::max_element(
                                                  ctx.shard_of.begin(),
                                                  ctx.shard_of.end()) +
                                                  1,
                                        ~std::size_t{0});
    for (std::size_t p = 0; p < ctx.peers.size(); ++p) {
      peer_index[ctx.peers[p].shard] = p;
    }
    for (std::size_t i = ctx.begin; i < ctx.end; ++i) {
      const auto v = static_cast<VertexId>(i);
      const auto ports = g.ports(v);
      for (std::size_t k = 0; k < ports.size(); ++k) {
        const std::uint32_t owner = ctx.shard_of[ports[k].neighbor];
        if (owner == ctx.worker) continue;
        const std::size_t p = peer_index[owner];
        send_plan[p].emplace_back(v, static_cast<std::uint32_t>(k));
        ++recv_count[p];  // symmetric: one copy out, one copy back per edge
      }
    }
    for (std::size_t p = 0; p < ctx.peers.size(); ++p) {
      const Graph* gp = &g;  // capture the graph, not the whole worker
      std::sort(send_plan[p].begin(), send_plan[p].end(),
                [gp](const auto& a, const auto& b) {
                  const PortInfo& pa = gp->ports(a.first)[a.second];
                  const PortInfo& pb = gp->ports(b.first)[b.second];
                  if (pa.neighbor != pb.neighbor) {
                    return pa.neighbor < pb.neighbor;
                  }
                  return pa.reverse_port < pb.reverse_port;
                });
    }
  }

  void install(WireReader& rd) {
    const std::uint64_t count = rd.u64();
    MSTV_EXPECTS_MSG(count == labels.size(),
                     "mp worker: install count does not match the shard");
    for (std::uint64_t i = 0; i < count; ++i) labels[i] = rd.label();
  }

  void run_round(WireReader& rd, std::vector<std::uint8_t>& result);
};

void Worker::run_round(WireReader& rd, std::vector<std::uint8_t>& result) {
  const std::uint8_t flags = rd.u8();
  const std::uint64_t partition_mask = rd.u64();
  const std::uint32_t flip_count = rd.u32();
  // Receiver-side flip plan, sorted by (vertex, port) — the same order the
  // verify loop visits slots, so one cursor suffices.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flips;
  flips.reserve(flip_count);
  for (std::uint32_t i = 0; i < flip_count; ++i) {
    const std::uint32_t v = rd.u32();
    const std::uint32_t port = rd.u32();
    const std::uint64_t bit = rd.u64();
    flips.emplace_back((std::uint64_t{v} << 32) | port, bit);
  }
  std::sort(flips.begin(), flips.end());
  (void)flags;

  const Graph& g = ctx.cfg->graph();
  const bool self_partitioned = (partition_mask >> ctx.worker) & 1;

  // Which peers we exchange with this round.
  std::vector<bool> active(ctx.peers.size(), false);
  for (std::size_t p = 0; p < ctx.peers.size(); ++p) {
    const bool peer_partitioned = (partition_mask >> ctx.peers[p].shard) & 1;
    active[p] = !peer_dead[p] && !self_partitioned && !peer_partitioned;
  }

  // Phase 0 (local): pack one bulk payload per active peer — every label
  // copy this shard owes across every inter-shard edge, in receiver
  // order.  Labels are duplicated per (edge, direction) exactly as in the
  // model's per-edge message; batching changes the framing, not the count.
  std::vector<std::vector<std::uint8_t>> out_payload(ctx.peers.size());
  std::uint64_t sent_payload_bytes = 0;
  std::uint64_t payloads_sent = 0;
  for (std::size_t p = 0; p < ctx.peers.size(); ++p) {
    if (!active[p]) continue;
    WireWriter w;
    std::size_t bytes = 0;
    for (const auto& [v, port] : send_plan[p]) {
      bytes += label_wire_bytes(labels[v - ctx.begin]);
    }
    w.buf.reserve(bytes);
    for (const auto& [v, port] : send_plan[p]) {
      w.label(labels[v - ctx.begin]);
    }
    out_payload[p] = std::move(w.buf);
    sent_payload_bytes += out_payload[p].size();
    ++payloads_sent;
  }

  // Phase 1: size/count headers, all peers concurrently.
  struct Header {
    std::uint64_t payload_bytes = 0;
    std::uint64_t label_count = 0;
  };
  std::vector<Header> out_hdr(ctx.peers.size());
  std::vector<Header> in_hdr(ctx.peers.size());
  {
    std::vector<PeerIo> ios;
    for (std::size_t p = 0; p < ctx.peers.size(); ++p) {
      if (!active[p]) continue;
      out_hdr[p].payload_bytes = out_payload[p].size();
      out_hdr[p].label_count = send_plan[p].size();
      PeerIo io;
      io.fd = ctx.peers[p].fd;
      io.dead = &peer_dead[p];
      io.out = reinterpret_cast<const std::uint8_t*>(&out_hdr[p]);
      io.out_len = sizeof(Header);
      io.in = reinterpret_cast<std::uint8_t*>(&in_hdr[p]);
      io.in_len = sizeof(Header);
      ios.push_back(io);
    }
    exchange(ios);
  }

  // Phase 2: one bulk alltoallv payload per surviving peer.
  std::vector<std::vector<std::uint8_t>> in_payload(ctx.peers.size());
  {
    std::vector<PeerIo> ios;
    for (std::size_t p = 0; p < ctx.peers.size(); ++p) {
      if (!active[p] || peer_dead[p]) continue;
      MSTV_EXPECTS_MSG(in_hdr[p].label_count == recv_count[p],
                       "mp worker: peer announced a mismatched label count");
      in_payload[p].resize(in_hdr[p].payload_bytes);
      PeerIo io;
      io.fd = ctx.peers[p].fd;
      io.dead = &peer_dead[p];
      io.out = out_payload[p].data();
      io.out_len = out_payload[p].size();
      io.in = in_payload[p].data();
      io.in_len = in_payload[p].size();
      ios.push_back(io);
    }
    exchange(ios);
  }

  // Delivered = the peer stayed alive through both phases; a payload cut
  // short by a mid-round death is discarded wholesale (partial data is
  // indistinguishable from none to a synchronous round).
  std::vector<WireReader> readers;
  readers.reserve(ctx.peers.size());
  std::vector<WireReader*> reader_of(ctx.peers.size(), nullptr);
  for (std::size_t p = 0; p < ctx.peers.size(); ++p) {
    if (active[p] && !peer_dead[p]) {
      readers.emplace_back(in_payload[p].data(), in_payload[p].size());
      reader_of[p] = &readers.back();
    }
  }
  std::vector<std::size_t> peer_index_of_shard(ctx.shard_of.empty()
                                                   ? 0
                                                   : *std::max_element(
                                                         ctx.shard_of.begin(),
                                                         ctx.shard_of.end()) +
                                                         1,
                                               ~std::size_t{0});
  for (std::size_t p = 0; p < ctx.peers.size(); ++p) {
    peer_index_of_shard[ctx.peers[p].shard] = p;
  }

  // Verify the shard serially (no pool in a forked child); rejectors come
  // out ascending like the sharded engine's shard-ordered merge.
  obs::LedgerCell cell;
  std::uint64_t missing = 0;
  std::vector<VertexId> rejectors;
  std::size_t flip_cursor = 0;
  std::vector<Label> received;
  for (std::size_t i = ctx.begin; i < ctx.end; ++i) {
    const auto v = static_cast<VertexId>(i);
    const auto ports = g.ports(v);
    received.clear();
    received.reserve(ports.size());
    bool all_heard = true;
    for (std::size_t k = 0; k < ports.size(); ++k) {
      const VertexId nb = ports[k].neighbor;
      const std::uint32_t owner = ctx.shard_of[nb];
      Label copy;
      bool heard = false;
      if (owner == ctx.worker) {
        copy = labels[nb - ctx.begin];
        heard = true;
      } else if (WireReader* peer_rd =
                     reader_of[peer_index_of_shard[owner]]) {
        copy = peer_rd->label();
        heard = true;
      }
      if (heard) {
        const std::uint64_t slot = (std::uint64_t{v} << 32) | k;
        while (flip_cursor < flips.size() && flips[flip_cursor].first < slot) {
          ++flip_cursor;
        }
        if (flip_cursor < flips.size() &&
            flips[flip_cursor].first == slot && copy.size_bits() > 0) {
          copy = copy.with_bit_flipped(
              static_cast<std::size_t>(flips[flip_cursor].second));
        }
        cell.fold_label(copy.size_bits());
      } else {
        all_heard = false;
        ++missing;
      }
      received.push_back(std::move(copy));
    }

    bool ok = false;
    if (all_heard) {
      LocalView view;
      view.v = v;
      view.state = &ctx.cfg->state(v);
      view.label = &labels[i - ctx.begin];
      view.neighbors.reserve(ports.size());
      for (std::size_t k = 0; k < ports.size(); ++k) {
        view.neighbors.push_back(NeighborView{
            static_cast<PortNumber>(k + 1), ports[k].weight, &received[k]});
      }
      try {
        ok = ctx.scheme->verify(view);
      } catch (const PreconditionError&) {
        ok = false;  // malformed/forged label: reject locally
      }
    }
    // A node that failed to hear from some neighbor rejects outright —
    // the synchronous model's timeout.  Partition and worker death both
    // land here.
    if (!ok) rejectors.push_back(v);
  }

  WireWriter res;
  res.u8(0);
  res.u64(cell.messages);
  res.u64(cell.bits);
  res.u64(cell.labels);
  res.u64(cell.label_bits_min);
  res.u64(cell.label_bits_max);
  res.u64(cell.label_bits_sum);
  res.u64(sent_payload_bytes);
  res.u64(payloads_sent);
  res.u64(missing);
  res.u32(static_cast<std::uint32_t>(rejectors.size()));
  for (const VertexId v : rejectors) res.u32(v);
  result = std::move(res.buf);
}

}  // namespace

void worker_main(WorkerContext& ctx) {
  try {
    for (const WorkerPeer& peer : ctx.peers) set_nonblocking(peer.fd);
    Worker worker(ctx);
    std::vector<std::uint8_t> frame;
    std::vector<std::uint8_t> result;
    for (;;) {
      if (!recv_frame(ctx.ctl_fd, frame)) return;  // coordinator gone
      MSTV_EXPECTS_MSG(!frame.empty(), "mp worker: empty control frame");
      WireReader rd(frame.data(), frame.size());
      const std::uint8_t cmd = rd.u8();
      if (cmd == kCmdShutdown) return;
      if (cmd == kCmdInstall) {
        worker.install(rd);
      } else if (cmd == kCmdRound) {
        worker.run_round(rd, result);
        if (!send_frame(ctx.ctl_fd, result)) return;
      } else {
        MSTV_EXPECTS_MSG(false, "mp worker: unknown control command");
      }
    }
  } catch (const std::exception& e) {
    // mstv-lint: allow(MP-FORK-SAFE) — terminal error path: stderr is
    // unbuffered, the parent never writes it concurrently, and the very
    // next step is _exit(1); the one-line epitaph is worth more than
    // strict stdio silence here.
    std::fprintf(stderr, "mp worker %zu: %s\n", ctx.worker, e.what());
    // Returning lets the caller _exit(1); the coordinator sees EOF and
    // degrades the round.
  }
}

}  // namespace mstv::mp
