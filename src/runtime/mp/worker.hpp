// The mp backend's worker process: owns one contiguous node shard.
//
// Forked by MpNetwork before any labels exist, a worker loops on its
// control socket executing coordinator commands.  Per verification round
// it runs the DASH-style two-phase batched exchange with every peer
// worker — first a fixed-size size/count header per peer, then ONE bulk
// alltoallv payload of packed neighbor labels per peer, never per-edge
// sends — and then verifies its own vertex range serially, reporting the
// shard's ledger cell, rejector list and wire accounting back to the
// coordinator.
//
// Worker code runs in a freshly forked child of a possibly-threaded
// parent, so it stays deliberately austere: no thread pool, no obs
// macros, no globals — just the configuration it inherited read-only, the
// labels the coordinator ships, and the sockets.  Any exception is
// reported on stderr and turns into _exit(1), which the coordinator
// observes as EOF (a process fault, docs/faults.md §4).
#pragma once

#include <cstdint>
#include <vector>

#include "plscheme/config_graph.hpp"
#include "plscheme/scheme.hpp"

namespace mstv::mp {

// Control-plane command codes (coordinator -> worker); every frame's
// first byte.
inline constexpr std::uint8_t kCmdInstall = 1;
inline constexpr std::uint8_t kCmdRound = 2;
inline constexpr std::uint8_t kCmdShutdown = 3;

// kCmdRound flag bits.
inline constexpr std::uint8_t kRoundFlagChannelFaults = 1;

/// One mesh connection to a peer worker.
struct WorkerPeer {
  std::size_t shard = 0;  // the peer's shard index
  int fd = -1;            // our end of the socketpair to it
};

/// Everything a worker needs, fixed at fork time.  The configuration and
/// scheme pointers refer to coordinator objects the child inherited via
/// fork — the topology and states are frozen from that moment on; only
/// labels flow over the control socket afterwards.
struct WorkerContext {
  std::size_t worker = 0;  // own shard index
  std::size_t begin = 0;   // own vertex range [begin, end)
  std::size_t end = 0;
  const ConfigGraph* cfg = nullptr;
  const ProofLabelingScheme* scheme = nullptr;
  int ctl_fd = -1;
  std::vector<WorkerPeer> peers;  // every other shard, ascending
  /// shard_of[v] = owning shard index, for routing labels.
  std::vector<std::uint32_t> shard_of;
};

/// The worker loop.  Returns only on kCmdShutdown or control-socket EOF;
/// the caller is expected to _exit immediately after.
void worker_main(WorkerContext& ctx);

}  // namespace mstv::mp
