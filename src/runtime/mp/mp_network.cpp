#include "runtime/mp/mp_network.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <ctime>
#include <utility>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_session.hpp"
#include "parallel/parallel_for.hpp"
#include "runtime/mp/wire.hpp"
#include "runtime/mp/worker.hpp"

namespace mstv {

namespace {

// A worker that produces no result within this window is declared dead
// even without EOF (e.g. SIGSTOPped).  Generous: rounds on the gated
// sizes finish in milliseconds.
constexpr int kResultTimeoutMs = 30000;

// One receiver-side delivery record for the coordinator's flip plan.
struct FlipEntry {
  std::uint32_t v = 0;     // receiving vertex
  std::uint32_t port = 0;  // its port index (0-based)
  std::uint64_t bit = 0;   // which label bit the channel flips
};

}  // namespace

struct MpNetwork::Impl {
  ConfigGraph cfg;
  const ProofLabelingScheme* scheme = nullptr;
  std::vector<Label> labels;
  std::uint64_t round = 0;

  std::size_t workers = 0;
  std::vector<parallel::ShardRange> shards;
  std::vector<std::uint32_t> shard_of;
  std::vector<pid_t> pids;
  std::vector<int> ctl;  // coordinator end per worker; -1 once dead
  std::vector<bool> dead;
  std::uint64_t partition_mask = 0;

  Impl(ConfigGraph c, const ProofLabelingScheme& s, std::size_t want)
      : cfg(std::move(c)), scheme(&s) {
    const std::size_t n = cfg.size();
    workers = want == 0 ? 1 : want;
    if (workers > n) workers = n;
    if (workers > 64) workers = 64;  // the partition mask is a u64
    shards = parallel::shard_ranges(n, workers);
    MSTV_ASSERT(shards.size() == workers);
    shard_of.resize(n);
    for (std::size_t s_i = 0; s_i < workers; ++s_i) {
      for (std::size_t i = shards[s_i].begin; i < shards[s_i].end; ++i) {
        shard_of[i] = static_cast<std::uint32_t>(s_i);
      }
    }
    spawn_workers();
  }

  ~Impl() { shutdown(); }

  void spawn_workers() {
    // All sockets exist before the first fork, so every child inherits
    // the full set and keeps only its own ends.
    std::vector<std::array<int, 2>> ctl_pair(workers);
    // mesh[i][j] for i < j: [0] is i's end, [1] is j's end.
    std::vector<std::vector<std::array<int, 2>>> mesh(
        workers, std::vector<std::array<int, 2>>(workers, {-1, -1}));
    for (std::size_t w = 0; w < workers; ++w) {
      MSTV_EXPECTS_MSG(
          ::socketpair(AF_UNIX, SOCK_STREAM, 0, ctl_pair[w].data()) == 0,
          "mp: cannot create control socketpair");
    }
    for (std::size_t i = 0; i < workers; ++i) {
      for (std::size_t j = i + 1; j < workers; ++j) {
        MSTV_EXPECTS_MSG(
            ::socketpair(AF_UNIX, SOCK_STREAM, 0, mesh[i][j].data()) == 0,
            "mp: cannot create mesh socketpair");
      }
    }

    pids.assign(workers, -1);
    ctl.assign(workers, -1);
    dead.assign(workers, false);
    std::fflush(nullptr);  // don't let children replay buffered output
    for (std::size_t w = 0; w < workers; ++w) {
      const pid_t pid = ::fork();
      MSTV_EXPECTS_MSG(pid >= 0, "mp: fork failed");
      if (pid != 0) {
        pids[w] = pid;
        continue;
      }
      // Child: keep ctl_pair[w][1] and the w-side of each mesh pair,
      // close everything else, run the worker loop, and never return.
      mp::WorkerContext ctx;
      ctx.worker = w;
      ctx.begin = shards[w].begin;
      ctx.end = shards[w].end;
      ctx.cfg = &cfg;
      ctx.scheme = scheme;
      ctx.ctl_fd = ctl_pair[w][1];
      ctx.shard_of = shard_of;
      for (std::size_t o = 0; o < workers; ++o) {
        if (o == w) continue;
        ::close(ctl_pair[o][0]);
        ::close(ctl_pair[o][1]);
      }
      ::close(ctl_pair[w][0]);
      for (std::size_t i = 0; i < workers; ++i) {
        for (std::size_t j = i + 1; j < workers; ++j) {
          if (i == w) {
            ctx.peers.push_back(mp::WorkerPeer{j, mesh[i][j][0]});
            ::close(mesh[i][j][1]);
          } else if (j == w) {
            ctx.peers.push_back(mp::WorkerPeer{i, mesh[i][j][1]});
            ::close(mesh[i][j][0]);
          } else {
            ::close(mesh[i][j][0]);
            ::close(mesh[i][j][1]);
          }
        }
      }
      mp::worker_main(ctx);
      // _exit, not exit: a forked child must not run the parent's atexit
      // chain (thread pool, tracer, sanitizer finalizers).
      ::_exit(0);
    }

    // Coordinator: the workers own the mesh; holding our copies open
    // would mask worker death from their peers (no EOF).
    for (std::size_t w = 0; w < workers; ++w) {
      ctl[w] = ctl_pair[w][0];
      ::close(ctl_pair[w][1]);
    }
    for (std::size_t i = 0; i < workers; ++i) {
      for (std::size_t j = i + 1; j < workers; ++j) {
        ::close(mesh[i][j][0]);
        ::close(mesh[i][j][1]);
      }
    }
    MSTV_GAUGE_SET("mp.workers", workers);
  }

  void mark_dead(std::size_t w) {
    if (dead[w]) return;
    dead[w] = true;
    if (ctl[w] >= 0) {
      ::close(ctl[w]);
      ctl[w] = -1;
    }
    if (pids[w] > 0) {
      // The worker may still be alive (timeout rather than EOF); make the
      // declared state real before reaping.
      ::kill(pids[w], SIGKILL);
      ::waitpid(pids[w], nullptr, 0);
      pids[w] = -1;
    }
  }

  void ship_labels() {
    std::uint64_t shipped_bytes = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      if (dead[w]) continue;
      mp::WireWriter fr;
      fr.u8(mp::kCmdInstall);
      fr.u64(shards[w].end - shards[w].begin);
      for (std::size_t i = shards[w].begin; i < shards[w].end; ++i) {
        fr.label(labels[i]);
      }
      shipped_bytes += fr.buf.size();
      if (!mp::send_frame(ctl[w], fr.buf)) mark_dead(w);
    }
    MSTV_COUNTER_ADD("mp.install_bytes", shipped_bytes);
    // The verifier never runs in this process, so the label-envelope
    // gauges the bound auditor reads are set here.
    std::size_t max_bits = 0;
    std::size_t total_bits = 0;
    for (const Label& l : labels) {
      max_bits = std::max(max_bits, l.size_bits());
      total_bits += l.size_bits();
    }
    MSTV_COUNTER_ADD("label.bits_total", total_bits);
    MSTV_GAUGE_SET("label.max_bits", max_bits);
    MSTV_GAUGE_SET("label.avg_bits",
                   labels.empty() ? 0.0
                                  : static_cast<double>(total_bits) /
                                        static_cast<double>(labels.size()));
  }

  RoundStats run_round(const char* phase,
                       const std::vector<std::vector<FlipEntry>>& flips) {
    MSTV_TRACE_SCOPE("mp", "mp.round",
                     {obs::TraceArg::uint("round", round)});
    // Command every live worker first, then collect: the workers overlap
    // their exchanges while we are still writing the later commands.
    for (std::size_t w = 0; w < workers; ++w) {
      if (dead[w]) continue;
      mp::WireWriter fr;
      fr.u8(mp::kCmdRound);
      fr.u8(flips.empty() ? 0 : mp::kRoundFlagChannelFaults);
      fr.u64(partition_mask);
      static const std::vector<FlipEntry> kNoFlips;
      const std::vector<FlipEntry>& shard_flips =
          flips.empty() ? kNoFlips : flips[w];
      fr.u32(static_cast<std::uint32_t>(shard_flips.size()));
      for (const FlipEntry& f : shard_flips) {
        fr.u32(f.v);
        fr.u32(f.port);
        fr.u64(f.bit);
      }
      if (!mp::send_frame(ctl[w], fr.buf)) mark_dead(w);
    }

    RoundStats stats;
    obs::LedgerCell cell;
    std::uint64_t wire_payload_bytes = 0;
    std::uint64_t payloads_sent = 0;
    std::uint64_t missing = 0;
    std::vector<std::uint8_t> fr;
    // Merge strictly in shard order: rejectors come out globally
    // ascending because each worker reports its own range ascending.
    for (std::size_t w = 0; w < workers; ++w) {
      if (!dead[w] && !mp::recv_frame(ctl[w], fr, kResultTimeoutMs)) {
        mark_dead(w);
      }
      if (dead[w]) {
        // Process fault: the whole shard is unreachable, so all of its
        // nodes count as rejecting — the degraded verdict.
        stats.degraded = true;
        for (std::size_t i = shards[w].begin; i < shards[w].end; ++i) {
          stats.rejectors.push_back(static_cast<VertexId>(i));
        }
        continue;
      }
      mp::WireReader rd(fr.data(), fr.size());
      (void)rd.u8();  // status
      obs::LedgerCell part;
      part.messages = rd.u64();
      part.bits = rd.u64();
      part.labels = rd.u64();
      part.label_bits_min = rd.u64();
      part.label_bits_max = rd.u64();
      part.label_bits_sum = rd.u64();
      cell.merge(part);
      wire_payload_bytes += rd.u64();
      payloads_sent += rd.u64();
      missing += rd.u64();
      const std::uint32_t nrej = rd.u32();
      for (std::uint32_t i = 0; i < nrej; ++i) {
        stats.rejectors.push_back(rd.u32());
      }
    }

    stats.messages = cell.messages;
    stats.bits = cell.bits;
    stats.rejecting = stats.rejectors.size();
    stats.accepted = stats.rejectors.empty();
    stats.wire_payload_bytes = wire_payload_bytes;

    MSTV_COUNTER_ADD("verify.rounds", 1);
    MSTV_COUNTER_ADD("verify.messages", stats.messages);
    MSTV_COUNTER_ADD("verify.bits_total", stats.bits);
    MSTV_COUNTER_ADD("verify.rejections", stats.rejecting);
    MSTV_COUNTER_ADD("mp.rounds", 1);
    MSTV_COUNTER_ADD("mp.wire_bytes_total",
                     wire_payload_bytes + 16 * payloads_sent);
    MSTV_COUNTER_ADD("mp.payloads_total", payloads_sent);
    MSTV_COUNTER_ADD("mp.missing_deliveries", missing);
    if (stats.degraded) MSTV_COUNTER_INC("mp.degraded_rounds");
    // Same key as the simulator's commit for this round flavor, and the
    // same cell value (receiver-side fold ≡ sender-side fold when every
    // copy is delivered) — that is what lets --audit-bounds and the
    // ledger parity tests treat the transports interchangeably.
    MSTV_LEDGER_COMMIT(phase, round, scheme->name(), cell);
    obs::LedgerCell wire;
    wire.messages = payloads_sent;
    wire.bits = 8 * wire_payload_bytes;
    MSTV_LEDGER_COMMIT("mp.wire", round, scheme->name(), wire);
    ++round;
    return stats;
  }

  void shutdown() {
    for (std::size_t w = 0; w < workers; ++w) {
      if (dead[w] || ctl[w] < 0) continue;
      mp::WireWriter fr;
      fr.u8(mp::kCmdShutdown);
      (void)mp::send_frame(ctl[w], fr.buf);
    }
    for (std::size_t w = 0; w < workers; ++w) {
      if (pids[w] <= 0) continue;
      // Grace period, then force: a worker ignoring shutdown is a bug,
      // not a reason to hang the coordinator's destructor.
      bool reaped = false;
      for (int spin = 0; spin < 2000; ++spin) {
        const pid_t r = ::waitpid(pids[w], nullptr, WNOHANG);
        if (r == pids[w] || (r < 0 && errno == ECHILD)) {
          reaped = true;
          break;
        }
        timespec ts{0, 1000000};  // 1ms
        ::nanosleep(&ts, nullptr);
      }
      if (!reaped) {
        ::kill(pids[w], SIGKILL);
        ::waitpid(pids[w], nullptr, 0);
      }
      pids[w] = -1;
    }
    for (std::size_t w = 0; w < workers; ++w) {
      if (ctl[w] >= 0) {
        ::close(ctl[w]);
        ctl[w] = -1;
      }
    }
  }
};

MpNetwork::MpNetwork(ConfigGraph cfg, const ProofLabelingScheme& scheme,
                     std::size_t workers)
    : impl_(std::make_unique<Impl>(std::move(cfg), scheme, workers)) {}

MpNetwork::~MpNetwork() = default;

void MpNetwork::install_marker_labels() {
  impl_->labels = impl_->scheme->mark(impl_->cfg);
  impl_->ship_labels();
}

void MpNetwork::install_labels(std::vector<Label> labels) {
  MSTV_EXPECTS_MSG(labels.size() == impl_->cfg.size(),
                   "label vector does not match the configuration");
  impl_->labels = std::move(labels);
  impl_->ship_labels();
}

RoundStats MpNetwork::verification_round() const {
  return impl_->run_round("verify.round", {});
}

RoundStats MpNetwork::verification_round_with_channel_faults(
    Rng& rng, double flip_prob) const {
  // Draw every corruption decision serially in global (node, port) order
  // — the exact loop SimNetwork runs — so one seed produces one fault
  // pattern on every backend, thread count and worker count.
  Impl& impl = *impl_;
  std::vector<std::vector<FlipEntry>> flips(impl.workers);
  std::size_t corrupted = 0;
  for (VertexId v = 0; v < impl.cfg.size(); ++v) {
    const auto ports = impl.cfg.graph().ports(v);
    for (std::size_t i = 0; i < ports.size(); ++i) {
      const std::size_t bits = impl.labels[ports[i].neighbor].size_bits();
      if (bits > 0 && rng.chance(flip_prob)) {
        flips[impl.shard_of[v]].push_back(
            FlipEntry{v, static_cast<std::uint32_t>(i),
                      static_cast<std::uint64_t>(rng.index(bits))});
        ++corrupted;
      }
    }
  }
  MSTV_COUNTER_ADD("faults.channel_bitflips", corrupted);
  return impl.run_round("verify.channel_faults", flips);
}

std::uint64_t MpNetwork::round() const noexcept { return impl_->round; }

const ConfigGraph& MpNetwork::config() const noexcept { return impl_->cfg; }

const std::vector<Label>& MpNetwork::labels() const noexcept {
  return impl_->labels;
}

const ProofLabelingScheme& MpNetwork::scheme() const noexcept {
  return *impl_->scheme;
}

std::size_t MpNetwork::workers() const noexcept { return impl_->workers; }

bool MpNetwork::worker_alive(std::size_t w) const noexcept {
  return w < impl_->workers && !impl_->dead[w];
}

void MpNetwork::kill_worker(std::size_t w) {
  MSTV_EXPECTS_MSG(w < impl_->workers, "worker index out of range");
  impl_->mark_dead(w);
  MSTV_COUNTER_INC("mp.workers_killed");
}

void MpNetwork::set_partitioned(std::size_t w, bool partitioned) {
  MSTV_EXPECTS_MSG(w < impl_->workers, "worker index out of range");
  const std::uint64_t bit = std::uint64_t{1} << w;
  if (partitioned) {
    impl_->partition_mask |= bit;
  } else {
    impl_->partition_mask &= ~bit;
  }
}

}  // namespace mstv
