#include "runtime/mp/wire.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"

namespace mstv::mp {

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::label(const Label& l) {
  const std::size_t nbits = l.size_bits();
  u32(static_cast<std::uint32_t>(nbits));
  const std::size_t nwords = (nbits + 63) / 64;
  const auto& words = l.words();
  for (std::size_t i = 0; i < nwords; ++i) {
    u64(i < words.size() ? words[i] : 0);
  }
}

std::uint8_t WireReader::u8() {
  MSTV_EXPECTS_MSG(remaining() >= 1, "truncated mp wire frame");
  return *p_++;
}

std::uint32_t WireReader::u32() {
  MSTV_EXPECTS_MSG(remaining() >= 4, "truncated mp wire frame");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(*p_++) << (8 * i);
  }
  return v;
}

std::uint64_t WireReader::u64() {
  MSTV_EXPECTS_MSG(remaining() >= 8, "truncated mp wire frame");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(*p_++) << (8 * i);
  }
  return v;
}

Label WireReader::label() {
  const std::uint32_t nbits = u32();
  const std::size_t nwords = (static_cast<std::size_t>(nbits) + 63) / 64;
  std::vector<std::uint64_t> words(nwords);
  for (std::size_t i = 0; i < nwords; ++i) words[i] = u64();
  return Label(std::move(words), nbits);
}

std::size_t label_wire_bytes(const Label& l) noexcept {
  return 4 + 8 * ((l.size_bits() + 63) / 64);
}

bool send_full(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      MSTV_EXPECTS_MSG(false, "mp socket send failed");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_full(int fd, void* data, std::size_t len, int timeout_ms) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (len > 0) {
    if (timeout_ms >= 0) {
      pollfd pfd{fd, POLLIN, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      MSTV_EXPECTS_MSG(rc >= 0, "mp socket poll failed");
      if (rc == 0) return false;  // timeout: treat the peer as gone
    }
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return false;
      MSTV_EXPECTS_MSG(false, "mp socket recv failed");
    }
    if (n == 0) return false;  // EOF: peer exited
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_frame(int fd, const std::vector<std::uint8_t>& payload) {
  std::uint8_t hdr[8];
  const std::uint64_t len = payload.size();
  std::memcpy(hdr, &len, sizeof(hdr));
  if (!send_full(fd, hdr, sizeof(hdr))) return false;
  return payload.empty() || send_full(fd, payload.data(), payload.size());
}

bool recv_frame(int fd, std::vector<std::uint8_t>& payload, int timeout_ms) {
  std::uint8_t hdr[8];
  if (!recv_full(fd, hdr, sizeof(hdr), timeout_ms)) return false;
  std::uint64_t len = 0;
  std::memcpy(&len, hdr, sizeof(hdr));
  payload.resize(len);
  return len == 0 ||
         recv_full(fd, payload.data(), payload.size(), timeout_ms);
}

}  // namespace mstv::mp
