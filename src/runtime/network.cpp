#include "runtime/network.hpp"

#include "obs/trace.hpp"

namespace mstv {

namespace {

[[maybe_unused]] const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::RedirectParent: return "faults.injected.redirect_parent";
    case FaultKind::DropParent: return "faults.injected.drop_parent";
    case FaultKind::MakeParent: return "faults.injected.make_parent";
    case FaultKind::FlipLabelBit: return "faults.injected.flip_label_bit";
  }
  return "faults.injected.unknown";
}

}  // namespace

void SimNetwork::install_marker_labels() {
  labels_ = scheme_->mark(cfg_);
}

RoundStats SimNetwork::verification_round() const {
  RoundStats stats;
  // Every node sends its label through every port.
  for (VertexId v = 0; v < cfg_.size(); ++v) {
    stats.messages += cfg_.graph().degree(v);
    stats.bits += cfg_.graph().degree(v) * labels_[v].size_bits();
  }
  const VerificationResult r = run_verifier(*scheme_, cfg_, labels_);
  stats.rejecting = r.rejecting.size();
  stats.accepted = r.accepted;
  return stats;
}

RoundStats SimNetwork::verification_round_with_channel_faults(
    Rng& rng, double flip_prob) const {
  MSTV_SPAN("network.channel_fault_round");
  RoundStats stats;
  for (VertexId v = 0; v < cfg_.size(); ++v) {
    // Received copies, independently corrupted per channel.
    std::vector<Label> received;
    const auto ports = cfg_.graph().ports(v);
    received.reserve(ports.size());
    for (const PortInfo& p : ports) {
      Label copy = labels_[p.neighbor];
      if (copy.size_bits() > 0 && rng.chance(flip_prob)) {
        copy = copy.with_bit_flipped(rng.index(copy.size_bits()));
        MSTV_COUNTER_ADD("faults.channel_bitflips", 1);
      }
      stats.messages += 1;
      stats.bits += copy.size_bits();
      received.push_back(std::move(copy));
    }

    LocalView view;
    view.v = v;
    view.state = &cfg_.state(v);
    view.label = &labels_[v];
    view.neighbors.reserve(ports.size());
    for (std::size_t i = 0; i < ports.size(); ++i) {
      view.neighbors.push_back(NeighborView{
          static_cast<PortNumber>(i + 1), ports[i].weight, &received[i]});
    }
    bool ok;
    try {
      ok = scheme_->verify(view);
    } catch (const PreconditionError&) {
      ok = false;
    }
    if (!ok) ++stats.rejecting;
  }
  stats.accepted = stats.rejecting == 0;
  MSTV_COUNTER_ADD("verify.rounds", 1);
  MSTV_COUNTER_ADD("verify.messages", stats.messages);
  MSTV_COUNTER_ADD("verify.bits_total", stats.bits);
  MSTV_COUNTER_ADD("verify.rejections", stats.rejecting);
  return stats;
}

std::optional<FaultRecord> FaultInjector::inject(SimNetwork& net) {
  const auto kind = static_cast<FaultKind>(rng_->uniform(0, 3));
  const auto victim = static_cast<VertexId>(rng_->index(net.config().size()));
  return inject(net, kind, victim);
}

std::optional<FaultRecord> FaultInjector::inject(SimNetwork& net,
                                                 FaultKind kind,
                                                 VertexId victim) {
  ConfigGraph& cfg = net.config();
  State& s = cfg.state(victim);
  const auto deg = cfg.graph().degree(victim);
  switch (kind) {
    case FaultKind::RedirectParent: {
      if (!s.parent_port || deg < 2) return std::nullopt;
      PortNumber p;
      do {
        p = static_cast<PortNumber>(rng_->uniform(1, deg));
      } while (p == *s.parent_port);
      s.parent_port = p;
      break;
    }
    case FaultKind::DropParent: {
      if (!s.parent_port) return std::nullopt;
      s.parent_port.reset();
      break;
    }
    case FaultKind::MakeParent: {
      if (s.parent_port || deg == 0) return std::nullopt;
      s.parent_port = static_cast<PortNumber>(rng_->uniform(1, deg));
      break;
    }
    case FaultKind::FlipLabelBit: {
      Label& l = net.labels()[victim];
      if (l.size_bits() == 0) return std::nullopt;
      l = l.with_bit_flipped(rng_->index(l.size_bits()));
      break;
    }
  }
  MSTV_COUNTER_ADD("faults.injected", 1);
  MSTV_COUNTER_ADD(fault_kind_name(kind), 1);
  return FaultRecord{kind, victim};
}

}  // namespace mstv
