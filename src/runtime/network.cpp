#include "runtime/network.hpp"

#include "obs/ledger.hpp"
#include "obs/trace.hpp"
#include "obs/trace_session.hpp"
#include "parallel/parallel_for.hpp"

namespace mstv {

namespace {

[[maybe_unused]] const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::RedirectParent: return "faults.injected.redirect_parent";
    case FaultKind::DropParent: return "faults.injected.drop_parent";
    case FaultKind::MakeParent: return "faults.injected.make_parent";
    case FaultKind::FlipLabelBit: return "faults.injected.flip_label_bit";
  }
  return "faults.injected.unknown";
}

}  // namespace

void SimNetwork::install_marker_labels() {
  labels_ = scheme_->mark(cfg_);
}

void SimNetwork::apply_repair(const ConfigGraph& cfg,
                              const std::vector<VertexId>& changed,
                              const std::vector<Label>& labels) {
  MSTV_EXPECTS_MSG(labels.size() == cfg.size(),
                   "label vector does not match the configuration");
  // Validate the whole update before mutating anything: a malformed
  // `changed` list (e.g. from a future RPC path) must be an error, not a
  // partial install that leaves cfg_ replaced and some labels shipped.
  for (const VertexId v : changed) {
    MSTV_EXPECTS_MSG(v < labels.size(), "repaired vertex out of range");
  }
  cfg_ = cfg;
  labels_.resize(cfg_.size());
  obs::LedgerCell shipped;
  for (const VertexId v : changed) {
    labels_[v] = labels[v];
    shipped.fold_label(labels_[v].size_bits());
  }
  MSTV_COUNTER_ADD("dynamic.labels_shipped", changed.size());
  MSTV_COUNTER_ADD("dynamic.bits_shipped", shipped.bits);
  // Repair traffic lands on the ledger at the round it interrupts.
  MSTV_LEDGER_COMMIT("dynamic.repair", round_, scheme_->name(), shipped);
}

RoundStats SimNetwork::verification_round() const {
  MSTV_TRACE_SCOPE("network", "network.verify_round",
                   {obs::TraceArg::uint("round", round_)});
  RoundStats stats;
  // Every node sends its label through every port; the sender-side sums
  // shard over the vertex range like the verifier pass that follows.  The
  // shard partial is a ledger cell, so the per-round label-size
  // distribution is reduced in the same deterministic shard order as the
  // message/bit totals — the cell is bit-identical at any thread count.
  const obs::LedgerCell sent = parallel::sharded_reduce<obs::LedgerCell>(
      cfg_.size(), obs::LedgerCell{},
      [&](const parallel::ShardRange& shard) {
        obs::LedgerCell out;
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          const auto v = static_cast<VertexId>(i);
          const std::size_t label_bits = labels_[v].size_bits();
          const std::size_t deg = cfg_.graph().degree(v);
          for (std::size_t p = 0; p < deg; ++p) {
            out.fold_label(label_bits);
          }
        }
        return out;
      },
      [](obs::LedgerCell& acc, obs::LedgerCell&& part) { acc.merge(part); });
  stats.messages = sent.messages;
  stats.bits = sent.bits;
  VerificationResult r = run_verifier(*scheme_, cfg_, labels_);
  stats.accepted = r.accepted;
  stats.rejectors = std::move(r.rejecting);
  stats.rejecting = stats.rejectors.size();
  MSTV_LEDGER_COMMIT("verify.round", round_, scheme_->name(), sent);
  ++round_;
  return stats;
}

RoundStats SimNetwork::verification_round_with_channel_faults(
    Rng& rng, double flip_prob) const {
  MSTV_SPAN("network.channel_fault_round");

  // Phase 1 (serial): draw every per-channel corruption decision in the
  // same node/port order the serial engine used, so the Rng stream — and
  // therefore the fault pattern — is identical at any thread count.
  // kNoFlip marks an intact channel; any other value is the flipped bit.
  constexpr std::size_t kNoFlip = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> flip_bit(cfg_.size());
  std::size_t corrupted = 0;
  for (VertexId v = 0; v < cfg_.size(); ++v) {
    const auto ports = cfg_.graph().ports(v);
    flip_bit[v].assign(ports.size(), kNoFlip);
    for (std::size_t i = 0; i < ports.size(); ++i) {
      const std::size_t bits = labels_[ports[i].neighbor].size_bits();
      if (bits > 0 && rng.chance(flip_prob)) {
        flip_bit[v][i] = rng.index(bits);
        ++corrupted;
      }
    }
  }
  MSTV_COUNTER_ADD("faults.channel_bitflips", corrupted);

  // Phase 2 (sharded): deliver the (possibly corrupted) copies and run
  // the verifier at every node.  The shard partial carries a ledger cell
  // so the per-round label-size distribution merges in shard order.
  struct ShardOut {
    obs::LedgerCell cell;
    std::vector<VertexId> rejecting;
  };
  ShardOut total = parallel::sharded_reduce<ShardOut>(
      cfg_.size(), ShardOut{},
      [&](const parallel::ShardRange& shard) {
        ShardOut out;
        for (std::size_t n = shard.begin; n < shard.end; ++n) {
          const auto v = static_cast<VertexId>(n);
          const auto ports = cfg_.graph().ports(v);
          std::vector<Label> received;
          received.reserve(ports.size());
          for (std::size_t i = 0; i < ports.size(); ++i) {
            Label copy = labels_[ports[i].neighbor];
            if (flip_bit[v][i] != kNoFlip) {
              copy = copy.with_bit_flipped(flip_bit[v][i]);
            }
            out.cell.fold_label(copy.size_bits());
            received.push_back(std::move(copy));
          }

          LocalView view;
          view.v = v;
          view.state = &cfg_.state(v);
          view.label = &labels_[v];
          view.neighbors.reserve(ports.size());
          for (std::size_t i = 0; i < ports.size(); ++i) {
            view.neighbors.push_back(NeighborView{
                static_cast<PortNumber>(i + 1), ports[i].weight,
                &received[i]});
          }
          bool ok;
          try {
            ok = scheme_->verify(view);
          } catch (const PreconditionError&) {
            ok = false;
          }
          if (!ok) out.rejecting.push_back(v);
        }
        return out;
      },
      [](ShardOut& acc, ShardOut&& part) {
        acc.cell.merge(part.cell);
        acc.rejecting.insert(acc.rejecting.end(), part.rejecting.begin(),
                             part.rejecting.end());
      });

  RoundStats stats;
  stats.messages = total.cell.messages;
  stats.bits = total.cell.bits;
  stats.rejectors = std::move(total.rejecting);
  stats.rejecting = stats.rejectors.size();
  stats.accepted = stats.rejecting == 0;
  MSTV_COUNTER_ADD("verify.rounds", 1);
  MSTV_COUNTER_ADD("verify.messages", stats.messages);
  MSTV_COUNTER_ADD("verify.bits_total", stats.bits);
  MSTV_COUNTER_ADD("verify.rejections", stats.rejecting);
  MSTV_LEDGER_COMMIT("verify.channel_faults", round_, scheme_->name(),
                     total.cell);
  ++round_;
  return stats;
}

std::optional<FaultRecord> FaultInjector::inject(SimNetwork& net) {
  const auto kind = static_cast<FaultKind>(rng_->uniform(0, 3));
  const auto victim = static_cast<VertexId>(rng_->index(net.config().size()));
  return inject(net, kind, victim);
}

std::optional<FaultRecord> FaultInjector::inject(SimNetwork& net,
                                                 FaultKind kind,
                                                 VertexId victim) {
  ConfigGraph& cfg = net.config();
  State& s = cfg.state(victim);
  const auto deg = cfg.graph().degree(victim);
  switch (kind) {
    case FaultKind::RedirectParent: {
      if (!s.parent_port || deg < 2) return std::nullopt;
      PortNumber p;
      do {
        p = static_cast<PortNumber>(rng_->uniform(1, deg));
      } while (p == *s.parent_port);
      s.parent_port = p;
      break;
    }
    case FaultKind::DropParent: {
      if (!s.parent_port) return std::nullopt;
      s.parent_port.reset();
      break;
    }
    case FaultKind::MakeParent: {
      if (s.parent_port || deg == 0) return std::nullopt;
      s.parent_port = static_cast<PortNumber>(rng_->uniform(1, deg));
      break;
    }
    case FaultKind::FlipLabelBit: {
      Label& l = net.labels()[victim];
      if (l.size_bits() == 0) return std::nullopt;
      l = l.with_bit_flipped(rng_->index(l.size_bits()));
      break;
    }
  }
  MSTV_COUNTER_ADD("faults.injected", 1);
  MSTV_COUNTER_ADD(fault_kind_name(kind), 1);
  return FaultRecord{kind, victim};
}

}  // namespace mstv
