#include "runtime/boruvka_sim.hpp"

#include <algorithm>

#include "mst/union_find.hpp"
#include "obs/trace.hpp"
#include "util/bitstream.hpp"
#include "util/check.hpp"

namespace mstv {
namespace {

/// Maximum BFS depth from each fragment's root over the accepted tree
/// edges; also counts tree edges per fragment.
struct FragmentShape {
  std::size_t max_depth = 0;
  std::size_t tree_edges = 0;
};

FragmentShape fragment_shape(const Graph& g, const std::vector<bool>& in_tree,
                             const std::vector<VertexId>& roots,
                             const std::vector<VertexId>& frag_of) {
  FragmentShape shape;
  std::vector<std::uint32_t> depth(g.num_vertices(), ~0u);
  std::vector<VertexId> queue;
  for (const VertexId r : roots) {
    depth[r] = 0;
    queue.push_back(r);
  }
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const VertexId v = queue[qi];
    shape.max_depth = std::max<std::size_t>(shape.max_depth, depth[v]);
    for (const PortInfo& p : g.ports(v)) {
      if (!in_tree[p.edge] || depth[p.neighbor] != ~0u) continue;
      MSTV_ASSERT(frag_of[p.neighbor] == frag_of[v]);
      depth[p.neighbor] = depth[v] + 1;
      ++shape.tree_edges;
      queue.push_back(p.neighbor);
    }
  }
  return shape;
}

}  // namespace

DistributedMstStats distributed_boruvka(const Graph& g) {
  MSTV_EXPECTS_MSG(g.is_connected(), "MST requires a connected graph");
  MSTV_SPAN("boruvka.run");
  const std::size_t n = g.num_vertices();
  const std::size_t id_bits = static_cast<std::size_t>(bit_width_u64(n)) + 1;
  const std::size_t weight_bits =
      static_cast<std::size_t>(bit_width_u64(g.max_weight())) + 1;

  DistributedMstStats stats;
  UnionFind uf(n);
  std::vector<bool> in_tree(g.num_edges(), false);

  while (uf.num_sets() > 1) {
    MSTV_SPAN("boruvka.phase");
    ++stats.phases;

    // Fragment ids and roots (representatives).
    std::vector<VertexId> frag_of(n);
    std::vector<VertexId> roots;
    for (VertexId v = 0; v < n; ++v) {
      frag_of[v] = static_cast<VertexId>(uf.find(v));
      if (frag_of[v] == v) roots.push_back(v);
    }
    const FragmentShape before = fragment_shape(g, in_tree, roots, frag_of);

    // Probe: exchange fragment ids over every edge.
    stats.messages += 2 * g.num_edges();
    stats.message_bits += 2 * g.num_edges() * id_bits;
    stats.rounds += 1;

    // Minimum outgoing edge per fragment ((weight, id) order).
    std::vector<EdgeId> best(n, kInvalidEdge);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& ed = g.edge(e);
      const VertexId fu = frag_of[ed.u], fv = frag_of[ed.v];
      if (fu == fv) continue;
      for (const VertexId f : {fu, fv}) {
        if (best[f] == kInvalidEdge) {
          best[f] = e;
        } else {
          const Edge& be = g.edge(best[f]);
          if (ed.w < be.w || (ed.w == be.w && e < best[f])) best[f] = e;
        }
      }
    }

    // Convergecast the candidates to the roots, broadcast the decision:
    // one message per fragment tree edge each way, taking depth rounds.
    stats.messages += 2 * before.tree_edges;
    stats.message_bits +=
        2 * before.tree_edges * (id_bits + weight_bits);
    stats.rounds += 2 * std::max<std::size_t>(before.max_depth, 1);

    // Merge.
    std::size_t merged_edges = 0;
    for (const VertexId f : roots) {
      const EdgeId e = best[f];
      if (e == kInvalidEdge) continue;
      if (uf.unite(g.edge(e).u, g.edge(e).v)) {
        in_tree[e] = true;
        stats.tree.push_back(e);
        ++merged_edges;
      }
    }
    MSTV_ASSERT_MSG(merged_edges > 0, "Borůvka phase made no progress");

    // Re-broadcast the merged fragment ids over the grown trees.
    std::vector<VertexId> new_frag(n);
    std::vector<VertexId> new_roots;
    for (VertexId v = 0; v < n; ++v) {
      new_frag[v] = static_cast<VertexId>(uf.find(v));
      if (new_frag[v] == v) new_roots.push_back(v);
    }
    const FragmentShape after = fragment_shape(g, in_tree, new_roots, new_frag);
    stats.messages += after.tree_edges;
    stats.message_bits += after.tree_edges * id_bits;
    stats.rounds += std::max<std::size_t>(after.max_depth, 1);
  }

  MSTV_ASSERT(stats.tree.size() + 1 == n);
  MSTV_COUNTER_ADD("boruvka.runs", 1);
  MSTV_COUNTER_ADD("boruvka.phases", stats.phases);
  MSTV_COUNTER_ADD("boruvka.rounds", stats.rounds);
  MSTV_COUNTER_ADD("boruvka.messages", stats.messages);
  MSTV_COUNTER_ADD("boruvka.message_bits", stats.message_bits);
  return stats;
}

}  // namespace mstv
