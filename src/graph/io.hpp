// Graph serialization: a simple whitespace edge-list format (round-trips
// through Graph) and Graphviz DOT output for visual inspection — used by
// the hypertree explorer example to regenerate the paper's Figure 1.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace mstv {

/// Writes "n m" followed by one "u v w" line per edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the format produced by write_edge_list.
Graph read_edge_list(std::istream& is);

struct DotOptions {
  /// Edges in this set are rendered bold/directed child->parent (the
  /// spanning tree induced by the states).
  std::vector<bool> tree_edge;  // indexed by EdgeId; may be empty
  /// Optional per-vertex extra text (e.g. preorder identities).
  std::vector<std::string> vertex_note;  // indexed by VertexId; may be empty
  std::string graph_name = "G";
};

/// Graphviz output with edge weights as labels.
void write_dot(std::ostream& os, const Graph& g, const DotOptions& opts = {});

}  // namespace mstv
