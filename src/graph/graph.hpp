// Weighted undirected graphs with per-node port numbering.
//
// This mirrors the model of Section 2 of the paper: "Every node v has
// internal ports, each corresponding to one of the edges attached to v.
// The ports are numbered from 1 to deg(v) by an internal numbering known
// only to node v."  All distributed-side code (states, verifiers, the
// simulated network) addresses edges through ports, never through global
// edge ids, so nothing a node does can depend on information it would not
// have in the real model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mstv {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;
using Weight = std::uint64_t;
/// Ports are 1-based as in the paper; 0 is never a valid port.
using PortNumber = std::uint32_t;

constexpr VertexId kInvalidVertex = ~VertexId{0};
constexpr EdgeId kInvalidEdge = ~EdgeId{0};

/// An undirected edge with an integral weight.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  Weight w = 0;

  /// The endpoint that is not `x`.
  [[nodiscard]] VertexId other(VertexId x) const {
    MSTV_EXPECTS(x == u || x == v);
    return x == u ? v : u;
  }
};

/// What a node sees through one of its ports.
struct PortInfo {
  VertexId neighbor = kInvalidVertex;
  Weight weight = 0;
  EdgeId edge = kInvalidEdge;
  /// Our port number as seen from `neighbor` (i.e. the reverse direction).
  PortNumber reverse_port = 0;
};

/// Immutable weighted undirected graph.  Construct through Graph::Builder.
class Graph {
 public:
  class Builder;

  /// An empty graph (0 vertices); assign a Builder-built graph over it.
  Graph() = default;

  [[nodiscard]] std::size_t num_vertices() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    MSTV_EXPECTS(v < num_vertices());
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Port lookup; `p` must be in 1..degree(v).
  [[nodiscard]] const PortInfo& port(VertexId v, PortNumber p) const {
    MSTV_EXPECTS(v < num_vertices());
    MSTV_EXPECTS_MSG(p >= 1 && p <= degree(v), "port number out of range");
    return ports_[offsets_[v] + (p - 1)];
  }

  /// All ports of `v`, indexed 0..deg-1 (port number = index + 1).
  [[nodiscard]] std::span<const PortInfo> ports(VertexId v) const {
    MSTV_EXPECTS(v < num_vertices());
    return {ports_.data() + offsets_[v], ports_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    MSTV_EXPECTS(e < num_edges());
    return edges_[e];
  }

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// The port of `v` that leads to `u`, if the edge (v,u) exists.
  [[nodiscard]] std::optional<PortNumber> find_port(VertexId v, VertexId u) const;

  /// The id of edge (v,u), if present.
  [[nodiscard]] std::optional<EdgeId> find_edge(VertexId v, VertexId u) const;

  [[nodiscard]] bool is_connected() const;

  /// Largest edge weight (the paper's W); 0 for edgeless graphs.
  [[nodiscard]] Weight max_weight() const noexcept { return max_weight_; }

 private:
  friend class Builder;

  std::vector<std::size_t> offsets_{0};  // CSR offsets into ports_, size n+1
  std::vector<PortInfo> ports_;
  std::vector<Edge> edges_;
  Weight max_weight_ = 0;
};

/// Incremental construction; rejects self-loops and parallel edges.
class Graph::Builder {
 public:
  explicit Builder(std::size_t num_vertices) : n_(num_vertices) {
    MSTV_EXPECTS(num_vertices >= 1);
  }

  /// Adds an undirected edge; returns its id.
  EdgeId add_edge(VertexId u, VertexId v, Weight w);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Finalises the graph.  If `port_shuffle_rng` is supplied, each node's
  /// port numbering is permuted randomly — matching the paper's "internal
  /// numbering known only to node v" — so correct schemes cannot rely on
  /// insertion order.
  [[nodiscard]] Graph build(Rng* port_shuffle_rng = nullptr) const;

 private:
  std::size_t n_;
  std::vector<Edge> edges_;
};

}  // namespace mstv
