#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>

namespace mstv {

EdgeId Graph::Builder::add_edge(VertexId u, VertexId v, Weight w) {
  MSTV_EXPECTS(u < n_ && v < n_);
  MSTV_EXPECTS_MSG(u != v, "self-loops are not allowed");
  edges_.push_back(Edge{u, v, w});
  return static_cast<EdgeId>(edges_.size() - 1);
}

Graph Graph::Builder::build(Rng* port_shuffle_rng) const {
  // Detect parallel edges: sort normalised endpoint pairs.
  {
    std::vector<std::pair<VertexId, VertexId>> pairs;
    pairs.reserve(edges_.size());
    for (const Edge& e : edges_) {
      pairs.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
    }
    std::sort(pairs.begin(), pairs.end());
    MSTV_EXPECTS_MSG(
        std::adjacent_find(pairs.begin(), pairs.end()) == pairs.end(),
        "parallel edges are not allowed");
  }

  Graph g;
  g.edges_ = edges_;
  for (const Edge& e : edges_) g.max_weight_ = std::max(g.max_weight_, e.w);

  // Build CSR adjacency.
  std::vector<std::size_t> deg(n_, 0);
  for (const Edge& e : edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  g.offsets_.assign(n_ + 1, 0);
  for (std::size_t v = 0; v < n_; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.ports_.resize(g.offsets_.back());

  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId eid = 0; eid < edges_.size(); ++eid) {
    const Edge& e = edges_[eid];
    g.ports_[cursor[e.u]++] = PortInfo{e.v, e.w, eid, 0};
    g.ports_[cursor[e.v]++] = PortInfo{e.u, e.w, eid, 0};
  }

  // Optionally permute each node's port order.
  if (port_shuffle_rng != nullptr) {
    for (std::size_t v = 0; v < n_; ++v) {
      auto begin = g.ports_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
      auto end = g.ports_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
      if (end - begin < 2) continue;
      for (auto it = end; it != begin + 1; --it) {
        const auto k = port_shuffle_rng->index(
            static_cast<std::size_t>(it - begin));
        std::iter_swap(it - 1, begin + static_cast<std::ptrdiff_t>(k));
      }
    }
  }

  // Fill reverse-port numbers: for each directed half-edge, find the port
  // of the same edge on the other side.
  std::vector<PortNumber> port_of_edge_at(2 * edges_.size(), 0);
  auto slot = [&](EdgeId eid, VertexId endpoint) -> PortNumber& {
    const Edge& e = edges_[eid];
    MSTV_ASSERT(endpoint == e.u || endpoint == e.v);
    return port_of_edge_at[2 * static_cast<std::size_t>(eid) +
                           (endpoint == e.u ? 0 : 1)];
  };
  for (VertexId v = 0; v < n_; ++v) {
    for (std::size_t i = g.offsets_[v]; i < g.offsets_[v + 1]; ++i) {
      slot(g.ports_[i].edge, v) =
          static_cast<PortNumber>(i - g.offsets_[v] + 1);
    }
  }
  for (VertexId v = 0; v < n_; ++v) {
    for (std::size_t i = g.offsets_[v]; i < g.offsets_[v + 1]; ++i) {
      g.ports_[i].reverse_port = slot(g.ports_[i].edge, g.ports_[i].neighbor);
    }
  }
  return g;
}

std::optional<PortNumber> Graph::find_port(VertexId v, VertexId u) const {
  MSTV_EXPECTS(v < num_vertices() && u < num_vertices());
  const auto ps = ports(v);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (ps[i].neighbor == u) return static_cast<PortNumber>(i + 1);
  }
  return std::nullopt;
}

std::optional<EdgeId> Graph::find_edge(VertexId v, VertexId u) const {
  const auto p = find_port(v, u);
  if (!p) return std::nullopt;
  return port(v, *p).edge;
}

bool Graph::is_connected() const {
  const std::size_t n = num_vertices();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::vector<VertexId> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const PortInfo& p : ports(v)) {
      if (!seen[p.neighbor]) {
        seen[p.neighbor] = true;
        ++count;
        stack.push_back(p.neighbor);
      }
    }
  }
  return count == n;
}

}  // namespace mstv
