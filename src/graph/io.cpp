#include "graph/io.hpp"

#include <istream>
#include <ostream>

namespace mstv {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::size_t n = 0, m = 0;
  is >> n >> m;
  MSTV_EXPECTS_MSG(static_cast<bool>(is), "malformed edge list header");
  Graph::Builder b(n);
  for (std::size_t i = 0; i < m; ++i) {
    VertexId u, v;
    Weight w;
    is >> u >> v >> w;
    MSTV_EXPECTS_MSG(static_cast<bool>(is), "malformed edge list line");
    b.add_edge(u, v, w);
  }
  return b.build();
}

void write_dot(std::ostream& os, const Graph& g, const DotOptions& opts) {
  os << "graph " << opts.graph_name << " {\n";
  os << "  node [shape=circle fontsize=10];\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    os << "  " << v;
    if (v < opts.vertex_note.size() && !opts.vertex_note[v].empty()) {
      os << " [label=\"" << v << "\\n" << opts.vertex_note[v] << "\"]";
    }
    os << ";\n";
  }
  for (EdgeId eid = 0; eid < g.num_edges(); ++eid) {
    const Edge& e = g.edge(eid);
    const bool in_tree =
        eid < opts.tree_edge.size() && opts.tree_edge[eid];
    os << "  " << e.u << " -- " << e.v << " [label=\"" << e.w << '"';
    if (in_tree) os << " style=bold color=blue penwidth=2";
    os << "];\n";
  }
  os << "}\n";
}

}  // namespace mstv
