// Edge updates — the dynamic side of "mark once, verify forever".
//
// The paper's lifecycle assumes the MST is computed once and then only
// verified, but a production network drifts: link weights change and links
// come and go.  Each such event is described by an EdgeUpdate; the
// incremental marker (dynamic/incremental.hpp) consumes updates, repairs
// the stored MST and recomputes only the labels the update invalidated.
//
// This header lives in the graph layer (it depends on nothing above it)
// so that higher layers (plscheme/runner.hpp declares the
// update_and_repair entry point) can name the types without pulling in
// the whole dynamic engine — dynamic may depend on plscheme, so the
// reverse include would cycle the layer DAG.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace mstv {

enum class UpdateKind : std::uint8_t {
  WeightChange,  // re-weight an existing edge (either direction)
  Insert,        // add a new edge between existing vertices
  Delete,        // remove an existing edge (must not disconnect the graph)
};

/// One topology/weight event.  Endpoints are vertex ids (the operator-side
/// view; nodes themselves keep addressing edges through ports).
struct EdgeUpdate {
  UpdateKind kind = UpdateKind::WeightChange;
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  Weight weight = 0;  // the new weight; ignored by Delete

  static EdgeUpdate weight_change(VertexId u, VertexId v, Weight w) {
    return {UpdateKind::WeightChange, u, v, w};
  }
  static EdgeUpdate insert(VertexId u, VertexId v, Weight w) {
    return {UpdateKind::Insert, u, v, w};
  }
  static EdgeUpdate erase(VertexId u, VertexId v) {
    return {UpdateKind::Delete, u, v, 0};
  }
};

/// What one repair did — the scoreboard `bench_incremental_updates`
/// aggregates and the obs counters (`dynamic.*`) mirror.
struct RepairStats {
  std::size_t labels_repaired = 0;  // labels recomputed (and to be shipped)
  std::size_t labels_total = 0;     // network size n, for ratio reporting
  std::size_t bits_repaired = 0;    // total bits of the repaired labels
  bool structural_change = false;   // the tree edge set changed
  bool swapped = false;             // an MST edge swap was performed
  bool full_remark = false;         // dirty set exceeded the threshold

  [[nodiscard]] double repair_fraction() const {
    return labels_total == 0 ? 0.0
                             : static_cast<double>(labels_repaired) /
                                   static_cast<double>(labels_total);
  }
};

}  // namespace mstv
