// Workload generators for tests, examples and the benchmark harness.
//
// The paper's families are F(n, W) — connected graphs with at most n
// vertices and weights bounded by W — and T(n, W), the corresponding trees.
// Generators here produce members of those families with controllable
// shape (density, tree topology) and weight regime (uniform in [1, W],
// optionally all-distinct so the MST is unique).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mstv {

struct WeightOptions {
  Weight max_weight = 1u << 16;  // the paper's W
  /// With distinct weights the MST is unique, which makes soundness tests
  /// deterministic.  Requires max_weight >= number of edges.
  bool distinct = false;
};

/// Random spanning-tree-plus-extra-edges connected graph from F(n, W):
/// a uniform random labelled tree backbone, then `extra_edges` additional
/// distinct non-tree edges (clamped to the number available).
Graph random_connected_graph(std::size_t n, std::size_t extra_edges,
                             const WeightOptions& wo, Rng& rng);

/// Uniform random labelled tree on n vertices (Prüfer-style attachment).
Graph random_tree(std::size_t n, const WeightOptions& wo, Rng& rng);

/// Path graph 0-1-...-(n-1).
Graph path_graph(std::size_t n, const WeightOptions& wo, Rng& rng);

/// Star with center 0.
Graph star_graph(std::size_t n, const WeightOptions& wo, Rng& rng);

/// Caterpillar: a spine of length ~n/2 with random legs; a classic
/// worst-ish case for separator decompositions.
Graph caterpillar(std::size_t n, const WeightOptions& wo, Rng& rng);

/// Balanced binary tree on n vertices.
Graph balanced_binary_tree(std::size_t n, const WeightOptions& wo, Rng& rng);

/// rows x cols grid graph.
Graph grid_graph(std::size_t rows, std::size_t cols, const WeightOptions& wo,
                 Rng& rng);

/// Cycle on n >= 3 vertices.
Graph ring_graph(std::size_t n, const WeightOptions& wo, Rng& rng);

/// Complete graph K_n.
Graph complete_graph(std::size_t n, const WeightOptions& wo, Rng& rng);

}  // namespace mstv
