#include "graph/generators.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace mstv {
namespace {

/// Draws `count` weights per the options.  When `distinct` is requested we
/// sample without replacement from [1, max_weight].
std::vector<Weight> draw_weights(std::size_t count, const WeightOptions& wo,
                                 Rng& rng) {
  MSTV_EXPECTS(wo.max_weight >= 1);
  std::vector<Weight> ws(count);
  if (!wo.distinct) {
    for (auto& w : ws) w = rng.uniform(1, wo.max_weight);
    return ws;
  }
  MSTV_EXPECTS_MSG(wo.max_weight >= count,
                   "distinct weights need max_weight >= edge count");
  std::set<Weight> used;
  for (auto& w : ws) {
    Weight cand;
    do {
      cand = rng.uniform(1, wo.max_weight);
    } while (!used.insert(cand).second);
    w = cand;
  }
  return ws;
}

Graph finish(Graph::Builder& b, Rng& rng) { return b.build(&rng); }

}  // namespace

Graph random_tree(std::size_t n, const WeightOptions& wo, Rng& rng) {
  MSTV_EXPECTS(n >= 1);
  Graph::Builder b(n);
  const auto ws = draw_weights(n > 0 ? n - 1 : 0, wo, rng);
  // Random attachment: vertex i attaches to a uniform earlier vertex after
  // a random relabeling, which yields a rich variety of tree shapes.
  std::vector<VertexId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<VertexId>(i);
  rng.shuffle(perm);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rng.index(i);
    b.add_edge(perm[i], perm[j], ws[i - 1]);
  }
  return finish(b, rng);
}

Graph random_connected_graph(std::size_t n, std::size_t extra_edges,
                             const WeightOptions& wo, Rng& rng) {
  MSTV_EXPECTS(n >= 1);
  const std::size_t max_extra =
      n * (n - 1) / 2 - (n - 1);  // non-tree slots available
  extra_edges = std::min(extra_edges, max_extra);

  Graph::Builder b(n);
  std::set<std::pair<VertexId, VertexId>> present;

  // Tree backbone.
  std::vector<VertexId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<VertexId>(i);
  rng.shuffle(perm);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rng.index(i);
    const VertexId u = perm[i], v = perm[j];
    present.emplace(std::min(u, v), std::max(u, v));
  }
  // Extra edges.
  while (present.size() < (n - 1) + extra_edges) {
    const auto u = static_cast<VertexId>(rng.index(n));
    const auto v = static_cast<VertexId>(rng.index(n));
    if (u == v) continue;
    present.emplace(std::min(u, v), std::max(u, v));
  }

  const auto ws = draw_weights(present.size(), wo, rng);
  std::size_t k = 0;
  for (const auto& [u, v] : present) b.add_edge(u, v, ws[k++]);
  return finish(b, rng);
}

Graph path_graph(std::size_t n, const WeightOptions& wo, Rng& rng) {
  MSTV_EXPECTS(n >= 1);
  Graph::Builder b(n);
  const auto ws = draw_weights(n - 1, wo, rng);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1), ws[i]);
  }
  return finish(b, rng);
}

Graph star_graph(std::size_t n, const WeightOptions& wo, Rng& rng) {
  MSTV_EXPECTS(n >= 1);
  Graph::Builder b(n);
  const auto ws = draw_weights(n - 1, wo, rng);
  for (std::size_t i = 1; i < n; ++i) {
    b.add_edge(0, static_cast<VertexId>(i), ws[i - 1]);
  }
  return finish(b, rng);
}

Graph caterpillar(std::size_t n, const WeightOptions& wo, Rng& rng) {
  MSTV_EXPECTS(n >= 1);
  Graph::Builder b(n);
  const std::size_t spine = std::max<std::size_t>(1, n / 2);
  const auto ws = draw_weights(n - 1, wo, rng);
  std::size_t k = 0;
  for (std::size_t i = 0; i + 1 < spine; ++i) {
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1), ws[k++]);
  }
  for (std::size_t i = spine; i < n; ++i) {
    b.add_edge(static_cast<VertexId>(rng.index(spine)),
               static_cast<VertexId>(i), ws[k++]);
  }
  return finish(b, rng);
}

Graph balanced_binary_tree(std::size_t n, const WeightOptions& wo, Rng& rng) {
  MSTV_EXPECTS(n >= 1);
  Graph::Builder b(n);
  const auto ws = draw_weights(n - 1, wo, rng);
  for (std::size_t i = 1; i < n; ++i) {
    b.add_edge(static_cast<VertexId>((i - 1) / 2), static_cast<VertexId>(i),
               ws[i - 1]);
  }
  return finish(b, rng);
}

Graph grid_graph(std::size_t rows, std::size_t cols, const WeightOptions& wo,
                 Rng& rng) {
  MSTV_EXPECTS(rows >= 1 && cols >= 1);
  Graph::Builder b(rows * cols);
  const std::size_t nedges = rows * (cols - 1) + cols * (rows - 1);
  const auto ws = draw_weights(nedges, wo, rng);
  std::size_t k = 0;
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1), ws[k++]);
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c), ws[k++]);
    }
  }
  return finish(b, rng);
}

Graph ring_graph(std::size_t n, const WeightOptions& wo, Rng& rng) {
  MSTV_EXPECTS(n >= 3);
  Graph::Builder b(n);
  const auto ws = draw_weights(n, wo, rng);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n),
               ws[i]);
  }
  return finish(b, rng);
}

Graph complete_graph(std::size_t n, const WeightOptions& wo, Rng& rng) {
  MSTV_EXPECTS(n >= 1);
  Graph::Builder b(n);
  const auto ws = draw_weights(n * (n - 1) / 2, wo, rng);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j), ws[k++]);
    }
  }
  return finish(b, rng);
}

}  // namespace mstv
