// The bound auditor: checks measured telemetry against the paper's
// asymptotic envelopes, with explicit constants.
//
// Korman & Kutten prove three quantitative claims about π_mst:
//
//   * label size O(log n · log W) bits (Theorem 3.4; the naive and
//     fragment schemes pay O(log² n + log n · log W)),
//   * per-node verification work O(log² n) — one comparison per
//     (component, weight) step of the telescoping decode,
//   * one-round verification traffic of one label per (edge, direction):
//     2m messages and O(m · log n · log W) bits per round.
//
// audit_bounds() turns each claim into a concrete inequality
//
//     measured  <=  slack · shape(n, W) + offset
//
// where `shape` is the paper's asymptotic form and the slack/offset
// constants (kAudit* below) encode the repo's actual encodings with ~2x
// headroom: the audit is a regression tripwire for the implementation,
// not a proof checker.  A passing audit means every label, every round's
// message count, and the run's total communication sit inside the
// envelopes; a failure names the check, the measured value, and the
// bound it broke.
//
// Inputs come from the telemetry layer: `label.max_bits` /
// `label.max_components` gauges and the communication ledger
// (obs/ledger.hpp).  An empty ledger fails the audit — silence usually
// means the wiring regressed, and "vacuously inside the bound" is
// exactly the wrong default for a tripwire.
//
// Checks marked `advisory` (wall-clock shapes, schemes without a proved
// form) are reported but never fail the report; everything else folds
// into `AuditReport::pass`, which `mstv_cli --audit-bounds` maps to its
// exit code and tests/test_bound_audit.cpp locks down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/ledger.hpp"

namespace mstv::obs {

// Envelope constants.  Tuned against the repo's real encodings (see
// docs/observability.md for the measured values they cover); bump only
// with a note on what legitimately grew.
inline constexpr double kAuditLabelSlack = 4.0;        // × shape(n, W)
inline constexpr double kAuditLabelOffsetBits = 64.0;  // + fixed header room
inline constexpr double kAuditComponentSlack = 2.0;    // × (log2 n + 1)
inline constexpr double kAuditBitsSlack = 1.0;  // round bits vs msgs×label

/// Everything the auditor needs about one run.
struct AuditInput {
  std::uint64_t n = 0;           // nodes
  std::uint64_t m = 0;           // edges
  std::uint64_t max_weight = 1;  // W
  std::string scheme;            // ProofLabelingScheme::name()
  std::uint64_t max_label_bits = 0;   // gauge label.max_bits
  std::uint64_t max_components = 0;   // gauge label.max_components (0 = unset)
  std::vector<LedgerEntry> ledger;    // communication ledger snapshot
};

struct AuditCheck {
  std::string name;      // component.noun, stable across runs
  double measured = 0.0;
  double bound = 0.0;
  bool pass = true;
  bool advisory = false;  // reported, never fails the report
  std::string note;
};

struct AuditReport {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t max_weight = 1;
  std::string scheme;
  std::vector<AuditCheck> checks;
  bool pass = false;  // conjunction of the non-advisory checks
};

/// The scheme's proved label-size envelope in bits (slack and offset
/// already applied).  Schemes with no proved form get the naive envelope;
/// audit_bounds() marks their label check advisory.
[[nodiscard]] double label_bits_bound(std::string_view scheme,
                                      std::uint64_t n,
                                      std::uint64_t max_weight);

/// Runs every check against the input.
[[nodiscard]] AuditReport audit_bounds(const AuditInput& in);

/// Assembles an AuditInput from the global telemetry: the label.* gauges
/// and the global communication ledger.  Graph parameters are the
/// caller's (the run driver knows n, m, W; telemetry does not).
[[nodiscard]] AuditInput audit_input_from_telemetry(std::uint64_t n,
                                                    std::uint64_t m,
                                                    std::uint64_t max_weight,
                                                    std::string scheme);

/// Serializes the report as a standalone JSON document:
///   { "audit": "mstv-bounds", "scheme": ..., "n": ..., "m": ...,
///     "max_weight": ..., "pass": true|false,
///     "checks": [ {"name", "measured", "bound", "pass", "advisory",
///                  "note"}, ... ] }
[[nodiscard]] std::string audit_to_json(const AuditReport& report);

}  // namespace mstv::obs
