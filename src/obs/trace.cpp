#include "obs/trace.hpp"

#include <algorithm>

namespace mstv::obs {

namespace {

// Nesting depth of the *current thread*; events from different threads
// carry their own depth counters.
thread_local std::uint32_t t_depth = 0;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(kTraceRingCapacity);
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() -
             epoch_.load(std::memory_order_relaxed))
      .count();
}

void Tracer::push_event(std::string_view name, bool enter, double t,
                        std::uint32_t depth) {
  SpanEvent ev{std::string(name), enter, t, depth, 0};
  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = seq_++;
  if (ring_.size() < kTraceRingCapacity) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[ring_next_] = std::move(ev);
  }
  ring_next_ = (ring_next_ + 1) % kTraceRingCapacity;
}

std::uint32_t Tracer::begin_span(std::string_view name) {
  const std::uint32_t depth = t_depth++;
  push_event(name, /*enter=*/true, now_us(), depth);
  return depth;
}

void Tracer::end_span(std::string_view name, double start_us) {
  const std::uint32_t depth = --t_depth;
  const double end_us = now_us();
  push_event(name, /*enter=*/false, end_us, depth);
  const double dur = end_us - start_us;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      stats_.begin(), stats_.end(), name,
      [](const SpanStat& s, std::string_view n) { return s.name < n; });
  if (it == stats_.end() || it->name != name) {
    it = stats_.insert(it, SpanStat{std::string(name), 0, 0.0, 0.0});
  }
  ++it->count;
  it->total_us += dur;
  it->max_us = std::max(it->max_us, dur);
}

TraceSnapshot Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSnapshot s;
  s.spans = stats_;
  s.events.reserve(ring_.size());
  if (ring_.size() < kTraceRingCapacity) {
    s.events = ring_;
  } else {
    // Oldest retained event sits at the next write position.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      s.events.push_back(ring_[(ring_next_ + i) % kTraceRingCapacity]);
    }
  }
  return s;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_next_ = 0;
  seq_ = 0;
  stats_.clear();
  epoch_.store(std::chrono::steady_clock::now(), std::memory_order_relaxed);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace mstv::obs
