#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/trace_session.hpp"

namespace mstv::obs {

namespace {

// Nesting depth of the *current thread*; events from different threads
// carry their own depth counters.
thread_local std::uint32_t t_depth = 0;

std::size_t initial_ring_capacity() {
  // Observability sizing, not a result: the ring capacity changes what a
  // --stats snapshot retains, never a verdict, a label or a counter.
  const char* env = std::getenv("MSTV_TRACE_RING_CAPACITY");
  if (env == nullptr) return kTraceRingCapacity;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) return kTraceRingCapacity;
  return static_cast<std::size_t>(v);
}

// Category of a span name: the `component` prefix of `component.noun`.
std::string_view span_category(std::string_view name) {
  const std::size_t dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

}  // namespace

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(initial_ring_capacity()) {
  ring_.reserve(std::min<std::size_t>(capacity_, kTraceRingCapacity));
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() -
             epoch_.load(std::memory_order_relaxed))
      .count();
}

void Tracer::push_event(std::string_view name, bool enter, double t,
                        std::uint32_t depth) {
  SpanEvent ev{std::string(name), enter, t, depth, 0};
  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[ring_next_] = std::move(ev);
  }
  ring_next_ = (ring_next_ + 1) % capacity_;
}

std::uint32_t Tracer::begin_span(std::string_view name) {
  const std::uint32_t depth = t_depth++;
  push_event(name, /*enter=*/true, now_us(), depth);
  return depth;
}

void Tracer::end_span(std::string_view name, double start_us) {
  const std::uint32_t depth = --t_depth;
  const double end_us = now_us();
  push_event(name, /*enter=*/false, end_us, depth);
  const double dur = end_us - start_us;

  // Completed spans double as trace-session events (one relaxed load
  // when no session is recording).
  TraceSession& session = TraceSession::global();
  if (session.active()) {
    session.record_complete(span_category(name), name, dur);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      stats_.begin(), stats_.end(), name,
      [](const SpanStat& s, std::string_view n) { return s.name < n; });
  if (it == stats_.end() || it->name != name) {
    it = stats_.insert(it, SpanStat{std::string(name), 0, 0.0, 0.0});
  }
  ++it->count;
  it->total_us += dur;
  it->max_us = std::max(it->max_us, dur);
}

TraceSnapshot Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSnapshot s;
  s.spans = stats_;
  s.events.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    s.events = ring_;
  } else {
    // Oldest retained event sits at the next write position.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      s.events.push_back(ring_[(ring_next_ + i) % capacity_]);
    }
  }
  return s;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_next_ = 0;
  seq_ = 0;
  stats_.clear();
  epoch_.store(std::chrono::steady_clock::now(), std::memory_order_relaxed);
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity_, kTraceRingCapacity));
  ring_next_ = 0;
}

std::size_t Tracer::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace mstv::obs
