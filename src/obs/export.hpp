// Snapshot serialization: one combined telemetry snapshot (metrics +
// trace), exported as JSON (machine-readable, diffable across runs — what
// `mstv --stats` and the bench JsonReporter emit) or as a flat
// `key value` text format (greppable, one line per scalar).
//
// JSON layout:
//   {
//     "counters":   { "verify.messages": 123, ... },
//     "gauges":     { "label.max_bits": 208, ... },
//     "histograms": { "verify.node_time_us":
//                       { "count": n, "sum": s, "min": a, "max": b,
//                         "buckets": [ {"le": 1, "count": 0}, ...,
//                                      {"le": "inf", "count": k} ] } },
//     "spans":      { "marker.assign_labels":
//                       { "count": 1, "total_us": t, "max_us": m } },
//     "events":     [ {"name": ..., "phase": "enter"|"exit",
//                      "t_us": ..., "depth": d, "seq": q}, ... ],
//     "ledger":     [ {"round": r, "phase": "verify.round",
//                      "scheme": "pi-mst", "messages": m, "bits": b,
//                      "labels": k, "label_bits": {"min", "max", "sum"}},
//                     ... ]
//   }
//
// Text layout (`key value`, histogram/span scalars under derived keys):
//   verify.messages 123
//   hist.verify.node_time_us.count 10
//   span.marker.assign_labels.total_us 42.5
#pragma once

#include <iosfwd>
#include <string>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mstv::obs {

struct Snapshot {
  MetricsSnapshot metrics;
  TraceSnapshot trace;
  std::vector<LedgerEntry> ledger;  // sorted by (round, phase, scheme)
};

/// Snapshot of the global registry, tracer, and communication ledger.
[[nodiscard]] Snapshot capture();

/// Zeroes the global registry, restarts the global tracer, and clears the
/// communication ledger — scoping telemetry to one run (the CLI and
/// benches call this at startup).
void reset_all();

[[nodiscard]] std::string to_json(const Snapshot& s);
[[nodiscard]] std::string to_text(const Snapshot& s);

void write_json(std::ostream& os, const Snapshot& s);
void write_text(std::ostream& os, const Snapshot& s);

/// Escapes a string for inclusion inside a JSON string literal (shared
/// with the bench JsonReporter).
[[nodiscard]] std::string json_escape(std::string_view raw);

}  // namespace mstv::obs
