// Telemetry metrics: named monotonic counters, gauges and fixed-bucket
// histograms on a process-wide thread-safe registry.
//
// This is the quantitative substrate for the paper's headline claims —
// label bits (O(log n log W), Thm 3.4), one-round detection, and the
// verification-vs-recomputation message budget — so every runtime layer
// reports through the same named instruments and a snapshot can be
// serialized (obs/export.hpp) and diffed across runs.
//
// Naming convention (enforced by the OBS-METRIC-NAME lint rule,
// tools/lint/, runnable via tools/check_metrics_names.sh):
// `component.noun[_unit]` — lowercase snake_case segments joined by dots,
// e.g. `verify.messages`, `label.max_bits`, `verify.node_time_us`.
//
// Concurrency: every instrument is lock-free (atomics; Histogram uses
// relaxed per-bucket atomics plus CAS loops for sum/min/max, so a
// snapshot taken mid-traffic may tear between fields — fine for
// telemetry).  The registry hands out references that stay valid for the
// process lifetime (reset() zeroes values but never evicts).  Hot loops
// should resolve their instrument once and hold the reference: the
// name→instrument lookup takes the registry mutex, the instrument itself
// never blocks.
//
// The MSTV_* macros at the bottom are the instrumentation entry points
// used throughout the library.  Building with -DMSTV_OBS_DISABLED
// compiles them to nothing (arguments are not even evaluated), so hot
// paths pay zero cost when observability is off.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mstv::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (e.g. the current run's max label bits).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: counts per upper bound plus an overflow bucket,
/// with exact count/sum/min/max.  Bucket bounds are fixed at registration.
/// Lock-free: observe() is relaxed atomic adds plus CAS loops, so the
/// sharded verifier can feed per-node timings from every worker without
/// serializing on a mutex.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> bounds;         // upper bounds, ascending
    std::vector<std::uint64_t> buckets; // bounds.size() + 1 (last = overflow)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  /// Power-of-two bounds 1, 2, 4, ..., 2^20 — wide enough for microsecond
  /// timings, message delays and bit counts alike.
  static const std::vector<double>& default_bounds();

 private:
  std::vector<double> bounds_;                     // immutable after ctor
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // +inf sentinel while count_ == 0
  std::atomic<double> max_{0.0};  // -inf sentinel while count_ == 0
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  Histogram::Snapshot hist;
};

/// Point-in-time copy of every registered instrument, names sorted.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Thread-safe instrument registry.  Looking up a name registers it on
/// first use; returned references remain valid for the registry's
/// lifetime.  A name may hold only one instrument kind (a counter named
/// `x.y` and a gauge named `x.y` is a programming error and throws).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first registration of `name`.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& bounds =
                           Histogram::default_bounds());

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every instrument; registrations (and references) survive.
  void reset();

  /// The process-wide registry the MSTV_* macros report into.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Free-function sinks on the global registry — usable with runtime-built
// names (e.g. per-FaultKind counters); the macros below forward here.
void counter_add(std::string_view name, std::uint64_t delta);
void gauge_set(std::string_view name, double v);
void hist_observe(std::string_view name, double v);

}  // namespace mstv::obs

#ifndef MSTV_OBS_DISABLED

#define MSTV_COUNTER_ADD(name, delta) \
  ::mstv::obs::counter_add((name), (delta))
#define MSTV_COUNTER_INC(name) ::mstv::obs::counter_add((name), 1)
#define MSTV_GAUGE_SET(name, value) \
  ::mstv::obs::gauge_set((name), static_cast<double>(value))
#define MSTV_HIST_OBSERVE(name, value) \
  ::mstv::obs::hist_observe((name), static_cast<double>(value))

#else  // MSTV_OBS_DISABLED: evaluate nothing, but keep arguments "used"
       // so instrumentation sites compile warning-free either way.

#define MSTV_OBS_NOOP_2(a, b) \
  do {                        \
    (void)sizeof(a);          \
    (void)sizeof(b);          \
  } while (false)

#define MSTV_COUNTER_ADD(name, delta) MSTV_OBS_NOOP_2(name, delta)
#define MSTV_COUNTER_INC(name) \
  do {                         \
    (void)sizeof(name);        \
  } while (false)
#define MSTV_GAUGE_SET(name, value) MSTV_OBS_NOOP_2(name, value)
#define MSTV_HIST_OBSERVE(name, value) MSTV_OBS_NOOP_2(name, value)

#endif  // MSTV_OBS_DISABLED
