#include "obs/audit.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/export.hpp"  // json_escape
#include "obs/metrics.hpp"

namespace mstv::obs {

namespace {

// log2(x) + 1, floored at 1 — the bit length of x, the unit every
// envelope is built from.
double bitlen(std::uint64_t x) {
  if (x < 2) return 1.0;
  return std::floor(std::log2(static_cast<double>(x))) + 1.0;
}

// Schemes with a proved label-size form.  Telescoping = Theorem 3.4's
// O(log n log W); naive = the O(log² n + log n log W) fallback the paper
// compares against (and what the fragment scheme pays).
enum class LabelForm { Telescoping, Naive, Unproved };

LabelForm label_form(std::string_view scheme) {
  if (scheme == "pi-mst" || scheme == "pi-gamma") return LabelForm::Telescoping;
  if (scheme == "pi-mst-naive" || scheme == "pi-frag") return LabelForm::Naive;
  return LabelForm::Unproved;
}

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double label_bits_bound(std::string_view scheme, std::uint64_t n,
                        std::uint64_t max_weight) {
  const double ln = bitlen(n);
  const double lw = bitlen(max_weight);
  double shape = 0.0;
  switch (label_form(scheme)) {
    case LabelForm::Telescoping:
      shape = ln * lw;
      break;
    case LabelForm::Naive:
    case LabelForm::Unproved:
      shape = ln * ln + ln * lw;
      break;
  }
  return kAuditLabelSlack * shape + kAuditLabelOffsetBits;
}

AuditReport audit_bounds(const AuditInput& in) {
  AuditReport report;
  report.n = in.n;
  report.m = in.m;
  report.max_weight = in.max_weight;
  report.scheme = in.scheme;

  const double label_bound = label_bits_bound(in.scheme, in.n, in.max_weight);
  const bool label_proved = label_form(in.scheme) != LabelForm::Unproved;

  // 1. Label size against the scheme's proved envelope.
  {
    AuditCheck c;
    c.name = "label.max_bits";
    c.measured = static_cast<double>(in.max_label_bits);
    c.bound = label_bound;
    c.pass = c.measured <= c.bound;
    c.advisory = !label_proved;
    c.note = label_proved
                 ? (label_form(in.scheme) == LabelForm::Telescoping
                        ? "O(log n * log W), Theorem 3.4"
                        : "O(log^2 n + log n * log W)")
                 : "no proved form for this scheme; naive envelope shown";
    report.checks.push_back(std::move(c));
  }

  // 2. Decode work: the telescoping decode touches one (component,
  // weight) pair per Boruvka level, so the component count bounds the
  // O(log^2 n) verification work.  Advisory when the gauge never fired
  // (schemes without component structure).
  {
    AuditCheck c;
    c.name = "label.max_components";
    c.measured = static_cast<double>(in.max_components);
    c.bound = kAuditComponentSlack * bitlen(in.n);
    c.pass = c.measured <= c.bound;
    c.advisory = in.max_components == 0;
    c.note = c.advisory ? "gauge unset; scheme records no component levels"
                        : "Boruvka levels <= log2 n drive O(log^2 n) decode";
    report.checks.push_back(std::move(c));
  }

  // 3. Per-round traffic: one label per (edge, direction) means at most
  // 2m messages in any verification round, and each message carries at
  // most one in-envelope label.
  std::uint64_t verify_rounds = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t worst_round_msgs = 0;
  double worst_bits_ratio = 0.0;  // round bits / (msgs * label bound)
  for (const LedgerEntry& e : in.ledger) {
    if (e.key.phase != "verify.round") continue;
    ++verify_rounds;
    total_bits += e.cell.bits;
    worst_round_msgs = std::max(worst_round_msgs, e.cell.messages);
    if (e.cell.messages > 0) {
      worst_bits_ratio =
          std::max(worst_bits_ratio,
                   static_cast<double>(e.cell.bits) /
                       (static_cast<double>(e.cell.messages) * label_bound));
    }
  }

  {
    AuditCheck c;
    c.name = "ledger.round_messages";
    c.measured = static_cast<double>(worst_round_msgs);
    c.bound = 2.0 * static_cast<double>(in.m);
    c.pass = verify_rounds > 0 && c.measured <= c.bound;
    c.note = verify_rounds == 0
                 ? "no verify.round ledger rows — wiring regressed?"
                 : "one label per (edge, direction): <= 2m messages/round";
    report.checks.push_back(std::move(c));
  }

  {
    AuditCheck c;
    c.name = "ledger.round_bits";
    c.measured = worst_bits_ratio;  // worst round's bits / (msgs * bound)
    c.bound = kAuditBitsSlack;
    c.pass = verify_rounds > 0 && c.measured <= c.bound;
    c.note = "worst round's bits per message, as a fraction of the label "
             "envelope";
    report.checks.push_back(std::move(c));
  }

  // 4. Total communication across the run: rounds * 2m * label envelope,
  // the paper's O(m log n log W) per-round traffic summed up.
  {
    AuditCheck c;
    c.name = "ledger.total_bits";
    c.measured = static_cast<double>(total_bits);
    c.bound = static_cast<double>(verify_rounds) * 2.0 *
              static_cast<double>(in.m) * label_bound;
    c.pass = verify_rounds > 0 && c.measured <= c.bound;
    c.note = "sum over verify.round rows vs rounds * 2m * label envelope";
    report.checks.push_back(std::move(c));
  }

  report.pass = true;
  for (const AuditCheck& c : report.checks) {
    if (!c.advisory && !c.pass) report.pass = false;
  }
  return report;
}

AuditInput audit_input_from_telemetry(std::uint64_t n, std::uint64_t m,
                                      std::uint64_t max_weight,
                                      std::string scheme) {
  AuditInput in;
  in.n = n;
  in.m = m;
  in.max_weight = max_weight;
  in.scheme = std::move(scheme);
  const MetricsSnapshot metrics = Registry::global().snapshot();
  for (const auto& g : metrics.gauges) {
    if (g.name == "label.max_bits") {
      in.max_label_bits = static_cast<std::uint64_t>(g.value);
    } else if (g.name == "label.max_components") {
      in.max_components = static_cast<std::uint64_t>(g.value);
    }
  }
  in.ledger = CommLedger::global().snapshot();
  return in;
}

std::string audit_to_json(const AuditReport& report) {
  std::ostringstream os;
  os << "{\n  \"audit\": \"mstv-bounds\",\n  \"scheme\": \""
     << json_escape(report.scheme) << "\",\n  \"n\": " << report.n
     << ",\n  \"m\": " << report.m
     << ",\n  \"max_weight\": " << report.max_weight
     << ",\n  \"pass\": " << (report.pass ? "true" : "false")
     << ",\n  \"checks\": [";
  for (std::size_t i = 0; i < report.checks.size(); ++i) {
    const AuditCheck& c = report.checks[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(c.name)
       << "\", \"measured\": " << num(c.measured)
       << ", \"bound\": " << num(c.bound)
       << ", \"pass\": " << (c.pass ? "true" : "false")
       << ", \"advisory\": " << (c.advisory ? "true" : "false")
       << ", \"note\": \"" << json_escape(c.note) << "\"}";
  }
  os << (report.checks.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace mstv::obs
