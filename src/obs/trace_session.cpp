#include "obs/trace_session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/export.hpp"  // json_escape

namespace mstv::obs {

namespace {

// Per-thread handle into the current session's buffer vector.  The
// generation stamp invalidates the cached pointer whenever a new session
// starts, so a pool worker surviving across sessions re-registers instead
// of writing into a freed buffer.
// The owner pointer keeps handles from leaking across instances (tests
// drive local sessions next to the global one); a thread hopping between
// instances re-registers, which duplicates its buffer but never aliases.
struct TlsHandle {
  const void* owner = nullptr;
  void* buffer = nullptr;
  std::uint64_t generation = 0;
};
thread_local TlsHandle t_handle;

// Generations are unique across ALL sessions (not per instance), so a
// session re-created at a recycled address can never match a stale
// handle.
std::atomic<std::uint64_t> g_session_generation{0};

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

TraceArg TraceArg::uint(std::string key, std::uint64_t v) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = Kind::Uint;
  a.u = v;
  return a;
}

TraceArg TraceArg::real(std::string key, double v) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = Kind::Float;
  a.f = v;
  return a;
}

TraceArg TraceArg::str(std::string key, std::string v) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = Kind::Text;
  a.text = std::move(v);
  return a;
}

void TraceSession::start(std::size_t capacity_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  capacity_ = capacity_per_thread == 0 ? 1 : capacity_per_thread;
  ever_started_ = true;
  epoch_.store(std::chrono::steady_clock::now(), std::memory_order_relaxed);
  // Release pairs with the acquire in buffer_for_this_thread: a thread
  // observing the new generation also observes the cleared buffer vector.
  generation_.store(g_session_generation.fetch_add(1) + 1,
                    std::memory_order_release);
  active_.store(true, std::memory_order_release);
}

void TraceSession::stop() { active_.store(false, std::memory_order_release); }

double TraceSession::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() -
             epoch_.load(std::memory_order_relaxed))
      .count();
}

TraceSession::Buffer* TraceSession::buffer_for_this_thread() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_handle.owner == this && t_handle.buffer != nullptr &&
      t_handle.generation == gen) {
    return static_cast<Buffer*>(t_handle.buffer);
  }
  // Cold path: first event from this thread in this session.
  std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_unique<Buffer>();
  buf->tid = static_cast<std::uint32_t>(buffers_.size());
  buf->events.reserve(std::min<std::size_t>(capacity_, 4096));
  buffers_.push_back(std::move(buf));
  t_handle.owner = this;
  t_handle.buffer = buffers_.back().get();
  t_handle.generation = gen;
  return buffers_.back().get();
}

void TraceSession::push(Buffer& buf, SessionEvent ev) {
  if (buf.events.size() >= capacity_) {
    ++buf.dropped;  // keep-oldest: the start of the timeline survives
    return;
  }
  buf.events.push_back(std::move(ev));
}

void TraceSession::record_complete(std::string_view cat,
                                   std::string_view name, double dur_us,
                                   std::vector<TraceArg> args) {
  if (!active()) return;
  Buffer* buf = buffer_for_this_thread();
  SessionEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.phase = 'X';
  ev.dur_us = dur_us < 0 ? 0.0 : dur_us;
  ev.ts_us = now_us() - ev.dur_us;
  ev.args = std::move(args);
  push(*buf, std::move(ev));
}

void TraceSession::record_instant(std::string_view cat, std::string_view name,
                                  std::vector<TraceArg> args) {
  if (!active()) return;
  Buffer* buf = buffer_for_this_thread();
  SessionEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.phase = 'i';
  ev.ts_us = now_us();
  ev.args = std::move(args);
  push(*buf, std::move(ev));
}

SessionSnapshot TraceSession::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionSnapshot s;
  s.was_active = ever_started_;
  s.capacity_per_thread = capacity_;
  s.threads.reserve(buffers_.size());
  for (const auto& buf : buffers_) {
    ThreadTrace t;
    t.tid = buf->tid;
    t.events = buf->events;
    t.dropped = buf->dropped;
    s.threads.push_back(std::move(t));
  }
  return s;
}

TraceSession& TraceSession::global() {
  static TraceSession session;
  return session;
}

std::string to_chrome_trace(const SessionSnapshot& s) {
  std::uint64_t dropped = 0;
  for (const ThreadTrace& t : s.threads) dropped += t.dropped;

  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {"
     << "\"tool\": \"mstv\", \"dropped_events\": " << dropped
     << ", \"capacity_per_thread\": " << s.capacity_per_thread
     << "},\n  \"traceEvents\": [";

  bool first = true;
  auto emit = [&](const std::string& body) {
    os << (first ? "" : ",") << "\n    {" << body << "}";
    first = false;
  };

  // Thread-name metadata rows so Perfetto labels tracks by registration
  // order instead of bare integers.
  for (const ThreadTrace& t : s.threads) {
    emit("\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
         std::to_string(t.tid) +
         ", \"args\": {\"name\": \"" +
         (t.tid == 0 ? std::string("driver") :
                       "worker-" + std::to_string(t.tid)) +
         "\"}");
  }

  for (const ThreadTrace& t : s.threads) {
    for (const SessionEvent& ev : t.events) {
      std::ostringstream row;
      row << "\"name\": \"" << json_escape(ev.name) << "\", \"cat\": \""
          << json_escape(ev.cat) << "\", \"ph\": \"" << ev.phase
          << "\", \"ts\": " << json_num(ev.ts_us);
      if (ev.phase == 'X') row << ", \"dur\": " << json_num(ev.dur_us);
      if (ev.phase == 'i') row << ", \"s\": \"t\"";
      row << ", \"pid\": 1, \"tid\": " << t.tid;
      if (!ev.args.empty()) {
        row << ", \"args\": {";
        for (std::size_t i = 0; i < ev.args.size(); ++i) {
          const TraceArg& a = ev.args[i];
          row << (i ? ", " : "") << "\"" << json_escape(a.key) << "\": ";
          switch (a.kind) {
            case TraceArg::Kind::Uint: row << a.u; break;
            case TraceArg::Kind::Float: row << json_num(a.f); break;
            case TraceArg::Kind::Text:
              row << "\"" << json_escape(a.text) << "\"";
              break;
          }
        }
        row << "}";
      }
      emit(row.str());
    }
  }

  os << (first ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

TraceScope::TraceScope(std::string_view cat, std::string_view name,
                       std::vector<TraceArg> args) {
  TraceSession& s = TraceSession::global();
  if (!s.active()) return;
  live_ = true;
  cat_ = std::string(cat);
  name_ = std::string(name);
  args_ = std::move(args);
  start_us_ = s.now_us();
}

TraceScope::~TraceScope() {
  if (!live_) return;
  TraceSession& s = TraceSession::global();
  s.record_complete(cat_, name_, s.now_us() - start_us_, std::move(args_));
}

}  // namespace mstv::obs
