// The communication ledger: per-(round, phase, scheme) message accounting.
//
// The paper's claims are stated per verification round — Θ(log n log W)
// bits per label, one label per (edge, direction), detection in one round
// — but flat counters (verify.messages, verify.bits_total) can only show
// run totals.  The ledger attributes every message the simulated networks
// move to a key
//
//     (round, phase, scheme)
//
// where `round` is the network's own monotone round counter, `phase` is a
// `component.noun` string naming the traffic class (`verify.round`,
// `verify.channel_faults`, `async.round`, `dynamic.repair`,
// `selfstab.repair`, `selfstab.remark`), and `scheme` is the proof
// labeling scheme whose labels were shipped.  Each cell records the
// message count, total bits, and the per-round distribution of
// transmitted label sizes (count/min/max/sum) — the exact quantities the
// bound auditor (obs/audit.hpp) checks against the paper's envelopes.
//
// Determinism contract: cells are COMPUTED inside the deterministic
// sharded reduce of the round they describe (per-shard partial cells
// merged in shard-index order) and COMMITTED once per round by the round
// driver.  Nothing thread-count-dependent ever reaches the ledger, so the
// snapshot is bit-identical at --threads=1 and --threads=N — enforced by
// tests/test_ledger.cpp.
//
// Commit sites go through MSTV_LEDGER_COMMIT so the whole layer compiles
// to nothing under -DMSTV_OBS_DISABLED; the phase-name literal at each
// site is linted by OBS-LEDGER-KEY (tools/lint/rules_obs.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mstv::obs {

/// One cell of the ledger: everything measured about one traffic class in
/// one round.  Also used as the per-shard partial during the reduce.
struct LedgerCell {
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  // Distribution of per-message transmitted label sizes.
  std::uint64_t labels = 0;          // messages folded into the stats below
  std::uint64_t label_bits_min = 0;  // 0 when labels == 0
  std::uint64_t label_bits_max = 0;
  std::uint64_t label_bits_sum = 0;

  /// Folds one transmitted label of `bits` size (one message).
  void fold_label(std::uint64_t label_bits);

  /// Merges another partial (shard-order in the reduce; commit-time when
  /// two commits share a key).
  void merge(const LedgerCell& other);

  friend bool operator==(const LedgerCell&, const LedgerCell&) = default;
};

struct LedgerKey {
  std::uint64_t round = 0;
  std::string phase;   // component.noun, linted
  std::string scheme;  // ProofLabelingScheme::name()

  friend auto operator<=>(const LedgerKey&, const LedgerKey&) = default;
};

struct LedgerEntry {
  LedgerKey key;
  LedgerCell cell;

  friend bool operator==(const LedgerEntry&, const LedgerEntry&) = default;
};

/// Thread-safe (round, phase, scheme) -> cell store.  Commits are
/// expected once per round per phase from the round driver; a repeated
/// key merges, so re-running rounds keeps the totals honest.
class CommLedger {
 public:
  CommLedger() = default;
  CommLedger(const CommLedger&) = delete;
  CommLedger& operator=(const CommLedger&) = delete;

  void commit(std::string_view phase, std::uint64_t round,
              std::string_view scheme, const LedgerCell& cell);

  /// Every entry, sorted by (round, phase, scheme).
  [[nodiscard]] std::vector<LedgerEntry> snapshot() const;

  /// Drops every entry.
  void reset();

  static CommLedger& global();

 private:
  mutable std::mutex mu_;
  std::map<LedgerKey, LedgerCell> cells_;
};

/// Free-function sink on the global ledger (what MSTV_LEDGER_COMMIT
/// expands to); the phase literal at call sites is linted.
void ledger_commit(std::string_view phase, std::uint64_t round,
                   std::string_view scheme, const LedgerCell& cell);

/// Serializes entries as a JSON array (the `ledger` section of the
/// telemetry snapshot):
///   [ {"round": r, "phase": "...", "scheme": "...", "messages": m,
///      "bits": b, "labels": k, "label_bits": {"min": ..., "max": ...,
///      "sum": ...}}, ... ]
[[nodiscard]] std::string ledger_to_json(const std::vector<LedgerEntry>& entries);

}  // namespace mstv::obs

#ifndef MSTV_OBS_DISABLED
#define MSTV_LEDGER_COMMIT(phase, round, scheme, cell) \
  ::mstv::obs::ledger_commit((phase), (round), (scheme), (cell))
#else
#define MSTV_LEDGER_COMMIT(phase, round, scheme, cell) \
  do {                                                 \
    (void)sizeof(phase);                               \
    (void)sizeof(round);                               \
    (void)sizeof(scheme);                              \
    (void)sizeof(cell);                                \
  } while (false)
#endif
