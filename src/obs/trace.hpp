// Span tracing: RAII wall-clock spans with nesting, an enter/exit event
// ring buffer, and per-name aggregate statistics.
//
//   void MstScheme::mark(...) {
//     MSTV_SPAN("marker.assign_labels");
//     ...
//   }
//
// records an enter event on entry and an exit event (plus duration) on
// scope exit; spans opened inside the scope nest one depth level deeper.
// The ring buffer keeps the most recent ring_capacity() events so a
// snapshot shows the tail of the execution timeline; aggregates
// (count/total/max per span name) survive ring overwrite and feed the
// exported `spans` section.
//
// Ring capacity and overwrite semantics: the ring holds the LAST
// ring_capacity() events — once full, each new event overwrites the
// oldest one in place (sequence numbers stay globally monotone, so a
// snapshot makes the loss visible: its first event's `seq` is the number
// of events overwritten).  The capacity defaults to kTraceRingCapacity
// (1024) and is configurable at runtime: the MSTV_TRACE_RING_CAPACITY
// environment variable is applied when the global tracer is first
// constructed, and set_ring_capacity() (exposed as the CLI's
// --trace-ring=N flag) resizes it later — resizing drops the buffered
// events but keeps the per-name aggregates.  For a complete, never-
// overwritten timeline use a TraceSession (obs/trace_session.hpp), which
// buffers per thread and exports Chrome Trace JSON; the ring exists for
// cheap always-on tail snapshots in --stats output.
//
// Completed spans are also forwarded to the active TraceSession (if any)
// with their category derived from the name prefix (`marker.assign_labels`
// -> cat `marker`), so every MSTV_SPAN site shows up in an exported trace
// without separate instrumentation.
//
// Timestamps are microseconds on a steady clock, relative to the tracer's
// creation (or last reset), so snapshots are diffable and stable.
//
// Like the metric macros, MSTV_SPAN compiles to nothing under
// -DMSTV_OBS_DISABLED; the Span/Tracer classes themselves stay available
// either way.  Span names follow the same `component.noun` convention as
// metrics.  Depth tracking is thread-local; events from concurrent
// threads interleave in the shared ring in arrival order.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace mstv::obs {

inline constexpr std::size_t kTraceRingCapacity = 1024;

struct SpanEvent {
  std::string name;
  bool enter = false;    // false = exit
  double t_us = 0.0;     // steady time since tracer epoch
  std::uint32_t depth = 0;
  std::uint64_t seq = 0; // global, monotone over the whole run (pre-overwrite)
};

struct SpanStat {
  std::string name;
  std::uint64_t count = 0;  // completed spans
  double total_us = 0.0;
  double max_us = 0.0;
};

struct TraceSnapshot {
  std::vector<SpanStat> spans;     // sorted by name
  std::vector<SpanEvent> events;   // oldest retained first
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since the tracer epoch (construction or last reset).
  [[nodiscard]] double now_us() const;

  /// Records an enter event and returns the entered depth.
  std::uint32_t begin_span(std::string_view name);
  /// Records the exit event and folds the duration into the aggregates.
  void end_span(std::string_view name, double start_us);

  [[nodiscard]] TraceSnapshot snapshot() const;

  /// Drops all events and aggregates and restarts the epoch.
  void reset();

  /// Resizes the event ring (min 1).  Buffered events are dropped;
  /// aggregates and the epoch survive.  Not safe concurrently with
  /// in-flight spans — configure before the run starts.
  void set_ring_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t ring_capacity() const;

  static Tracer& global();

 private:
  void push_event(std::string_view name, bool enter, double t,
                  std::uint32_t depth);

  mutable std::mutex mu_;
  // Atomic (not mutex-guarded): now_us() runs on every span begin/end,
  // including from pool workers, concurrently with reset() re-stamping
  // the epoch.
  std::atomic<std::chrono::steady_clock::time_point> epoch_;
  std::size_t capacity_;          // ring capacity (>= 1), runtime-set
  std::vector<SpanEvent> ring_;   // capacity capacity_, circular
  std::size_t ring_next_ = 0;     // next write position
  std::uint64_t seq_ = 0;
  std::vector<SpanStat> stats_;   // kept sorted by name; few distinct names
};

/// RAII span on the global tracer.
class Span {
 public:
  explicit Span(std::string_view name)
      : name_(name), start_us_(Tracer::global().now_us()) {
    Tracer::global().begin_span(name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { Tracer::global().end_span(name_, start_us_); }

 private:
  std::string name_;
  double start_us_;
};

/// RAII timer feeding elapsed wall-clock microseconds into a histogram —
/// the per-unit-of-work companion to Span (which feeds the trace).
///
/// The by-name constructor resolves the histogram through the registry on
/// every destruction; loops timing each element (such as the sharded
/// verifier's per-node timer) should resolve the Histogram once outside
/// the loop and use the by-reference constructor, which is lock-free end
/// to end.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(std::string_view hist_name)
      : name_(hist_name), t0_(std::chrono::steady_clock::now()) {}
  explicit ScopedTimerUs(Histogram& hist)
      : hist_(&hist), t0_(std::chrono::steady_clock::now()) {}
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;
  ~ScopedTimerUs() {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0_)
                          .count();
    if (hist_ != nullptr) {
      hist_->observe(us);
    } else {
      hist_observe(name_, us);
    }
  }

 private:
  Histogram* hist_ = nullptr;  // non-null: pre-resolved, skip the lookup
  std::string name_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace mstv::obs

#define MSTV_OBS_CONCAT_INNER(a, b) a##b
#define MSTV_OBS_CONCAT(a, b) MSTV_OBS_CONCAT_INNER(a, b)

#ifndef MSTV_OBS_DISABLED
#define MSTV_SPAN(name) \
  ::mstv::obs::Span MSTV_OBS_CONCAT(mstv_obs_span_, __LINE__)(name)
#define MSTV_SCOPED_TIMER_US(name) \
  ::mstv::obs::ScopedTimerUs MSTV_OBS_CONCAT(mstv_obs_timer_, __LINE__)(name)
#else
#define MSTV_SPAN(name)  \
  do {                   \
    (void)sizeof(name);  \
  } while (false)
#define MSTV_SCOPED_TIMER_US(name) \
  do {                             \
    (void)sizeof(name);            \
  } while (false)
#endif
