// Trace sessions: per-thread event buffers behind a run-scoped recording
// window, exported as Chrome Trace Event JSON (chrome://tracing, Perfetto).
//
// The legacy obs::Tracer keeps a single mutex-guarded ring of the most
// recent enter/exit events — fine for aggregates and a tail snapshot,
// useless as a full timeline of a parallel run (the ring serializes every
// worker and overwrites history).  A TraceSession instead gives each
// recording thread its own buffer:
//
//   * appends never take a lock — only the owning thread writes its
//     buffer, and the one mutex in the layer guards first-time buffer
//     registration (once per thread per session);
//   * every event carries the recording thread's stable index (its
//     registration order), a category, and optional typed args (shard
//     index, round number, byte counts, ...), so the exported trace shows
//     the real thread/shard structure of the run;
//   * capacity is bounded per thread: when a buffer fills, later events
//     are dropped and counted (keep-oldest semantics — the start of the
//     timeline survives; the drop count is exported as metadata).  This
//     is the opposite of the Tracer ring, which overwrites oldest to keep
//     the tail; a trace file is most useful from t=0.
//
// Lifecycle: start(capacity) opens the recording window (clearing any
// previous session), stop() closes it.  Recording sites check active()
// first — one relaxed atomic load when no session is running.  snapshot()
// and export require QUIESCENCE: every thread that recorded must have
// synchronized with the caller (the thread pool's task-completion wait
// provides exactly that for pooled work; the CLI exports after the
// command returns).  Concurrent start/stop with in-flight recording is
// undefined — sessions are owned by the run driver, not by workers.
//
// obs::Span (and therefore every MSTV_SPAN site) records its completed
// scope into the active session automatically, with its category derived
// from the span-name prefix (`marker.assign_labels` -> cat `marker`).
// MSTV_TRACE_SCOPE / MSTV_TRACE_INSTANT add explicitly-categorized events
// with args; both compile to nothing under -DMSTV_OBS_DISABLED, and an
// inactive session makes every record path a cheap early-out, so a run
// without --trace-out pays one predictable branch per span.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mstv::obs {

inline constexpr std::size_t kTraceSessionDefaultCapacity = 1 << 16;

/// One typed event argument, exported under the Chrome event's "args".
struct TraceArg {
  enum class Kind : std::uint8_t { Uint, Float, Text };

  std::string key;
  Kind kind = Kind::Uint;
  std::uint64_t u = 0;
  double f = 0.0;
  std::string text;

  static TraceArg uint(std::string key, std::uint64_t v);
  static TraceArg real(std::string key, double v);
  static TraceArg str(std::string key, std::string v);
};

/// One recorded event.  phase follows the Chrome Trace Event vocabulary:
/// 'X' = complete (ts + dur), 'i' = instant.
struct SessionEvent {
  std::string name;  // `component.noun`, like span/metric names
  std::string cat;   // single lowercase snake_case segment
  char phase = 'X';
  double ts_us = 0.0;   // start, relative to the session epoch
  double dur_us = 0.0;  // 'X' only
  std::vector<TraceArg> args;
};

/// Everything one thread recorded, in completion order.
struct ThreadTrace {
  std::uint32_t tid = 0;  // stable registration index within the session
  std::vector<SessionEvent> events;
  std::uint64_t dropped = 0;  // events discarded after the buffer filled
};

struct SessionSnapshot {
  bool was_active = false;            // a session ran (or is still open)
  std::size_t capacity_per_thread = 0;
  std::vector<ThreadTrace> threads;   // ordered by tid
};

class TraceSession {
 public:
  TraceSession() = default;
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Opens a recording window, discarding any previous session's buffers.
  /// Must not race with in-flight recording (see file comment).
  void start(std::size_t capacity_per_thread = kTraceSessionDefaultCapacity);

  /// Closes the window; buffers stay readable until the next start().
  void stop();

  [[nodiscard]] bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the session epoch (start()).
  [[nodiscard]] double now_us() const;

  /// Records a completed scope ending now: ts = now - dur_us.
  /// No-ops when no session is active.
  void record_complete(std::string_view cat, std::string_view name,
                       double dur_us, std::vector<TraceArg> args = {});

  /// Records an instant event at now.  No-ops when inactive.
  void record_instant(std::string_view cat, std::string_view name,
                      std::vector<TraceArg> args = {});

  /// Copies out every thread buffer.  Requires quiescence: all recording
  /// threads must have synchronized with the caller.
  [[nodiscard]] SessionSnapshot snapshot() const;

  static TraceSession& global();

 private:
  struct Buffer {
    std::uint32_t tid = 0;
    std::vector<SessionEvent> events;
    std::uint64_t dropped = 0;
  };

  Buffer* buffer_for_this_thread();
  void push(Buffer& buf, SessionEvent ev);

  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::chrono::steady_clock::time_point> epoch_{
      std::chrono::steady_clock::time_point{}};
  std::size_t capacity_ = kTraceSessionDefaultCapacity;
  bool ever_started_ = false;

  mutable std::mutex mu_;  // guards buffers_ registration and snapshot
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// Serializes a snapshot as a Chrome Trace Event JSON object:
///   { "displayTimeUnit": "ms",
///     "otherData": { "tool": "mstv", "dropped_events": N },
///     "traceEvents": [ {"name", "cat", "ph", "ts", "dur"?, "pid", "tid",
///                       "args"?}, ... ] }
/// Always a valid document — with no session (or under MSTV_OBS_DISABLED
/// builds, where no site records) "traceEvents" is an empty array.
[[nodiscard]] std::string to_chrome_trace(const SessionSnapshot& s);

/// RAII explicit-category scope on the global session.  Does nothing when
/// no session is active (args are still evaluated; use the macro to make
/// the whole site vanish under MSTV_OBS_DISABLED).
class TraceScope {
 public:
  TraceScope(std::string_view cat, std::string_view name,
             std::vector<TraceArg> args = {});
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

 private:
  std::string cat_;
  std::string name_;
  std::vector<TraceArg> args_;
  double start_us_ = 0.0;
  bool live_ = false;
};

}  // namespace mstv::obs

#ifndef MSTV_OBS_CONCAT
#define MSTV_OBS_CONCAT_INNER(a, b) a##b
#define MSTV_OBS_CONCAT(a, b) MSTV_OBS_CONCAT_INNER(a, b)
#endif

#ifndef MSTV_OBS_DISABLED
#define MSTV_TRACE_SCOPE(cat, name, ...)                     \
  ::mstv::obs::TraceScope MSTV_OBS_CONCAT(mstv_obs_tscope_,  \
                                          __LINE__)((cat), (name), \
                                                    ##__VA_ARGS__)
#define MSTV_TRACE_INSTANT(cat, name, ...)                        \
  ::mstv::obs::TraceSession::global().record_instant((cat), (name), \
                                                     ##__VA_ARGS__)
#else
#define MSTV_TRACE_SCOPE(cat, name, ...) \
  do {                                   \
    (void)sizeof(cat);                   \
    (void)sizeof(name);                  \
  } while (false)
#define MSTV_TRACE_INSTANT(cat, name, ...) \
  do {                                     \
    (void)sizeof(cat);                     \
    (void)sizeof(name);                    \
  } while (false)
#endif
