#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace mstv::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[idx];
  sum_ += v;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.bounds = bounds_;
  s.buckets = buckets_;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  return s;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

const std::vector<double>& Histogram::default_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double x = 1.0; x <= 1048576.0; x *= 2.0) b.push_back(x);
    return b;
  }();
  return bounds;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = counters_.find(name); it != counters_.end()) {
    return it->second;
  }
  if (gauges_.count(name) || histograms_.count(name)) {
    throw std::invalid_argument("metric name already bound to another kind: " +
                                std::string(name));
  }
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second;
  }
  if (counters_.count(name) ||
      histograms_.count(name)) {
    throw std::invalid_argument("metric name already bound to another kind: " +
                                std::string(name));
  }
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second;
  }
  if (counters_.count(name) || gauges_.count(name)) {
    throw std::invalid_argument("metric name already bound to another kind: " +
                                std::string(name));
  }
  return histograms_.try_emplace(std::string(name), bounds).first->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.push_back(CounterSample{name, c.value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back(GaugeSample{name, g.value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back(HistogramSample{name, h.snapshot()});
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void counter_add(std::string_view name, std::uint64_t delta) {
  Registry::global().counter(name).add(delta);
}

void gauge_set(std::string_view name, double v) {
  Registry::global().gauge(name).set(v);
}

void hist_observe(std::string_view name, double v) {
  Registry::global().histogram(name).observe(v);
}

}  // namespace mstv::obs
