#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mstv::obs {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

// CAS-accumulate: atomically `target = op(target, v)`, relaxed.  Used for
// sum (add) and min/max (compare) on atomic<double>, where no native RMW
// exists pre-C++20-on-all-toolchains.
template <typename Op>
void cas_update(std::atomic<double>& target, double v, Op op) {
  double cur = target.load(kRelaxed);
  double next = op(cur, v);
  while (next != cur &&
         !target.compare_exchange_weak(cur, next, kRelaxed, kRelaxed)) {
    next = op(cur, v);
  }
}
}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  min_.store(std::numeric_limits<double>::infinity(), kRelaxed);
  max_.store(-std::numeric_limits<double>::infinity(), kRelaxed);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, kRelaxed);
  count_.fetch_add(1, kRelaxed);
  cas_update(sum_, v, [](double a, double b) { return a + b; });
  cas_update(min_, v, [](double a, double b) { return std::min(a, b); });
  cas_update(max_, v, [](double a, double b) { return std::max(a, b); });
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) s.buckets.push_back(b.load(kRelaxed));
  s.count = count_.load(kRelaxed);
  if (s.count == 0) {
    s.sum = s.min = s.max = 0.0;  // hide the infinity sentinels
  } else {
    s.sum = sum_.load(kRelaxed);
    s.min = min_.load(kRelaxed);
    s.max = max_.load(kRelaxed);
  }
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, kRelaxed);
  count_.store(0, kRelaxed);
  sum_.store(0.0, kRelaxed);
  min_.store(std::numeric_limits<double>::infinity(), kRelaxed);
  max_.store(-std::numeric_limits<double>::infinity(), kRelaxed);
}

const std::vector<double>& Histogram::default_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double x = 1.0; x <= 1048576.0; x *= 2.0) b.push_back(x);
    return b;
  }();
  return bounds;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = counters_.find(name); it != counters_.end()) {
    return it->second;
  }
  if (gauges_.count(name) || histograms_.count(name)) {
    throw std::invalid_argument("metric name already bound to another kind: " +
                                std::string(name));
  }
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second;
  }
  if (counters_.count(name) ||
      histograms_.count(name)) {
    throw std::invalid_argument("metric name already bound to another kind: " +
                                std::string(name));
  }
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second;
  }
  if (counters_.count(name) || gauges_.count(name)) {
    throw std::invalid_argument("metric name already bound to another kind: " +
                                std::string(name));
  }
  return histograms_.try_emplace(std::string(name), bounds).first->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.push_back(CounterSample{name, c.value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back(GaugeSample{name, g.value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back(HistogramSample{name, h.snapshot()});
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void counter_add(std::string_view name, std::uint64_t delta) {
  Registry::global().counter(name).add(delta);
}

void gauge_set(std::string_view name, double v) {
  Registry::global().gauge(name).set(v);
}

void hist_observe(std::string_view name, double v) {
  Registry::global().histogram(name).observe(v);
}

}  // namespace mstv::obs
