#include "obs/ledger.hpp"

#include <algorithm>
#include <sstream>

#include "obs/export.hpp"  // json_escape

namespace mstv::obs {

void LedgerCell::fold_label(std::uint64_t label_bits) {
  ++messages;
  bits += label_bits;
  if (labels == 0) {
    label_bits_min = label_bits;
    label_bits_max = label_bits;
  } else {
    label_bits_min = std::min(label_bits_min, label_bits);
    label_bits_max = std::max(label_bits_max, label_bits);
  }
  ++labels;
  label_bits_sum += label_bits;
}

void LedgerCell::merge(const LedgerCell& other) {
  messages += other.messages;
  bits += other.bits;
  if (other.labels > 0) {
    if (labels == 0) {
      label_bits_min = other.label_bits_min;
      label_bits_max = other.label_bits_max;
    } else {
      label_bits_min = std::min(label_bits_min, other.label_bits_min);
      label_bits_max = std::max(label_bits_max, other.label_bits_max);
    }
    labels += other.labels;
    label_bits_sum += other.label_bits_sum;
  }
}

void CommLedger::commit(std::string_view phase, std::uint64_t round,
                        std::string_view scheme, const LedgerCell& cell) {
  LedgerKey key{round, std::string(phase), std::string(scheme)};
  std::lock_guard<std::mutex> lock(mu_);
  cells_[std::move(key)].merge(cell);
}

std::vector<LedgerEntry> CommLedger::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LedgerEntry> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    out.push_back(LedgerEntry{key, cell});
  }
  return out;  // std::map iterates in key order: (round, phase, scheme)
}

void CommLedger::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
}

CommLedger& CommLedger::global() {
  static CommLedger ledger;
  return ledger;
}

void ledger_commit(std::string_view phase, std::uint64_t round,
                   std::string_view scheme, const LedgerCell& cell) {
  CommLedger::global().commit(phase, round, scheme, cell);
}

std::string ledger_to_json(const std::vector<LedgerEntry>& entries) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const LedgerEntry& e = entries[i];
    os << (i ? "," : "") << "\n    {\"round\": " << e.key.round
       << ", \"phase\": \"" << json_escape(e.key.phase) << "\", \"scheme\": \""
       << json_escape(e.key.scheme) << "\", \"messages\": " << e.cell.messages
       << ", \"bits\": " << e.cell.bits << ", \"labels\": " << e.cell.labels
       << ", \"label_bits\": {\"min\": " << e.cell.label_bits_min
       << ", \"max\": " << e.cell.label_bits_max
       << ", \"sum\": " << e.cell.label_bits_sum << "}}";
  }
  os << (entries.empty() ? "]" : "\n  ]");
  return os.str();
}

}  // namespace mstv::obs
