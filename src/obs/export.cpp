#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace mstv::obs {

namespace {

// Shortest round-trippable representation: integers print without a
// fraction so counters stay integral in the JSON.  JSON has no literal
// for non-finite values, so inf/nan become null rather than producing an
// unparseable document.
std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string num(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Snapshot capture() {
  return Snapshot{Registry::global().snapshot(), Tracer::global().snapshot(),
                  CommLedger::global().snapshot()};
}

void reset_all() {
  Registry::global().reset();
  Tracer::global().reset();
  CommLedger::global().reset();
}

std::string to_json(const Snapshot& s) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < s.metrics.counters.size(); ++i) {
    const auto& c = s.metrics.counters[i];
    os << (i ? "," : "") << "\n    \"" << json_escape(c.name)
       << "\": " << num(c.value);
  }
  os << (s.metrics.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < s.metrics.gauges.size(); ++i) {
    const auto& g = s.metrics.gauges[i];
    os << (i ? "," : "") << "\n    \"" << json_escape(g.name)
       << "\": " << num(g.value);
  }
  os << (s.metrics.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < s.metrics.histograms.size(); ++i) {
    const auto& h = s.metrics.histograms[i];
    os << (i ? "," : "") << "\n    \"" << json_escape(h.name) << "\": {"
       << "\"count\": " << num(h.hist.count) << ", \"sum\": " << num(h.hist.sum)
       << ", \"min\": " << num(h.hist.min) << ", \"max\": " << num(h.hist.max)
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.hist.buckets.size(); ++b) {
      os << (b ? ", " : "") << "{\"le\": ";
      if (b < h.hist.bounds.size()) {
        os << num(h.hist.bounds[b]);
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << num(h.hist.buckets[b]) << "}";
    }
    os << "]}";
  }
  os << (s.metrics.histograms.empty() ? "" : "\n  ") << "},\n  \"spans\": {";
  for (std::size_t i = 0; i < s.trace.spans.size(); ++i) {
    const auto& sp = s.trace.spans[i];
    os << (i ? "," : "") << "\n    \"" << json_escape(sp.name) << "\": {"
       << "\"count\": " << num(sp.count)
       << ", \"total_us\": " << num(sp.total_us)
       << ", \"max_us\": " << num(sp.max_us) << "}";
  }
  os << (s.trace.spans.empty() ? "" : "\n  ") << "},\n  \"events\": [";
  for (std::size_t i = 0; i < s.trace.events.size(); ++i) {
    const auto& ev = s.trace.events[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(ev.name)
       << "\", \"phase\": \"" << (ev.enter ? "enter" : "exit")
       << "\", \"t_us\": " << num(ev.t_us) << ", \"depth\": " << ev.depth
       << ", \"seq\": " << num(ev.seq) << "}";
  }
  os << (s.trace.events.empty() ? "" : "\n  ") << "],\n  \"ledger\": "
     << ledger_to_json(s.ledger) << "\n}\n";
  return os.str();
}

std::string to_text(const Snapshot& s) {
  std::ostringstream os;
  for (const auto& c : s.metrics.counters) {
    os << c.name << ' ' << num(c.value) << '\n';
  }
  for (const auto& g : s.metrics.gauges) {
    os << g.name << ' ' << num(g.value) << '\n';
  }
  for (const auto& h : s.metrics.histograms) {
    os << "hist." << h.name << ".count " << num(h.hist.count) << '\n';
    os << "hist." << h.name << ".sum " << num(h.hist.sum) << '\n';
    os << "hist." << h.name << ".min " << num(h.hist.min) << '\n';
    os << "hist." << h.name << ".max " << num(h.hist.max) << '\n';
  }
  for (const auto& sp : s.trace.spans) {
    os << "span." << sp.name << ".count " << num(sp.count) << '\n';
    os << "span." << sp.name << ".total_us " << num(sp.total_us) << '\n';
    os << "span." << sp.name << ".max_us " << num(sp.max_us) << '\n';
  }
  for (const auto& e : s.ledger) {
    const std::string prefix = "ledger.r" + std::to_string(e.key.round) + '.' +
                               e.key.phase + '.' + e.key.scheme;
    os << prefix << ".messages " << num(e.cell.messages) << '\n';
    os << prefix << ".bits " << num(e.cell.bits) << '\n';
  }
  return os.str();
}

void write_json(std::ostream& os, const Snapshot& s) { os << to_json(s); }
void write_text(std::ostream& os, const Snapshot& s) { os << to_text(s); }

}  // namespace mstv::obs
