// Sequential MST verification — the lineage the paper starts from
// (Tarjan [34, 29]; Komlós; Dixon–Rauch–Tarjan; King).
//
// verify_mst_offline answers "is T an MST of G?" in O(m alpha(m, n))
// after sorting: process non-tree edges by increasing weight and cover
// the tree paths they close with a path-compressed jump structure.  A
// tree edge covered for the first time by a *lighter* non-tree edge
// witnesses a cycle-rule violation.
//
// This is the sequential-world counterpart of pi_mst: same cycle rule,
// evaluated centrally in near-linear time instead of locally from labels.
// Bench E6 reports it next to the distributed numbers; tests cross-check
// it against the LCA-based is_mst.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace mstv {

struct OfflineVerifyResult {
  bool is_mst = false;
  /// A witness when not minimum: a non-tree edge lighter than some tree
  /// edge on its cycle, and that heavier tree edge.
  std::optional<EdgeId> violating_chord;
  std::optional<EdgeId> heavier_tree_edge;
};

/// Requires: `tree_edges` is a spanning tree of g (throws otherwise).
OfflineVerifyResult verify_mst_offline(const Graph& g,
                                       const std::vector<EdgeId>& tree_edges);

}  // namespace mstv
