// Sequential MST computation.
//
// These are both substrates (the marker of pi_mst needs an MST to label,
// the self-stabilizing runtime recomputes one after detecting a fault) and
// the baselines for experiment E6: the paper's motivation is that local
// verification is far cheaper than (re)computation, and the bench compares
// the two directly.
//
// All three classics are provided so tests can cross-check them against
// each other on graphs with non-unique MSTs (equal total weight).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mstv {

/// Kruskal: sort edges, union-find.  O(m log m).
std::vector<EdgeId> kruskal_mst(const Graph& g);

/// Prim with a binary heap from vertex 0.  O(m log n).
std::vector<EdgeId> prim_mst(const Graph& g);

/// Borůvka phases; ties between equal-weight edges broken by edge id so the
/// result is well defined on non-distinct weights.  O(m log n).
std::vector<EdgeId> boruvka_mst(const Graph& g);

/// Sum of weights over a set of edges.
Weight total_weight(const Graph& g, const std::vector<EdgeId>& edges);

}  // namespace mstv
