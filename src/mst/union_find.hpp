// Disjoint-set union with union by rank and path compression.
// Substrate for Kruskal/Borůvka and for the Tarjan-style sensitivity
// algorithm (which additionally needs the "jump to next unmarked ancestor"
// pattern implemented in sensitivity/).
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace mstv {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0), count_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  /// Representative of x's set (with path compression).
  std::size_t find(std::size_t x) {
    MSTV_EXPECTS(x < parent_.size());
    std::size_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const std::size_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges the sets of a and b; returns false if already joined.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    --count_;
    return true;
  }

  [[nodiscard]] bool same(std::size_t a, std::size_t b) {
    return find(a) == find(b);
  }

  /// Number of disjoint sets remaining.
  [[nodiscard]] std::size_t num_sets() const noexcept { return count_; }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t count_;
};

}  // namespace mstv
