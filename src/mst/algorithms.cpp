#include "mst/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "mst/union_find.hpp"

namespace mstv {

std::vector<EdgeId> kruskal_mst(const Graph& g) {
  MSTV_EXPECTS_MSG(g.is_connected(), "MST requires a connected graph");
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    const Weight wa = g.edge(a).w, wb = g.edge(b).w;
    return wa != wb ? wa < wb : a < b;
  });
  UnionFind uf(g.num_vertices());
  std::vector<EdgeId> tree;
  tree.reserve(g.num_vertices() - 1);
  for (const EdgeId e : order) {
    if (uf.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
    if (tree.size() + 1 == g.num_vertices()) break;
  }
  MSTV_ASSERT(tree.size() + 1 == g.num_vertices());
  return tree;
}

std::vector<EdgeId> prim_mst(const Graph& g) {
  MSTV_EXPECTS_MSG(g.is_connected(), "MST requires a connected graph");
  const std::size_t n = g.num_vertices();
  std::vector<bool> in_tree(n, false);
  std::vector<EdgeId> tree;
  tree.reserve(n - 1);

  // (weight, edge id, vertex reached) min-heap; edge id as tie-breaker.
  using Item = std::tuple<Weight, EdgeId, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  auto relax = [&](VertexId v) {
    in_tree[v] = true;
    for (const PortInfo& p : g.ports(v)) {
      if (!in_tree[p.neighbor]) heap.emplace(p.weight, p.edge, p.neighbor);
    }
  };
  relax(0);
  while (tree.size() + 1 < n) {
    MSTV_ASSERT(!heap.empty());
    const auto [w, e, v] = heap.top();
    heap.pop();
    (void)w;
    if (in_tree[v]) continue;
    tree.push_back(e);
    relax(v);
  }
  return tree;
}

std::vector<EdgeId> boruvka_mst(const Graph& g) {
  MSTV_EXPECTS_MSG(g.is_connected(), "MST requires a connected graph");
  const std::size_t n = g.num_vertices();
  UnionFind uf(n);
  std::vector<EdgeId> tree;
  tree.reserve(n - 1);

  while (uf.num_sets() > 1) {
    // Minimum outgoing edge per fragment; ties broken by edge id, which
    // makes the chosen set consistent even with equal weights (the same
    // rule a distributed GHS run would use on (weight, id) pairs).
    std::vector<EdgeId> best(n, kInvalidEdge);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& ed = g.edge(e);
      const std::size_t fu = uf.find(ed.u), fv = uf.find(ed.v);
      if (fu == fv) continue;
      for (const std::size_t f : {fu, fv}) {
        if (best[f] == kInvalidEdge) {
          best[f] = e;
        } else {
          const Edge& be = g.edge(best[f]);
          if (ed.w < be.w || (ed.w == be.w && e < best[f])) best[f] = e;
        }
      }
    }
    bool progressed = false;
    for (std::size_t f = 0; f < n; ++f) {
      const EdgeId e = best[f];
      if (e == kInvalidEdge || uf.find(f) != f) continue;
      if (uf.unite(g.edge(e).u, g.edge(e).v)) {
        tree.push_back(e);
        progressed = true;
      }
    }
    MSTV_ASSERT_MSG(progressed, "Borůvka phase made no progress");
  }
  MSTV_ASSERT(tree.size() + 1 == n);
  return tree;
}

Weight total_weight(const Graph& g, const std::vector<EdgeId>& edges) {
  Weight sum = 0;
  for (const EdgeId e : edges) sum += g.edge(e).w;
  return sum;
}

}  // namespace mstv
