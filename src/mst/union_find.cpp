#include "mst/union_find.hpp"

// Header-only; this TU anchors the module in the library.
