#include "mst/offline_verify.hpp"

#include <algorithm>

#include "mst/predicates.hpp"
#include "tree/path_queries.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {

OfflineVerifyResult verify_mst_offline(const Graph& g,
                                       const std::vector<EdgeId>& tree_edges) {
  MSTV_EXPECTS_MSG(is_spanning_tree(g, tree_edges),
                   "offline verification needs a spanning tree");
  const std::size_t n = g.num_vertices();
  const RootedTree tree(g, tree_edges, 0);
  // LCA via binary lifting; a Gabow-Tarjan offline LCA would shave the
  // log factor, but the climb itself is the alpha(m, n) part that
  // matters and is implemented exactly.
  const TreePathQueries paths(tree);

  std::vector<EdgeId> chords;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!tree.contains_edge(e)) chords.push_back(e);
  }
  std::sort(chords.begin(), chords.end(), [&](EdgeId a, EdgeId b) {
    return g.edge(a).w != g.edge(b).w ? g.edge(a).w < g.edge(b).w : a < b;
  });

  // jump[v]: deepest vertex at-or-above v whose parent edge has not yet
  // been covered by any (lighter) chord.
  std::vector<VertexId> jump(n);
  for (VertexId v = 0; v < n; ++v) jump[v] = v;
  auto find = [&](VertexId v) {
    VertexId root = v;
    while (jump[root] != root) root = jump[root];
    while (jump[v] != root) {
      const VertexId next = jump[v];
      jump[v] = root;
      v = next;
    }
    return root;
  };

  OfflineVerifyResult res;
  for (const EdgeId f : chords) {
    const Edge& fe = g.edge(f);
    const VertexId a = paths.lca(fe.u, fe.v);
    for (const VertexId side : {fe.u, fe.v}) {
      VertexId v = find(side);
      while (tree.depth(v) > tree.depth(a)) {
        // First (lightest) chord to cover the tree edge (v, parent(v)):
        // the cycle rule demands w(chord) >= w(tree edge).
        if (fe.w < tree.parent_weight(v)) {
          res.is_mst = false;
          res.violating_chord = f;
          res.heavier_tree_edge = tree.parent_edge(v);
          return res;
        }
        jump[v] = tree.parent(v);
        v = find(v);
      }
    }
  }
  res.is_mst = true;
  return res;
}

}  // namespace mstv
