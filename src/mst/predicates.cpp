#include "mst/predicates.hpp"

#include "mst/union_find.hpp"
#include "tree/path_queries.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {

bool is_spanning_tree(const Graph& g, const std::vector<EdgeId>& edges) {
  if (edges.size() + 1 != g.num_vertices()) return false;
  UnionFind uf(g.num_vertices());
  for (const EdgeId e : edges) {
    if (e >= g.num_edges()) return false;
    if (!uf.unite(g.edge(e).u, g.edge(e).v)) return false;  // cycle or dup
  }
  return uf.num_sets() == 1;
}

bool is_mst(const Graph& g, const std::vector<EdgeId>& edges) {
  MSTV_EXPECTS_MSG(is_spanning_tree(g, edges), "input is not a spanning tree");
  const RootedTree tree(g, edges, 0);
  const TreePathQueries paths(tree);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (tree.contains_edge(e)) continue;
    const Edge& ed = g.edge(e);
    if (ed.w < paths.path_max(ed.u, ed.v)) return false;
  }
  return true;
}

std::vector<EdgeId> non_tree_edges(const Graph& g,
                                   const std::vector<EdgeId>& tree) {
  std::vector<bool> in_tree(g.num_edges(), false);
  for (const EdgeId e : tree) in_tree.at(e) = true;
  std::vector<EdgeId> rest;
  rest.reserve(g.num_edges() - tree.size());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_tree[e]) rest.push_back(e);
  }
  return rest;
}

}  // namespace mstv
