// Centralized ground-truth predicates.
//
// These define what the distributed verifiers are supposed to decide:
// is_mst implements the cycle rule the paper builds pi_mst on —
// "a spanning tree T of G is an MST iff for every edge e = (u,v) of G,
//  omega(e) >= MAX(u,v) calculated on T" [30].
// Tests compare every scheme's global accept/reject against these.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mstv {

/// True iff `edges` (n-1 distinct edge ids) form a spanning tree of g.
bool is_spanning_tree(const Graph& g, const std::vector<EdgeId>& edges);

/// True iff `edges` form a minimum spanning tree of g (cycle rule; handles
/// non-unique MSTs).  Requires is_spanning_tree(g, edges).
bool is_mst(const Graph& g, const std::vector<EdgeId>& edges);

/// All edges of g that are *not* in the given tree.
std::vector<EdgeId> non_tree_edges(const Graph& g,
                                   const std::vector<EdgeId>& tree);

}  // namespace mstv
