#include "util/rng.hpp"

// Header-only for now; this TU pins the module into the library and keeps a
// place for future non-inline helpers (e.g. seeded sequence generators).
