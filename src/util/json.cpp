#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace mstv::json {

namespace {

// Deep enough for every document this repo writes (the trace file nests
// 4 levels); shallow enough that hostile input cannot blow the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& reason) const {
    throw ParseError(reason, pos_);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    if (eof()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) {
      fail("invalid literal");
    }
    pos_ += kw.size();
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value::string(parse_string());
      case 't': expect_keyword("true"); return Value::boolean(true);
      case 'f': expect_keyword("false"); return Value::boolean(false);
      case 'n': expect_keyword("null"); return Value::null();
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    take();  // '{'
    std::vector<Member> members;
    skip_ws();
    if (peek() == '}') {
      take();
      return Value::object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      skip_ws();
      if (take() != ':') fail("expected ':' after object key");
      Value v = parse_value(depth + 1);
      members.push_back(
          Member{std::move(key), std::make_shared<Value>(std::move(v))});
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value::object(std::move(members));
  }

  Value parse_array(int depth) {
    take();  // '['
    std::vector<std::shared_ptr<Value>> items;
    skip_ws();
    if (peek() == ']') {
      take();
      return Value::array(std::move(items));
    }
    while (true) {
      Value v = parse_value(depth + 1);
      items.push_back(std::make_shared<Value>(std::move(v)));
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value::array(std::move(items));
  }

  std::string parse_string() {
    take();  // opening quote
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("invalid escape sequence");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4U;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    // Lone surrogates are kept as-is code points; the writers in this
    // repo never emit them, and round-tripping beats rejecting here.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t k = 0;
      while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        ++k;
      }
      return k;
    };
    if (digits() == 0) fail("invalid number");
    if (!eof() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (!eof() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!eof() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    const std::string lit(text_.substr(start, pos_ - start));
    return Value::number(std::strtod(lit.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_mismatch(const char* want) {
  throw std::logic_error(std::string("json::Value is not a ") + want);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_mismatch("bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::Number) kind_mismatch("number");
  return num_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_mismatch("string");
  return str_;
}

const std::vector<std::shared_ptr<Value>>& Value::as_array() const {
  if (kind_ != Kind::Array) kind_mismatch("array");
  return items_;
}

const std::vector<Member>& Value::as_object() const {
  if (kind_ != Kind::Object) kind_mismatch("object");
  return members_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  const Value* hit = nullptr;
  for (const Member& m : members_) {
    if (m.key == key) hit = m.value.get();
  }
  return hit;
}

const Value* Value::find_path(std::string_view dotted) const {
  const Value* cur = this;
  std::size_t start = 0;
  while (cur != nullptr && start <= dotted.size()) {
    std::size_t end = dotted.find('.', start);
    if (end == std::string_view::npos) end = dotted.size();
    cur = cur->find(dotted.substr(start, end - start));
    if (end == dotted.size()) break;
    start = end + 1;
  }
  return cur;
}

Value Value::null() { return Value{}; }

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.kind_ = Kind::Number;
  v.num_ = d;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

Value Value::array(std::vector<std::shared_ptr<Value>> items) {
  Value v;
  v.kind_ = Kind::Array;
  v.items_ = std::move(items);
  return v;
}

Value Value::object(std::vector<Member> members) {
  Value v;
  v.kind_ = Kind::Object;
  v.members_ = std::move(members);
  return v;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::optional<Value> try_parse(std::string_view text) {
  try {
    return parse(text);
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace mstv::json
