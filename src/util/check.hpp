// Lightweight contract-checking macros (C++ Core Guidelines I.6/I.8 style
// Expects/Ensures).  Violations throw, so tests can assert on them and the
// simulated network never silently continues with corrupted invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mstv {

/// Thrown when a precondition (caller bug / malformed input) is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant (library bug) is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void fail_invariant(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace mstv

/// Precondition on public API arguments.
#define MSTV_EXPECTS(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mstv::detail::fail_precondition(#cond, __FILE__, __LINE__, "");     \
  } while (false)

#define MSTV_EXPECTS_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mstv::detail::fail_precondition(#cond, __FILE__, __LINE__, (msg));  \
  } while (false)

/// Internal invariant; should be unreachable if the library is correct.
#define MSTV_ASSERT(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mstv::detail::fail_invariant(#cond, __FILE__, __LINE__, "");        \
  } while (false)

#define MSTV_ASSERT_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mstv::detail::fail_invariant(#cond, __FILE__, __LINE__, (msg));     \
  } while (false)
