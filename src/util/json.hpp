// Minimal JSON document model and recursive-descent parser.
//
// The repo emits several machine-readable JSON artifacts — telemetry
// snapshots (obs/export), BENCH_<name>.json bench reports, Chrome Trace
// Event files, bounds-audit verdicts — and two consumers need to *read*
// them back without an external dependency: tools/bench_compare (diffs a
// fresh bench report against a committed baseline) and the trace-export
// golden tests (prove the emitted documents actually parse).  This is a
// strict parser for exactly the JSON those writers produce: objects,
// arrays, strings with the standard escapes (\uXXXX included, decoded to
// UTF-8), numbers, booleans and null.  It rejects trailing garbage,
// unterminated literals and over-deep nesting (a depth cap guards the
// recursion), and reports errors with a byte offset.
//
// Numbers are held as double — the precision every writer in this repo
// emits (counters stay integral well below 2^53).  Object keys keep
// insertion order; duplicate keys keep the last value (matching how
// JavaScript consumers such as Perfetto read the trace files).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mstv::json {

class Value;

/// Parse failure: `what()` carries the reason and the byte offset.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& reason, std::size_t offset)
      : std::runtime_error(reason + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

enum class Kind { Null, Bool, Number, String, Array, Object };

/// One member of an object, in document order.
struct Member {
  std::string key;
  std::shared_ptr<Value> value;
};

class Value {
 public:
  Value() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }

  /// Typed accessors throw std::logic_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<std::shared_ptr<Value>>& as_array() const;
  [[nodiscard]] const std::vector<Member>& as_object() const;

  /// Object member by key (last occurrence wins); nullptr when absent or
  /// when this value is not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// `find` chained over a dotted path ("metrics.counters"); nullptr as
  /// soon as a hop is missing.
  [[nodiscard]] const Value* find_path(std::string_view dotted) const;

  // Builders (used by the parser; handy for tests).
  static Value null();
  static Value boolean(bool b);
  static Value number(double v);
  static Value string(std::string s);
  static Value array(std::vector<std::shared_ptr<Value>> items);
  static Value object(std::vector<Member> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<std::shared_ptr<Value>> items_;
  std::vector<Member> members_;
};

/// Parses a complete document; throws ParseError on any malformation,
/// including non-whitespace after the top-level value.
[[nodiscard]] Value parse(std::string_view text);

/// Non-throwing variant: nullopt on malformed input.
[[nodiscard]] std::optional<Value> try_parse(std::string_view text);

}  // namespace mstv::json
