// Bit-exact serialization used for all labels in the repository.
//
// The paper's results are about *label sizes in bits*, so every label a
// marker produces is materialised through a BitWriter and every verifier /
// decoder reads it back through a BitReader.  This keeps the reported sizes
// honest: a label's size is the number of bits actually written, not a
// struct's sizeof.
//
// Supported primitives:
//   * fixed-width unsigned integers (0..64 bits),
//   * unary codes,
//   * Elias gamma codes (self-delimiting; value v >= 1 costs
//     2*floor(log2 v) + 1 bits) and the shifted variant for values >= 0,
//   * delta codes (gamma of the length, then the value) for large weights.
//
// The Elias gamma code is what makes the telescoping separator labels of
// gamma_small come out at O(log n) bits total (see labeling/extrema_labeling).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace mstv {

/// Number of bits needed to represent `v` in binary (0 needs 0 bits by
/// convention here; callers that need at least one bit must clamp).
constexpr int bit_width_u64(std::uint64_t v) noexcept {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// Append-only bit buffer.  Bits are stored LSB-first inside 64-bit words.
class BitWriter {
 public:
  /// Appends the `width` low bits of `value`, most significant bit first.
  void write_uint(std::uint64_t value, int width);

  /// Appends `n` in unary: n zero bits followed by a one bit.
  void write_unary(std::uint64_t n);

  /// Elias gamma code for v >= 1.
  void write_gamma(std::uint64_t v);

  /// Elias gamma code shifted so that v >= 0 is representable (encodes v+1).
  void write_gamma0(std::uint64_t v);

  /// Elias delta code for v >= 1: gamma(len) then len-1 payload bits.
  void write_delta(std::uint64_t v);

  /// Appends a single bit.
  void write_bit(bool b);

  /// Total number of bits written so far.
  [[nodiscard]] std::size_t size_bits() const noexcept { return nbits_; }

  /// Backing words; the final word may be partially filled.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  /// Consumes the writer, yielding its backing words without a copy.
  /// Markers materialise every label through a writer, so Label's
  /// rvalue constructor steals the buffer instead of duplicating it.
  [[nodiscard]] std::vector<std::uint64_t> take_words() && noexcept {
    return std::move(words_);
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t nbits_ = 0;
};

/// Sequential reader over the bits produced by a BitWriter.
///
/// Two constructions: over a vector (the in-memory Label path) or over a
/// raw word array plus a start bit (the snapshot path, src/store/ — the
/// arena and length streams of a mapped snapshot are read in place, so
/// the reader must be able to begin mid-word at an arbitrary bit
/// offset).  `position()`/`remaining()` always count relative to the
/// construction point, whichever constructor was used.
class BitReader {
 public:
  BitReader(const std::vector<std::uint64_t>& words, std::size_t nbits)
      : words_(words.data()), start_(0), nbits_(nbits), pos_(0) {}

  /// Reads `nbits` bits starting at absolute bit `start_bit` of the
  /// LSB-first word array `words` (which must span at least
  /// ceil((start_bit + nbits) / 64) words).
  BitReader(const std::uint64_t* words, std::size_t start_bit,
            std::size_t nbits)
      : words_(words), start_(start_bit), nbits_(nbits), pos_(0) {}

  [[nodiscard]] std::uint64_t read_uint(int width);
  [[nodiscard]] std::uint64_t read_unary();
  [[nodiscard]] std::uint64_t read_gamma();
  [[nodiscard]] std::uint64_t read_gamma0();
  [[nodiscard]] std::uint64_t read_delta();
  [[nodiscard]] bool read_bit();

  /// Bits not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept { return nbits_ - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == nbits_; }

 private:
  const std::uint64_t* words_;
  std::size_t start_;  // absolute bit offset of position() == 0
  std::size_t nbits_;  // readable bits from start_
  std::size_t pos_;    // bits consumed since construction
};

/// Size in bits of the Elias gamma code of v (v >= 1).
constexpr std::size_t gamma_cost_bits(std::uint64_t v) {
  const int w = bit_width_u64(v);
  return static_cast<std::size_t>(2 * w - 1);
}

/// Size in bits of the shifted gamma code of v (v >= 0).
constexpr std::size_t gamma0_cost_bits(std::uint64_t v) {
  return gamma_cost_bits(v + 1);
}

}  // namespace mstv
