#include "util/bitstream.hpp"

namespace mstv {

void BitWriter::write_bit(bool b) {
  const std::size_t word = nbits_ >> 6;
  const std::size_t off = nbits_ & 63;
  if (word == words_.size()) words_.push_back(0);
  if (b) words_[word] |= (std::uint64_t{1} << off);
  ++nbits_;
}

void BitWriter::write_uint(std::uint64_t value, int width) {
  MSTV_EXPECTS(width >= 0 && width <= 64);
  MSTV_EXPECTS_MSG(width == 64 || (value >> width) == 0,
                   "value does not fit in the requested width");
  for (int i = width - 1; i >= 0; --i) {
    write_bit(((value >> i) & 1) != 0);
  }
}

void BitWriter::write_unary(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) write_bit(false);
  write_bit(true);
}

void BitWriter::write_gamma(std::uint64_t v) {
  MSTV_EXPECTS(v >= 1);
  const int w = bit_width_u64(v);  // w >= 1
  write_unary(static_cast<std::uint64_t>(w - 1));
  // Emit the w-1 bits below the leading one.
  write_uint(v & ((w == 64) ? ~std::uint64_t{0} >> 1
                            : ((std::uint64_t{1} << (w - 1)) - 1)),
             w - 1);
}

void BitWriter::write_gamma0(std::uint64_t v) {
  MSTV_EXPECTS(v != ~std::uint64_t{0});
  write_gamma(v + 1);
}

void BitWriter::write_delta(std::uint64_t v) {
  MSTV_EXPECTS(v >= 1);
  const int w = bit_width_u64(v);
  write_gamma(static_cast<std::uint64_t>(w));
  write_uint(v & ((w == 64) ? ~std::uint64_t{0} >> 1
                            : ((std::uint64_t{1} << (w - 1)) - 1)),
             w - 1);
}

bool BitReader::read_bit() {
  MSTV_EXPECTS_MSG(pos_ < nbits_, "bitstream exhausted");
  const std::size_t bit = start_ + pos_;
  const std::size_t word = bit >> 6;
  const std::size_t off = bit & 63;
  ++pos_;
  return ((words_[word] >> off) & 1) != 0;
}

std::uint64_t BitReader::read_uint(int width) {
  MSTV_EXPECTS(width >= 0 && width <= 64);
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v = (v << 1) | (read_bit() ? 1u : 0u);
  }
  return v;
}

std::uint64_t BitReader::read_unary() {
  std::uint64_t n = 0;
  while (!read_bit()) ++n;
  return n;
}

std::uint64_t BitReader::read_gamma() {
  const auto w = read_unary() + 1;  // total bit width of the value
  MSTV_EXPECTS_MSG(w <= 64, "corrupt gamma code");
  std::uint64_t low = read_uint(static_cast<int>(w - 1));
  return (std::uint64_t{1} << (w - 1)) | low;
}

std::uint64_t BitReader::read_gamma0() { return read_gamma() - 1; }

std::uint64_t BitReader::read_delta() {
  const auto w = read_gamma();
  MSTV_EXPECTS_MSG(w >= 1 && w <= 64, "corrupt delta code");
  std::uint64_t low = read_uint(static_cast<int>(w - 1));
  return (std::uint64_t{1} << (w - 1)) | low;
}

}  // namespace mstv
