// Deterministic pseudo-random source for generators, property tests and
// fault injection.  A thin wrapper over std::mt19937_64 so every experiment
// in EXPERIMENTS.md is reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/check.hpp"

namespace mstv {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    MSTV_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    MSTV_EXPECTS(n > 0);
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform real in [0, 1).
  double real() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// A fresh independent stream (for splitting work deterministically).
  Rng split() { return Rng(uniform(0, ~std::uint64_t{0} - 1)); }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mstv
