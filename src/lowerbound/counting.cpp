#include "lowerbound/counting.hpp"

#include <cmath>

#include "lowerbound/hypertree.hpp"

namespace mstv {

LowerBoundRow lower_bound_row(std::uint32_t h, std::uint64_t mu) {
  LowerBoundRow row;
  row.h = h;
  row.mu = mu;
  row.n = hypertree_num_vertices(h);
  row.log2_w = std::log2(static_cast<double>(h) * static_cast<double>(mu));

  // log2 g(h, mu) >= 1/2 * (log2 mu + log2 g(h-1, mu^2))
  //               = sum_{i=1}^{h-1} (1/2)^i * log2(mu^(2^{i-1}))
  //               = (h-1)/2 * log2 mu.
  // Evaluate by the recurrence rather than the closed form so the code
  // matches the derivation step by step.
  double log2_g = 0.0;          // g(1, .) = 1
  double log2_mu_level = std::log2(static_cast<double>(mu));
  // Unroll top-down: accumulate contributions with halving weights.
  double weight = 0.5;
  for (std::uint32_t level = h; level >= 2; --level) {
    log2_g += weight * log2_mu_level;
    weight *= 0.5;
    log2_mu_level *= 2.0;  // mu squares at each descent
  }
  row.log2_g = log2_g;
  row.min_label_bits = log2_g;  // a set of size g needs log2 g bits per label
  return row;
}

}  // namespace mstv
